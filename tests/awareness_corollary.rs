//! Corollary III.10.1 as an assertion: after a gated execution in which
//! every process performs one `CounterIncrement` followed by one
//! `CounterRead` on a k-multiplicative-accurate counter, at least `n/2`
//! processes are aware (Definition III.2/III.3) of at least `n/2k²`
//! processes.
//!
//! Awareness is computed operationally from the recorded primitive trace
//! by `perturb::awareness`; the executions are deterministic (gated
//! round-robin), so these are exact checks, not statistical ones.

use approx_objects::{KmultCounter, KmultCounterHandle};
use counter::{CollectCounter, Counter};
use parking_lot::Mutex;
use perturb::awareness;
use smr::sched::{RoundRobin, SeededRandom};
use smr::{Driver, OpSpec, Runtime};
use std::sync::Arc;

fn run_one_inc_one_read_collect(n: usize, seed: Option<u64>) -> awareness::AwarenessReport {
    let rt = Runtime::gated(n);
    rt.enable_tracing();
    let counter = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt.clone());
    for pid in 0..n {
        let c = Arc::clone(&counter);
        d.submit(pid, OpSpec::inc(), move |ctx| {
            c.increment(ctx);
            0
        });
        let c = Arc::clone(&counter);
        d.submit(pid, OpSpec::read(), move |ctx| c.read(ctx));
    }
    match seed {
        None => {
            d.run_schedule(&mut RoundRobin::new());
        }
        Some(s) => {
            d.run_schedule(&mut SeededRandom::new(s));
        }
    }
    rt.disable_tracing();
    awareness::compute(n, &rt.take_trace())
}

#[test]
fn corollary_holds_for_exact_counter_any_k() {
    // An exact counter is a k-multiplicative counter for every k; check
    // the corollary's threshold for k = 2 across schedules.
    let k = 2u64;
    for n in [8usize, 16, 32] {
        for seed in [None, Some(5u64), Some(99)] {
            let report = run_one_inc_one_read_collect(n, seed);
            let threshold = (n as u64).div_ceil(2 * k * k) as usize;
            let qualifying = report.processes_aware_of_at_least(threshold);
            assert!(
                qualifying >= n / 2,
                "n={n} seed={seed:?}: only {qualifying} processes aware of ≥ {threshold}"
            );
        }
    }
}

#[test]
fn corollary_holds_for_kmult_counter_at_legal_k() {
    let n = 16usize;
    let k = 4u64; // ⌈√16⌉
    let rt = Runtime::gated(n);
    rt.enable_tracing();
    let counter = KmultCounter::new(n, k);
    let handles: Arc<Vec<Mutex<KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt.clone());
    for pid in 0..n {
        let handles2 = Arc::clone(&handles);
        d.submit(pid, OpSpec::inc(), move |ctx| {
            handles2[pid].lock().increment(ctx);
            0
        });
        let handles2 = Arc::clone(&handles);
        d.submit(pid, OpSpec::read(), move |ctx| {
            handles2[pid].lock().read(ctx)
        });
    }
    d.run_schedule(&mut RoundRobin::new());
    rt.disable_tracing();
    let report = awareness::compute(n, &rt.take_trace());

    let threshold = (n as u64).div_ceil(2 * k * k) as usize; // = 1
    assert!(
        report.processes_aware_of_at_least(threshold) >= n / 2,
        "sizes: {:?}",
        report.sizes()
    );
}

#[test]
fn awareness_grows_with_information_flow() {
    // Structural sanity: with the collect counter, a reader collects all
    // cells, so any process that read after all increments is aware of
    // every incrementer — its awareness set is maximal.
    let n = 8;
    let report = run_one_inc_one_read_collect(n, None);
    let sizes = report.sizes();
    assert!(
        sizes.iter().any(|&s| s >= n / 2),
        "someone must have learned a lot: {sizes:?}"
    );
    // And everyone is at least self-aware.
    assert!(sizes.iter().all(|&s| s >= 1));
}
