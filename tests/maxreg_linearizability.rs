//! Cross-crate integration: concurrent max-register executions checked
//! for linearizability against exact (`k = 1`) and k-multiplicative
//! specifications.

use approx_objects::{KmultBoundedMaxRegister, KmultUnboundedMaxRegister};
use lincheck::monotone::check_maxreg;
use lincheck::MaxRegHistory;
use maxreg::{
    AdaptiveMaxRegister, CollectMaxRegister, MaxRegister, TreeMaxRegister, UnboundedMaxRegister,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smr::sched::SeededRandom;
use smr::{Driver, OpSpec, Runtime};
use std::sync::Arc;

/// Mixed write/read workload against an exact `MaxRegister`.
fn run_exact<M: MaxRegister + 'static>(
    reg: Arc<M>,
    n: usize,
    ops: u64,
    max_value: u64,
    gated_seed: Option<u64>,
) -> MaxRegHistory {
    let rt = match gated_seed {
        None => Runtime::free_running(n),
        Some(_) => Runtime::gated(n),
    };
    let mut d = Driver::new(rt);
    let mut rng = StdRng::seed_from_u64(0xACE ^ gated_seed.unwrap_or(0));
    for pid in 0..n {
        for i in 1..=ops {
            let reg = Arc::clone(&reg);
            if i % 4 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| u128::from(reg.read(ctx)));
            } else {
                let v = rng.random_range(1..max_value);
                d.submit(pid, OpSpec::write(v), move |ctx| {
                    reg.write(ctx, v);
                    0
                });
            }
        }
    }
    match gated_seed {
        None => d.wait_all(),
        Some(s) => {
            d.run_schedule(&mut SeededRandom::new(s));
        }
    }
    MaxRegHistory::from_records(d.history()).expect("typed maxreg history")
}

#[test]
fn tree_maxreg_is_linearizable() {
    let h = run_exact(
        Arc::new(TreeMaxRegister::new(1 << 16)),
        6,
        120,
        1 << 16,
        None,
    );
    check_maxreg(&h, 1).unwrap_or_else(|v| panic!("tree: {v}"));
}

#[test]
fn tree_maxreg_is_linearizable_gated() {
    for seed in [2u64, 13, 77] {
        let h = run_exact(
            Arc::new(TreeMaxRegister::new(1 << 10)),
            3,
            40,
            1 << 10,
            Some(seed),
        );
        check_maxreg(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn collect_maxreg_is_linearizable() {
    let h = run_exact(Arc::new(CollectMaxRegister::new(6)), 6, 150, 1 << 30, None);
    check_maxreg(&h, 1).unwrap_or_else(|v| panic!("collect: {v}"));
}

#[test]
fn adaptive_maxreg_is_linearizable_both_arms() {
    // Tree arm.
    let h = run_exact(Arc::new(AdaptiveMaxRegister::new(8, 256)), 8, 80, 256, None);
    check_maxreg(&h, 1).unwrap_or_else(|v| panic!("adaptive/tree: {v}"));
    // Collect arm.
    let h = run_exact(
        Arc::new(AdaptiveMaxRegister::new(3, 1 << 40)),
        3,
        80,
        1 << 40,
        None,
    );
    check_maxreg(&h, 1).unwrap_or_else(|v| panic!("adaptive/collect: {v}"));
}

#[test]
fn unbounded_exact_maxreg_is_linearizable() {
    let h = run_exact(Arc::new(UnboundedMaxRegister::new()), 5, 100, 1 << 50, None);
    check_maxreg(&h, 1).unwrap_or_else(|v| panic!("unbounded: {v}"));
}

/// Workload against the k-multiplicative bounded register.
fn run_kmult_bounded(n: usize, m: u64, k: u64, ops: u64, gated_seed: Option<u64>) -> MaxRegHistory {
    let rt = match gated_seed {
        None => Runtime::free_running(n),
        Some(_) => Runtime::gated(n),
    };
    let reg = Arc::new(KmultBoundedMaxRegister::new(n, m, k));
    let mut d = Driver::new(rt);
    let mut rng = StdRng::seed_from_u64(77 ^ gated_seed.unwrap_or(0));
    for pid in 0..n {
        for i in 1..=ops {
            let reg = Arc::clone(&reg);
            if i % 4 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| reg.read(ctx));
            } else {
                let v = rng.random_range(1..m);
                d.submit(pid, OpSpec::write(v), move |ctx| {
                    reg.write(ctx, v);
                    0
                });
            }
        }
    }
    match gated_seed {
        None => d.wait_all(),
        Some(s) => {
            d.run_schedule(&mut SeededRandom::new(s));
        }
    }
    MaxRegHistory::from_records(d.history()).expect("typed maxreg history")
}

#[test]
fn kmult_bounded_maxreg_is_k_accurate() {
    for k in [2u64, 4, 16] {
        let h = run_kmult_bounded(6, 1 << 20, k, 120, None);
        check_maxreg(&h, k).unwrap_or_else(|v| panic!("k={k}: {v}"));
    }
}

#[test]
fn kmult_bounded_maxreg_is_k_accurate_gated() {
    for seed in [4u64, 21] {
        let h = run_kmult_bounded(3, 1 << 12, 2, 40, Some(seed));
        check_maxreg(&h, 2).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn kmult_maxreg_would_fail_stricter_spec() {
    let h = run_kmult_bounded(4, 1 << 20, 16, 200, None);
    assert!(
        check_maxreg(&h, 1).is_err(),
        "a 16-multiplicative register should not pass the exact spec"
    );
}

#[test]
fn kmult_unbounded_maxreg_is_k_accurate() {
    let n = 5;
    let k = 4;
    let rt = Runtime::free_running(n);
    let reg = Arc::new(KmultUnboundedMaxRegister::new(n, k));
    let mut d = Driver::new(rt);
    let mut rng = StdRng::seed_from_u64(31337);
    for pid in 0..n {
        for i in 1..=100u64 {
            let reg = Arc::clone(&reg);
            if i % 4 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| reg.read(ctx));
            } else {
                let v = 1u64 << rng.random_range(0..55u32);
                d.submit(pid, OpSpec::write(v), move |ctx| {
                    reg.write(ctx, v);
                    0
                });
            }
        }
    }
    d.wait_all();
    let h = MaxRegHistory::from_records(d.history()).expect("typed maxreg history");
    check_maxreg(&h, k).unwrap_or_else(|v| panic!("kmult unbounded: {v}"));
}
