//! Guards the umbrella crate's public facade: the `pub use` re-exports
//! in `src/lib.rs` are the workspace's public surface, and a refactor
//! that renames or drops one should fail here, not in downstream code.
//!
//! Every assertion goes through the umbrella paths
//! (`deterministic_approximate_objects::<member>::<item>`), not the
//! member crates directly.

use deterministic_approximate_objects as dao;

#[test]
fn paper_objects_are_reachable() {
    let n = 2;
    let k = 2;
    let rt = dao::smr::Runtime::free_running(n);
    let ctx = rt.ctx(0);

    let counter = dao::approx_objects::KmultCounter::new(n, k);
    let mut handle: dao::approx_objects::KmultCounterHandle = counter.handle(0);
    for _ in 0..8 {
        handle.increment(&ctx);
    }
    let x = handle.read(&ctx);
    assert!(dao::approx_objects::accuracy::within_k(8, x, k), "x={x}");

    let reg = dao::approx_objects::KmultBoundedMaxRegister::new(n, 1 << 20, k);
    reg.write(&ctx, 1000);
    let v = reg.read(&ctx);
    assert!((500..=2000).contains(&v), "v={v}");

    let ureg = dao::approx_objects::KmultUnboundedMaxRegister::new(n, k);
    ureg.write(&ctx, 1 << 40);
    assert!(ureg.read(&ctx) >= 1 << 39);
}

#[test]
fn runtime_and_driver_are_reachable() {
    use dao::smr::{Driver, OpSpec, Register, Runtime, StepOutcome};

    let rt = Runtime::gated(1);
    let reg = std::sync::Arc::new(Register::new(0));
    let mut d = Driver::new(rt);
    let r2 = std::sync::Arc::clone(&reg);
    d.submit(0, OpSpec::write(7), move |ctx| {
        r2.write(ctx, 7);
        0
    });
    assert_eq!(d.step(0), StepOutcome::Stepped);
    d.run_solo(0);
    assert_eq!(reg.peek(), 7);
}

#[test]
fn lincheck_entry_points_are_reachable() {
    use dao::lincheck::monotone::{check_counter, check_maxreg};
    use dao::lincheck::{CounterHistory, Interval, MaxRegHistory, TimedInc, TimedRead, TimedWrite};

    let h = CounterHistory {
        incs: vec![TimedInc::unit(Interval::done(0, 1))],
        reads: vec![TimedRead {
            inv: 2,
            resp: 3,
            value: 1,
        }],
    };
    check_counter(&h, 1).expect("sequential exact counter history");
    dao::lincheck::naive::check_counter(&h, 1).expect("reference engine reachable");

    let h = MaxRegHistory {
        writes: vec![TimedWrite {
            window: Interval::done(0, 1),
            value: 5,
        }],
        reads: vec![TimedRead {
            inv: 2,
            resp: 3,
            value: 5,
        }],
    };
    check_maxreg(&h, 1).expect("sequential exact maxreg history");

    // The exhaustive cross-validator is part of the facade too.
    assert!(
        dao::lincheck::wg::wg_check(&[], 1),
        "empty history linearizes"
    );
}

#[test]
fn sketch_workloads_are_reachable() {
    use dao::sketch::{QuantileConfig, QuantileSketch, TopKConfig, TopKSketch};

    let rt = dao::smr::Runtime::free_running(1);
    let ctx = rt.ctx(0);

    let sk = TopKSketch::new(TopKConfig {
        n: 1,
        keys: 8,
        shards: 2,
        ..TopKConfig::default()
    });
    let mut h = sk.handle(0, 1);
    for _ in 0..10 {
        h.add(&ctx, 5, 1);
    }
    let top = h.top_k(&ctx, 1);
    assert_eq!(top.entries[0].0, 5);

    let qs = QuantileSketch::new(QuantileConfig {
        n: 1,
        ..QuantileConfig::default()
    });
    let mut q = qs.handle(0, 1);
    q.observe(&ctx, 100, 20);
    assert_eq!(q.quantile(&ctx, 1, 2), 128, "upper edge of [64, 128)");

    // The envelope checkers travel with the facade.
    let env = dao::lincheck::SketchEnvelope::new(2, 1);
    dao::lincheck::check_topk_records(&dao::smr::History::new(), &env)
        .expect("empty history passes");
}

#[test]
fn baselines_and_perturb_are_reachable() {
    use dao::counter::{CollectCounter, Counter};
    use dao::maxreg::{MaxRegister, TreeMaxRegister};

    let rt = dao::smr::Runtime::free_running(1);
    let ctx = rt.ctx(0);

    let c = CollectCounter::new(1);
    c.increment(&ctx);
    assert_eq!(c.read(&ctx), 1);

    let m = TreeMaxRegister::new(1 << 10);
    m.write(&ctx, 3);
    assert_eq!(m.read(&ctx), 3);

    let mut bits = dao::perturb::BitSet::new(8);
    bits.insert(3);
    assert!(bits.contains(3));
}
