//! Theorem III.9 as assertions: constant amortized step complexity for
//! `k ≥ √n`, accuracy at quiescence, and the startup-window boundary
//! documented in DESIGN.md.

#![allow(clippy::needless_range_loop)] // pid-indexed handles read clearest

use approx_objects::{accuracy::within_k, KmultCounter};
use bench_is_not_a_dep::*;
use smr::Runtime;

/// Tiny local stand-in so this test crate does not depend on `bench`.
mod bench_is_not_a_dep {
    /// `⌈√n⌉`.
    pub fn ceil_sqrt(n: u64) -> u64 {
        let mut k = (n as f64).sqrt() as u64;
        while k * k < n {
            k += 1;
        }
        k.max(1)
    }
}

#[test]
fn amortized_steps_stay_constant_as_n_grows() {
    let total_ops: u64 = 120_000;
    let mut amortized = Vec::new();
    for n in [2usize, 8, 32] {
        let k = ceil_sqrt(n as u64);
        let rt = Runtime::free_running(n);
        let counter = KmultCounter::new(n, k);
        let per = total_ops / n as u64;
        let mut handles = Vec::new();
        for pid in 0..n {
            let ctx = rt.ctx(pid);
            let mut h = counter.handle(pid);
            handles.push(std::thread::spawn(move || {
                for i in 1..=per {
                    if i % 16 == 0 {
                        let _ = h.read(&ctx);
                    } else {
                        h.increment(&ctx);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let a = rt.total_steps() as f64 / total_ops as f64;
        amortized.push((n, a));
    }
    for &(n, a) in &amortized {
        assert!(a < 3.0, "n={n}: amortized {a} not constant-like");
    }
    // No systematic blow-up across a 16× increase in n.
    let first = amortized[0].1;
    let last = amortized.last().unwrap().1;
    assert!(
        last < first * 4.0 + 1.0,
        "amortized cost grew too fast: {amortized:?}"
    );
}

#[test]
fn quiescent_accuracy_holds_for_k_ceil_sqrt_n() {
    // After enough increments to leave the startup window (q ≥ 1), the
    // raw k-accuracy v/k ≤ x ≤ v·k holds at quiescence for k = ⌈√n⌉.
    for n in [4usize, 9, 16, 25] {
        let k = ceil_sqrt(n as u64);
        let rt = Runtime::free_running(n);
        let counter = KmultCounter::new(n, k);
        let mut handles: Vec<_> = (0..n).map(|p| counter.handle(p)).collect();
        let per = 5_000u64;
        let mut v: u128 = 0;
        for round in 0..per {
            let pid = (round % n as u64) as usize;
            let ctx = rt.ctx(pid);
            handles[pid].increment(&ctx);
            v += 1;
        }
        let ctx = rt.ctx(0);
        let x = handles[0].read(&ctx);
        assert!(
            within_k(v, x, k),
            "n={n} k={k}: quiescent count {v}, read {x}"
        );
    }
}

#[test]
fn startup_window_requires_k_at_least_n_minus_1() {
    // DESIGN.md §5: while only switch_0 is set, up to 1 + n(k−1)
    // increments can be pending against a read of k. With k ≥ n − 1 the
    // raw spec survives even this window…
    let n = 5;
    let k = (n - 1) as u64;
    let rt = Runtime::free_running(n);
    let counter = KmultCounter::new(n, k);
    let mut handles: Vec<_> = (0..n).map(|p| counter.handle(p)).collect();
    for pid in 0..n {
        let ctx = rt.ctx(pid);
        handles[pid].increment(&ctx);
    }
    let ctx = rt.ctx(0);
    let x = handles[0].read(&ctx);
    assert!(
        within_k(n as u128, x, k),
        "k = n−1 keeps the window accurate"
    );

    // …while k clearly below √n breaks it (cf. EXP-T3.11 part C).
    let n = 64;
    let k = 2u64;
    let rt = Runtime::free_running(n);
    let counter = KmultCounter::new(n, k);
    let mut handles: Vec<_> = (0..n).map(|p| counter.handle(p)).collect();
    for pid in 0..n {
        let ctx = rt.ctx(pid);
        handles[pid].increment(&ctx);
    }
    let ctx = rt.ctx(0);
    let x = handles[0].read(&ctx);
    assert!(
        !within_k(n as u128, x, k),
        "k ≪ √n must violate accuracy here (x = {x})"
    );
}

#[test]
fn idle_reads_cost_amortizes_to_zero() {
    // The persistent read cursor means R repeated quiescent reads cost
    // O(1) each after the first — total steps stay far below R·log(v).
    let rt = Runtime::free_running(1);
    let counter = KmultCounter::new(1, 2);
    let mut h = counter.handle(0);
    let ctx = rt.ctx(0);
    for _ in 0..50_000 {
        h.increment(&ctx);
    }
    let _ = h.read(&ctx);
    let s0 = ctx.steps_taken();
    for _ in 0..1_000 {
        let _ = h.read(&ctx);
    }
    let per_read = (ctx.steps_taken() - s0) as f64 / 1_000.0;
    assert!(per_read <= 2.0, "idle read cost {per_read}");
}

#[test]
fn read_values_are_monotone_at_quiescence() {
    // Successive quiescent reads interleaved with increments never
    // decrease (the counter is monotone).
    let rt = Runtime::free_running(1);
    let counter = KmultCounter::new(1, 3);
    let mut h = counter.handle(0);
    let ctx = rt.ctx(0);
    let mut prev = 0u128;
    for _ in 0..500 {
        for _ in 0..7 {
            h.increment(&ctx);
        }
        let x = h.read(&ctx);
        assert!(x >= prev, "read regressed: {prev} → {x}");
        prev = x;
    }
}
