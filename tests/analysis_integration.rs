//! `smr::analysis` against the real objects: the standard pass bundle
//! must run clean over representative workloads on both backends (any
//! finding there would be a genuine runtime-contract bug), and each
//! seeded poll-contract mutant must be caught with a precise report.
//! (The access-kind mutants need crate-private access and live in
//! `smr::analysis::mutant_tests`.)

use counter::{CollectCounter, CollectIncTask, CollectReadTask, Counter};
use parking_lot::Mutex;
use smr::analysis::Analyzer;
use smr::explore::{explore, ExploreConfig};
use smr::sched::{RoundRobin, SeededRandom};
use smr::{Driver, OpSpec, OpTask, Poll, ProcCtx, Register, Runtime};
use std::sync::Arc;

use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};

#[test]
fn standard_passes_run_clean_on_a_coop_kmult_workload() {
    let n = 6;
    let rt = Runtime::coop(n);
    rt.attach_analysis(Analyzer::standard());
    let mut d = Driver::coop(rt.clone());
    let c = KmultCounter::new(n, 3);
    for pid in 0..n {
        let h: SharedKmultHandle = Arc::new(Mutex::new(c.handle(pid)));
        for i in 0..8u64 {
            if i % 3 == 2 {
                d.submit_task(pid, OpSpec::read(), KmultReadTask::new(h.clone()));
            } else {
                d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(h.clone()));
            }
        }
    }
    d.run_schedule(&mut SeededRandom::new(42));
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    assert!(
        violations.is_empty(),
        "clean workload flagged: {violations:?}"
    );
}

#[test]
fn standard_passes_run_clean_on_a_thread_gated_collect_workload() {
    let n = 4;
    let rt = Runtime::gated(n);
    rt.attach_analysis(Analyzer::standard());
    let counter = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt.clone());
    for pid in 0..n {
        for i in 0..10u64 {
            let c = Arc::clone(&counter);
            if i % 4 == 3 {
                d.submit(pid, OpSpec::read(), move |ctx| c.read(ctx));
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    c.increment(ctx);
                    0
                });
            }
        }
    }
    d.run_schedule(&mut SeededRandom::new(7));
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    assert!(
        violations.is_empty(),
        "clean workload flagged: {violations:?}"
    );
}

#[test]
fn standard_passes_run_clean_under_crashes() {
    let n = 3;
    let rt = Runtime::coop(n);
    rt.attach_analysis(Analyzer::standard());
    let mut d = Driver::coop(rt.clone());
    let counter = Arc::new(CollectCounter::new(n));
    for pid in 0..n {
        d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(counter.clone()));
        d.submit_task(pid, OpSpec::read(), CollectReadTask::new(counter.clone()));
    }
    let _ = d.step(1); // pid 1 parks mid-operation…
    d.crash(1); // …and dies there; its window must close cleanly
    d.run_schedule(&mut RoundRobin::new());
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    assert!(violations.is_empty(), "crash run flagged: {violations:?}");
}

/// Mutant: the granted poll applies *two* primitives.
struct GreedyTask {
    reg: Arc<Register>,
    primed: bool,
}

impl OpTask for GreedyTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        let v = self.reg.read(ctx);
        self.reg.write(ctx, v + 1); // second primitive in one poll
        Poll::Ready(u128::from(v))
    }
}

/// Mutant: the priming poll applies a primitive.
struct EagerTask {
    reg: Arc<Register>,
    primed: bool,
}

impl OpTask for EagerTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            let _ = self.reg.read(ctx); // primitive before any grant
            return Poll::Pending;
        }
        self.reg.write(ctx, 1);
        Poll::Ready(0)
    }
}

#[test]
fn poll_pass_flags_two_primitives_in_one_poll() {
    let rt = Runtime::coop(2);
    rt.attach_analysis(Analyzer::standard());
    // Lenient backend: the contract assert is off, so the mutant runs
    // on and the pass gets to diagnose it instead of a panic.
    let mut d = Driver::coop_lenient(rt.clone());
    d.submit_task(
        1,
        OpSpec::custom("greedy", 0),
        GreedyTask {
            reg: Arc::new(Register::new(0)),
            primed: false,
        },
    );
    d.run_solo(1);
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    let hit = violations
        .iter()
        .find(|v| v.pass == "poll-discipline")
        .unwrap_or_else(|| panic!("poll pass must flag the mutant: {violations:?}"));
    assert_eq!(hit.pid, Some(1), "the report names the process");
    assert!(hit.seq.is_some(), "the report pins the trace position");
    assert!(
        hit.message.contains("greedy") && hit.message.contains("2 primitives"),
        "the report names the machine and the count: {hit}"
    );
}

#[test]
fn poll_pass_flags_a_priming_primitive() {
    let rt = Runtime::coop(1);
    rt.attach_analysis(Analyzer::standard());
    let mut d = Driver::coop_lenient(rt.clone());
    d.submit_task(
        0,
        OpSpec::custom("eager", 0),
        EagerTask {
            reg: Arc::new(Register::new(0)),
            primed: false,
        },
    );
    d.run_solo(0);
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    let hit = violations
        .iter()
        .find(|v| v.pass == "poll-discipline")
        .unwrap_or_else(|| panic!("poll pass must flag the mutant: {violations:?}"));
    assert_eq!(hit.pid, Some(0));
    assert!(
        hit.message.contains("eager") && hit.message.contains("outside a granted poll"),
        "the report names the machine and the phase: {hit}"
    );
}

#[test]
fn explorer_surfaces_analysis_violations_like_checker_rejections() {
    // The explorer consults an attached analyzer after every checked
    // cut: a poll-contract mutant must surface as a FoundViolation with
    // the pass's diagnosis, minimized like any other failing schedule.
    let factory = || {
        let rt = Runtime::coop(2);
        rt.attach_analysis(Analyzer::standard());
        let mut d = Driver::coop_lenient(rt);
        let reg = Arc::new(Register::new(0));
        d.submit_task(
            0,
            OpSpec::custom("greedy", 0),
            GreedyTask {
                reg: reg.clone(),
                primed: false,
            },
        );
        d.submit_task(
            1,
            OpSpec::custom("obs", 0),
            EagerObserver { reg, primed: false },
        );
        d
    };
    let stats = explore(&ExploreConfig::default(), factory, |_h| Ok(()));
    assert!(!stats.violations.is_empty(), "the mutant must be caught");
    let v = &stats.violations[0];
    assert!(
        v.message.contains("[poll-discipline]") && v.message.contains("greedy"),
        "the explorer reports the pass diagnosis: {}",
        v.message
    );
    // Minimal reproduction: granting the greedy op its one poll.
    assert!(v.minimized.len() <= v.original.len());
    assert!(v.minimized.steps() >= 1);
}

/// Honest single-read peer for the explorer test.
struct EagerObserver {
    reg: Arc<Register>,
    primed: bool,
}

impl OpTask for EagerObserver {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        Poll::Ready(u128::from(self.reg.read(ctx)))
    }
}

#[test]
fn explorer_passes_clean_programs_with_an_analyzer_attached() {
    // Control for the mutant test: exhaustive exploration of an honest
    // program with the analyzer attached finds nothing, on every
    // interleaving.
    let factory = || {
        let rt = Runtime::coop(2);
        rt.attach_analysis(Analyzer::standard());
        let mut d = Driver::coop(rt);
        let counter = Arc::new(CollectCounter::new(2));
        for pid in 0..2 {
            d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(counter.clone()));
        }
        d
    };
    let stats = explore(&ExploreConfig::exhaustive(100), factory, |_h| Ok(()));
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
    assert!(stats.interleavings > 1);
}
