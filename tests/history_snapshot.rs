//! Live history snapshots: `Driver::history_snapshot()` must surface
//! the in-flight operation of a process the adversary *suspended* —
//! never crashed, never rescheduled — as a pending record, so checkers
//! see the same optional-effect semantics as for crashes. This is the
//! checker-completeness hole the ROADMAP called out: before snapshots,
//! such an operation was invisible to `Driver::history()` even though
//! its partial effects were already observable in shared memory.

use counter::{CollectCounter, Counter};
use lincheck::monotone::check_counter;
use lincheck::CounterHistory;
use smr::{Driver, OpKind, OpSpec, Runtime, StepOutcome};
use std::sync::Arc;

/// The motivating scenario: a suspended increment batch has landed one
/// of its two units; a reader observes it. Without the pending record
/// the history is *not* linearizable (a read of 1 with zero recorded
/// increments); with the snapshot it is.
#[test]
fn suspended_ops_effects_are_checkable_only_via_snapshot() {
    let n = 2;
    let rt = Runtime::gated(n);
    let c = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt);

    // pid 0: a batch of two increments = four primitives on the collect
    // counter (read cell, write cell, twice). Two steps land exactly the
    // first unit, then the process is suspended — not crashed — and
    // never scheduled again.
    {
        let c = Arc::clone(&c);
        d.submit(0, OpSpec::inc_by(2), move |ctx| {
            c.increment(ctx);
            c.increment(ctx);
            0
        });
    }
    assert_eq!(d.step(0), StepOutcome::Stepped);
    assert_eq!(d.step(0), StepOutcome::Stepped);

    // pid 1 reads and sees the landed unit.
    {
        let c = Arc::clone(&c);
        d.submit(1, OpSpec::read(), move |ctx| c.read(ctx));
    }
    d.run_solo(1);
    let read_val = d.history().ops().last().expect("read recorded").returned();
    assert_eq!(read_val, 1, "the suspended batch's first unit is visible");

    // Plain history: the suspended batch is invisible, so the read is a
    // spec violation — one observed increment, none recorded.
    let incomplete = CounterHistory::from_records(d.history()).expect("typed counter history");
    assert!(
        check_counter(&incomplete, 1).is_err(),
        "without the pending record the history cannot linearize"
    );

    // Snapshot: the in-flight batch appears as a pending record with its
    // full multiplicity, and the history linearizes.
    let snap = d.history_snapshot();
    let pending: Vec<_> = snap.ops().iter().filter(|r| r.resp.is_none()).collect();
    assert_eq!(pending.len(), 1, "exactly the suspended batch");
    assert_eq!(pending[0].pid, 0);
    assert_eq!(pending[0].kind, OpKind::Inc { amount: 2 });
    assert_eq!(pending[0].steps, 2, "two primitives performed so far");
    let complete = CounterHistory::from_records(&snap).expect("typed counter history");
    check_counter(&complete, 1).unwrap_or_else(|v| panic!("snapshot history: {v}"));
}

/// Snapshots are a deterministic cut: repeated calls with no grants in
/// between return identical histories, and they do not perturb the
/// execution (the suspended op still completes normally afterwards).
#[test]
fn snapshots_are_repeatable_and_non_destructive() {
    let n = 3;
    let rt = Runtime::gated(n);
    let c = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt);

    for pid in 0..n {
        let c = Arc::clone(&c);
        d.submit(pid, OpSpec::inc(), move |ctx| {
            c.increment(ctx);
            0
        });
    }
    // Everyone takes one step of their two-step increment: three
    // suspended processes at once.
    for pid in 0..n {
        assert_eq!(d.step(pid), StepOutcome::Stepped);
    }
    let a = d.history_snapshot();
    let b = d.history_snapshot();
    assert_eq!(a.ops(), b.ops(), "same cut, same records");
    assert_eq!(a.len(), n, "one pending record per suspended process");
    assert!(a.ops().iter().all(|r| r.resp.is_none()));

    // Resume everyone; the final history completes all three and a
    // fresh snapshot carries no pending residue.
    for pid in 0..n {
        d.run_solo(pid);
    }
    assert_eq!(d.history().len(), n);
    let done = d.history_snapshot();
    assert_eq!(done.len(), n);
    assert!(done.ops().iter().all(|r| r.resp.is_some()));
    assert_eq!(done.pending().len(), 0);
}

/// Mixed cut: one crashed process (already pending in `history()`), one
/// suspended process (pending only in the snapshot), survivors
/// completed — the snapshot must contain all three classes exactly
/// once, and the whole cut must linearize.
#[test]
fn snapshot_combines_crashed_suspended_and_completed() {
    let n = 3;
    let rt = Runtime::gated(n);
    let c = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt);

    for pid in 0..n {
        let c = Arc::clone(&c);
        d.submit(pid, OpSpec::inc(), move |ctx| {
            c.increment(ctx);
            0
        });
    }
    {
        let c = Arc::clone(&c);
        d.submit(2, OpSpec::read(), move |ctx| c.read(ctx));
    }

    // pid 0 crashes mid-increment; pid 1 is suspended mid-increment;
    // pid 2 completes everything.
    assert_eq!(d.step(0), StepOutcome::Stepped);
    d.crash(0);
    assert_eq!(d.step(1), StepOutcome::Stepped);
    d.run_solo(2);

    let snap = d.history_snapshot();
    assert_eq!(snap.len(), 4, "crashed + suspended + inc + read");
    assert_eq!(snap.pending().len(), 2);
    let complete = CounterHistory::from_records(&snap).expect("typed counter history");
    check_counter(&complete, 1).unwrap_or_else(|v| panic!("mixed cut: {v}"));
}
