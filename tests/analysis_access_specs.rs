//! Declared access-kind specs for every object's task-form machines.
//!
//! Each task runs solo on a traced coop driver with the standard
//! analysis bundle attached; the test then checks the primitive stream
//! against the machine's declared spec — read machines apply only
//! trivial primitives, update machines apply at least one nontrivial
//! primitive and draw every kind from the machine's declared set, and
//! the lock-based oracles apply no primitives at all. Any analysis
//! violation (mis-declared kind, poll-contract breach) fails the run
//! outright, so this doubles as a conformance sweep over the whole
//! object zoo.

use parking_lot::Mutex;
use smr::analysis::Analyzer;
use smr::{AccessKind, Driver, OpSpec, OpTask, Runtime};
use std::sync::Arc;

use counter::tasks::{lock_inc_task, lock_read_task};
use counter::{
    AachCounter, AachIncTask, AachReadTask, CollectCounter, CollectIncTask, CollectReadTask,
    Counter, FaaCounter, LockCounter, SnapshotCounter, SnapshotIncTask, SnapshotReadTask,
    UnboundedTreeCounter, UnboundedTreeIncTask, UnboundedTreeReadTask,
};

/// Run `task` solo (pid 0) on a fresh `n`-process coop driver with the
/// standard analyzer attached, returning the primitive kinds it applied.
/// Panics if any analysis pass flags the run.
fn observed_kinds<T: OpTask + 'static>(n: usize, label: &'static str, task: T) -> Vec<AccessKind> {
    let rt = Runtime::coop(n);
    rt.attach_analysis(Analyzer::standard());
    rt.enable_tracing();
    let mut d = Driver::coop(rt.clone());
    d.submit_task(0, OpSpec::custom(label, 0), task);
    d.run_solo(0);
    let kinds = smr::accesses(&rt.take_trace())
        .into_iter()
        .map(|a| a.kind)
        .collect();
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    assert!(
        violations.is_empty(),
        "{label}: analysis flagged a standard machine: {violations:?}"
    );
    kinds
}

/// The machine declares itself a read: every primitive trivial, and it
/// must actually touch shared memory at least `min` times.
fn assert_read_only(name: &str, kinds: &[AccessKind], min: usize) {
    assert!(
        kinds.len() >= min,
        "{name}: expected at least {min} primitives, saw {kinds:?}"
    );
    for k in kinds {
        assert!(
            !k.is_nontrivial(),
            "{name}: read machine applied nontrivial {k:?} (full stream: {kinds:?})"
        );
    }
}

/// The machine declares itself an update over `allowed` kinds: at least
/// one nontrivial primitive, none outside the declared set.
fn assert_mutates(name: &str, kinds: &[AccessKind], allowed: &[AccessKind]) {
    assert!(
        kinds.iter().any(|k| k.is_nontrivial()),
        "{name}: update machine applied no nontrivial primitive: {kinds:?}"
    );
    for k in kinds {
        assert!(
            allowed.contains(k),
            "{name}: undeclared kind {k:?} (declared {allowed:?}, full stream: {kinds:?})"
        );
    }
}

const RW: &[AccessKind] = &[AccessKind::Read, AccessKind::Write];
/// Algorithm 1's primitive set: the k-multiplicative machines (and the
/// sketches built on them) also use `test&set`.
const RWT: &[AccessKind] = &[AccessKind::Read, AccessKind::Write, AccessKind::TestAndSet];

/// A one-primitive closure op in proper poll-contract form: prime on the
/// first poll, apply on the first granted one. (`ImmediateOp` completes
/// during priming and so may not touch shared memory.)
struct OneShot<F: FnMut(&smr::ProcCtx) -> u128> {
    primed: bool,
    f: F,
}

impl<F: FnMut(&smr::ProcCtx) -> u128> OneShot<F> {
    fn new(f: F) -> Self {
        OneShot { primed: false, f }
    }
}

impl<F: FnMut(&smr::ProcCtx) -> u128 + Send> OpTask for OneShot<F> {
    fn poll(&mut self, ctx: &smr::ProcCtx) -> smr::Poll<u128> {
        if !self.primed {
            self.primed = true;
            return smr::Poll::Pending;
        }
        smr::Poll::Ready((self.f)(ctx))
    }
}

#[test]
fn collect_counter_machines_match_their_specs() {
    let n = 3;
    let c = Arc::new(CollectCounter::new(n));
    let kinds = observed_kinds(n, "collect-inc", CollectIncTask::new(c.clone()));
    assert_eq!(
        kinds,
        vec![AccessKind::Read, AccessKind::Write],
        "collect inc is read-own-then-write-own"
    );
    let kinds = observed_kinds(n, "collect-read", CollectReadTask::new(c));
    assert_eq!(
        kinds,
        vec![AccessKind::Read; n],
        "collect read scans one register per process"
    );
}

#[test]
fn snapshot_counter_machines_match_their_specs() {
    let n = 3;
    let c = Arc::new(SnapshotCounter::new(n));
    let kinds = observed_kinds(n, "snapshot-inc", SnapshotIncTask::new(c.clone()));
    assert_mutates("snapshot-inc", &kinds, RW);
    let kinds = observed_kinds(n, "snapshot-read", SnapshotReadTask::new(c));
    assert_read_only("snapshot-read", &kinds, n);
}

#[test]
fn aach_counter_machines_match_their_specs() {
    let n = 4;
    let c = Arc::new(AachCounter::new(n, 64));
    let kinds = observed_kinds(n, "aach-inc", AachIncTask::new(c.clone(), 0));
    assert_mutates("aach-inc", &kinds, RW);
    let kinds = observed_kinds(n, "aach-read", AachReadTask::new(c));
    assert_read_only("aach-read", &kinds, 1);
}

#[test]
fn unbounded_tree_counter_machines_match_their_specs() {
    let n = 4;
    let c = Arc::new(UnboundedTreeCounter::new(n));
    let kinds = observed_kinds(n, "utree-inc", UnboundedTreeIncTask::new(c.clone(), 0));
    assert_mutates("utree-inc", &kinds, RW);
    let kinds = observed_kinds(n, "utree-read", UnboundedTreeReadTask::new(c));
    assert_read_only("utree-read", &kinds, 1);
}

#[test]
fn lock_oracles_apply_no_primitives() {
    let oracle = Arc::new(LockCounter::new());
    let kinds = observed_kinds(1, "lock-inc", lock_inc_task(oracle.clone()));
    assert!(kinds.is_empty(), "lock inc applied {kinds:?}");
    let kinds = observed_kinds(1, "lock-read", lock_read_task(oracle));
    assert!(kinds.is_empty(), "lock read applied {kinds:?}");

    let oracle = Arc::new(maxreg::LockMaxRegister::new());
    let kinds = observed_kinds(
        1,
        "lock-maxw",
        maxreg::tasks::lock_write_task(oracle.clone(), 7),
    );
    assert!(kinds.is_empty(), "lock max write applied {kinds:?}");
    let kinds = observed_kinds(1, "lock-maxr", maxreg::tasks::lock_read_task(oracle));
    assert!(kinds.is_empty(), "lock max read applied {kinds:?}");
}

#[test]
fn faa_baseline_closure_forms_match_their_specs() {
    // The fetch&add baseline has no task type; its closure forms declare
    // FetchAdd for updates and Read for reads.
    let c = Arc::new(FaaCounter::new());
    let rt = Runtime::coop(1);
    rt.attach_analysis(Analyzer::standard());
    rt.enable_tracing();
    let mut d = Driver::coop(rt.clone());
    let inc = c.clone();
    d.submit_task(
        0,
        OpSpec::inc(),
        OneShot::new(move |ctx| {
            inc.increment(ctx);
            0
        }),
    );
    let rd = c;
    d.submit_task(0, OpSpec::read(), OneShot::new(move |ctx| rd.read(ctx)));
    d.run_solo(0);
    let kinds: Vec<AccessKind> = smr::accesses(&rt.take_trace())
        .into_iter()
        .map(|a| a.kind)
        .collect();
    drop(d);
    assert!(rt.analysis().unwrap().finish().is_empty());
    assert_eq!(kinds, vec![AccessKind::FetchAdd, AccessKind::Read]);
}

#[test]
fn maxreg_machines_match_their_specs() {
    let reg = Arc::new(maxreg::TreeMaxRegister::new(1 << 10));
    let kinds = observed_kinds(
        2,
        "tree-write",
        maxreg::TreeMaxWriteTask::new(reg.clone(), 700),
    );
    assert_mutates("tree-write", &kinds, RW);
    let kinds = observed_kinds(2, "tree-read", maxreg::TreeMaxReadTask::new(reg));
    assert_read_only("tree-read", &kinds, 1);

    // Both arms of the adaptive register: tree (small m) and collect
    // (large m).
    for (n, m, v) in [(8usize, 512u64, 300u64), (2, 1 << 50, 1 << 40)] {
        let reg = Arc::new(maxreg::AdaptiveMaxRegister::new(n, m));
        let kinds = observed_kinds(
            n,
            "adaptive-write",
            maxreg::AdaptiveMaxWriteTask::new(reg.clone(), v),
        );
        assert_mutates("adaptive-write", &kinds, RW);
        let kinds = observed_kinds(n, "adaptive-read", maxreg::AdaptiveMaxReadTask::new(reg));
        assert_read_only("adaptive-read", &kinds, 1);
    }

    let reg = Arc::new(maxreg::UnboundedMaxRegister::new());
    let kinds = observed_kinds(
        2,
        "unbounded-write",
        maxreg::UnboundedMaxWriteTask::new(reg.clone(), 9000),
    );
    assert_mutates("unbounded-write", &kinds, RW);
    let kinds = observed_kinds(2, "unbounded-read", maxreg::UnboundedMaxReadTask::new(reg));
    assert_read_only("unbounded-read", &kinds, 1);
}

#[test]
fn kmult_counter_machines_match_their_specs() {
    let n = 3;
    let c = approx_objects::KmultCounter::new(n, 3);
    let h: approx_objects::SharedKmultHandle = Arc::new(Mutex::new(c.handle(0)));
    let kinds = observed_kinds(n, "kmult-inc", approx_objects::KmultIncTask::new(h.clone()));
    assert_mutates("kmult-inc", &kinds, RWT);
    let kinds = observed_kinds(n, "kmult-read", approx_objects::KmultReadTask::new(h));
    assert_read_only("kmult-read", &kinds, 1);
}

#[test]
fn kadd_counter_machines_match_their_specs() {
    let n = 3;
    // k = 1: every increment flushes through to shared memory (larger k
    // buffers the first k − 1 increments locally — zero primitives).
    let c = approx_objects::KaddCounter::new(n, 1);
    let h: approx_objects::SharedKaddHandle = Arc::new(Mutex::new(c.handle(0)));
    let kinds = observed_kinds(n, "kadd-inc", approx_objects::KaddIncTask::new(h));
    assert_mutates("kadd-inc", &kinds, RW);
    let kinds = observed_kinds(n, "kadd-read", approx_objects::KaddReadTask::new(c));
    assert_read_only("kadd-read", &kinds, 1);
}

#[test]
fn kmult_maxreg_machines_match_their_specs() {
    let reg = Arc::new(approx_objects::KmultBoundedMaxRegister::new(3, 1 << 20, 2));
    let kinds = observed_kinds(
        3,
        "kmax-write",
        approx_objects::KmultMaxWriteTask::new(reg.clone(), 5000),
    );
    assert_mutates("kmax-write", &kinds, RW);
    let kinds = observed_kinds(3, "kmax-read", approx_objects::KmultMaxReadTask::new(reg));
    assert_read_only("kmax-read", &kinds, 1);
}

#[test]
fn sketch_topk_machines_match_their_specs() {
    use sketch::{SharedTopKHandle, TopKConfig, TopKSketch};
    let cfg = TopKConfig {
        n: 3,
        keys: 8,
        shards: 4,
        ..TopKConfig::default()
    };

    // Batch 1: every add flushes through to shared memory.
    let sk = TopKSketch::new(cfg);
    let h: SharedTopKHandle = Arc::new(Mutex::new(sk.handle(0, 1)));
    let kinds = observed_kinds(3, "topk-add", sketch::TopKAddTask::new(h.clone(), 2, 1));
    assert_mutates("topk-add", &kinds, RWT);
    let kinds = observed_kinds(3, "topk-read", sketch::TopKReadTask::new(h, 3));
    assert_read_only("topk-read", &kinds, 1);

    // Large batch: adds buffer locally; the explicit flush publishes.
    let sk = TopKSketch::new(cfg);
    let h: SharedTopKHandle = Arc::new(Mutex::new(sk.handle(0, 100)));
    {
        let prep = Runtime::free_running(3);
        let ctx = prep.ctx(0);
        let mut h = h.lock();
        for i in 0..5usize {
            h.add(&ctx, i % 8, 1);
        }
    }
    let kinds = observed_kinds(3, "topk-flush", sketch::TopKFlushTask::new(h));
    assert_mutates("topk-flush", &kinds, RWT);
}

#[test]
fn sketch_quantile_machines_match_their_specs() {
    use sketch::{QuantileConfig, QuantileSketch, SharedQuantileHandle};
    let cfg = QuantileConfig {
        n: 3,
        k: 2,
        base: 2,
        max_value: 1 << 10,
    };

    let sk = QuantileSketch::new(cfg);
    let h: SharedQuantileHandle = Arc::new(Mutex::new(sk.handle(0, 1)));
    let kinds = observed_kinds(
        3,
        "quantile-observe",
        sketch::QuantileObserveTask::new(h.clone(), 50, 2),
    );
    assert_mutates("quantile-observe", &kinds, RWT);
    let kinds = observed_kinds(
        3,
        "quantile-value",
        sketch::QuantileValueTask::new(h.clone(), 1, 2),
    );
    assert_read_only("quantile-value", &kinds, 1);
    let kinds = observed_kinds(3, "rank", sketch::RankTask::new(h, 50));
    assert_read_only("rank", &kinds, 1);

    // Buffered observations published by the explicit flush.
    let sk = QuantileSketch::new(cfg);
    let h: SharedQuantileHandle = Arc::new(Mutex::new(sk.handle(0, 100)));
    {
        let prep = Runtime::free_running(3);
        let ctx = prep.ctx(0);
        let mut h = h.lock();
        for (v, times) in [(3u64, 4u64), (80, 2), (700, 1)] {
            h.observe(&ctx, v, times);
        }
    }
    let kinds = observed_kinds(3, "quantile-flush", sketch::QuantileFlushTask::new(h));
    assert_mutates("quantile-flush", &kinds, RWT);
}
