//! Crash-failure tolerance: the model's processes are crash-prone, and
//! wait-freedom means every *surviving* process completes its operations
//! regardless of where others stopped. These tests crash processes at
//! adversarially chosen points (mid-operation, holding "fresh" switches,
//! mid-announcement) and check that survivors stay live **and** that the
//! surviving history remains k-accurate.

use approx_objects::{KmultCounter, KmultCounterHandle};
use counter::{CollectCounter, Counter};
use lincheck::monotone::check_counter;
use lincheck::CounterHistory;
use parking_lot::Mutex;
use smr::sched::SeededRandom;
use smr::{Driver, OpSpec, Runtime, StepOutcome};
use std::sync::Arc;

#[test]
fn survivors_complete_after_mid_increment_crash() {
    let n = 3;
    let k = 4;
    let rt = Runtime::gated(n);
    let counter = KmultCounter::new(n, k);
    let handles: Arc<Vec<Mutex<KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt);

    // Process 0 will crash mid-announcement: run it until it is inside
    // an increment batch that performs primitives (its 1st increment
    // attempts switch_0), take exactly one step of it, then crash it.
    // The batch is submitted with its true multiplicity, so the pending
    // record tells the checker up to 10 units may have landed.
    {
        let handles = Arc::clone(&handles);
        d.submit(0, OpSpec::inc_by(10), move |ctx| {
            let mut h = handles[0].lock();
            for _ in 0..10 {
                h.increment(ctx);
            }
            0
        });
    }
    assert_eq!(
        d.step(0),
        StepOutcome::Stepped,
        "one primitive in, then crash"
    );
    d.crash(0);

    // Survivors run a real workload to completion.
    for pid in 1..n {
        for i in 1..=100u64 {
            let handles = Arc::clone(&handles);
            if i % 10 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| {
                    handles[pid].lock().read(ctx)
                });
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    handles[pid].lock().increment(ctx);
                    0
                });
            }
        }
    }
    let mut sched = SeededRandom::new(1234);
    d.run_schedule(&mut sched);
    assert_eq!(d.completed_of(1), 100, "survivor 1 completed everything");
    assert_eq!(d.completed_of(2), 100, "survivor 2 completed everything");

    // The recorded history must still be k-accurate. The crashed
    // process's partially applied test&set, if any, belongs to an
    // increment the driver surfaces as a pending record (resp = None) —
    // legal to linearize or drop, so the checker's B-window widens to
    // tolerate the extra set switch a survivor's read may have observed.
    let h = CounterHistory::from_records(d.history()).expect("typed counter history");
    check_counter(&h, k).unwrap_or_else(|v| panic!("post-crash history: {v}"));
}

#[test]
fn reader_crash_does_not_block_writers() {
    let n = 2;
    let rt = Runtime::gated(n);
    let counter = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt);

    // Reader starts a read and crashes after one collect step.
    {
        let c = Arc::clone(&counter);
        d.submit(1, OpSpec::read(), move |ctx| c.read(ctx));
    }
    assert_eq!(d.step(1), StepOutcome::Stepped);
    d.crash(1);

    // Writer proceeds unimpeded (wait-freedom is per-process).
    for _ in 0..50 {
        let c = Arc::clone(&counter);
        d.submit(0, OpSpec::inc(), move |ctx| {
            c.increment(ctx);
            0
        });
    }
    d.run_solo(0);
    assert_eq!(d.completed_of(0), 50);
}

#[test]
fn crashed_process_cannot_be_scheduled() {
    let rt = Runtime::gated(2);
    let mut d = Driver::new(rt);
    d.submit(0, OpSpec::custom("noop", 0), |_| 0);
    d.crash(0);
    assert!(d.is_crashed(0));
    assert!(!d.active_pids().contains(&0));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.step(0)));
    assert!(result.is_err(), "stepping a crashed process must panic");
}

#[test]
fn half_the_processes_crash_mid_announcement() {
    // n = 6, crash 3 processes each right after their first primitive;
    // the rest finish and stay accurate (k = n keeps the raw spec valid
    // through the startup window).
    let n = 6;
    let k = 6;
    let rt = Runtime::gated(n);
    let counter = KmultCounter::new(n, k);
    let handles: Arc<Vec<Mutex<KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt);

    for pid in 0..n {
        for i in 1..=60u64 {
            let handles = Arc::clone(&handles);
            if i % 12 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| {
                    handles[pid].lock().read(ctx)
                });
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    handles[pid].lock().increment(ctx);
                    0
                });
            }
        }
    }
    for pid in 0..3 {
        let _ = d.step(pid); // one primitive each …
        d.crash(pid); // … then gone
    }
    let mut sched = SeededRandom::new(777);
    d.run_schedule(&mut sched);
    for pid in 3..n {
        assert_eq!(d.completed_of(pid), 60, "survivor {pid}");
    }
    let h = CounterHistory::from_records(d.history()).expect("typed counter history");
    check_counter(&h, k).unwrap_or_else(|v| panic!("post-crash history: {v}"));
}
