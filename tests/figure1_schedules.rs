//! Figure 1 / Claim III.6 as executable assertions (the test twin of
//! `exp_fig1`): the three switch-state cases a, b.1, b.2 with k = 4,
//! n = 2, checking the `[u_min, u_max]` envelope and the
//! indistinguishability of b.1 / b.2.

use approx_objects::{arith, KmultCounter, KmultReadOutcome};
use smr::Runtime;

const K: u64 = 4;

/// Build a two-process counter state by running increment batches, then
/// read from process 0.
fn run_case(batches: &[(usize, u64)]) -> (u128, KmultReadOutcome, Vec<bool>) {
    let n = 2;
    let rt = Runtime::free_running(n);
    let counter = KmultCounter::new(n, K);
    let mut handles: Vec<_> = (0..n).map(|p| counter.handle(p)).collect();
    let mut true_count: u128 = 0;
    for &(pid, incs) in batches {
        let ctx = rt.ctx(pid);
        for _ in 0..incs {
            handles[pid].increment(&ctx);
            true_count += 1;
        }
    }
    let ctx = rt.ctx(0);
    let outcome = handles[0].read_detailed(&ctx);
    let switches = (0..10).map(|j| counter.peek_switch(j)).collect();
    (true_count, outcome, switches)
}

fn assert_envelope(name: &str, v: u128, o: &KmultReadOutcome, n: usize) {
    let umin = arith::u_min(o.p, o.q, K);
    let umax = arith::u_max(o.p, o.q, K, n);
    assert!(
        umin <= v && v <= umax,
        "{name}: true count {v} outside [{umin}, {umax}] for (p,q)=({},{})",
        o.p,
        o.q
    );
    assert_eq!(
        o.value,
        u128::from(K) * umin,
        "{name}: ReturnValue must equal k·u_min"
    );
}

#[test]
fn case_a_interval_full() {
    // One process announces k times in interval 1: switches 1..=4 all set;
    // the read advances into interval 2 and finds its first switch unset.
    let (v, o, switches) = run_case(&[(0, 1), (0, K * K)]);
    assert_eq!(
        switches[..6],
        [true, true, true, true, true, false],
        "switch prefix 11111 expected"
    );
    assert_eq!(
        (o.p, o.q),
        (0, 1),
        "read lands on (p=0, q=1) — Figure 1 case a"
    );
    assert_eq!(v, 17);
    assert_envelope("case a", v, &o, 2);
}

#[test]
fn case_b2_only_first_switch() {
    let (v, o, switches) = run_case(&[(0, 1), (0, K)]);
    assert_eq!(
        switches[..3],
        [true, true, false],
        "switch prefix 11 expected"
    );
    assert_eq!(
        (o.p, o.q),
        (1, 0),
        "read lands on (p=1, q=0) — Figure 1 case b.2"
    );
    assert_eq!(v, 1 + u128::from(K));
    assert_envelope("case b.2", v, &o, 2);
}

#[test]
fn case_b1_middle_switch_also_set() {
    // Second process loses switch_0, then its announcement skips the set
    // switch_1 and wins switch_2 — a set middle switch the reader skips.
    let (v, o, switches) = run_case(&[(0, 1), (0, K), (1, 1 + K)]);
    assert_eq!(
        switches[..4],
        [true, true, true, false],
        "switch prefix 111 expected"
    );
    assert_eq!((o.p, o.q), (1, 0), "same observation as case b.2");
    assert_eq!(v, 2 * (1 + u128::from(K)));
    assert_envelope("case b.1", v, &o, 2);
}

#[test]
fn b1_and_b2_are_indistinguishable_to_the_reader() {
    let (_, o_b2, _) = run_case(&[(0, 1), (0, K)]);
    let (_, o_b1, _) = run_case(&[(0, 1), (0, K), (1, 1 + K)]);
    assert_eq!(
        o_b1.value, o_b2.value,
        "same return value from different states"
    );
    assert_eq!((o_b1.p, o_b1.q), (o_b2.p, o_b2.q));
    // …which is exactly why u_max charges for the possibly-set middles:
    // both true counts (5 and 10) sit inside the same envelope.
    let umin = arith::u_min(1, 0, K);
    let umax = arith::u_max(1, 0, K, 2);
    assert!(umin <= 5 && 5 <= umax);
    assert!(umin <= 10 && 10 <= umax);
}

#[test]
fn reader_skips_middle_switches() {
    // The read touches only the first and last switch of each interval:
    // after case b.1's setup its cost is bounded accordingly.
    let n = 2;
    let rt = Runtime::free_running(n);
    let counter = KmultCounter::new(n, K);
    let mut h0 = counter.handle(0);
    let ctx = rt.ctx(0);
    for _ in 0..(1 + K + K * K) {
        h0.increment(&ctx);
    }
    let steps_before = ctx.steps_taken();
    let _ = h0.read(&ctx);
    let read_steps = ctx.steps_taken() - steps_before;
    // Cursor visits switch_0, switch_1, switch_4, switch_5 … ≤ 2 per
    // interval + helping scans (n per n iterations).
    assert!(read_steps <= 10, "read took {read_steps} steps");
}
