//! Wait-freedom of `CounterRead` under adversarial scheduling
//! (Lemma III.1): a reader starved by concurrent incrementers must
//! terminate through the helping mechanism (paper lines 45–55), and the
//! helped value is still correctly linearizable (Lemma III.3).

use approx_objects::{KmultCounter, KmultCounterHandle};
use parking_lot::Mutex;
use smr::{Driver, OpKind, OpSpec, Runtime, StepOutcome};
use std::sync::Arc;

/// The precise Lemma III.3 scenario: the reader takes its helping
/// snapshot (c = n, paper lines 46–48), is then suspended while a fresh
/// writer announces **two** switches entirely within the read's window,
/// and on resumption the c = 2n scan observes `sn − snapshot ≥ 2` and
/// returns via the helping branch (lines 50–55).
///
/// The schedule is fully deterministic under the gate: with k = 2 and
/// n = 3, the reader's first 6 steps are 3 switch reads (reaching c = 3)
/// plus the 3-read snapshot scan; it parks exactly before its 7th
/// primitive.
#[test]
fn starved_reader_completes_via_helping() {
    let n = 3; // pid 0 = prefix writer, pid 1 = perturbing writer, pid 2 = reader
    let k = 2;
    let rt = Runtime::gated(n);
    let counter = KmultCounter::new(n, k);
    let handles: Arc<Vec<Mutex<KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt);

    // Phase 1: writer 0 sets a long switch prefix (100 increments set
    // switches 0..=9 for k = 2), so the reader's cursor has material.
    {
        let handles = Arc::clone(&handles);
        d.submit(0, OpSpec::inc_by(100), move |ctx| {
            let mut h = handles[0].lock();
            for _ in 0..100 {
                h.increment(ctx);
            }
            0
        });
    }
    d.run_solo(0);

    // Phase 2: the reader takes exactly 6 steps — c = 1, 2, 3 switch
    // reads, then the 3-step helping snapshot of H[0..3] — and parks.
    {
        let handles = Arc::clone(&handles);
        d.submit(2, OpSpec::read(), move |ctx| {
            let outcome = handles[2].lock().read_detailed(ctx);
            u128::from(outcome.helped) << 120 | outcome.value
        });
    }
    for i in 0..6 {
        assert_eq!(d.step(2), StepOutcome::Stepped, "reader step {i}");
    }

    // Phase 3: writer 1 floods. Its announcements trail the frontier
    // (every attempt hits already-set switches first) but it eventually
    // wins two fresh switches, pushing H[1].sn ≥ 2 — both entirely
    // inside the reader's window.
    {
        let handles = Arc::clone(&handles);
        d.submit(1, OpSpec::inc_by(100_000), move |ctx| {
            let mut h = handles[1].lock();
            for _ in 0..100_000u32 {
                h.increment(ctx);
            }
            0
        });
    }
    d.run_solo(1);

    // Phase 4: resume the reader; by its c = 2n scan it must observe the
    // sn growth and return through the helping branch.
    d.run_solo(2);

    let rec = d
        .history()
        .ops()
        .iter()
        .find(|r| matches!(r.kind, OpKind::Read { .. }))
        .expect("read recorded")
        .clone();
    let helped = rec.returned() >> 120 != 0;
    let value = rec.returned() & ((1u128 << 120) - 1);
    assert!(
        helped,
        "the reader must have returned via the helping branch"
    );
    assert!(value > 0);
    // Lemma III.3: the helped value corresponds to a switch set during
    // the read — so it is a current value, bounded by k × all increments.
    let max_possible = u128::from(100u32 + 100_000) * u128::from(k);
    assert!(
        value <= max_possible,
        "helped value {value} exceeds {max_possible}"
    );
}

/// A reader suspended mid-read resumes correctly when rescheduled much
/// later (persistent cursor across arbitrary pauses).
#[test]
fn suspended_reader_resumes_consistently() {
    let n = 2;
    let k = 2;
    let rt = Runtime::gated(n);
    let counter = KmultCounter::new(n, k);
    let handles: Arc<Vec<Mutex<KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt);

    for _ in 0..200u64 {
        let handles = Arc::clone(&handles);
        d.submit(0, OpSpec::inc(), move |ctx| {
            handles[0].lock().increment(ctx);
            0
        });
    }
    {
        let handles = Arc::clone(&handles);
        d.submit(1, OpSpec::read(), move |ctx| handles[1].lock().read(ctx));
    }

    // Reader takes 2 steps, then the writer floods, then reader finishes.
    let _ = d.step(1);
    let _ = d.step(1);
    d.run_solo(0);
    d.run_solo(1);

    let read_val = d
        .history()
        .ops()
        .iter()
        .find(|r| matches!(r.kind, OpKind::Read { .. }))
        .expect("read recorded")
        .returned();
    // 200 increments completed before the read finished; the read ran
    // concurrently with all of them: any value in [0, 200·k] is sound,
    // and it must not exceed k × total.
    assert!(read_val <= 400, "read {read_val} out of range");
}

/// Wait-freedom of increments: every increment completes within a
/// bounded number of its own steps (at most k switch probes + H write).
#[test]
fn increment_steps_are_bounded() {
    let n = 4;
    let k = 3;
    let rt = Runtime::free_running(n);
    let counter = KmultCounter::new(n, k);
    let ctx = rt.ctx(0);
    let mut h = counter.handle(0);
    let mut worst = 0u64;
    for _ in 0..20_000 {
        let s0 = ctx.steps_taken();
        h.increment(&ctx);
        worst = worst.max(ctx.steps_taken() - s0);
    }
    assert!(
        worst <= k + 1,
        "an increment performed {worst} steps; bound is k probes + 1 help write"
    );
}
