//! Observability must not perturb the explored behavior: the explorer's
//! instrumentation (node/replay/backtrack counters, depth histogram) is
//! counters-only, and this suite pins that contract operationally —
//! the same program explored with metrics disabled and enabled reaches
//! the **bit-identical** set of history cuts, with identical walk
//! statistics. If an instrumentation site ever grows control flow (or
//! perturbs ticket draws, scheduling, or the DPOR race analysis), the
//! digest sets diverge and this test names the regression.
//!
//! The same discipline is checked on the coop backend's hot path: a
//! gated round-robin run must grant the same step count either way,
//! while the enabled run's poll counter actually moves.

use counter::{CollectCounter, CollectIncTask, CollectReadTask};
use parking_lot::Mutex;
use smr::explore::{explore, ExploreConfig, ExploreStats};
use smr::sched::RoundRobin;
use smr::{CoopBackend, Driver, OpSpec, Runtime};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Serializes the tests in this file: both toggle the process-global
/// enabled flag, and the harness runs tests concurrently.
static FLAG: Mutex<()> = Mutex::new(());

/// 3 processes on a collect counter: 2 increments each for two of
/// them, an increment + read for the third. Schedule-dependent step
/// counts, crash injection on — a walk with real branching.
fn program() -> Driver<CoopBackend> {
    let mut d = Driver::coop(Runtime::coop(3));
    let c = Arc::new(CollectCounter::new(3));
    for pid in 0..3 {
        d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(c.clone()));
        if pid == 2 {
            d.submit_task(pid, OpSpec::read(), CollectReadTask::new(c.clone()));
        } else {
            d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(c.clone()));
        }
    }
    d
}

/// Every history cut the DPOR walk reaches, as replay-stable digests,
/// plus the walk statistics.
fn dpor_digests(cfg: &ExploreConfig) -> (BTreeSet<String>, ExploreStats) {
    let mut digests = BTreeSet::new();
    let stats = explore(cfg, program, |h| {
        digests.insert(format!("{:?}", h.ops()));
        Ok(())
    });
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
    assert!(!stats.capped);
    (digests, stats)
}

#[test]
fn dpor_walk_is_identical_with_metrics_on_and_off() {
    let _g = FLAG.lock();
    let cfg = ExploreConfig {
        max_crashes: 1,
        ..ExploreConfig::default()
    };

    obs::set_enabled(false);
    let (digests_off, stats_off) = dpor_digests(&cfg);

    obs::set_enabled(true);
    let (digests_on, stats_on) = dpor_digests(&cfg);
    obs::set_enabled(false);

    assert!(
        stats_off.interleavings > 1,
        "the parity program must actually branch"
    );
    assert_eq!(
        stats_off, stats_on,
        "walk statistics diverged between metrics-off and metrics-on"
    );
    assert_eq!(
        digests_off, digests_on,
        "the DPOR history-digest set changed when metrics were enabled — \
         instrumentation perturbed the walk"
    );
}

#[test]
fn gated_coop_grants_the_same_steps_with_metrics_on_and_off() {
    let _g = FLAG.lock();
    let run = || {
        let mut d = program();
        d.run_schedule(&mut RoundRobin::new())
    };

    obs::set_enabled(false);
    let steps_off = run();

    let polls_before = obs::counter(obs::names::SUB_COOP, obs::names::COOP_POLLS).get();
    obs::set_enabled(true);
    let steps_on = run();
    obs::set_enabled(false);
    let polls_after = obs::counter(obs::names::SUB_COOP, obs::names::COOP_POLLS).get();

    assert!(steps_off > 0);
    assert_eq!(
        steps_off, steps_on,
        "granted step count changed when metrics were enabled"
    );
    assert!(
        polls_after > polls_before,
        "the enabled run recorded no coop polls — the hot path lost its \
         instrumentation"
    );
}
