//! End-to-end streaming linearizability checking: the
//! [`lincheck::LinearizabilityPass`] attached to a live driver run,
//! and the explorer surfacing (and minimizing) a racy counter that the
//! pass refutes inline — no `history_snapshot()` anywhere.

use counter::{CollectCounter, CollectIncTask, CollectReadTask};
use lincheck::LinearizabilityPass;
use smr::analysis::Analyzer;
use smr::explore::{explore, ExploreConfig};
use smr::sched::{RoundRobin, SeededRandom};
use smr::{Driver, OpSpec, OpTask, Poll, ProcCtx, Register, Runtime};
use std::sync::Arc;

fn lin_analyzer(k: u64) -> Arc<Analyzer> {
    Analyzer::new(vec![Box::new(LinearizabilityPass::counter(k))])
}

#[test]
fn pass_runs_clean_on_a_correct_coop_counter_workload() {
    let n = 4;
    let rt = Runtime::coop(n);
    rt.attach_analysis(lin_analyzer(1));
    let mut d = Driver::coop(rt.clone());
    let counter = Arc::new(CollectCounter::new(n));
    for pid in 0..n {
        for i in 0..6u64 {
            if i % 3 == 2 {
                d.submit_task(pid, OpSpec::read(), CollectReadTask::new(counter.clone()));
            } else {
                d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(counter.clone()));
            }
        }
    }
    d.run_schedule(&mut SeededRandom::new(42));
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    assert!(
        violations.is_empty(),
        "correct counter flagged: {violations:?}"
    );
}

#[test]
fn pass_runs_clean_under_a_mid_operation_crash() {
    let n = 3;
    let rt = Runtime::coop(n);
    rt.attach_analysis(lin_analyzer(1));
    let mut d = Driver::coop(rt.clone());
    let counter = Arc::new(CollectCounter::new(n));
    for pid in 0..n {
        d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(counter.clone()));
        d.submit_task(pid, OpSpec::read(), CollectReadTask::new(counter.clone()));
    }
    let _ = d.step(1); // pid 1 parks mid-increment…
    d.crash(1); // …and dies: the open window must close without a report
    d.run_schedule(&mut RoundRobin::new());
    drop(d);
    let violations = rt.analysis().unwrap().finish();
    assert!(violations.is_empty(), "crash run flagged: {violations:?}");
}

/// The racy mutant from `tests/explore.rs`: increments read-modify-write
/// one shared register, so interleaved increments lose updates.
struct SharedCellInc {
    cell: Arc<Register>,
    read: Option<u64>,
    primed: bool,
}

impl OpTask for SharedCellInc {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        match self.read {
            None => {
                self.read = Some(self.cell.read(ctx));
                Poll::Pending
            }
            Some(v) => {
                self.cell.write(ctx, v + 1);
                Poll::Ready(0)
            }
        }
    }
}

struct SharedCellRead {
    cell: Arc<Register>,
    primed: bool,
}

impl OpTask for SharedCellRead {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        Poll::Ready(u128::from(self.cell.read(ctx)))
    }
}

#[test]
fn explorer_catches_the_lost_update_through_the_pass_alone() {
    // Same racy workload the offline explorer test refutes with an
    // end-of-run `check_counter_records` — here the *final check is a
    // no-op* and the streaming pass must catch it by itself, surfaced
    // and ddmin-minimized like any other analysis finding.
    let factory = || {
        let rt = Runtime::coop(3);
        rt.attach_analysis(lin_analyzer(1));
        let mut d = Driver::coop(rt);
        let cell = Arc::new(Register::new(0));
        for pid in 0..2 {
            d.submit_task(
                pid,
                OpSpec::inc(),
                SharedCellInc {
                    cell: cell.clone(),
                    read: None,
                    primed: false,
                },
            );
        }
        for _ in 0..2 {
            d.submit_task(
                2,
                OpSpec::read(),
                SharedCellRead {
                    cell: cell.clone(),
                    primed: false,
                },
            );
        }
        d
    };
    let stats = explore(&ExploreConfig::default(), factory, |_h| Ok(()));
    assert!(
        !stats.violations.is_empty(),
        "the lost update must be caught inline"
    );
    let v = &stats.violations[0];
    assert!(
        v.message.contains("[linearizability]"),
        "the finding carries the pass name: {}",
        v.message
    );
    assert!(v.minimized.len() <= v.original.len());
    assert!(v.minimized.steps() >= 1, "a replayable minimized schedule");
}

#[test]
fn explorer_stays_quiet_on_the_honest_counter_with_the_pass_attached() {
    // Control: exhaustive exploration of the correct collect counter
    // with the streaming pass attached finds nothing anywhere.
    let factory = || {
        let rt = Runtime::coop(2);
        rt.attach_analysis(lin_analyzer(1));
        let mut d = Driver::coop(rt);
        let counter = Arc::new(CollectCounter::new(2));
        d.submit_task(0, OpSpec::inc(), CollectIncTask::new(counter.clone()));
        d.submit_task(1, OpSpec::read(), CollectReadTask::new(counter.clone()));
        d
    };
    let stats = explore(&ExploreConfig::exhaustive(100), factory, |_h| Ok(()));
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
    assert!(stats.interleavings > 1);
}
