//! `smr::explore` against the real objects: the schedule-quantified
//! linearizability claims, checked exhaustively for small
//! configurations.
//!
//! Three kinds of evidence, per the harness's design:
//!
//! * **Counting** — for programs whose per-process step counts are
//!   schedule-independent, the number of enumerated interleavings must
//!   equal the multinomial closed form `(Σsᵢ)!/Πsᵢ!`; this pins the
//!   enumerator itself (no duplicate, no missed branch).
//! * **Verification** — every enumerated cut of a real object's history
//!   (including crash cuts and step-bound suspensions) passes the
//!   `lincheck` monotone checkers. A passing run is a *proof* of the
//!   property for that configuration, not a sample.
//! * **Refutation** — a deliberately broken object (the collect
//!   counter's single-writer-cell discipline dropped, so all processes
//!   read-modify-write one shared cell) must be caught, and the failing
//!   schedule minimized to its essential interleaving.

use approx_objects::{KaddCounter, KaddIncTask, KaddReadTask, SharedKaddHandle};
use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};
use bench::multinomial;
use counter::{CollectCounter, CollectIncTask, CollectReadTask};
use lincheck::{check_counter_records, check_maxreg_records};
use parking_lot::Mutex;
use smr::explore::{explore, explore_parallel, Choice, ExploreAlgo, ExploreConfig};
use smr::{CoopBackend, Driver, OpSpec, OpTask, Poll, ProcCtx, Register, Runtime};
use std::collections::BTreeSet;
use std::sync::Arc;

#[test]
fn kmult_3x2_interleavings_match_the_multinomial_closed_form() {
    // The acceptance configuration: 3 processes, 2 operations each, on
    // Algorithm 1 with k = 3. The first increment announces via
    // `switch_0` (exactly one test&set, win or lose); the second stays
    // below its announcement threshold (zero primitives, completing on
    // the priming poll). Per-process step counts are therefore
    // schedule-independent — 1 each — and the exhaustive enumeration
    // must visit exactly 3!/(1!·1!·1!) = 6 interleavings.
    let k = 3;
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = KmultCounter::new(3, k);
        for pid in 0..3 {
            let h: SharedKmultHandle = Arc::new(Mutex::new(c.handle(pid)));
            for _ in 0..2 {
                d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(h.clone()));
            }
        }
        d
    };
    let stats = explore(&ExploreConfig::exhaustive(100), factory, |h| {
        check_counter_records(h, k)
    });
    assert_eq!(u128::from(stats.interleavings), multinomial(&[1, 1, 1]));
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
    assert!(!stats.capped);
}

#[test]
fn kmult_with_reads_has_no_violating_schedule() {
    // Mixed increments and reads of Algorithm 1 at k = 2: read costs
    // are schedule-dependent (the cursor chases announced switches), so
    // no closed form — but every interleaving, including step-bound
    // suspension cuts, must satisfy the k-multiplicative counter spec.
    let k = 2;
    let factory = move || {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = KmultCounter::new(3, k);
        let hs: Vec<SharedKmultHandle> =
            (0..3).map(|p| Arc::new(Mutex::new(c.handle(p)))).collect();
        d.submit_task(0, OpSpec::inc(), KmultIncTask::new(hs[0].clone()));
        d.submit_task(0, OpSpec::inc(), KmultIncTask::new(hs[0].clone()));
        d.submit_task(1, OpSpec::inc(), KmultIncTask::new(hs[1].clone()));
        d.submit_task(1, OpSpec::read(), KmultReadTask::new(hs[1].clone()));
        d.submit_task(2, OpSpec::read(), KmultReadTask::new(hs[2].clone()));
        d.submit_task(2, OpSpec::inc(), KmultIncTask::new(hs[2].clone()));
        d
    };
    let stats = explore(&ExploreConfig::default(), factory, |h| {
        check_counter_records(h, k)
    });
    assert!(stats.interleavings > 0);
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
}

#[test]
fn collect_counter_with_reader_is_exact_on_every_schedule() {
    // 2 incrementers (2 primitives each: read + write of the own cell)
    // and 1 reader (3 cell reads): multinomial(7; 2,2,3) interleavings,
    // every one exact (k = 1).
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = Arc::new(CollectCounter::new(3));
        d.submit_task(0, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(1, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(2, OpSpec::read(), CollectReadTask::new(c.clone()));
        d
    };
    let stats = explore(&ExploreConfig::exhaustive(100), factory, |h| {
        check_counter_records(h, 1)
    });
    assert_eq!(u128::from(stats.interleavings), multinomial(&[2, 2, 3]));
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);

    // Pruning must cut work without changing the verdict.
    let pruned = explore(&ExploreConfig::default(), factory, |h| {
        check_counter_records(h, 1)
    });
    assert!(pruned.interleavings < stats.interleavings);
    assert!(pruned.pruned > 0);
    assert!(pruned.all_ok());
}

#[test]
fn kadd_counter_is_additively_accurate_on_every_schedule() {
    // The k-additive counter has no linearizability claim of its own
    // here; what is schedule-quantified is the accuracy envelope: a
    // read's collect-sum never exceeds the submitted increments, and a
    // completed read that every publish precedes sees everything
    // published. We check the cheap invariant on every cut: sum ≤
    // submitted increments (the counter never overcounts).
    let n = 3;
    let k = 2; // threshold ⌊k/n⌋+1 = 1: every increment publishes
    let factory = move || {
        let mut d = Driver::coop(Runtime::coop(n));
        let c = KaddCounter::new(n, k);
        for pid in 0..n {
            let h: SharedKaddHandle = Arc::new(Mutex::new(c.handle(pid)));
            d.submit_task(pid, OpSpec::inc(), KaddIncTask::new(h.clone()));
        }
        d.submit_task(0, OpSpec::read(), KaddReadTask::new(c));
        d
    };
    let stats = explore(&ExploreConfig::exhaustive(100), factory, |h| {
        for r in h.ops() {
            if let smr::OpKind::Read { returned } = r.kind {
                if r.resp.is_some() && returned > 3 {
                    return Err(format!("collect-sum {returned} exceeds 3 increments"));
                }
            }
        }
        Ok(())
    });
    // Each publish is one write; the read is 3 cell reads; pid 0 runs
    // inc (1 step) then read (3 steps).
    assert_eq!(u128::from(stats.interleavings), multinomial(&[4, 1, 1]));
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
}

#[test]
fn tree_maxreg_is_linearizable_on_every_schedule() {
    use maxreg::{TreeMaxReadTask, TreeMaxRegister, TreeMaxWriteTask};
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let r = Arc::new(TreeMaxRegister::new(8));
        d.submit_task(0, OpSpec::write(5), TreeMaxWriteTask::new(r.clone(), 5));
        d.submit_task(1, OpSpec::write(3), TreeMaxWriteTask::new(r.clone(), 3));
        d.submit_task(2, OpSpec::read(), TreeMaxReadTask::new(r.clone()));
        d.submit_task(2, OpSpec::read(), TreeMaxReadTask::new(r.clone()));
        d
    };
    let stats = explore(&ExploreConfig::default(), factory, |h| {
        check_maxreg_records(h, 1)
    });
    assert!(stats.interleavings > 0);
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
}

/// The seeded mutant: a "counter" whose increments all read-modify-write
/// one shared register — the collect counter with its single-writer-cell
/// discipline deliberately dropped. Interleaved increments lose updates.
struct SharedCellInc {
    cell: Arc<Register>,
    read: Option<u64>,
    primed: bool,
}

impl SharedCellInc {
    fn new(cell: Arc<Register>) -> Self {
        SharedCellInc {
            cell,
            read: None,
            primed: false,
        }
    }
}

impl OpTask for SharedCellInc {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        match self.read {
            None => {
                self.read = Some(self.cell.read(ctx));
                Poll::Pending
            }
            Some(v) => {
                self.cell.write(ctx, v + 1);
                Poll::Ready(0)
            }
        }
    }
}

/// One read of the mutant's shared cell.
struct SharedCellRead {
    cell: Arc<Register>,
    primed: bool,
}

impl OpTask for SharedCellRead {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        Poll::Ready(u128::from(self.cell.read(ctx)))
    }
}

#[test]
fn explorer_refutes_the_seeded_mutant_and_minimizes_the_schedule() {
    // Two increments race the shared cell; the reader queues two reads
    // so the second read's invocation (announced when the first
    // completes) can land after both increments' responses — only then
    // does real-time order force the read to count them.
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let cell = Arc::new(Register::new(0));
        d.submit_task(0, OpSpec::inc(), SharedCellInc::new(cell.clone()));
        d.submit_task(1, OpSpec::inc(), SharedCellInc::new(cell.clone()));
        for _ in 0..2 {
            d.submit_task(
                2,
                OpSpec::read(),
                SharedCellRead {
                    cell: cell.clone(),
                    primed: false,
                },
            );
        }
        d
    };
    let check = |h: &smr::History| check_counter_records(h, 1);

    let stats = explore(&ExploreConfig::default(), factory, check);
    assert_eq!(stats.violations.len(), 1, "the lost update must be caught");
    let v = &stats.violations[0];

    // The minimal failing schedule: both increments interleave (4
    // steps) and both reads complete after them (2 steps) — nothing
    // less violates, so ddmin cannot go below 6 steps.
    assert_eq!(v.minimized.steps(), 6, "minimized to the essential races");
    assert!(v.minimized.len() <= v.original.len());
    assert!(
        v.minimized
            .choices
            .iter()
            .all(|c| matches!(c, Choice::Step(_))),
        "no crashes were injected"
    );

    // The minimized schedule is replayable and still violating.
    assert!(check(&v.minimized.run(factory())).is_err());
    // Crash-free, so it also converts to a Scripted scheduler.
    let script = v.minimized.to_scripted();
    assert!(script.is_some(), "crash-free schedules export as Scripted");

    // And the exact counter checker names the stale read.
    assert!(!v.message.is_empty());
}

#[test]
fn crash_injection_never_double_emits_pending_records() {
    // Collect counter under crash injection: every cut must (a) pass
    // the exact-counter check — a crashed increment's effect is
    // optional — and (b) contain at most one record per operation:
    // unique invocation timestamps, and no (pid, inv) both pending and
    // completed. This extends `history_snapshot`'s coverage to every
    // crash position the explorer reaches.
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = Arc::new(CollectCounter::new(3));
        d.submit_task(0, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(1, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(2, OpSpec::read(), CollectReadTask::new(c.clone()));
        d
    };
    let cfg = ExploreConfig {
        max_crashes: 2,
        ..ExploreConfig::default()
    };
    let mut cuts = 0u64;
    let stats = explore(&cfg, factory, |h| {
        cuts += 1;
        let mut invs: Vec<u64> = h.ops().iter().map(|r| r.inv).collect();
        invs.sort_unstable();
        let before = invs.len();
        invs.dedup();
        if invs.len() != before {
            return Err("duplicate record for one invocation".into());
        }
        for pid in 0..3 {
            let pending = h
                .ops()
                .iter()
                .filter(|r| r.pid == pid && r.resp.is_none())
                .count();
            if pending > 1 {
                return Err(format!("pid {pid}: {pending} pending records"));
            }
        }
        check_counter_records(h, 1)
    });
    assert!(stats.interleavings > 0);
    assert_eq!(stats.interleavings, cuts);
    assert!(stats.all_ok(), "violations: {:?}", stats.violations);
}

/// Every history cut the walk under `cfg` reaches, as replay-stable
/// digests (`OpRecord` carries no addresses, so its debug form compares
/// across fresh replays).
fn digest_set<F>(cfg: &ExploreConfig, factory: F) -> BTreeSet<String>
where
    F: Fn() -> Driver<CoopBackend>,
{
    let mut digests = BTreeSet::new();
    let stats = explore(cfg, &factory, |h: &smr::History| {
        digests.insert(format!("{:?}", h.ops()));
        Ok(())
    });
    assert!(stats.all_ok());
    assert!(!stats.capped);
    digests
}

#[test]
fn reductions_preserve_the_reachable_history_set() {
    // The soundness contract of both reductions, pinned operationally on
    // every real-object program this suite explores: skipping equivalent
    // interleavings must not change the *set* of reachable history cuts
    // — ticket values, step counts and all — including under crash
    // injection. (Counts differ by design; the reachable histories may
    // not.)
    type Program = (&'static str, usize, Box<dyn Fn() -> Driver<CoopBackend>>);
    let programs: Vec<Program> = vec![
        (
            "collect-with-reader",
            0,
            Box::new(|| {
                let mut d = Driver::coop(Runtime::coop(3));
                let c = Arc::new(CollectCounter::new(3));
                d.submit_task(0, OpSpec::inc(), CollectIncTask::new(c.clone()));
                d.submit_task(1, OpSpec::inc(), CollectIncTask::new(c.clone()));
                d.submit_task(2, OpSpec::read(), CollectReadTask::new(c.clone()));
                d
            }),
        ),
        (
            "kmult-mixed",
            0,
            Box::new(|| {
                let mut d = Driver::coop(Runtime::coop(3));
                let c = KmultCounter::new(3, 2);
                let hs: Vec<SharedKmultHandle> =
                    (0..3).map(|p| Arc::new(Mutex::new(c.handle(p)))).collect();
                d.submit_task(0, OpSpec::inc(), KmultIncTask::new(hs[0].clone()));
                d.submit_task(1, OpSpec::inc(), KmultIncTask::new(hs[1].clone()));
                d.submit_task(1, OpSpec::read(), KmultReadTask::new(hs[1].clone()));
                d.submit_task(2, OpSpec::read(), KmultReadTask::new(hs[2].clone()));
                d
            }),
        ),
        (
            "kadd",
            0,
            Box::new(|| {
                let mut d = Driver::coop(Runtime::coop(3));
                let c = KaddCounter::new(3, 2);
                for pid in 0..3 {
                    let h: SharedKaddHandle = Arc::new(Mutex::new(c.handle(pid)));
                    d.submit_task(pid, OpSpec::inc(), KaddIncTask::new(h.clone()));
                }
                d.submit_task(0, OpSpec::read(), KaddReadTask::new(c));
                d
            }),
        ),
        (
            "tree-maxreg",
            0,
            Box::new(|| {
                use maxreg::{TreeMaxReadTask, TreeMaxRegister, TreeMaxWriteTask};
                let mut d = Driver::coop(Runtime::coop(3));
                let r = Arc::new(TreeMaxRegister::new(8));
                d.submit_task(0, OpSpec::write(5), TreeMaxWriteTask::new(r.clone(), 5));
                d.submit_task(1, OpSpec::write(3), TreeMaxWriteTask::new(r.clone(), 3));
                d.submit_task(2, OpSpec::read(), TreeMaxReadTask::new(r.clone()));
                d
            }),
        ),
        (
            "collect-crashes",
            2,
            Box::new(|| {
                let mut d = Driver::coop(Runtime::coop(2));
                let c = Arc::new(CollectCounter::new(2));
                d.submit_task(0, OpSpec::inc(), CollectIncTask::new(c.clone()));
                d.submit_task(1, OpSpec::read(), CollectReadTask::new(c.clone()));
                d
            }),
        ),
    ];
    for (name, crashes, factory) in &programs {
        let exhaustive = digest_set(
            &ExploreConfig {
                max_crashes: *crashes,
                ..ExploreConfig::exhaustive(100)
            },
            factory,
        );
        assert!(!exhaustive.is_empty(), "{name}: no cuts reached");
        for algo in [ExploreAlgo::Dfs, ExploreAlgo::Dpor] {
            let reduced = digest_set(
                &ExploreConfig {
                    max_crashes: *crashes,
                    algo,
                    ..ExploreConfig::default()
                },
                factory,
            );
            assert_eq!(
                reduced, exhaustive,
                "{name}: {algo:?} changed the reachable history set"
            );
        }
    }
}

#[test]
fn dpor_and_exhaustive_minimize_the_mutant_identically() {
    // The refutation path under reduction: DPOR must catch the seeded
    // lost update and ddmin must land on the same essential schedule —
    // same step count, and a minimized replay whose history digest
    // matches the exhaustive walk's.
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let cell = Arc::new(Register::new(0));
        d.submit_task(0, OpSpec::inc(), SharedCellInc::new(cell.clone()));
        d.submit_task(1, OpSpec::inc(), SharedCellInc::new(cell.clone()));
        for _ in 0..2 {
            d.submit_task(
                2,
                OpSpec::read(),
                SharedCellRead {
                    cell: cell.clone(),
                    primed: false,
                },
            );
        }
        d
    };
    let check = |h: &smr::History| check_counter_records(h, 1);
    let minimized_digest = |cfg: &ExploreConfig| -> (usize, String) {
        let stats = explore(cfg, factory, check);
        assert_eq!(stats.violations.len(), 1, "the lost update must be caught");
        let v = &stats.violations[0];
        assert!(check(&v.minimized.run(factory())).is_err());
        (
            v.minimized.steps(),
            format!("{:?}", v.minimized.run(factory()).ops()),
        )
    };
    let exhaustive = minimized_digest(&ExploreConfig::exhaustive(100));
    let dpor = minimized_digest(&ExploreConfig::default());
    assert_eq!(exhaustive.0, 6, "minimized to the essential races");
    assert_eq!(
        dpor, exhaustive,
        "DPOR must minimize to the same essential schedule"
    );
}

#[test]
fn parallel_exploration_is_bit_identical_across_worker_counts() {
    // The determinism contract of `explore_parallel`: the frontier split
    // is fixed (depth, not thread count), tasks never early-stop, and
    // results aggregate in canonical task order — so worker count must
    // be unobservable, down to every stat and violation report. Checked
    // on a passing program and on the violating mutant.
    let collect: fn() -> Driver<CoopBackend> = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = Arc::new(CollectCounter::new(3));
        for pid in 0..3 {
            for _ in 0..2 {
                d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(c.clone()));
            }
        }
        d
    };
    let mutant: fn() -> Driver<CoopBackend> = || {
        let mut d = Driver::coop(Runtime::coop(3));
        let cell = Arc::new(Register::new(0));
        d.submit_task(0, OpSpec::inc(), SharedCellInc::new(cell.clone()));
        d.submit_task(1, OpSpec::inc(), SharedCellInc::new(cell.clone()));
        for _ in 0..2 {
            d.submit_task(
                2,
                OpSpec::read(),
                SharedCellRead {
                    cell: cell.clone(),
                    primed: false,
                },
            );
        }
        d
    };
    let cfg = ExploreConfig::default();
    for (name, factory, expect_violation) in
        [("collect-3x2", collect, false), ("mutant", mutant, true)]
    {
        let check = |h: &smr::History| check_counter_records(h, 1);
        let base = explore_parallel(&cfg, 1, factory, check);
        assert_eq!(
            base.violations.len(),
            usize::from(expect_violation),
            "{name}"
        );
        for threads in [2, 4] {
            let run = explore_parallel(&cfg, threads, factory, check);
            assert_eq!(run, base, "{name}: {threads} workers diverged");
        }
    }
}

#[test]
fn explored_crash_cuts_match_direct_replay() {
    // A crash-bearing schedule reported by the explorer replays to the
    // exact same cut outside the explorer (determinism of `Replay::run`
    // with crashes in the sequence).
    let factory = || {
        let mut d = Driver::coop(Runtime::coop(2));
        let c = Arc::new(CollectCounter::new(2));
        d.submit_task(0, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(1, OpSpec::read(), CollectReadTask::new(c.clone()));
        d
    };
    let replay = smr::Replay {
        choices: vec![
            Choice::Step(0),
            Choice::Crash(0),
            Choice::Step(1),
            Choice::Step(1),
        ],
    };
    let a = replay.run(factory());
    let b = replay.run(factory());
    let norm = |h: &smr::History| -> Vec<(usize, bool, u64)> {
        let mut v: Vec<_> = h
            .ops()
            .iter()
            .map(|r| (r.pid, r.resp.is_some(), r.steps))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(norm(&a), norm(&b));
    // The crashed increment is pending; the read completed.
    assert_eq!(a.pending().len(), 1);
    assert!(
        replay.to_scripted().is_none(),
        "crash schedules have no Scripted form"
    );
}
