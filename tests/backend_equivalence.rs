//! Cross-backend equivalence: the same submissions under the same
//! scripted schedule — including crashes, suspensions and mid-run
//! snapshots — must produce identical executions on the thread backend
//! (`Driver::new`, worker threads parked at the gate) and the coop
//! backend (`Driver::coop`, virtual processes polled on the controller
//! thread).
//!
//! "Identical" means: the same history records (per-pid operation
//! sequences with kinds, completion status and per-op step counts, and
//! the same global completion serialization), the same pending records
//! in crash cuts and `history_snapshot()` cuts, the same per-process
//! step counters, and the same final shared memory. Absolute logical
//! timestamps are *not* compared: the thread backend's workers draw
//! invocation tickets concurrently, so only their order is meaningful.
//!
//! Operations are random straight-line programs over a shared pool of
//! registers and test&set bits, submitted as [`OpTask`]s (the form both
//! backends accept). A separate test pins closure-form vs task-form
//! equivalence on the thread backend, so the chain
//! closure/thread ≡ task/thread ≡ task/coop is closed.
//!
//! The free-running coop mode (`Driver::coop_free`) is pinned against
//! gated coop the same way: with every op submitted in ascending pid
//! order, the unseeded free sweep's poll order *is* the gated
//! round-robin schedule, so the two executions must agree on the final
//! `history_snapshot()`, per-process step counters and shared memory —
//! on both the register programs and a kmult counter workload. Seeded
//! free runs shuffle each batch round but stay replayable: the same
//! seed reproduces the same execution bit for bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smr::backend::ExecBackend;
use smr::{Driver, History, OpSpec, OpTask, Poll, ProcCtx, Register, Runtime, TasBit};
use std::sync::Arc;

/// Shared memory the generated programs operate on.
struct Pool {
    regs: Vec<Register>,
    bits: Vec<TasBit>,
}

impl Pool {
    fn new() -> Self {
        Pool {
            regs: (0..4).map(|_| Register::new(0)).collect(),
            bits: (0..2).map(|_| TasBit::new()).collect(),
        }
    }

    fn fingerprint(&self) -> Vec<u64> {
        self.regs
            .iter()
            .map(|r| r.peek())
            .chain(self.bits.iter().map(|b| u64::from(b.peek())))
            .collect()
    }
}

/// One primitive of a generated program: `(kind, object index, value)`.
type Micro = (u8, usize, u64);

/// A straight-line program over the pool as a resumable task: one
/// micro-op per granted poll, folding read results into `acc`.
struct ProgTask {
    pool: Arc<Pool>,
    prog: Vec<Micro>,
    next: usize,
    acc: u128,
    primed: bool,
}

impl ProgTask {
    fn new(pool: Arc<Pool>, prog: Vec<Micro>) -> Self {
        ProgTask {
            pool,
            prog,
            next: 0,
            acc: 0,
            primed: false,
        }
    }

    fn apply(pool: &Pool, op: Micro, acc: u128, ctx: &ProcCtx) -> u128 {
        let (kind, idx, val) = op;
        match kind {
            0 => acc * 31 + u128::from(pool.regs[idx % pool.regs.len()].read(ctx)),
            1 => {
                // Data-dependent write so interleavings propagate.
                pool.regs[idx % pool.regs.len()].write(ctx, val ^ (acc as u64 & 0x7));
                acc
            }
            _ => acc * 2 + u128::from(pool.bits[idx % pool.bits.len()].test_and_set(ctx)),
        }
    }

    /// The blocking closure form of the same program.
    fn run_blocking(pool: &Pool, prog: &[Micro], ctx: &ProcCtx) -> u128 {
        prog.iter()
            .fold(0, |acc, &op| Self::apply(pool, op, acc, ctx))
    }
}

impl OpTask for ProgTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return if self.prog.is_empty() {
                Poll::Ready(self.acc)
            } else {
                Poll::Pending
            };
        }
        self.acc = Self::apply(&self.pool, self.prog[self.next], self.acc, ctx);
        self.next += 1;
        if self.next == self.prog.len() {
            Poll::Ready(self.acc)
        } else {
            Poll::Pending
        }
    }
}

/// Backend-independent projection of a history: per-pid operation
/// sequences (kinds, completion, step counts) ordered by invocation,
/// plus the global completion order.
#[derive(Debug, PartialEq, Eq)]
struct NormHistory {
    per_pid: Vec<(usize, String, bool, u64)>,
    completion_order: Vec<(usize, String)>,
}

fn normalize(h: &History) -> NormHistory {
    let mut with_inv: Vec<_> = h
        .ops()
        .iter()
        .map(|r| (r.pid, r.inv, format!("{:?}", r.kind), r.resp, r.steps))
        .collect();
    with_inv.sort_by_key(|&(pid, inv, ..)| (pid, inv));
    let per_pid = with_inv
        .iter()
        .map(|(pid, _, kind, resp, steps)| (*pid, kind.clone(), resp.is_some(), *steps))
        .collect();
    let mut completed: Vec<_> = h.ops().iter().filter(|r| r.resp.is_some()).collect();
    completed.sort_by_key(|r| r.resp);
    let completion_order = completed
        .iter()
        .map(|r| (r.pid, format!("{:?}", r.kind)))
        .collect();
    NormHistory {
        per_pid,
        completion_order,
    }
}

/// Everything an execution leaves behind that must match across
/// backends.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    history: NormHistory,
    snapshots: Vec<NormHistory>,
    per_pid_steps: Vec<u64>,
    completed: Vec<u64>,
    memory: Vec<u64>,
}

/// The generated scenario, shared verbatim by both backends.
struct Scenario {
    progs: Vec<Vec<Vec<Micro>>>,
    crashes: Vec<(usize, usize)>,
    snap_at: usize,
    seed: u64,
}

fn drive<B: ExecBackend>(mut d: Driver<B>, pool: &Arc<Pool>, sc: &Scenario) -> Outcome {
    let n = sc.progs.len();
    let mut rng = StdRng::seed_from_u64(sc.seed);
    let mut snapshots = Vec::new();
    let mut it = 0usize;
    loop {
        for &(at, pid) in &sc.crashes {
            let pid = pid % n;
            if at == it && !d.is_crashed(pid) {
                d.crash(pid);
            }
        }
        if sc.snap_at == it {
            snapshots.push(normalize(&d.history_snapshot()));
        }
        let active = d.active_set();
        if active.is_empty() {
            break;
        }
        let pid = active.pick(rng.random_range(0..active.len()));
        let _ = d.step(pid);
        it += 1;
        if it > 100_000 {
            panic!("schedule failed to terminate");
        }
    }
    snapshots.push(normalize(&d.history_snapshot()));
    Outcome {
        history: normalize(d.history()),
        snapshots,
        per_pid_steps: (0..n).map(|p| d.runtime().steps_of(p)).collect(),
        completed: (0..n).map(|p| d.completed_of(p)).collect(),
        memory: pool.fingerprint(),
    }
}

fn submit_tasks<B: ExecBackend>(d: &mut Driver<B>, pool: &Arc<Pool>, sc: &Scenario) {
    for (pid, ops) in sc.progs.iter().enumerate() {
        for (i, prog) in ops.iter().enumerate() {
            d.submit_task(
                pid,
                OpSpec::custom("prog", i as u128),
                ProgTask::new(pool.clone(), prog.clone()),
            );
        }
    }
}

fn run_thread(sc: &Scenario) -> Outcome {
    let n = sc.progs.len();
    let pool = Arc::new(Pool::new());
    let mut d = Driver::new(Runtime::gated(n));
    submit_tasks(&mut d, &pool, sc);
    drive(d, &pool, sc)
}

fn run_coop(sc: &Scenario) -> Outcome {
    let n = sc.progs.len();
    let pool = Arc::new(Pool::new());
    let mut d = Driver::coop(Runtime::coop(n));
    submit_tasks(&mut d, &pool, sc);
    drive(d, &pool, sc)
}

/// What a gate-free run leaves behind (no crash cuts or mid-run
/// snapshots exist in free mode, so the comparable surface is the final
/// snapshot, the step counters and the shared memory).
#[derive(Debug, PartialEq, Eq)]
struct FreeOutcome {
    snapshot: NormHistory,
    per_pid_steps: Vec<u64>,
    memory: Vec<u64>,
}

fn run_coop_roundrobin(sc: &Scenario) -> FreeOutcome {
    let n = sc.progs.len();
    let pool = Arc::new(Pool::new());
    let mut d = Driver::coop(Runtime::coop(n));
    submit_tasks(&mut d, &pool, sc);
    let _ = d.run_schedule(&mut smr::sched::RoundRobin::new());
    FreeOutcome {
        snapshot: normalize(&d.history_snapshot()),
        per_pid_steps: (0..n).map(|p| d.runtime().steps_of(p)).collect(),
        memory: pool.fingerprint(),
    }
}

fn run_coop_free(sc: &Scenario, seed: Option<u64>) -> FreeOutcome {
    let n = sc.progs.len();
    let pool = Arc::new(Pool::new());
    let rt = Runtime::coop_free(n);
    let mut d = match seed {
        None => Driver::coop_free(rt),
        Some(s) => Driver::coop_free_seeded(rt, s),
    };
    submit_tasks(&mut d, &pool, sc);
    d.wait_all();
    FreeOutcome {
        snapshot: normalize(&d.history_snapshot()),
        per_pid_steps: (0..n).map(|p| d.runtime().steps_of(p)).collect(),
        memory: pool.fingerprint(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gated_and_free_coop_agree_on_register_programs(
        progs in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0u8..3, 0usize..4, 0u64..100), 1..5),
                1..4,
            ),
            2..6,
        ),
    ) {
        let sc = Scenario { progs, crashes: vec![], snap_at: usize::MAX, seed: 0 };
        let gated = run_coop_roundrobin(&sc);
        let free = run_coop_free(&sc, None);
        prop_assert_eq!(&gated, &free, "gated round-robin and free sweep diverged");
    }

    #[test]
    fn seeded_free_coop_is_replayable_on_register_programs(
        progs in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0u8..3, 0usize..4, 0u64..100), 1..5),
                1..4,
            ),
            2..6,
        ),
        seed in 1u64..1_000_000,
    ) {
        let sc = Scenario { progs, crashes: vec![], snap_at: usize::MAX, seed: 0 };
        let first = run_coop_free(&sc, Some(seed));
        let again = run_coop_free(&sc, Some(seed));
        prop_assert_eq!(&first, &again, "seed {} did not replay", seed);
    }

    #[test]
    fn thread_and_coop_backends_are_equivalent(
        progs in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0u8..3, 0usize..4, 0u64..100), 1..5),
                1..4,
            ),
            2..5,
        ),
        crashes in prop::collection::vec((0usize..40, 0usize..4), 0..3),
        snap_at in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        let sc = Scenario { progs, crashes, snap_at, seed };
        let thread = run_thread(&sc);
        let coop = run_coop(&sc);
        prop_assert_eq!(
            &thread, &coop,
            "backends diverged (seed {}, crashes {:?}, snap_at {})",
            sc.seed, sc.crashes, sc.snap_at
        );
    }

    #[test]
    fn closure_and_task_forms_are_equivalent_on_the_thread_backend(
        progs in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0u8..3, 0usize..4, 0u64..100), 1..5),
                1..4,
            ),
            2..4,
        ),
        seed in 0u64..1_000_000,
    ) {
        let sc = Scenario { progs, crashes: vec![], snap_at: usize::MAX, seed };
        let n = sc.progs.len();

        let task_outcome = run_thread(&sc);

        let pool = Arc::new(Pool::new());
        let mut d = Driver::new(Runtime::gated(n));
        for (pid, ops) in sc.progs.iter().enumerate() {
            for (i, prog) in ops.iter().enumerate() {
                let pool2 = pool.clone();
                let prog = prog.clone();
                d.submit(pid, OpSpec::custom("prog", i as u128), move |ctx| {
                    ProgTask::run_blocking(&pool2, &prog, ctx)
                });
            }
        }
        let closure_outcome = drive(d, &pool, &sc);

        prop_assert_eq!(&task_outcome, &closure_outcome, "forms diverged (seed {})", sc.seed);
    }
}

/// The ported object tasks (Algorithm 1 counter, collect counter, tree
/// max register) run identically on both backends under a deterministic
/// schedule — the "real algorithms" counterpart of the random-program
/// property above.
#[test]
fn ported_object_tasks_are_backend_equivalent() {
    use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};
    use counter::{CollectCounter, CollectIncTask, CollectReadTask};
    use maxreg::{TreeMaxReadTask, TreeMaxRegister, TreeMaxWriteTask};
    use parking_lot::Mutex;

    let n = 4;
    let build = |d: &mut dyn FnMut(usize, OpSpec, Box<dyn OpTask>)| {
        let kc = KmultCounter::new(n, 4);
        let handles: Vec<SharedKmultHandle> =
            (0..n).map(|p| Arc::new(Mutex::new(kc.handle(p)))).collect();
        let cc = Arc::new(CollectCounter::new(n));
        let mr = Arc::new(TreeMaxRegister::new(1 << 12));
        #[allow(clippy::needless_range_loop)] // pid-indexed handles read clearest
        for pid in 0..n {
            for i in 1..=12u64 {
                match i % 6 {
                    0 => d(
                        pid,
                        OpSpec::read(),
                        Box::new(KmultReadTask::new(handles[pid].clone())),
                    ),
                    1 => d(
                        pid,
                        OpSpec::inc(),
                        Box::new(KmultIncTask::new(handles[pid].clone())),
                    ),
                    2 => d(
                        pid,
                        OpSpec::inc(),
                        Box::new(CollectIncTask::new(cc.clone())),
                    ),
                    3 => d(
                        pid,
                        OpSpec::read(),
                        Box::new(CollectReadTask::new(cc.clone())),
                    ),
                    4 => d(
                        pid,
                        OpSpec::write(pid as u64 * 100 + i),
                        Box::new(TreeMaxWriteTask::new(mr.clone(), pid as u64 * 100 + i)),
                    ),
                    _ => d(
                        pid,
                        OpSpec::read(),
                        Box::new(TreeMaxReadTask::new(mr.clone())),
                    ),
                }
            }
        }
    };

    let run = |coop: bool| -> (NormHistory, u64) {
        let mut sched = smr::sched::SeededRandom::new(0xBEEF);
        if coop {
            let mut d = Driver::coop(Runtime::coop(n));
            build(&mut |pid, spec, task| d.submit_task(pid, spec, BoxedTask(task)));
            let steps = d.run_schedule(&mut sched);
            (normalize(d.history()), steps)
        } else {
            let mut d = Driver::new(Runtime::gated(n));
            build(&mut |pid, spec, task| d.submit_task(pid, spec, BoxedTask(task)));
            let steps = d.run_schedule(&mut sched);
            (normalize(d.history()), steps)
        }
    };

    let (h_thread, steps_thread) = run(false);
    let (h_coop, steps_coop) = run(true);
    assert_eq!(steps_thread, steps_coop, "total granted steps diverged");
    assert_eq!(h_thread, h_coop, "histories diverged");
}

/// Submit an interleaved increment/read workload over one shared
/// Algorithm 1 counter and return it for fingerprinting.
fn submit_kmult_workload<B: ExecBackend>(
    d: &mut Driver<B>,
    n: usize,
) -> Arc<approx_objects::KmultCounter> {
    use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};
    use parking_lot::Mutex;

    let kc = KmultCounter::new(n, 3);
    for pid in 0..n {
        let h: SharedKmultHandle = Arc::new(Mutex::new(kc.handle(pid)));
        for j in 0..8u64 {
            if j % 2 == 0 {
                d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(h.clone()));
            } else {
                d.submit_task(pid, OpSpec::read(), KmultReadTask::new(h.clone()));
            }
        }
    }
    kc
}

/// Gated round-robin coop ≡ unseeded free-running coop on the paper's
/// Algorithm 1 counter: same final snapshot, step counters and counter
/// state.
#[test]
fn gated_and_free_coop_agree_on_a_kmult_workload() {
    for n in [1usize, 2, 5, 16] {
        let (gated, gated_steps, gated_val) = {
            let mut d = Driver::coop(Runtime::coop(n));
            let kc = submit_kmult_workload(&mut d, n);
            let _ = d.run_schedule(&mut smr::sched::RoundRobin::new());
            (
                normalize(&d.history_snapshot()),
                (0..n).map(|p| d.runtime().steps_of(p)).collect::<Vec<_>>(),
                kc.peek_approx_value(),
            )
        };
        let (free, free_steps, free_val) = {
            let mut d = Driver::coop_free(Runtime::coop_free(n));
            let kc = submit_kmult_workload(&mut d, n);
            d.wait_all();
            (
                normalize(&d.history_snapshot()),
                (0..n).map(|p| d.runtime().steps_of(p)).collect::<Vec<_>>(),
                kc.peek_approx_value(),
            )
        };
        assert_eq!(gated, free, "histories diverged at n = {n}");
        assert_eq!(gated_steps, free_steps, "step counters diverged at n = {n}");
        assert_eq!(gated_val, free_val, "counter state diverged at n = {n}");
    }
}

/// A seeded free-running coop run over the kmult workload replays bit
/// for bit under the same seed.
#[test]
fn seeded_free_coop_is_replayable_on_a_kmult_workload() {
    let run = |seed: u64| {
        let n = 7;
        let mut d = Driver::coop_free_seeded(Runtime::coop_free(n), seed);
        let kc = submit_kmult_workload(&mut d, n);
        d.wait_all();
        (
            normalize(&d.history_snapshot()),
            (0..n).map(|p| d.runtime().steps_of(p)).collect::<Vec<_>>(),
            kc.peek_approx_value(),
        )
    };
    for seed in [1u64, 0xBEEF, u64::MAX] {
        assert_eq!(run(seed), run(seed), "seed {seed:#x} did not replay");
    }
}

/// Adapter: a boxed task as an `OpTask` (the driver takes `impl OpTask`).
struct BoxedTask(Box<dyn OpTask>);

impl OpTask for BoxedTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.0.poll(ctx)
    }
}

/// Same property for the objects ported after PR 3: snapshot, AACH and
/// unbounded-tree counters, the k-additive counter, Algorithm 2, and
/// the adaptive/unbounded exact max registers.
#[test]
fn newly_ported_object_tasks_are_backend_equivalent() {
    use approx_objects::{
        KaddCounter, KaddIncTask, KaddReadTask, KmultBoundedMaxRegister, KmultMaxReadTask,
        KmultMaxWriteTask, SharedKaddHandle,
    };
    use counter::{
        AachCounter, AachIncTask, AachReadTask, SnapshotCounter, SnapshotIncTask, SnapshotReadTask,
        UnboundedTreeCounter, UnboundedTreeIncTask, UnboundedTreeReadTask,
    };
    use maxreg::{
        AdaptiveMaxReadTask, AdaptiveMaxRegister, AdaptiveMaxWriteTask, UnboundedMaxReadTask,
        UnboundedMaxRegister, UnboundedMaxWriteTask,
    };
    use parking_lot::Mutex;

    let n = 3;
    let build = |d: &mut dyn FnMut(usize, OpSpec, Box<dyn OpTask>)| {
        let snap = Arc::new(SnapshotCounter::new(n));
        let aach = Arc::new(AachCounter::new(n, 1 << 12));
        let utree = Arc::new(UnboundedTreeCounter::new(n));
        let kadd = KaddCounter::new(n, 4);
        let kadd_handles: Vec<SharedKaddHandle> = (0..n)
            .map(|p| Arc::new(Mutex::new(kadd.handle(p))))
            .collect();
        let kmr = Arc::new(KmultBoundedMaxRegister::new(n, 1 << 16, 2));
        let amr = Arc::new(AdaptiveMaxRegister::new(n, 1 << 10));
        let umr = Arc::new(UnboundedMaxRegister::new());
        #[allow(clippy::needless_range_loop)] // pid-indexed handles read clearest
        for pid in 0..n {
            for i in 1..=14u64 {
                let v = pid as u64 * 97 + i * 13;
                match i % 7 {
                    0 => d(
                        pid,
                        OpSpec::inc(),
                        Box::new(SnapshotIncTask::new(snap.clone())),
                    ),
                    1 => d(
                        pid,
                        OpSpec::read(),
                        Box::new(SnapshotReadTask::new(snap.clone())),
                    ),
                    2 => {
                        d(
                            pid,
                            OpSpec::inc(),
                            Box::new(AachIncTask::new(aach.clone(), pid)),
                        );
                        d(
                            pid,
                            OpSpec::read(),
                            Box::new(AachReadTask::new(aach.clone())),
                        );
                    }
                    3 => {
                        d(
                            pid,
                            OpSpec::inc(),
                            Box::new(UnboundedTreeIncTask::new(utree.clone(), pid)),
                        );
                        d(
                            pid,
                            OpSpec::read(),
                            Box::new(UnboundedTreeReadTask::new(utree.clone())),
                        );
                    }
                    4 => {
                        d(
                            pid,
                            OpSpec::inc(),
                            Box::new(KaddIncTask::new(kadd_handles[pid].clone())),
                        );
                        d(
                            pid,
                            OpSpec::read(),
                            Box::new(KaddReadTask::new(kadd.clone())),
                        );
                    }
                    5 => {
                        d(
                            pid,
                            OpSpec::write(v),
                            Box::new(KmultMaxWriteTask::new(kmr.clone(), v)),
                        );
                        d(
                            pid,
                            OpSpec::read(),
                            Box::new(KmultMaxReadTask::new(kmr.clone())),
                        );
                    }
                    _ => {
                        d(
                            pid,
                            OpSpec::write(v % 1024),
                            Box::new(AdaptiveMaxWriteTask::new(amr.clone(), v % 1024)),
                        );
                        d(
                            pid,
                            OpSpec::read(),
                            Box::new(AdaptiveMaxReadTask::new(amr.clone())),
                        );
                        d(
                            pid,
                            OpSpec::write(v * v),
                            Box::new(UnboundedMaxWriteTask::new(umr.clone(), v * v)),
                        );
                        d(
                            pid,
                            OpSpec::read(),
                            Box::new(UnboundedMaxReadTask::new(umr.clone())),
                        );
                    }
                }
            }
        }
    };

    let run = |coop: bool| -> (NormHistory, u64) {
        let mut sched = smr::sched::SeededRandom::new(0xD00D);
        if coop {
            let mut d = Driver::coop(Runtime::coop(n));
            build(&mut |pid, spec, task| d.submit_task(pid, spec, BoxedTask(task)));
            let steps = d.run_schedule(&mut sched);
            (normalize(d.history()), steps)
        } else {
            let mut d = Driver::new(Runtime::gated(n));
            build(&mut |pid, spec, task| d.submit_task(pid, spec, BoxedTask(task)));
            let steps = d.run_schedule(&mut sched);
            (normalize(d.history()), steps)
        }
    };

    let (h_thread, steps_thread) = run(false);
    let (h_coop, steps_coop) = run(true);
    assert_eq!(steps_thread, steps_coop, "total granted steps diverged");
    assert_eq!(h_thread, h_coop, "histories diverged");
}
