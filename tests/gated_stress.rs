//! Seed-matrix stress: every object under many deterministic adversarial
//! schedules, every history checked against its specification. This is
//! the closest thing to model checking the repo runs in CI — each seed
//! is a distinct, reproducible interleaving at primitive granularity.

use approx_objects::{KaddCounter, KaddCounterHandle, KmultCounter, KmultCounterHandle};
use counter::{AachCounter, CollectCounter, Counter, SnapshotCounter};
use lincheck::monotone::{check_counter, check_counter_additive, check_maxreg};
use lincheck::{CounterHistory, MaxRegHistory};
use maxreg::{MaxRegister, TreeMaxRegister};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smr::sched::SeededRandom;
use smr::{Driver, OpSpec, Runtime};
use std::sync::Arc;

const SEEDS: [u64; 6] = [1, 2, 3, 0xDEAD, 0xBEEF, 0xC0FFEE];

fn drive_counter<C: Counter + 'static>(c: Arc<C>, n: usize, ops: u64, seed: u64) -> CounterHistory {
    let rt = Runtime::gated(n);
    let mut d = Driver::new(rt);
    for pid in 0..n {
        for i in 1..=ops {
            let c = Arc::clone(&c);
            if i % 5 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| c.read(ctx));
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    c.increment(ctx);
                    0
                });
            }
        }
    }
    d.run_schedule(&mut SeededRandom::new(seed));
    CounterHistory::from_records(d.history()).expect("typed counter history")
}

#[test]
fn collect_counter_seed_matrix() {
    for &seed in &SEEDS {
        let h = drive_counter(Arc::new(CollectCounter::new(4)), 4, 40, seed);
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn aach_counter_seed_matrix() {
    for &seed in &SEEDS {
        let h = drive_counter(Arc::new(AachCounter::new(3, 1 << 16)), 3, 30, seed);
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn snapshot_counter_seed_matrix() {
    for &seed in &SEEDS[..3] {
        let h = drive_counter(Arc::new(SnapshotCounter::new(3)), 3, 25, seed);
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn kmult_counter_seed_matrix() {
    for &seed in &SEEDS {
        let n = 4;
        let k = 4u64;
        let rt = Runtime::gated(n);
        let counter = KmultCounter::new(n, k);
        let handles: Arc<Vec<Mutex<KmultCounterHandle>>> =
            Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
        let mut d = Driver::new(rt);
        for pid in 0..n {
            for i in 1..=50u64 {
                let handles = Arc::clone(&handles);
                if i % 5 == 0 {
                    d.submit(pid, OpSpec::read(), move |ctx| {
                        handles[pid].lock().read(ctx)
                    });
                } else {
                    d.submit(pid, OpSpec::inc(), move |ctx| {
                        handles[pid].lock().increment(ctx);
                        0
                    });
                }
            }
        }
        d.run_schedule(&mut SeededRandom::new(seed));
        let h = CounterHistory::from_records(d.history()).expect("typed counter history");
        check_counter(&h, k).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn kadd_counter_seed_matrix() {
    for &seed in &SEEDS {
        let n = 4;
        let k = 12u64;
        let rt = Runtime::gated(n);
        let counter = KaddCounter::new(n, k);
        let handles: Arc<Vec<Mutex<KaddCounterHandle>>> =
            Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
        let mut d = Driver::new(rt);
        for pid in 0..n {
            for i in 1..=50u64 {
                let handles = Arc::clone(&handles);
                if i % 5 == 0 {
                    d.submit(pid, OpSpec::read(), move |ctx| {
                        handles[pid].lock().read(ctx)
                    });
                } else {
                    d.submit(pid, OpSpec::inc(), move |ctx| {
                        handles[pid].lock().increment(ctx);
                        0
                    });
                }
            }
        }
        d.run_schedule(&mut SeededRandom::new(seed));
        let h = CounterHistory::from_records(d.history()).expect("typed counter history");
        check_counter_additive(&h, k).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn tree_maxreg_seed_matrix() {
    for &seed in &SEEDS {
        let n = 3;
        let m = 1u64 << 12;
        let rt = Runtime::gated(n);
        let reg = Arc::new(TreeMaxRegister::new(m));
        let mut d = Driver::new(rt);
        let mut rng = StdRng::seed_from_u64(seed);
        for pid in 0..n {
            for i in 1..=40u64 {
                let reg = Arc::clone(&reg);
                if i % 4 == 0 {
                    d.submit(pid, OpSpec::read(), move |ctx| u128::from(reg.read(ctx)));
                } else {
                    let v = rng.random_range(1..m);
                    d.submit(pid, OpSpec::write(v), move |ctx| {
                        reg.write(ctx, v);
                        0
                    });
                }
            }
        }
        d.run_schedule(&mut SeededRandom::new(seed));
        let h = MaxRegHistory::from_records(d.history()).expect("typed maxreg history");
        check_maxreg(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn kmult_maxreg_seed_matrix() {
    for &seed in &SEEDS {
        let n = 3;
        let m = 1u64 << 16;
        let k = 4u64;
        let rt = Runtime::gated(n);
        let reg = Arc::new(approx_objects::KmultBoundedMaxRegister::new(n, m, k));
        let mut d = Driver::new(rt);
        let mut rng = StdRng::seed_from_u64(seed);
        for pid in 0..n {
            for i in 1..=40u64 {
                let reg = Arc::clone(&reg);
                if i % 4 == 0 {
                    d.submit(pid, OpSpec::read(), move |ctx| reg.read(ctx));
                } else {
                    let v = rng.random_range(1..m);
                    d.submit(pid, OpSpec::write(v), move |ctx| {
                        reg.write(ctx, v);
                        0
                    });
                }
            }
        }
        d.run_schedule(&mut SeededRandom::new(seed));
        let h = MaxRegHistory::from_records(d.history()).expect("typed maxreg history");
        check_maxreg(&h, k).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}
