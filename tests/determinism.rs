//! Determinism guarantees of the gated runtime: identical submissions
//! under identical schedules reproduce identical shared-memory
//! executions, histories and traces — the property the perturbation
//! builder and every scripted experiment rely on (DESIGN.md §5).

use approx_objects::{KmultCounter, KmultCounterHandle};
use counter::{CollectCounter, Counter};
use parking_lot::Mutex;
use smr::sched::SeededRandom;
use smr::{AccessKind, Driver, OpKind, OpSpec, Runtime};
use std::sync::Arc;

/// A run signature: (per-op return values in submission order, per-pid
/// step counts, primitive applications as (pid, kind) pairs — object
/// addresses vary run to run, so they are excluded, and so are the
/// controller-side trace edges (worker-side Invoke/Complete events
/// interleave nondeterministically with other workers' steps; the
/// primitives themselves are serialized by the gate).
type Signature = (Vec<u128>, Vec<u64>, Vec<(usize, AccessKind)>);

fn kmult_run(seed: u64) -> Signature {
    let n = 4;
    let rt = Runtime::gated(n);
    rt.enable_tracing();
    let counter = KmultCounter::new(n, 3);
    let handles: Arc<Vec<Mutex<KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt.clone());
    for pid in 0..n {
        for i in 1..=60u64 {
            let handles = Arc::clone(&handles);
            if i % 6 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| {
                    handles[pid].lock().read(ctx)
                });
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    handles[pid].lock().increment(ctx);
                    0
                });
            }
        }
    }
    d.run_schedule(&mut SeededRandom::new(seed));
    rt.disable_tracing();

    let mut rets: Vec<(usize, u64, u128)> = d
        .history()
        .ops()
        .iter()
        .map(|r| (r.pid, r.inv, r.returned()))
        .collect();
    rets.sort();
    let values = rets.into_iter().map(|(_, _, v)| v).collect();
    let steps = (0..n).map(|p| rt.steps_of(p)).collect();
    let trace = smr::accesses(&rt.take_trace())
        .into_iter()
        .map(|a| (a.pid, a.kind))
        .collect();
    (values, steps, trace)
}

#[test]
fn identical_seeds_reproduce_identical_executions() {
    for seed in [0u64, 42, 0xFEED] {
        let a = kmult_run(seed);
        let b = kmult_run(seed);
        assert_eq!(a.1, b.1, "seed {seed}: step counts diverged");
        assert_eq!(a.0, b.0, "seed {seed}: op results diverged");
        assert_eq!(a.2, b.2, "seed {seed}: traces diverged");
    }
}

#[test]
fn different_seeds_usually_differ() {
    // Not a guarantee, but with 4 processes × 240 ops the interleavings
    // should differ somewhere; if not, the gate is ignoring the schedule.
    let a = kmult_run(1);
    let b = kmult_run(2);
    assert!(
        a.0 != b.0 || a.2 != b.2,
        "two different schedules produced byte-identical executions"
    );
}

#[test]
fn op_records_carry_exact_step_counts() {
    // The per-op `steps` field must sum to the runtime's total.
    let n = 3;
    let rt = Runtime::gated(n);
    let counter = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt.clone());
    for pid in 0..n {
        for i in 1..=20u64 {
            let c = Arc::clone(&counter);
            if i % 4 == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| c.read(ctx));
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    c.increment(ctx);
                    0
                });
            }
        }
    }
    d.run_schedule(&mut SeededRandom::new(7));
    let history_steps = d.history().total_steps();
    assert_eq!(history_steps, rt.total_steps());
    // Collect counter: increments cost exactly 2, reads exactly n.
    for op in d.history().ops() {
        match op.kind {
            OpKind::Inc { .. } => assert_eq!(op.steps, 2),
            OpKind::Read { .. } => assert_eq!(op.steps, n as u64),
            other => panic!("unexpected operation {other:?}"),
        }
    }
}

#[test]
fn tickets_order_histories_consistently() {
    // inv < resp for every op, and per-process ops are disjoint in time
    // (a process runs one op at a time).
    let n = 4;
    let rt = Runtime::free_running(n);
    let counter = Arc::new(CollectCounter::new(n));
    let mut d = Driver::new(rt);
    for pid in 0..n {
        for _ in 0..50u64 {
            let c = Arc::clone(&counter);
            d.submit(pid, OpSpec::inc(), move |ctx| {
                c.increment(ctx);
                0
            });
        }
    }
    d.wait_all();
    let mut per_pid: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for op in d.history().ops() {
        let resp = op.resp.expect("completed");
        assert!(op.inv < resp, "inv must precede resp");
        per_pid[op.pid].push((op.inv, resp));
    }
    for (pid, mut windows) in per_pid.into_iter().enumerate() {
        windows.sort();
        for pair in windows.windows(2) {
            assert!(
                pair[0].1 < pair[1].0,
                "pid {pid}: operations overlap: {pair:?}"
            );
        }
    }
}
