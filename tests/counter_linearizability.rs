//! Cross-crate integration: concurrent counter executions checked for
//! linearizability against their (relaxed) sequential specifications.
//!
//! Every implementation runs a mixed increment/read workload through the
//! driver; the recorded history goes through `lincheck`'s monotone
//! checker. Exact counters are checked at `k = 1`; Algorithm 1 at its
//! own `k` (configs with `k ≥ n − 1`, where the raw k-multiplicative
//! spec holds from the first operation — see DESIGN.md §5 on the startup
//! window).

use counter::{
    AachCounter, CollectCounter, Counter, FaaCounter, SnapshotCounter, UnboundedTreeCounter,
};
use lincheck::monotone::check_counter;
use lincheck::CounterHistory;
use parking_lot::Mutex;
use smr::sched::SeededRandom;
use smr::{Driver, OpSpec, Runtime};
use std::sync::Arc;

/// Run a free-running mixed workload against a `Counter`, returning the
/// recorded history.
fn run_free<C: Counter + 'static>(
    c: Arc<C>,
    n: usize,
    ops: u64,
    read_every: u64,
) -> CounterHistory {
    let rt = Runtime::free_running(n);
    let mut d = Driver::new(rt);
    for pid in 0..n {
        for i in 1..=ops {
            let c = Arc::clone(&c);
            if i % read_every == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| c.read(ctx));
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    c.increment(ctx);
                    0
                });
            }
        }
    }
    d.wait_all();
    CounterHistory::from_records(d.history()).expect("typed counter history")
}

/// Same under a gated seeded-random schedule (deterministic adversarial
/// interleavings at primitive granularity).
fn run_gated<C: Counter + 'static>(
    c: Arc<C>,
    n: usize,
    ops: u64,
    read_every: u64,
    seed: u64,
) -> CounterHistory {
    let rt = Runtime::gated(n);
    let mut d = Driver::new(rt);
    for pid in 0..n {
        for i in 1..=ops {
            let c = Arc::clone(&c);
            if i % read_every == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| c.read(ctx));
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    c.increment(ctx);
                    0
                });
            }
        }
    }
    d.run_schedule(&mut SeededRandom::new(seed));
    CounterHistory::from_records(d.history()).expect("typed counter history")
}

#[test]
fn collect_counter_is_linearizable_free_running() {
    let h = run_free(Arc::new(CollectCounter::new(8)), 8, 200, 7);
    assert!(h.completed_incs() > 0);
    check_counter(&h, 1).unwrap_or_else(|v| panic!("collect counter: {v}"));
}

#[test]
fn collect_counter_is_linearizable_gated() {
    for seed in [1u64, 7, 42] {
        let h = run_gated(Arc::new(CollectCounter::new(4)), 4, 60, 5, seed);
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn snapshot_counter_is_linearizable() {
    let h = run_free(Arc::new(SnapshotCounter::new(4)), 4, 100, 6);
    check_counter(&h, 1).unwrap_or_else(|v| panic!("snapshot counter: {v}"));
}

#[test]
fn snapshot_counter_is_linearizable_gated() {
    for seed in [3u64, 9] {
        let h = run_gated(Arc::new(SnapshotCounter::new(3)), 3, 40, 4, seed);
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn aach_counter_is_linearizable() {
    let h = run_free(Arc::new(AachCounter::new(6, 1 << 20)), 6, 150, 8);
    check_counter(&h, 1).unwrap_or_else(|v| panic!("aach counter: {v}"));
}

#[test]
fn aach_counter_is_linearizable_gated() {
    for seed in [11u64, 23] {
        let h = run_gated(Arc::new(AachCounter::new(3, 1 << 16)), 3, 50, 5, seed);
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn unbounded_tree_counter_is_linearizable() {
    let h = run_free(Arc::new(UnboundedTreeCounter::new(4)), 4, 100, 8);
    check_counter(&h, 1).unwrap_or_else(|v| panic!("unbounded tree counter: {v}"));
}

#[test]
fn unbounded_tree_counter_is_linearizable_gated() {
    for seed in [6u64, 31] {
        let h = run_gated(Arc::new(UnboundedTreeCounter::new(3)), 3, 40, 5, seed);
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn faa_counter_is_linearizable() {
    let h = run_free(Arc::new(FaaCounter::new()), 8, 300, 5);
    check_counter(&h, 1).unwrap_or_else(|v| panic!("faa counter: {v}"));
}

/// Batched increments: one submitted closure performs `batch` unit
/// increments and is recorded once with multiplicity `batch` — the
/// ROADMAP "operation granularity" item. The checker must weight it
/// fully: reads interleaved with the batches see every landed unit, so
/// a multiplicity-blind checker (each record counted as ±1) would
/// reject these histories outright.
#[test]
fn batched_increments_are_weighted_by_multiplicity() {
    let n = 4;
    let batch = 8u64;
    for seed in [3u64, 19] {
        let rt = Runtime::gated(n);
        let c = Arc::new(CollectCounter::new(n));
        let mut d = Driver::new(rt);
        for pid in 0..n {
            for i in 1..=12u64 {
                let c = Arc::clone(&c);
                if i % 4 == 0 {
                    d.submit(pid, OpSpec::read(), move |ctx| c.read(ctx));
                } else {
                    d.submit(pid, OpSpec::inc_by(batch), move |ctx| {
                        for _ in 0..batch {
                            c.increment(ctx);
                        }
                        0
                    });
                }
            }
        }
        d.run_schedule(&mut SeededRandom::new(seed));
        let h = CounterHistory::from_records(d.history()).expect("typed counter history");
        assert_eq!(
            h.completed_incs(),
            u128::from(n as u64 * 9 * batch),
            "9 batches of {batch} per process"
        );
        check_counter(&h, 1).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

/// Algorithm 1 with `k ≥ n − 1`: the raw k-multiplicative spec holds over
/// the whole execution, including the startup window.
fn run_kmult(n: usize, k: u64, ops: u64, read_every: u64, seed: Option<u64>) -> CounterHistory {
    let rt = match seed {
        None => Runtime::free_running(n),
        Some(_) => Runtime::gated(n),
    };
    let counter = approx_objects::KmultCounter::new(n, k);
    let handles: Arc<Vec<Mutex<approx_objects::KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt);
    for pid in 0..n {
        for i in 1..=ops {
            let handles = Arc::clone(&handles);
            if i % read_every == 0 {
                d.submit(pid, OpSpec::read(), move |ctx| {
                    handles[pid].lock().read(ctx)
                });
            } else {
                d.submit(pid, OpSpec::inc(), move |ctx| {
                    handles[pid].lock().increment(ctx);
                    0
                });
            }
        }
    }
    match seed {
        None => d.wait_all(),
        Some(s) => {
            d.run_schedule(&mut SeededRandom::new(s));
        }
    }
    CounterHistory::from_records(d.history()).expect("typed counter history")
}

#[test]
fn kmult_counter_is_k_accurate_free_running() {
    for (n, k) in [(4usize, 4u64), (6, 8), (8, 8)] {
        let h = run_kmult(n, k, 400, 9, None);
        check_counter(&h, k).unwrap_or_else(|v| panic!("n={n} k={k}: {v}"));
    }
}

#[test]
fn kmult_counter_is_k_accurate_gated() {
    for seed in [5u64, 17, 99] {
        let h = run_kmult(4, 4, 80, 6, Some(seed));
        check_counter(&h, 4).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn kmult_counter_would_fail_stricter_spec() {
    // Sanity check that the checker has teeth: the k = 8 counter's
    // history is generally NOT 1-accurate (exact).
    let h = run_kmult(6, 8, 600, 4, None);
    assert!(
        check_counter(&h, 1).is_err(),
        "a relaxed counter should not pass the exact spec"
    );
}
