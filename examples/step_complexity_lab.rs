//! An interactive step-complexity explorer: pick (n, k, ops) on the
//! command line and watch Algorithm 1's bookkeeping — switch frontier,
//! per-process announcements, read cursor, amortized steps — evolve.
//!
//! ```bash
//! cargo run --release --example step_complexity_lab            # defaults
//! cargo run --release --example step_complexity_lab 16 4 100000
//! #                                                 n  k  ops
//! ```

use approx_objects::KmultCounter;
use smr::Runtime;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let k: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let ops: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50_000);

    println!("Algorithm 1 lab: n = {n}, k = {k}, {ops} increments per process");
    let counter = KmultCounter::new(n, k);
    if !counter.accuracy_guaranteed() {
        println!(
            "⚠ k < √n = {:.2}: accuracy is NOT guaranteed (Theorem III.9's",
            (n as f64).sqrt()
        );
        println!("  premise fails) — watch the ratio column exceed k.");
    }
    let rt = Runtime::free_running(n);

    let checkpoints = [ops / 100, ops / 10, ops / 4, ops / 2, ops];

    let handles: Vec<_> = (0..n)
        .map(|pid| {
            let ctx = rt.ctx(pid);
            let mut h = counter.handle(pid);
            std::thread::spawn(move || {
                for _ in 0..ops {
                    h.increment(&ctx);
                }
                h
            })
        })
        .collect();
    let mut proc_handles: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    println!("\nafter the increment phase:");
    println!("  true count v            = {}", ops * n as u64);
    println!("  total primitive steps   = {}", rt.total_steps());
    println!(
        "  amortized steps per inc = {:.4}",
        rt.total_steps() as f64 / (ops * n as u64) as f64
    );

    // Walk the switch frontier.
    let mut frontier = 0u64;
    while counter.peek_switch(frontier) {
        frontier += 1;
    }
    println!("  switch frontier         = {frontier} (first unset switch)");
    let intervals = if frontier == 0 {
        0
    } else {
        (frontier - 1).div_ceil(k)
    };
    println!("  intervals filled        ≈ {intervals} (each interval j costs k^j incs per switch)");

    // Reads from every process, with detail.
    println!("\nper-process reads (each walks its own persistent cursor):");
    println!("  pid  read x       (p, q)    helped  ratio v/x  steps");
    let v = (ops * n as u64) as f64;
    for (pid, h) in proc_handles.iter_mut().enumerate() {
        let ctx = rt.ctx(pid);
        let before = ctx.steps_taken();
        let o = h.read_detailed(&ctx);
        let cost = ctx.steps_taken() - before;
        println!(
            "  {:<4} {:<12} ({}, {})    {:<6}  {:<9.3}  {}",
            pid,
            o.value,
            o.p,
            o.q,
            o.helped,
            v / o.value as f64,
            cost
        );
    }

    println!("\ncheckpoint amortized-cost table (single fresh process, sequential):");
    println!("  incs        steps      steps/inc");
    for &cp in &checkpoints {
        let rt1 = Runtime::free_running(1);
        let c1 = KmultCounter::new(1, k);
        let ctx = rt1.ctx(0);
        let mut h = c1.handle(0);
        for _ in 0..cp {
            h.increment(&ctx);
        }
        println!(
            "  {:<11} {:<10} {:.5}",
            cp,
            rt1.total_steps(),
            rt1.total_steps() as f64 / cp.max(1) as f64
        );
    }
    println!("\nthe steps/inc column shrinks as the execution grows: announcing");
    println!("gets geometrically rarer (interval j costs k^j increments per");
    println!("switch), which is where the O(1) amortized bound comes from.");
}
