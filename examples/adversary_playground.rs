//! The adversary playground: drive a concurrent object one primitive at
//! a time, exactly like the scheduling adversary in the paper's
//! lower-bound proofs.
//!
//! This example builds the classic "lost update" interleaving by hand,
//! then shows a scripted schedule against Algorithm 1 that freezes a
//! process at the worst possible moment — between its `test&set` landing
//! and its helping-array announcement — and watches reads stay within
//! their accuracy envelope anyway.
//!
//! ```bash
//! cargo run --example adversary_playground
//! ```

use approx_objects::{arith, KmultCounter};
use parking_lot::Mutex;
use smr::{Driver, OpSpec, Register, Runtime, StepOutcome};
use std::sync::Arc;

fn main() {
    lost_update();
    frozen_announcer();
}

/// Two processes read-modify-write a plain register; the adversary
/// interleaves their primitives so one update is lost.
fn lost_update() {
    println!("── part 1: the classic lost update, scheduled by hand ──");
    let rt = Runtime::gated(2);
    let mut d = Driver::new(rt);
    let reg = Arc::new(Register::new(0));
    for pid in 0..2 {
        let reg = Arc::clone(&reg);
        d.submit(pid, OpSpec::custom("rmw", 0), move |ctx| {
            let v = reg.read(ctx);
            reg.write(ctx, v + 1);
            u128::from(v)
        });
    }
    // p0 reads, p1 reads (same value!), both write.
    for pid in [0, 1, 0, 1] {
        assert_eq!(d.step(pid), StepOutcome::Stepped);
    }
    println!(
        "   both processes incremented; register holds {} (one update lost)\n",
        reg.peek()
    );
}

/// Freeze a process right after it wins a switch but before it updates
/// the helping array — the window Lemma III.3's sequence numbers guard.
fn frozen_announcer() {
    println!("── part 2: freezing an announcer mid-announcement ──");
    let n = 2;
    let k = 2;
    let rt = Runtime::gated(n);
    let counter = KmultCounter::new(n, k);
    let handles: Arc<Vec<Mutex<approx_objects::KmultCounterHandle>>> =
        Arc::new((0..n).map(|p| Mutex::new(counter.handle(p))).collect());
    let mut d = Driver::new(rt);

    // Process 0: one increment = one announcement (test&set switch_0).
    // NOTE: switch_0 announcements do not write H (paper lines 25–28),
    // so freeze instead inside a later announcement: TAS + H-write.
    {
        let handles = Arc::clone(&handles);
        d.submit(0, OpSpec::inc_by(3), move |ctx| {
            let mut h = handles[0].lock();
            for _ in 0..3 {
                h.increment(ctx); // k = 2: inc #1 sets switch_0, inc #3 announces in interval 1
            }
            0
        });
    }
    // Steps: 1 = TAS switch_0; 2 = TAS switch_1 (wins); 3 would be the
    // H-write. Stop after step 2: switch set, announcement unpublished.
    assert_eq!(d.step(0), StepOutcome::Stepped);
    assert_eq!(d.step(0), StepOutcome::Stepped);
    println!("   process 0 frozen: switch_1 is set, H[0] not yet written");
    println!(
        "   switch prefix now: {}{}{}",
        counter.peek_switch(0) as u8,
        counter.peek_switch(1) as u8,
        counter.peek_switch(2) as u8
    );

    // Process 1 reads; the frozen announcement is visible through the
    // switch (test&set landed), so the read may count it — and the
    // envelope still holds with the true count of 3 (2 completed + 1
    // in flight).
    {
        let handles = Arc::clone(&handles);
        d.submit(1, OpSpec::read(), move |ctx| handles[1].lock().read(ctx));
    }
    d.run_solo(1);
    let read_val = d.history().ops().last().expect("read recorded").returned();
    let (p, q) = (1, 0); // reader saw switch_1 as the last set switch
    println!(
        "   process 1 read {} = ReturnValue(p={p}, q={q}); envelope [u_min, u_max] = [{}, {}]",
        read_val,
        arith::u_min(p, q, k),
        arith::u_max(p, q, k, n),
    );

    // Unfreeze 0 (it finishes the H-write and its remaining increment).
    d.run_solo(0);
    println!("   process 0 resumed and completed; the object was never blocked.");
    println!("   (wait-freedom: a frozen process can stall only itself.)");
}
