//! Scalable statistics counters — the motivating workload of the paper's
//! introduction (cf. its reference to Dice, Lev & Moir, "Scalable
//! statistics counters", SPAA '13).
//!
//! A server tracks the number of requests handled across many worker
//! threads. Operators reading a dashboard do not care whether the
//! counter says 1'048'576 or 1'302'117 — they care that it's "about a
//! million" and that reading it doesn't slow the workers down. That is
//! exactly the k-multiplicative-accurate counter's contract.
//!
//! This example runs the same request workload against the relaxed
//! counter and two exact baselines and prints the steps each spent.
//!
//! ```bash
//! cargo run --release --example telemetry_counters
//! ```

use approx_objects::KmultCounter;
use counter::{CollectCounter, Counter, FaaCounter};
use smr::Runtime;
use std::sync::Arc;

const WORKERS: usize = 8;
const REQUESTS_PER_WORKER: u64 = 100_000;
/// The dashboard polls once every this many requests per worker.
const POLL_EVERY: u64 = 50;

fn main() {
    println!("telemetry: {WORKERS} workers × {REQUESTS_PER_WORKER} requests,");
    println!("a dashboard read every {POLL_EVERY} requests on each worker\n");

    // k-multiplicative counter, k = ⌈√n⌉ = 3.
    let (kmult_steps, kmult_final) = {
        let rt = Runtime::free_running(WORKERS);
        let counter = KmultCounter::new(WORKERS, 3);
        let handles: Vec<_> = (0..WORKERS)
            .map(|pid| {
                let ctx = rt.ctx(pid);
                let mut h = counter.handle(pid);
                std::thread::spawn(move || {
                    let mut last_seen = 0;
                    for i in 1..=REQUESTS_PER_WORKER {
                        h.increment(&ctx);
                        if i % POLL_EVERY == 0 {
                            last_seen = h.read(&ctx);
                        }
                    }
                    last_seen
                })
            })
            .collect();
        let mut final_read = 0;
        for h in handles {
            final_read = h.join().unwrap();
        }
        (rt.total_steps(), final_read)
    };

    // Exact collect counter (the classic wait-free read/write baseline).
    let (collect_steps, collect_final) = {
        let rt = Runtime::free_running(WORKERS);
        let counter = Arc::new(CollectCounter::new(WORKERS));
        let handles: Vec<_> = (0..WORKERS)
            .map(|pid| {
                let ctx = rt.ctx(pid);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut last_seen = 0;
                    for i in 1..=REQUESTS_PER_WORKER {
                        c.increment(&ctx);
                        if i % POLL_EVERY == 0 {
                            last_seen = c.read(&ctx);
                        }
                    }
                    last_seen
                })
            })
            .collect();
        let mut final_read = 0;
        for h in handles {
            final_read = h.join().unwrap();
        }
        (rt.total_steps(), final_read)
    };

    // fetch&add (what you'd write with std::sync::atomic — outside the
    // paper's read/write/test&set model, shown for perspective).
    let (faa_steps, faa_final) = {
        let rt = Runtime::free_running(WORKERS);
        let counter = Arc::new(FaaCounter::new());
        let handles: Vec<_> = (0..WORKERS)
            .map(|pid| {
                let ctx = rt.ctx(pid);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut last_seen = 0;
                    for i in 1..=REQUESTS_PER_WORKER {
                        c.increment(&ctx);
                        if i % POLL_EVERY == 0 {
                            last_seen = c.read(&ctx);
                        }
                    }
                    last_seen
                })
            })
            .collect();
        let mut final_read = 0;
        for h in handles {
            final_read = h.join().unwrap();
        }
        (rt.total_steps(), final_read)
    };

    let total_ops = (WORKERS as u64) * REQUESTS_PER_WORKER * (POLL_EVERY + 1) / POLL_EVERY;
    let true_total = (WORKERS as u64 * REQUESTS_PER_WORKER) as f64;
    println!("implementation   steps/op   a final dashboard read");
    println!(
        "kmult (k=3)      {:<10.3} {} (ratio {:.2})",
        kmult_steps as f64 / total_ops as f64,
        kmult_final,
        true_total / kmult_final as f64
    );
    println!(
        "collect (exact)  {:<10.3} {} (exact)",
        collect_steps as f64 / total_ops as f64,
        collect_final
    );
    println!(
        "fetch&add        {:<10.3} {} (exact, but not in the model)",
        faa_steps as f64 / total_ops as f64,
        faa_final
    );
    println!("\nthe relaxed counter does strictly less shared-memory work per");
    println!("operation than any exact read/write alternative — Theorem III.9's");
    println!("O(1) amortized bound in action, at the price of a bounded");
    println!("multiplicative dashboard error.");
}
