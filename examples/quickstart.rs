//! Quickstart: the three objects of the paper in five minutes.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use approx_objects::{KmultBoundedMaxRegister, KmultCounter, KmultUnboundedMaxRegister};
use smr::Runtime;

fn main() {
    // ── 1. The k-multiplicative-accurate counter (Algorithm 1) ────────
    //
    // n processes, accuracy k ≥ √n. The shared object is `Sync`; each
    // process owns a handle with its persistent local state.
    let n = 4;
    let k = 2;
    let rt = Runtime::free_running(n);
    let counter = KmultCounter::new(n, k);

    let mut workers: Vec<_> = (0..n)
        .map(|pid| {
            let ctx = rt.ctx(pid);
            let mut handle = counter.handle(pid);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    handle.increment(&ctx);
                }
                handle.read(&ctx) // the approximate total, within [v/k, v·k]
            })
        })
        .collect();
    let last_read = workers
        .drain(..)
        .map(|w| w.join().unwrap())
        .next_back()
        .unwrap();

    let true_count = (n * 10_000) as u128;
    println!("counter: true count = {true_count}, a worker's final read = {last_read}");
    println!(
        "         accuracy ratio = {:.3} (must lie in [1/{k}, {k}])",
        true_count as f64 / last_read as f64
    );
    // The instrumented runtime counted every primitive step:
    println!(
        "         amortized steps/op = {:.4} — Theorem III.9 says O(1)",
        rt.total_steps() as f64 / (true_count as f64)
    );

    // ── 2. The k-multiplicative-accurate bounded max register (Alg. 2) ─
    let m = 1u64 << 40; // domain {0, …, 2^40 − 1}
    let reg = KmultBoundedMaxRegister::new(n, m, k);
    let ctx = rt.ctx(0);
    let steps_before = ctx.steps_taken();
    reg.write(&ctx, 123_456_789);
    let approx = reg.read(&ctx);
    println!(
        "\nmax register (m = 2^40): wrote 123456789, read {approx} \
         (within a factor of {k})"
    );
    println!(
        "         write+read cost {} steps — O(log₂ log_k m), not O(log₂ m)",
        ctx.steps_taken() - steps_before
    );

    // ── 3. The unbounded extension ─────────────────────────────────────
    let unbounded = KmultUnboundedMaxRegister::new(n, k);
    unbounded.write(&ctx, 7);
    unbounded.write(&ctx, 1 << 55);
    unbounded.write(&ctx, 42);
    println!(
        "\nunbounded max register: max(7, 2^55, 42) ≈ {} (k = {k})",
        unbounded.read(&ctx)
    );
}
