//! A monotone progress watermark from a k-multiplicative max register.
//!
//! Scenario: a parallel pipeline processes a huge keyspace (say, log
//! offsets up to 2^48). Each worker occasionally publishes the highest
//! offset it has fully processed; a coordinator wants a cheap, wait-free
//! "we are roughly here" watermark — off by at most a factor of k, which
//! is fine for progress bars, GC horizons with slack, or lag alerts.
//!
//! The exact bounded max register costs Θ(log₂ m) ≈ 48 steps per
//! operation at this domain size; Algorithm 2 costs
//! Θ(log₂ log_k m) ≈ 5 — and this example measures both while checking
//! the watermark never overtakes the true frontier by more than k.
//!
//! ```bash
//! cargo run --release --example progress_watermark
//! ```

use approx_objects::KmultBoundedMaxRegister;
use maxreg::{MaxRegister, TreeMaxRegister};
use smr::Runtime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WORKERS: usize = 6;
const DOMAIN_BITS: u32 = 48;
const BATCHES: u64 = 2_000;

fn main() {
    let m = 1u64 << DOMAIN_BITS;
    let k = 2u64;
    let rt = Runtime::free_running(WORKERS + 1);

    let watermark = Arc::new(KmultBoundedMaxRegister::new(WORKERS + 1, m, k));
    let exact = Arc::new(TreeMaxRegister::new(m));
    // Ground truth for the accuracy check (not part of the algorithm).
    let true_frontier = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..WORKERS)
        .map(|pid| {
            let ctx = rt.ctx(pid);
            let watermark = Arc::clone(&watermark);
            let exact = Arc::clone(&exact);
            let frontier = Arc::clone(&true_frontier);
            std::thread::spawn(move || {
                // Each worker walks its own geometric offset schedule, so
                // the global frontier keeps advancing unevenly.
                let mut offset: u64 = 1 + pid as u64;
                for _ in 0..BATCHES {
                    offset = (offset.saturating_mul(3) / 2 + 7).min(m - 1);
                    // relaxed-ok: a monotonic max the coordinator samples
                    // only for a lag ratio; no ordering is relied on.
                    frontier.fetch_max(offset, Ordering::Relaxed);
                    watermark.write(&ctx, offset);
                    exact.write(&ctx, offset);
                }
            })
        })
        .collect();

    // The coordinator polls both watermarks while workers run.
    let coord_ctx = rt.ctx(WORKERS);
    let mut polls = 0u64;
    let mut worst_ratio = 1.0f64;
    while workers.iter().any(|w| !w.is_finished()) {
        let approx = watermark.read(&coord_ctx);
        // relaxed-ok: sampling the same statistical max as above.
        let frontier = true_frontier.load(Ordering::Relaxed);
        if frontier > 0 && approx > 0 {
            // approx may lag (concurrent writes) but must never exceed
            // k × the true frontier.
            let ratio = approx as f64 / frontier as f64;
            worst_ratio = worst_ratio.max(ratio);
            assert!(
                approx <= u128::from(frontier) * u128::from(k),
                "watermark {approx} overtook k×frontier ({frontier})"
            );
        }
        polls += 1;
    }
    for w in workers {
        w.join().unwrap();
    }

    let approx_final = watermark.read(&coord_ctx);
    let exact_final = exact.read(&coord_ctx);
    let steps_total = rt.total_steps();
    println!("processed frontier (exact register):  {exact_final}");
    println!("watermark (k = {k} approximate):       {approx_final}");
    println!("coordinator polls while running:      {polls}");
    println!("worst watermark/frontier ratio seen:  {worst_ratio:.3} (bound: {k})");
    println!("total primitive steps, all processes: {steps_total}");

    // Measure the per-op gap on a quiet register.
    let probe_rt = Runtime::free_running(1);
    let ctx = probe_rt.ctx(0);
    let w2 = KmultBoundedMaxRegister::new(1, m, k);
    let e2 = TreeMaxRegister::new(m);
    let s0 = ctx.steps_taken();
    w2.write(&ctx, m / 3);
    let _ = w2.read(&ctx);
    let approx_cost = ctx.steps_taken() - s0;
    let s0 = ctx.steps_taken();
    e2.write(&ctx, m / 3);
    let _ = e2.read(&ctx);
    let exact_cost = ctx.steps_taken() - s0;
    println!("\nper (write+read) pair at m = 2^{DOMAIN_BITS}:");
    println!("  exact max register:        {exact_cost} steps (Θ(log₂ m))");
    println!("  k-multiplicative register: {approx_cost} steps (Θ(log₂ log_k m))");
}
