//! The **k-additive-accurate counter** — the related-work relaxation the
//! paper contrasts against (§I-A, citing Aspnes, Attiya, Censor-Hillel):
//! a read may return `x` with `v − k ≤ x ≤ v + k` for the exact count
//! `v`. Aspnes et al. prove a worst-case lower bound of
//! `Ω(min(n − 1, log m − log k))` for it, with no matching upper bound.
//!
//! This implementation is the natural batching counter: each process
//! accumulates increments locally and publishes its exact total to its
//! single-writer cell once `⌊k/n⌋ + 1` increments have accumulated, so
//! the `n` cells together miss at most `n·⌊k/n⌋ ≤ k` increments; reads
//! collect and sum.
//!
//! Costs: increments amortize to `≈ n/k` steps (one publish per batch);
//! reads are `Θ(n)`. Contrast with the multiplicative relaxation
//! (Algorithm 1), where *both* sides amortize to `O(1)` for `k ≥ √n` —
//! the asymmetry EXP-TRADEOFF measures.

use parking_lot::Mutex;
use smr::{OpTask, Poll, ProcCtx, Register};
use std::sync::Arc;

/// Shared state of the k-additive counter: one single-writer cell per
/// process holding that process's published exact total.
///
/// ```
/// use approx_objects::KaddCounter;
/// use smr::Runtime;
///
/// let rt = Runtime::free_running(2);
/// let counter = KaddCounter::new(2, 10);
/// let ctx = rt.ctx(0);
/// let mut h = counter.handle(0);
/// for _ in 0..100 {
///     h.increment(&ctx);
/// }
/// let x = h.read(&ctx);
/// assert!(100u128.abs_diff(x) <= 10); // within ±k
/// ```
pub struct KaddCounter {
    k: u64,
    n: usize,
    cells: Vec<Register>,
}

impl KaddCounter {
    /// A k-additive-accurate counter for `n` processes (`k ≥ 0`; `k = 0`
    /// degenerates to the exact collect counter).
    pub fn new(n: usize, k: u64) -> Arc<Self> {
        assert!(n > 0, "need at least one process");
        Arc::new(KaddCounter {
            k,
            n,
            cells: (0..n).map(|_| Register::new(0)).collect(),
        })
    }

    /// The additive accuracy parameter `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Publish threshold: a process defers at most `threshold − 1`
    /// increments, so all processes together defer at most `k`.
    pub fn threshold(&self) -> u64 {
        self.k / self.n as u64 + 1
    }

    /// A handle for process `pid` (owns its pending-batch state).
    pub fn handle(self: &Arc<Self>, pid: usize) -> KaddCounterHandle {
        assert!(pid < self.n, "pid {pid} out of range (n = {})", self.n);
        KaddCounterHandle {
            counter: self.clone(),
            pid,
            pending: 0,
            published: 0,
        }
    }
}

/// Per-process side of the k-additive counter.
pub struct KaddCounterHandle {
    counter: Arc<KaddCounter>,
    pid: usize,
    /// Increments not yet published (bounded by `threshold − 1`).
    pending: u64,
    /// This process's published total (mirrors its cell; single-writer,
    /// so no read step is needed to publish).
    published: u64,
}

impl KaddCounterHandle {
    /// This handle's process id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Increments currently unpublished by this process.
    pub fn pending_local(&self) -> u64 {
        self.pending
    }

    /// One increment; publishes the batch when the threshold is reached
    /// (one `write` step), otherwise free.
    ///
    /// Implemented by driving [`KaddIncMachine`] to completion, so the
    /// blocking form and the resumable task form ([`KaddIncTask`])
    /// share one transcription and apply identical primitive sequences.
    pub fn increment(&mut self, ctx: &ProcCtx) {
        let mut m = KaddIncMachine::new();
        while m.step(self, ctx).is_pending() {}
    }

    /// Flush any pending increments immediately (one step if non-empty).
    /// Useful at quiescence points; not required for the accuracy bound.
    pub fn flush(&mut self, ctx: &ProcCtx) {
        assert_eq!(ctx.pid(), self.pid, "handle used with foreign ProcCtx");
        if self.pending > 0 {
            self.published += self.pending;
            self.pending = 0;
            self.counter.cells[self.pid].write(ctx, self.published);
        }
    }

    /// Read: collect and sum all cells (`n` steps). The result is within
    /// `±k` of the exact count at some instant in the read's window.
    ///
    /// Like [`increment`](Self::increment), drives the shared
    /// [`KaddReadMachine`] transcription to completion.
    pub fn read(&self, ctx: &ProcCtx) -> u128 {
        let mut m = KaddReadMachine::new(&self.counter);
        loop {
            if let Poll::Ready(v) = m.step(&self.counter, ctx) {
                return v;
            }
        }
    }
}

/// Resume point of a `KaddCounterHandle::increment` — one primitive per
/// [`step`](KaddIncMachine::step), priming step free (the machine
/// convention of `maxreg::tree`'s module docs). The priming step does
/// the local batching (line of the natural batching counter): below the
/// threshold the increment completes without ever being granted a step,
/// exactly like the blocking form applies no primitive.
#[derive(Debug, Default)]
pub struct KaddIncMachine {
    /// `true` once the local bookkeeping ran and a publish is due.
    publish_due: bool,
}

impl KaddIncMachine {
    /// A machine for one increment.
    pub fn new() -> Self {
        KaddIncMachine::default()
    }

    /// Advance the increment by at most one primitive.
    pub fn step(&mut self, h: &mut KaddCounterHandle, ctx: &ProcCtx) -> Poll<()> {
        assert_eq!(ctx.pid(), h.pid, "handle used with foreign ProcCtx");
        if !self.publish_due {
            // Priming step: pure local computation.
            h.pending += 1;
            if h.pending < h.counter.threshold() {
                return Poll::Ready(());
            }
            self.publish_due = true;
            return Poll::Pending;
        }
        h.published += h.pending;
        h.pending = 0;
        h.counter.cells[h.pid].write(ctx, h.published);
        Poll::Ready(())
    }
}

/// Resume point of a `KaddCounterHandle::read`: collect the `n` cells,
/// one primitive per [`step`](KaddReadMachine::step), resolving to
/// their sum.
#[derive(Debug)]
pub struct KaddReadMachine {
    next: usize,
    sum: u128,
    primed: bool,
}

impl KaddReadMachine {
    /// A machine reading `counter`.
    pub fn new(_counter: &KaddCounter) -> Self {
        KaddReadMachine {
            next: 0,
            sum: 0,
            primed: false,
        }
    }

    /// Advance the read by at most one primitive against `counter` —
    /// which must be the counter the machine was created for.
    pub fn step(&mut self, counter: &KaddCounter, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        self.sum += u128::from(counter.cells[self.next].read(ctx));
        self.next += 1;
        if self.next == counter.n {
            Poll::Ready(self.sum)
        } else {
            Poll::Pending
        }
    }
}

/// A shareable handle, as tasks need it. One per process; the lock is
/// uncontended by construction — a process runs one operation at a
/// time.
pub type SharedKaddHandle = Arc<Mutex<KaddCounterHandle>>;

/// `KaddCounterHandle::increment` as a resumable [`OpTask`] for the
/// coop backend. Submit with [`OpSpec::inc`](smr::OpSpec::inc).
pub struct KaddIncTask {
    handle: SharedKaddHandle,
    machine: KaddIncMachine,
}

impl KaddIncTask {
    /// A single increment through `handle`.
    pub fn new(handle: SharedKaddHandle) -> Self {
        KaddIncTask {
            handle,
            machine: KaddIncMachine::new(),
        }
    }
}

impl OpTask for KaddIncTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx).map(|()| 0)
    }
}

/// `KaddCounterHandle::read` as a resumable [`OpTask`] for the coop
/// backend. Submit with [`OpSpec::read`](smr::OpSpec::read).
pub struct KaddReadTask {
    counter: Arc<KaddCounter>,
    machine: KaddReadMachine,
}

impl KaddReadTask {
    /// A read against `counter`.
    pub fn new(counter: Arc<KaddCounter>) -> Self {
        let machine = KaddReadMachine::new(&counter);
        KaddReadTask { counter, machine }
    }
}

impl OpTask for KaddReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.counter, ctx)
    }
}

/// `|v − x| ≤ k` — the k-additive accuracy predicate.
pub fn within_add(v: u128, x: u128, k: u64) -> bool {
    v.abs_diff(x) <= u128::from(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::Runtime;

    #[test]
    fn sequential_accuracy() {
        for (n, k) in [(1usize, 0u64), (1, 5), (4, 8), (4, 100)] {
            let rt = Runtime::free_running(n);
            let c = KaddCounter::new(n, k);
            let mut handles: Vec<_> = (0..n).map(|p| c.handle(p)).collect();
            let mut v = 0u128;
            for round in 0..500u64 {
                let pid = (round % n as u64) as usize;
                let ctx = rt.ctx(pid);
                handles[pid].increment(&ctx);
                v += 1;
                let x = handles[0].read(&rt.ctx(0));
                assert!(within_add(v, x, k), "n={n} k={k} v={v} x={x}");
                assert!(x <= v, "collect sum never overshoots sequentially");
            }
        }
    }

    #[test]
    fn k_zero_is_exact() {
        let rt = Runtime::free_running(2);
        let c = KaddCounter::new(2, 0);
        let mut h0 = c.handle(0);
        for i in 1..=50u128 {
            h0.increment(&rt.ctx(0));
            assert_eq!(h0.read(&rt.ctx(0)), i);
        }
    }

    #[test]
    fn flush_publishes_pending() {
        let rt = Runtime::free_running(1);
        let c = KaddCounter::new(1, 100);
        let mut h = c.handle(0);
        let ctx = rt.ctx(0);
        for _ in 0..5 {
            h.increment(&ctx);
        }
        assert!(h.pending_local() > 0);
        h.flush(&ctx);
        assert_eq!(h.pending_local(), 0);
        assert_eq!(h.read(&ctx), 5);
    }

    #[test]
    fn increment_amortizes_to_n_over_k() {
        let n = 4;
        let k = 400;
        let rt = Runtime::free_running(n);
        let c = KaddCounter::new(n, k);
        let ctx = rt.ctx(0);
        let mut h = c.handle(0);
        let ops = 100_000u64;
        for _ in 0..ops {
            h.increment(&ctx);
        }
        let amortized = ctx.steps_taken() as f64 / ops as f64;
        let expected = n as f64 / k as f64;
        assert!(
            amortized <= expected * 1.5 + 0.001,
            "amortized {amortized}, expected ≈ {expected}"
        );
    }

    #[test]
    fn concurrent_accuracy_at_quiescence() {
        let n = 8;
        let k = 64;
        let rt = Runtime::free_running(n);
        let c = KaddCounter::new(n, k);
        let per = 10_000u64;
        let handles: Vec<_> = (0..n)
            .map(|pid| {
                let ctx = rt.ctx(pid);
                let mut h = c.handle(pid);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        h.increment(&ctx);
                    }
                    h
                })
            })
            .collect();
        let hs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let v = u128::from(per) * n as u128;
        let x = hs[0].read(&rt.ctx(0));
        assert!(within_add(v, x, k), "v={v} x={x} k={k}");
    }

    #[test]
    #[should_panic(expected = "foreign ProcCtx")]
    fn handle_rejects_foreign_ctx() {
        let rt = Runtime::free_running(2);
        let c = KaddCounter::new(2, 4);
        let mut h = c.handle(0);
        h.increment(&rt.ctx(1));
    }

    #[test]
    fn task_forms_match_blocking_forms() {
        use smr::OpTask;
        fn run_task<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
            loop {
                if let std::task::Poll::Ready(v) = t.poll(ctx) {
                    return v;
                }
            }
        }
        for (n, k) in [(1usize, 0u64), (2, 5), (4, 17)] {
            // Blocking reference run.
            let rt_a = Runtime::free_running(n);
            let c_a = KaddCounter::new(n, k);
            let mut hs_a: Vec<_> = (0..n).map(|p| c_a.handle(p)).collect();
            // Task run.
            let rt_b = Runtime::free_running(n);
            let c_b = KaddCounter::new(n, k);
            let hs_b: Vec<SharedKaddHandle> = (0..n)
                .map(|p| Arc::new(Mutex::new(c_b.handle(p))))
                .collect();

            for round in 0..120u64 {
                let pid = (round % n as u64) as usize;
                let (ctx_a, ctx_b) = (rt_a.ctx(pid), rt_b.ctx(pid));
                hs_a[pid].increment(&ctx_a);
                let _ = run_task(KaddIncTask::new(hs_b[pid].clone()), &ctx_b);
                if round % 5 == 0 {
                    let va = hs_a[0].read(&rt_a.ctx(0));
                    let vb = run_task(KaddReadTask::new(c_b.clone()), &rt_b.ctx(0));
                    assert_eq!(va, vb, "n={n} k={k} round={round}");
                }
                assert_eq!(
                    rt_a.steps_of(pid),
                    rt_b.steps_of(pid),
                    "n={n} k={k} round={round}: primitive counts diverged"
                );
            }
        }
    }

    #[test]
    fn zero_primitive_increments_complete_on_the_priming_poll() {
        use smr::OpTask;
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KaddCounter::new(1, 100); // threshold 101: no publish soon
        let h: SharedKaddHandle = Arc::new(Mutex::new(c.handle(0)));
        let mut t = KaddIncTask::new(h);
        assert!(t.poll(&ctx).is_ready(), "below threshold: zero primitives");
        assert_eq!(ctx.steps_taken(), 0);
    }
}
