//! k-multiplicative accuracy predicates, shared by implementations,
//! tests and the linearizability checker.
//!
//! The relaxed specification (paper §I): a read of an object whose exact
//! value is `v` may return any `x` with `v/k ≤ x ≤ v·k`. All comparisons
//! are done in exact integer arithmetic (`v/k ≤ x ⟺ v ≤ x·k` over the
//! rationals).

/// `true` iff `x` is an admissible k-multiplicative approximation of the
/// exact value `v`: `v/k ≤ x ≤ v·k`.
///
/// For `v = 0` this forces `x = 0` (`x ≤ v·k = 0`); for `x = 0` it forces
/// `v = 0` (`v ≤ x·k = 0`).
pub fn within_k(v: u128, x: u128, k: u64) -> bool {
    let k = u128::from(k);
    // v/k ≤ x  ⟺  v ≤ x·k;  x ≤ v·k.
    v <= x.saturating_mul(k) && x <= v.saturating_mul(k)
}

/// The interval of exact values `v` compatible with a read returning `x`:
/// `⌈x/k⌉ ≤ v ≤ x·k` (empty only in the degenerate sense `x = 0 → v = 0`).
pub fn admissible_exact_range(x: u128, k: u64) -> (u128, u128) {
    let k = u128::from(k);
    (x.div_ceil(k), x.saturating_mul(k))
}

/// `⌊log_k v⌋` for `v ≥ 1` — the MSB index in base `k`, as used by
/// Algorithm 2's `Write`.
pub fn log_k_floor(v: u64, k: u64) -> u32 {
    assert!(v >= 1, "log of zero");
    assert!(k >= 2);
    let mut x = u128::from(v);
    let k = u128::from(k);
    let mut e = 0;
    while x >= k {
        x /= k;
        e += 1;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_k_basic() {
        assert!(within_k(10, 10, 2));
        assert!(within_k(10, 5, 2));
        assert!(within_k(10, 20, 2));
        assert!(!within_k(10, 4, 2));
        assert!(!within_k(10, 21, 2));
    }

    #[test]
    fn within_k_zero_rules() {
        assert!(within_k(0, 0, 5));
        assert!(!within_k(0, 1, 5));
        assert!(!within_k(1, 0, 5));
    }

    #[test]
    fn admissible_range_is_consistent_with_within_k() {
        for k in [2u64, 3, 7] {
            for x in 0..200u128 {
                let (lo, hi) = admissible_exact_range(x, k);
                if x > 0 {
                    assert!(within_k(lo, x, k));
                    assert!(within_k(hi, x, k));
                    if lo > 0 {
                        assert!(!within_k(lo - 1, x, k));
                    }
                    assert!(!within_k(hi + 1, x, k));
                }
            }
        }
    }

    #[test]
    fn log_k_floor_values() {
        assert_eq!(log_k_floor(1, 2), 0);
        assert_eq!(log_k_floor(2, 2), 1);
        assert_eq!(log_k_floor(3, 2), 1);
        assert_eq!(log_k_floor(4, 2), 2);
        assert_eq!(log_k_floor(80, 3), 3);
        assert_eq!(log_k_floor(81, 3), 4);
        assert_eq!(log_k_floor(u64::MAX, 2), 63);
    }

    #[test]
    fn within_k_saturates_instead_of_overflowing() {
        assert!(within_k(u128::MAX, u128::MAX / 2, 3));
    }
}
