//! The paper's extension: an **unbounded** k-multiplicative-accurate max
//! register with sub-logarithmic step complexity.
//!
//! §IV closes by noting that the bounded k-multiplicative max register can
//! be plugged into the unbounded construction of Baig et al. [9] "to
//! obtain an unbounded k-multiplicative-accurate max register with
//! sub-logarithmic amortized step complexity (omitted due to space
//! constraints)". We realize that extension with the level-doubling chain
//! also used by [`maxreg::UnboundedMaxRegister`] (see DESIGN.md for the
//! substitution note):
//!
//! * level `i` is a [`KmultBoundedMaxRegister`] with bound `B_i = 2^(2^i)`
//!   (capped at the `u64` domain) — its inner exact register has only
//!   `O(log_k B_i)` values, so a level-`i` operation costs
//!   `O(log₂ log_k B_i)` steps;
//! * an exact level-pointer max register (domain: the ≤ 7 level indices)
//!   tracks the highest level written.
//!
//! A value `v` lands in the lowest level that can hold it, so any value
//! stored at level `ℓ ≥ 1` is `≥ B_{ℓ−1}` and dominates all lower levels;
//! `write` publishes value-then-pointer, so a read that sees pointer `ℓ`
//! finds a dominating value at level `ℓ`. Per-operation cost for value
//! `v` is `O(log₂ log_k v)` — **sub-logarithmic** in `v`, versus
//! `O(log₂ v)` for the exact unbounded chain.

use crate::kmaxreg::KmultBoundedMaxRegister;
use maxreg::{MaxRegister, TreeMaxRegister};
use smr::ProcCtx;

/// Levels with bounds 2^1, 2^2, 2^4, 2^8, 2^16, 2^32, u64::MAX.
const LEVELS: usize = 7;

/// An unbounded k-multiplicative-accurate max register over `u64` values
/// with `O(log₂ log_k v)` steps per operation on value `v`.
pub struct KmultUnboundedMaxRegister {
    k: u64,
    levels: Vec<KmultBoundedMaxRegister>,
    pointer: TreeMaxRegister,
    written: TreeMaxRegister,
}

impl KmultUnboundedMaxRegister {
    /// A register for `n` processes with accuracy parameter `k ≥ 2`.
    pub fn new(n: usize, k: u64) -> Self {
        assert!(k >= 2, "k must be at least 2");
        assert!(n > 0, "need at least one process");
        KmultUnboundedMaxRegister {
            k,
            levels: (0..LEVELS)
                .map(|i| KmultBoundedMaxRegister::new(n, Self::level_bound(i), k))
                .collect(),
            pointer: TreeMaxRegister::new(LEVELS as u64),
            written: TreeMaxRegister::new(2),
        }
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    fn level_bound(i: usize) -> u64 {
        let bits = 1u32 << i;
        if bits >= 64 {
            u64::MAX
        } else {
            1u64 << bits
        }
    }

    fn level_of(v: u64) -> usize {
        (0..LEVELS)
            .find(|&i| v < Self::level_bound(i))
            .expect("LEVELS covers the domain")
    }

    /// Write `v` (a write of 0 is a no-op).
    pub fn write(&self, ctx: &ProcCtx, v: u64) {
        assert!(v < u64::MAX, "u64::MAX is reserved");
        let level = Self::level_of(v);
        self.levels[level].write(ctx, v);
        self.pointer.write(ctx, level as u64);
        self.written.write(ctx, 1);
    }

    /// Read an approximation `x` of the maximum `v` written so far, with
    /// `v/k ≤ x ≤ v·k` (0 if nothing was written).
    pub fn read(&self, ctx: &ProcCtx) -> u128 {
        if self.written.read(ctx) == 0 {
            return 0;
        }
        let level = self.pointer.read(ctx) as usize;
        self.levels[level].read(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::within_k;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn fresh_register_reads_zero() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = KmultUnboundedMaxRegister::new(1, 2);
        assert_eq!(r.read(&ctx), 0);
    }

    #[test]
    fn sequential_accuracy_across_levels() {
        for k in [2u64, 5] {
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            let r = KmultUnboundedMaxRegister::new(1, k);
            let mut true_max = 0u64;
            for v in [1u64, 3, 200, 65_000, 1 << 20, 1 << 45, 7, 1 << 60] {
                r.write(&ctx, v);
                true_max = true_max.max(v);
                let x = r.read(&ctx);
                assert!(
                    within_k(u128::from(true_max), x, k),
                    "k={k} max={true_max} read {x}"
                );
            }
        }
    }

    #[test]
    fn small_after_large_is_dominated() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = KmultUnboundedMaxRegister::new(1, 2);
        r.write(&ctx, 1 << 50);
        r.write(&ctx, 3);
        let x = r.read(&ctx);
        assert!(x >= 1 << 50);
    }

    #[test]
    fn cost_is_doubly_logarithmic_in_value() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = KmultUnboundedMaxRegister::new(1, 2);
        // Write a huge value: level 6, magnitude domain ~65 values,
        // tree depth ⌈log₂ 66⌉ = 7; plus pointer (depth 3) and flag.
        let s0 = ctx.steps_taken();
        r.write(&ctx, (1 << 62) + 5);
        let cost = ctx.steps_taken() - s0;
        assert!(cost <= 2 * 7 + 2 * 3 + 2, "write cost {cost}");
    }

    #[test]
    fn concurrent_writers_stay_accurate() {
        let n = 6;
        let k = 3;
        let rt = Runtime::free_running(n);
        let r = Arc::new(KmultUnboundedMaxRegister::new(n, k));
        let mut handles = vec![];
        for pid in 0..n {
            let r = r.clone();
            let ctx = rt.ctx(pid);
            handles.push(std::thread::spawn(move || {
                for i in 1..=500u64 {
                    r.write(&ctx, i << pid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ctx = rt.ctx(0);
        let true_max = u128::from(500u64 << (n - 1));
        let x = r.read(&ctx);
        assert!(within_k(true_max, x, k), "max {true_max}, read {x}");
    }
}
