//! The per-process side of Algorithm 1: persistent local variables,
//! `CounterIncrement` (lines 10–29) and `CounterRead` (lines 35–58).

use super::arith::{decompose, log_k_exact, return_value};
use super::KmultCounter;
use smr::ProcCtx;
use std::sync::Arc;

/// The detailed outcome of a `CounterRead`, exposing the `(p, q)` pair the
/// return value was computed from — what Claim III.6's envelope
/// (`u_min(p,q) ≤ v ≤ u_max(p,q,n)`) is stated in terms of — and whether
/// the read completed through the helping mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmultReadOutcome {
    /// The approximate counter value, `ReturnValue(p, q) = k·u_min(p, q)`,
    /// or 0 if no increment was visible.
    pub value: u128,
    /// `p` of the last set switch observed (index `h = q·k + p`).
    pub p: u64,
    /// `q` of the last set switch observed.
    pub q: u64,
    /// `true` if the read returned via the helping mechanism (line 55).
    pub helped: bool,
}

/// Process-local state of Algorithm 1 (paper lines 4–9): one per process.
///
/// The handle owns the persistent local variables `lcounter`, `limit`,
/// `sn`, `l0` and `last`; the shared switches and helping array live in
/// the [`KmultCounter`] it references.
pub struct KmultCounterHandle {
    counter: Arc<KmultCounter>,
    pid: usize,
    /// Unannounced increments (line 6); reset only on a successful
    /// `test&set` (line 19 / 27).
    lcounter: u128,
    /// Announcement threshold (line 7); multiplied by `k` at interval
    /// boundaries (lines 21, 28).
    limit: u128,
    /// Switches set by this process (line 8).
    sn: u64,
    /// 1-based start offset within the current interval (line 9).
    l0: u64,
    /// Read cursor: largest switch index visited (line 5).
    last: u64,
    /// The `(p, q)` of the last set switch the cursor passed — the
    /// pseudocode's loop-carried `p, q`, which must survive across calls
    /// because `last` is persistent and a later read may exit its loop
    /// immediately.
    prev_p: u64,
    prev_q: u64,
    /// Increments buffered *above* the algorithm (not yet applied to it
    /// at all — distinct from `lcounter`, which the algorithm itself
    /// maintains). Filled by [`defer`](KmultCounterHandle::defer),
    /// drained by [`flush`](KmultCounterHandle::flush) /
    /// [`FlushMachine`].
    deferred: u64,
}

impl KmultCounterHandle {
    pub(super) fn new(counter: Arc<KmultCounter>, pid: usize) -> Self {
        KmultCounterHandle {
            counter,
            pid,
            lcounter: 0,
            limit: 1,
            sn: 0,
            l0: 1,
            last: 0,
            prev_p: 0,
            prev_q: 0,
            deferred: 0,
        }
    }

    /// The shared counter this handle operates on.
    pub fn counter(&self) -> &Arc<KmultCounter> {
        &self.counter
    }

    /// This handle's process id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Increments currently unannounced by this process (`lcounter_i`) —
    /// exposed for tests and experiments; reading it is free (it is
    /// process-local state, not a base object).
    pub fn pending_local(&self) -> u128 {
        self.lcounter
    }

    /// `CounterIncrement()` — paper lines 10–29.
    ///
    /// Implemented by driving [`IncMachine`] to completion, so the
    /// closure form and the resumable task form
    /// ([`KmultIncTask`](super::tasks::KmultIncTask)) share one
    /// transcription of the pseudocode and apply identical primitive
    /// sequences.
    pub fn increment(&mut self, ctx: &ProcCtx) {
        let mut m = IncMachine::new();
        while m.step(self, ctx).is_pending() {}
    }

    /// `CounterRead()` — paper lines 35–58 — returning the full outcome.
    ///
    /// Like [`increment`](Self::increment), this drives the shared
    /// [`ReadMachine`] transcription to completion.
    pub fn read_detailed(&mut self, ctx: &ProcCtx) -> KmultReadOutcome {
        let mut m = ReadMachine::new();
        loop {
            if let std::task::Poll::Ready(out) = m.step(self, ctx) {
                return out;
            }
        }
    }

    /// `CounterRead()` — the approximate number of increments.
    pub fn read(&mut self, ctx: &ProcCtx) -> u128 {
        self.read_detailed(ctx).value
    }

    /// Buffer `amount` unit increments locally without touching the
    /// algorithm (zero primitives). Deferred increments are invisible to
    /// every process — including this one's own reads — until
    /// [`flush`](Self::flush) applies them; batching writers trade that
    /// staleness (bounded by the caller's flush policy) for amortized
    /// switch-array traffic.
    pub fn defer(&mut self, amount: u64) {
        self.deferred = self
            .deferred
            .checked_add(amount)
            .expect("deferred increment buffer overflow");
    }

    /// Unit increments currently buffered by [`defer`](Self::defer) and
    /// not yet flushed.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Drain the deferred buffer in one batched attempt: apply every
    /// buffered unit increment back-to-back, exactly as the same number
    /// of [`increment`](Self::increment) calls would (pinned by a
    /// determinism test on values *and* per-pid primitive counts).
    ///
    /// Implemented by driving [`FlushMachine`] to completion, so the
    /// blocking form and the resumable forms share one transcription.
    pub fn flush(&mut self, ctx: &ProcCtx) {
        let mut m = FlushMachine::drain();
        while m.step(self, ctx).is_pending() {}
    }
}

/// Resume point of a batched increment run: `amount` consecutive
/// `CounterIncrement()`s (each an [`IncMachine`]) executed back-to-back,
/// one primitive per granted [`step`](FlushMachine::step), priming step
/// free. Because most increments stay below the announcement threshold
/// (zero primitives), whole runs of the batch collapse into single
/// steps — this is the batching the sketch handles amortize switch
/// traffic with.
///
/// Two flavors: [`FlushMachine::with_amount`] runs a fixed batch (the
/// transcription [`KmultIncTask`](super::tasks::KmultIncTask) drives),
/// and [`FlushMachine::drain`] takes the handle's
/// [`deferred`](KmultCounterHandle::deferred) buffer on its priming step
/// (the transcription [`KmultCounterHandle::flush`] drives). A batch of
/// zero completes on the priming step with zero primitives.
#[derive(Debug)]
pub struct FlushMachine {
    /// `None` until the priming step resolves the batch size (drain
    /// flavor); then the increments still to run, including the one the
    /// current [`IncMachine`] is executing.
    remaining: Option<u64>,
    machine: IncMachine,
}

impl FlushMachine {
    /// A machine applying exactly `amount` unit increments.
    pub fn with_amount(amount: u64) -> Self {
        FlushMachine {
            remaining: Some(amount),
            machine: IncMachine::new(),
        }
    }

    /// A machine that drains the handle's deferred buffer (sized on the
    /// priming step, so increments deferred after construction but
    /// before the first step are included).
    pub fn drain() -> Self {
        FlushMachine {
            remaining: None,
            machine: IncMachine::new(),
        }
    }

    /// Advance the batch by at most one primitive.
    pub fn step(&mut self, h: &mut KmultCounterHandle, ctx: &ProcCtx) -> std::task::Poll<()> {
        use std::task::Poll;
        let remaining = match self.remaining {
            Some(r) => r,
            None => {
                let r = std::mem::take(&mut h.deferred);
                self.remaining = Some(r);
                r
            }
        };
        if remaining == 0 {
            return Poll::Ready(());
        }
        loop {
            if self.machine.step(h, ctx).is_pending() {
                return Poll::Pending;
            }
            let r = self.remaining.as_mut().expect("batch size resolved above");
            *r -= 1;
            if *r == 0 {
                return Poll::Ready(());
            }
            // Next increment of the batch: its priming step is free (no
            // primitive), so it runs within the current step.
            self.machine = IncMachine::new();
        }
    }
}

/// Resume point of a `CounterIncrement` (paper lines 10–29) as a
/// one-primitive-per-step state machine — the single transcription both
/// the blocking closure form and the coop backend's
/// [`OpTask`](smr::OpTask) form execute.
///
/// The first [`step`](IncMachine::step) call *primes*: it runs the local
/// bookkeeping (lines 11–14) and applies no primitive, completing
/// immediately when the increment stays below its announcement
/// threshold. Every later call applies exactly one primitive — matching
/// [`OpTask`](smr::OpTask)'s poll contract.
#[derive(Debug)]
pub struct IncMachine {
    phase: IncPhase,
}

#[derive(Debug)]
enum IncPhase {
    /// Local bookkeeping not yet done (priming step).
    Start,
    /// About to `test&set` `switch_l`; attempts continue through `end`.
    Tas { l: u64, end: u64 },
    /// About to `test&set` `switch_0` (the `j = 0` announcement).
    Tas0,
    /// Won `switch_l`; about to publish `(l, sn)` in the helping array.
    Help { l: u64, end: u64 },
}

impl Default for IncMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl IncMachine {
    /// A machine for one increment.
    pub fn new() -> Self {
        IncMachine {
            phase: IncPhase::Start,
        }
    }

    /// Advance the increment by at most one primitive. See the type
    /// docs for the priming/granted-step contract.
    pub fn step(&mut self, h: &mut KmultCounterHandle, ctx: &ProcCtx) -> std::task::Poll<()> {
        use std::task::Poll;
        assert_eq!(ctx.pid(), h.pid, "handle used with foreign ProcCtx");
        let k = h.counter.k();
        match self.phase {
            IncPhase::Start => {
                // Lines 11–14: pure local computation, no primitive.
                h.lcounter += 1;
                if h.lcounter != h.limit {
                    return Poll::Ready(());
                }
                let j = u64::from(log_k_exact(h.lcounter, k));
                if j > 0 {
                    // Attempt the remainder of interval j: indices
                    // (j−1)·k + l0 ..= j·k (lines 15–23).
                    self.phase = IncPhase::Tas {
                        l: (j - 1) * k + h.l0,
                        end: j * k,
                    };
                } else {
                    // First announcement: switch_0 (lines 25–28).
                    self.phase = IncPhase::Tas0;
                }
                Poll::Pending
            }
            IncPhase::Tas { l, end } => {
                if !h.counter.switch(l).test_and_set(ctx) {
                    // Successfully announced k^j increments (lines 17–23);
                    // the helping-array publish is the next primitive.
                    h.sn += 1;
                    self.phase = IncPhase::Help { l, end };
                    Poll::Pending
                } else if l < end {
                    self.phase = IncPhase::Tas { l: l + 1, end };
                    Poll::Pending
                } else {
                    // Whole interval already set by others (lines 24, 28):
                    // give up announcing at this granularity.
                    h.l0 = 1;
                    h.limit *= u128::from(k);
                    Poll::Ready(())
                }
            }
            IncPhase::Help { l, end } => {
                h.counter.help_write(ctx, h.pid, l, h.sn);
                h.lcounter = 0;
                if l == end {
                    h.limit *= u128::from(k); // line 21
                }
                h.l0 = 1 + l % k; // line 22
                Poll::Ready(())
            }
            IncPhase::Tas0 => {
                if !h.counter.switch(0).test_and_set(ctx) {
                    h.lcounter = 0;
                }
                h.limit *= u128::from(k);
                Poll::Ready(())
            }
        }
    }
}

/// Resume point of a `CounterRead` (paper lines 35–58); the counterpart
/// of [`IncMachine`] — one primitive per granted step, priming step
/// free. A read always applies at least one primitive (the `while`
/// condition of line 38 reads `switch_last`), so the priming step never
/// completes the operation.
#[derive(Debug)]
pub struct ReadMachine {
    phase: ReadPhase,
    /// Switches observed set so far (paper's `c`).
    c: u64,
    /// Loop-carried `(p, q)` of the last set switch passed.
    p: u64,
    q: u64,
    /// First helping scan's sequence numbers (lines 46–48).
    help_snap: Vec<u64>,
}

#[derive(Debug)]
enum ReadPhase {
    /// Loop-carried state not yet initialized (priming step).
    Start,
    /// About to read `switch_last` (line 38).
    Switch,
    /// About to read `H[i]` in a helping scan; `first` is the
    /// snapshot-collecting scan at `c = n`.
    Scan { i: usize, first: bool },
}

impl Default for ReadMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadMachine {
    /// A machine for one read.
    pub fn new() -> Self {
        ReadMachine {
            phase: ReadPhase::Start,
            c: 0,
            p: 0,
            q: 0,
            help_snap: Vec::new(),
        }
    }

    fn finish(&self, h: &mut KmultCounterHandle, k: u64) -> KmultReadOutcome {
        h.prev_p = self.p;
        h.prev_q = self.q;
        if h.last == 0 {
            // No increment was ever announced — and since every first
            // increment attempts switch_0, no increment completed at all
            // before this read (lines 56–57).
            return KmultReadOutcome {
                value: 0,
                p: 0,
                q: 0,
                helped: false,
            };
        }
        KmultReadOutcome {
            value: return_value(self.p, self.q, k),
            p: self.p,
            q: self.q,
            helped: false,
        }
    }

    /// Advance the read by at most one primitive.
    pub fn step(
        &mut self,
        h: &mut KmultCounterHandle,
        ctx: &ProcCtx,
    ) -> std::task::Poll<KmultReadOutcome> {
        use std::task::Poll;
        assert_eq!(ctx.pid(), h.pid, "handle used with foreign ProcCtx");
        let k = h.counter.k();
        let n = h.counter.n() as u64;
        match self.phase {
            ReadPhase::Start => {
                (self.p, self.q) = (h.prev_p, h.prev_q);
                self.phase = ReadPhase::Switch;
                Poll::Pending
            }
            ReadPhase::Switch => {
                if !h.counter.switch(h.last).read(ctx) {
                    return Poll::Ready(self.finish(h, k));
                }
                (self.p, self.q) = decompose(h.last, k);
                // Advance to the first switch of the next interval from an
                // interval's last switch, or jump to the interval's last
                // switch from its first (lines 40–43).
                if h.last.is_multiple_of(k) {
                    h.last += 1;
                } else {
                    h.last += k - 1;
                }
                self.c += 1;
                if self.c.is_multiple_of(n) {
                    self.phase = ReadPhase::Scan {
                        i: 0,
                        first: self.c == n,
                    };
                }
                Poll::Pending
            }
            ReadPhase::Scan { i, first } => {
                let (val, sn) = h.counter.help_read(ctx, i);
                if first {
                    // First helping scan: record sequence numbers
                    // (lines 46–48).
                    self.help_snap.push(sn);
                } else if sn >= self.help_snap[i] + 2 {
                    // A process whose sn advanced by ≥ 2 set a switch
                    // entirely within our execution interval (lines
                    // 50–55, soundness by Lemma III.3).
                    let (hp, hq) = decompose(val, k);
                    h.prev_p = self.p;
                    h.prev_q = self.q;
                    return Poll::Ready(KmultReadOutcome {
                        value: return_value(hp, hq, k),
                        p: hp,
                        q: hq,
                        helped: true,
                    });
                }
                self.phase = if i + 1 == h.counter.n() {
                    ReadPhase::Switch
                } else {
                    ReadPhase::Scan { i: i + 1, first }
                };
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::within_k;
    use smr::Runtime;

    #[test]
    fn fresh_counter_reads_zero() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let mut h = c.handle(0);
        assert_eq!(h.read(&ctx), 0);
        assert_eq!(h.read(&ctx), 0, "repeat reads stay 0");
    }

    #[test]
    fn single_process_trace_k2() {
        // Hand-verified trace for n = 1, k = 2 (see module docs of
        // `kcounter`): reads after 1, 3, 5, 9 increments return 2, 6, 10,
        // 18 — all exactly v·k at announcement points.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let mut h = c.handle(0);

        h.increment(&ctx);
        assert_eq!(h.read(&ctx), 2);
        h.increment(&ctx);
        h.increment(&ctx);
        assert_eq!(h.read(&ctx), 6);
        h.increment(&ctx);
        h.increment(&ctx);
        assert_eq!(h.read(&ctx), 10);
        for _ in 0..4 {
            h.increment(&ctx);
        }
        assert_eq!(h.read(&ctx), 18);
    }

    #[test]
    fn sequential_accuracy_n1() {
        for k in [2u64, 3, 4, 8] {
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            let c = KmultCounter::new(1, k);
            let mut h = c.handle(0);
            for v in 1..=2_000u128 {
                h.increment(&ctx);
                let x = h.read(&ctx);
                assert!(within_k(v, x, k), "k={k}: after {v} increments read {x}");
            }
        }
    }

    #[test]
    fn switches_are_set_in_increasing_order() {
        // Lemma III.2: observe the switch prefix after many increments.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 3);
        let mut h = c.handle(0);
        for _ in 0..5_000 {
            h.increment(&ctx);
        }
        // The set switches must form a contiguous prefix (single process:
        // no gaps possible).
        let mut first_unset = None;
        for j in 0..100 {
            if !c.peek_switch(j) {
                first_unset = Some(j);
                break;
            }
        }
        let fu = first_unset.expect("finite prefix");
        assert!(fu > 0, "some switch set after 5000 increments");
        for j in fu..100 {
            assert!(!c.peek_switch(j), "gap at {j}");
        }
    }

    #[test]
    fn read_cursor_only_advances() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let mut h = c.handle(0);
        let mut prev = 0;
        for _ in 0..200 {
            h.increment(&ctx);
            let _ = h.read(&ctx);
            assert!(h.last >= prev, "cursor moved backwards");
            prev = h.last;
        }
    }

    #[test]
    fn repeated_reads_are_cheap() {
        // The persistent cursor means a second read with no new
        // increments costs exactly one switch read (plus any helping
        // scan), regardless of history length.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let mut h = c.handle(0);
        for _ in 0..10_000 {
            h.increment(&ctx);
        }
        let _ = h.read(&ctx);
        let s0 = ctx.steps_taken();
        let x1 = h.read(&ctx);
        let cost = ctx.steps_taken() - s0;
        assert!(cost <= 2, "idle re-read cost {cost}");
        let x2 = h.read(&ctx);
        assert_eq!(x1, x2, "idle reads are stable");
    }

    #[test]
    fn increment_amortized_cost_is_constant() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 4);
        let mut h = c.handle(0);
        let ops: u64 = 100_000;
        for _ in 0..ops {
            h.increment(&ctx);
        }
        let amortized = ctx.steps_taken() as f64 / ops as f64;
        assert!(amortized < 1.0, "amortized increment steps {amortized}");
    }

    #[test]
    #[should_panic(expected = "foreign ProcCtx")]
    fn handle_rejects_foreign_ctx() {
        let rt = Runtime::free_running(2);
        let ctx1 = rt.ctx(1);
        let c = KmultCounter::new(2, 2);
        let mut h = c.handle(0);
        h.increment(&ctx1);
    }

    #[test]
    fn flush_equals_repeated_increments() {
        // The determinism pin: defer+flush must equal the same number of
        // plain increments on read values AND per-pid primitive counts,
        // across batch sizes straddling announcement thresholds.
        for k in [2u64, 3, 5] {
            for batch in [1u64, 2, 3, 7, 20, 100] {
                let rt_a = Runtime::free_running(1);
                let ctx_a = rt_a.ctx(0);
                let c_a = KmultCounter::new(1, k);
                let mut h_a = c_a.handle(0);

                let rt_b = Runtime::free_running(1);
                let ctx_b = rt_b.ctx(0);
                let c_b = KmultCounter::new(1, k);
                let mut h_b = c_b.handle(0);

                for round in 0..5 {
                    for _ in 0..batch {
                        h_a.increment(&ctx_a);
                    }
                    h_b.defer(batch);
                    assert_eq!(h_b.deferred(), batch);
                    h_b.flush(&ctx_b);
                    assert_eq!(h_b.deferred(), 0, "flush drains the buffer");
                    assert_eq!(
                        h_a.read(&ctx_a),
                        h_b.read(&ctx_b),
                        "k={k} batch={batch} round={round}: values diverged"
                    );
                }
                assert_eq!(
                    rt_a.steps_of(0),
                    rt_b.steps_of(0),
                    "k={k} batch={batch}: primitive counts diverged"
                );
            }
        }
    }

    #[test]
    fn deferred_increments_are_invisible_until_flushed() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let mut h = c.handle(0);
        h.defer(5);
        assert_eq!(h.read(&ctx), 0, "deferred units not yet applied");
        h.flush(&ctx);
        assert!(h.read(&ctx) > 0);
    }

    #[test]
    fn empty_flush_applies_no_primitive() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let mut h = c.handle(0);
        let mut m = FlushMachine::drain();
        assert!(m.step(&mut h, &ctx).is_ready(), "nothing to drain");
        assert_eq!(ctx.steps_taken(), 0);
        h.flush(&ctx); // blocking form likewise
        assert_eq!(ctx.steps_taken(), 0);
    }

    #[test]
    fn drain_machine_sizes_on_the_priming_step() {
        // Increments deferred after construction but before the first
        // step are included — the machine reads the buffer at priming.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let mut h = c.handle(0);
        let mut m = FlushMachine::drain();
        h.defer(3);
        while m.step(&mut h, &ctx).is_pending() {}
        assert_eq!(h.deferred(), 0);
        assert_eq!(h.read(&ctx), 6, "same trace as 3 single increments at k=2");
    }
}
