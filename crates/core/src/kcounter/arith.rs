//! Value arithmetic for Algorithm 1: switch-index geometry and
//! `ReturnValue`, in `u128` (the paper's quantities grow like `k^(q+2)`).
//!
//! Switch-index geometry (paper §III): `switch_0` is special; for `q ≥ 0`
//! the *(q+1)-th interval* is the index range `[q·k + 1, (q+1)·k]`, and a
//! set switch there witnesses `k^(q+1)` increments by one process. A
//! switch index `h ≥ 1` therefore decomposes as `h = q·k + p` with
//! `p = h mod k`, `q = ⌊h/k⌋`; the interval boundary `h = (q+1)k` shows up
//! as `(p = 0, q+1)` — which is why `CounterRead` only ever manipulates
//! `p ∈ {0, 1}`.

/// Decompose a switch index `h ≥ 0` into the `(p, q)` pair used by
/// `ReturnValue`: `p = h mod k`, `q = ⌊h / k⌋`.
pub fn decompose(h: u64, k: u64) -> (u64, u64) {
    (h % k, h / k)
}

/// `k^e` in `u128`, panicking on overflow (an execution long enough to
/// overflow `u128` here is physically unreachable).
pub fn pow_k(k: u64, e: u32) -> u128 {
    u128::from(k)
        .checked_pow(e)
        .expect("k^e overflows u128; execution length out of modelled range")
}

/// `log_k(v)` for `v` an exact power of `k` (callers uphold this:
/// `lcounter == limit` and `limit` is only ever multiplied by `k`).
pub fn log_k_exact(v: u128, k: u64) -> u32 {
    debug_assert!(v > 0);
    let k = u128::from(k);
    let mut x = v;
    let mut e = 0;
    while x > 1 {
        debug_assert!(x.is_multiple_of(k), "{v} is not a power of {k}");
        x /= k;
        e += 1;
    }
    e
}

/// Algorithm 1's `ReturnValue(p, q)` (lines 30–34):
/// `k · (1 + p·k^(q+1) + Σ_{l=1..q} k^(l+1))`.
pub fn return_value(p: u64, q: u64, k: u64) -> u128 {
    let q32 = u32::try_from(q).expect("interval index fits u32");
    let mut ret: u128 = 1 + u128::from(p) * pow_k(k, q32 + 1);
    for l in 1..=q32 {
        ret += pow_k(k, l + 1);
    }
    u128::from(k) * ret
}

/// `u_min(p, q)` of Claim III.6: the minimum number of increments
/// linearized before a read that returns `ReturnValue(p, q)`:
/// `1 + Σ_{l=1..q} k^(l+1) + p·k^(q+1)`. Note `return_value = k · u_min`.
pub fn u_min(p: u64, q: u64, k: u64) -> u128 {
    return_value(p, q, k) / u128::from(k)
}

/// `u_max(p, q, n)` of Claim III.6: the maximum number of increments
/// linearized before such a read:
/// `1 + Σ_{l=1..q} k^(l+1) + p·(k−1)·k^(q+1) + n·(k^(q+1) − 1)`.
pub fn u_max(p: u64, q: u64, k: u64, n: usize) -> u128 {
    let q32 = u32::try_from(q).expect("interval index fits u32");
    let kq1 = pow_k(k, q32 + 1);
    let mut m: u128 = 1 + u128::from(p) * u128::from(k - 1) * kq1;
    for l in 1..=q32 {
        m += pow_k(k, l + 1);
    }
    m + (n as u128) * (kq1 - 1)
}

/// Number of increments a process must perform locally before it may
/// attempt a switch in the interval containing index `h ≥ 1`
/// (Lemma III.7): `k^(i+1)` for `h ∈ [i·k + 1, (i+1)·k]`.
pub fn increments_to_attempt(h: u64, k: u64) -> u128 {
    assert!(h >= 1);
    let i = (h - 1) / k; // interval ordinal: h ∈ [i·k + 1, (i+1)·k]
    pow_k(k, u32::try_from(i).expect("interval fits u32") + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_round_trips() {
        let k = 4;
        for h in 0..100 {
            let (p, q) = decompose(h, k);
            assert_eq!(q * k + p, h);
            assert!(p < k);
        }
    }

    #[test]
    fn pow_and_log_agree() {
        for k in [2u64, 3, 10] {
            for e in 0..12u32 {
                assert_eq!(log_k_exact(pow_k(k, e), k), e);
            }
        }
    }

    #[test]
    fn return_value_base_cases() {
        // h = 0 → (p, q) = (0, 0): ReturnValue = k·(1 + 0) = k.
        assert_eq!(return_value(0, 0, 4), 4);
        // h = 1 → (1, 0): k·(1 + 1·k) = k + k².
        assert_eq!(return_value(1, 0, 4), 4 + 16);
        // h = k → (0, 1): k·(1 + k²) (the Σ term contributes k² at l=1).
        assert_eq!(return_value(0, 1, 4), 4 * (1 + 16));
    }

    #[test]
    fn return_value_is_k_times_u_min() {
        for k in [2u64, 3, 5] {
            for q in 0..5 {
                for p in [0u64, 1] {
                    assert_eq!(return_value(p, q, k), u128::from(k) * u_min(p, q, k));
                }
            }
        }
    }

    #[test]
    fn u_max_dominates_u_min() {
        for k in [2u64, 4, 8] {
            for q in 0..6 {
                for p in [0u64, 1] {
                    assert!(u_max(p, q, k, 16) >= u_min(p, q, k));
                }
            }
        }
    }

    #[test]
    fn u_min_is_monotone_in_switch_index() {
        // Walking the read cursor h = 0, 1, k, k+1, 2k, … must yield
        // non-decreasing u_min.
        let k = 4;
        let mut prev = 0u128;
        let mut h = 0u64;
        for _ in 0..20 {
            let (p, q) = decompose(h, k);
            let um = u_min(p, q, k);
            assert!(um >= prev, "u_min not monotone at h = {h}");
            prev = um;
            h = if h.is_multiple_of(k) {
                h + 1
            } else {
                h + k - 1
            };
        }
    }

    #[test]
    fn increments_to_attempt_matches_lemma() {
        let k = 4;
        // Interval 1 = [1..4] needs k; interval 2 = [5..8] needs k².
        for h in 1..=4 {
            assert_eq!(increments_to_attempt(h, k), 4);
        }
        for h in 5..=8 {
            assert_eq!(increments_to_attempt(h, k), 16);
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn pow_k_overflow_panics() {
        let _ = pow_k(u64::MAX, 3);
    }
}
