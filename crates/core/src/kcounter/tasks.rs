//! [`OpTask`] forms of Algorithm 1's operations, for the coop execution
//! backend (they run unchanged on the thread backend too).
//!
//! The tasks drive the same [`IncMachine`]/[`ReadMachine`] resume-point
//! transcriptions that the blocking `increment`/`read_detailed` methods
//! loop over, so both submission forms apply byte-identical primitive
//! sequences — the cross-backend equivalence the driver tests rely on.
//!
//! A process's persistent local variables live in its
//! [`KmultCounterHandle`]; successive operations of the process need it
//! one after another, so tasks share it behind an `Arc<Mutex<_>>` (the
//! same idiom the closure-based tests use). The lock is uncontended by
//! construction — a process runs one operation at a time.

use super::handle::{FlushMachine, ReadMachine};
use super::KmultCounterHandle;
use parking_lot::Mutex;
use smr::{OpTask, Poll, ProcCtx};
use std::sync::Arc;

/// A shareable handle, as tasks need it. One per process.
pub type SharedKmultHandle = Arc<Mutex<KmultCounterHandle>>;

/// `CounterIncrement()` × `amount`, as a resumable task. Submit with
/// [`OpSpec::inc_by`](smr::OpSpec::inc_by) carrying the same `amount` so
/// the recorded multiplicity matches.
pub struct KmultIncTask {
    handle: SharedKmultHandle,
    machine: FlushMachine,
}

impl KmultIncTask {
    /// A single increment.
    pub fn new(handle: SharedKmultHandle) -> Self {
        Self::batched(handle, 1)
    }

    /// A batch of `amount` increments submitted as one operation,
    /// driving the same [`FlushMachine`] transcription the batching
    /// handles use.
    ///
    /// # Panics
    /// Panics if `amount == 0`.
    pub fn batched(handle: SharedKmultHandle, amount: u64) -> Self {
        assert!(amount > 0, "a batch needs at least one increment");
        KmultIncTask {
            handle,
            machine: FlushMachine::with_amount(amount),
        }
    }
}

impl OpTask for KmultIncTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        self.machine.step(&mut h, ctx).map(|()| 0)
    }
}

/// `CounterRead()`, as a resumable task; resolves to the approximate
/// counter value.
pub struct KmultReadTask {
    handle: SharedKmultHandle,
    machine: ReadMachine,
}

impl KmultReadTask {
    /// A read through `handle`.
    pub fn new(handle: SharedKmultHandle) -> Self {
        KmultReadTask {
            handle,
            machine: ReadMachine::new(),
        }
    }
}

impl OpTask for KmultReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        let mut h = self.handle.lock();
        match self.machine.step(&mut h, ctx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(outcome) => Poll::Ready(outcome.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KmultCounter;
    use smr::Runtime;

    /// Drive a task to completion on a free-running runtime, counting
    /// polls; the machine transcriptions must match the blocking forms
    /// primitive-for-primitive.
    fn run_task<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
        loop {
            if let Poll::Ready(v) = t.poll(ctx) {
                return v;
            }
        }
    }

    #[test]
    fn task_forms_match_blocking_forms() {
        let n = 1;
        for k in [2u64, 3, 5] {
            // Blocking reference run.
            let rt_a = Runtime::free_running(n);
            let ctx_a = rt_a.ctx(0);
            let c_a = KmultCounter::new(n, k);
            let mut h_a = c_a.handle(0);
            // Task run.
            let rt_b = Runtime::free_running(n);
            let ctx_b = rt_b.ctx(0);
            let c_b = KmultCounter::new(n, k);
            let h_b: SharedKmultHandle = Arc::new(Mutex::new(c_b.handle(0)));

            for round in 1..=200u64 {
                h_a.increment(&ctx_a);
                let _ = run_task(KmultIncTask::new(h_b.clone()), &ctx_b);
                if round % 7 == 0 {
                    let va = h_a.read(&ctx_a);
                    let vb = run_task(KmultReadTask::new(h_b.clone()), &ctx_b);
                    assert_eq!(va, vb, "k={k} round={round}");
                }
            }
            assert_eq!(
                rt_a.steps_of(0),
                rt_b.steps_of(0),
                "k={k}: primitive counts diverged between forms"
            );
        }
    }

    #[test]
    fn batched_task_equals_repeated_increments() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        let h: SharedKmultHandle = Arc::new(Mutex::new(c.handle(0)));
        let _ = run_task(KmultIncTask::batched(h.clone(), 9), &ctx);
        let v = run_task(KmultReadTask::new(h), &ctx);
        assert_eq!(v, 18, "same trace as 9 single increments at k=2");
    }
}
