//! Algorithm 1: the wait-free linearizable k-multiplicative-accurate
//! unbounded counter.
//!
//! Shared state (paper lines 1–3):
//!
//! * `switch_j`, `j ∈ ℕ` — an unbounded sequence of 1-bit base objects
//!   supporting `read` and `test&set`, held in a lock-free
//!   [`SegArray`] so every bit has stable identity.
//! * `H[n]` — the helping array: one register per process holding a
//!   `(val, sn)` pair (packed into one `u64`, as the pseudocode treats the
//!   pair as a single atomic value).
//!
//! The per-process persistent local variables (lines 4–9) live in a
//! [`KmultCounterHandle`], one per process.
//!
//! Accuracy contract: a `CounterRead` returning `x` with `v` increments
//! linearized before it satisfies `v/k ≤ x ≤ v·k`, provided `k ≥ √n`
//! (Theorem III.9). `u_min`/`u_max` of Claim III.6 give the exact
//! envelope; see [`arith`]. **Startup boundary note** (documented in
//! DESIGN.md): at the very beginning of an execution, while only
//! `switch_0` is set (the `(p,q) = (0,0)` window), up to `1 + n(k−1)`
//! increments may be pending against a read of `k`, so the raw `v ≤ k·x`
//! side needs `n ≤ k + 1` there; Claim III.6's inequality covers
//! `q ≥ 1 ∨ p ≥ 1`. Tests check the paper's envelope everywhere and the
//! raw k-accuracy once the execution leaves that window (or when
//! `n ≤ k + 1`).

pub mod arith;
mod handle;
pub mod tasks;

pub use handle::{FlushMachine, IncMachine, KmultCounterHandle, KmultReadOutcome, ReadMachine};
pub use tasks::{KmultIncTask, KmultReadTask, SharedKmultHandle};

use smr::{CachePadded, ProcCtx, Register, SegArray, TasBit};
use std::sync::Arc;

/// Switches resident in the padded hot stripe; `switch_j` for `j ≥`
/// this lives in the on-demand cold `SegArray`.
const HOT_SWITCHES: usize = 64;

/// The shared part of Algorithm 1. Create per-process
/// [`KmultCounterHandle`]s with [`KmultCounter::handle`] to operate on it.
pub struct KmultCounter {
    k: u64,
    n: usize,
    /// `switch_j` for `j < HOT_SWITCHES`, one cache line per bit. The
    /// low-index switches absorb almost all `test&set` traffic (the
    /// frontier index grows roughly logarithmically in the count), so
    /// striping them keeps concurrent writers — at this counter and at
    /// neighbouring counters in sharded sketches — from false-sharing a
    /// line.
    hot_switches: Box<[CachePadded<TasBit>]>,
    /// `switch_j` for `j ≥ HOT_SWITCHES` (allocated on demand; segments
    /// are cache-line aligned, see [`SegArray`]).
    cold_switches: SegArray<TasBit>,
    /// `H[i] = (val, sn)` packed as `val << 32 | sn`.
    help: Vec<Register>,
}

impl KmultCounter {
    /// A k-multiplicative-accurate counter for `n` processes.
    ///
    /// The accuracy theorem needs `k ≥ √n`; smaller `k` is accepted (the
    /// object is still wait-free and linearizable w.r.t. *some* relaxed
    /// envelope) so the lower-bound experiments can probe the `k < √n`
    /// regime — check [`KmultCounter::accuracy_guaranteed`].
    ///
    /// # Panics
    /// Panics if `n == 0` or `k < 2`.
    pub fn new(n: usize, k: u64) -> Arc<Self> {
        assert!(n > 0, "need at least one process");
        assert!(k >= 2, "k must be at least 2");
        Arc::new(KmultCounter {
            k,
            n,
            hot_switches: (0..HOT_SWITCHES)
                .map(|_| CachePadded::new(TasBit::new()))
                .collect(),
            cold_switches: SegArray::new(),
            help: (0..n).map(|_| Register::new(0)).collect(),
        })
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `true` iff `k ≥ √n`, the premise of Theorem III.9.
    pub fn accuracy_guaranteed(&self) -> bool {
        self.k.saturating_mul(self.k) >= self.n as u64
    }

    /// A handle for process `pid`, holding its persistent local variables.
    ///
    /// Each process must use exactly one handle; the handle asserts that
    /// the [`ProcCtx`] passed to its operations matches `pid`.
    pub fn handle(self: &Arc<Self>, pid: usize) -> KmultCounterHandle {
        assert!(pid < self.n, "pid {pid} out of range (n = {})", self.n);
        KmultCounterHandle::new(self.clone(), pid)
    }

    /// `switch_j`: the hot padded stripe for low indices, the cold
    /// segment array beyond it.
    ///
    /// # Panics
    /// Panics with the offending index if `j` does not fit this
    /// platform's `usize` (see [`peek_switch`](KmultCounter::peek_switch)).
    pub(crate) fn switch(&self, j: u64) -> &TasBit {
        let idx = Self::switch_index(j);
        if idx < HOT_SWITCHES {
            &self.hot_switches[idx]
        } else {
            self.cold_switches.get(idx - HOT_SWITCHES)
        }
    }

    /// Narrow a switch index to `usize`. On 64-bit platforms this is
    /// total; on narrower ones an index beyond `usize::MAX` — which no
    /// reachable execution produces (the frontier grows logarithmically
    /// in the increment count) — panics with the index in the message
    /// rather than a context-free `expect`.
    fn switch_index(j: u64) -> usize {
        usize::try_from(j).unwrap_or_else(|_| {
            panic!(
                "switch index {j} does not fit usize on this platform (max {})",
                usize::MAX
            )
        })
    }

    /// Read `H[i]`, unpacking the `(val, sn)` pair. One step.
    pub(crate) fn help_read(&self, ctx: &ProcCtx, i: usize) -> (u64, u64) {
        let raw = self.help[i].read(ctx);
        (raw >> 32, raw & 0xFFFF_FFFF)
    }

    /// Write `(val, sn)` to `H[i]`. One step.
    pub(crate) fn help_write(&self, ctx: &ProcCtx, i: usize, val: u64, sn: u64) {
        assert!(val < (1 << 32), "switch index exceeds packing width");
        assert!(sn < (1 << 32), "sequence number exceeds packing width");
        self.help[i].write(ctx, (val << 32) | sn);
    }

    /// Test-and-inspection view of `switch_j` without charging a step.
    /// **Not a primitive.**
    ///
    /// # Panics
    /// Panics (with the index in the message) if `j` exceeds this
    /// platform's `usize` — only possible on 32-bit targets, and only
    /// for indices no reachable execution produces.
    pub fn peek_switch(&self, j: u64) -> bool {
        self.switch(j).peek()
    }

    /// Test-and-inspection view of the counter's current return value:
    /// walk the switch prefix exactly like `CounterRead`'s cursor (from
    /// index 0, so no handle state is needed or touched) and expand the
    /// leading exponent. **Not a primitive** — zero steps are charged;
    /// for shadow checks in tests and experiments only, never inside an
    /// operation.
    pub fn peek_approx_value(&self) -> u128 {
        let (mut p, mut q) = (0, 0);
        let mut last = 0u64;
        let mut seen = false;
        while self.peek_switch(last) {
            seen = true;
            (p, q) = arith::decompose(last, self.k);
            // The cursor geometry of CounterRead lines 40–43.
            if last.is_multiple_of(self.k) {
                last += 1;
            } else {
                last += self.k - 1;
            }
        }
        if seen {
            arith::return_value(p, q, self.k)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::Runtime;

    #[test]
    fn construction_validates() {
        let c = KmultCounter::new(4, 2);
        assert_eq!(c.k(), 2);
        assert_eq!(c.n(), 4);
        assert!(c.accuracy_guaranteed());
        let c = KmultCounter::new(16, 3);
        assert!(!c.accuracy_guaranteed(), "3 < √16");
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn k_one_is_rejected() {
        let _ = KmultCounter::new(1, 1);
    }

    #[test]
    fn help_pack_round_trips() {
        let rt = Runtime::free_running(2);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(2, 4);
        c.help_write(&ctx, 1, 123_456, 789);
        assert_eq!(c.help_read(&ctx, 1), (123_456, 789));
    }

    #[test]
    fn switches_start_clear() {
        let c = KmultCounter::new(1, 2);
        assert!(!c.peek_switch(0));
        assert!(!c.peek_switch(1000));
    }

    #[test]
    fn switches_have_stable_identity_across_the_hot_cold_boundary() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let c = KmultCounter::new(1, 2);
        // Set a bit on each side of the boundary and at the seam.
        for j in [0, 63, 64, 65, 500] {
            assert!(!c.switch(j).test_and_set(&ctx));
            assert!(c.peek_switch(j), "switch {j} lost");
            assert!(c.switch(j).test_and_set(&ctx), "switch {j} reset");
        }
        assert!(!c.peek_switch(1), "neighbour disturbed");
        assert!(!c.peek_switch(66), "cold neighbour disturbed");
    }

    #[test]
    fn hot_switches_do_not_share_cache_lines() {
        let c = KmultCounter::new(1, 2);
        let a = c.switch(0) as *const _ as usize;
        let b = c.switch(1) as *const _ as usize;
        assert!(b.abs_diff(a) >= 64, "hot switches share a line");
    }

    #[test]
    fn peek_approx_value_matches_a_fresh_read() {
        // The free peek must agree with what a fresh handle's CounterRead
        // would return (both walk the whole switch prefix from 0), and
        // charge no steps.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        for k in [2u64, 3] {
            let c = KmultCounter::new(1, k);
            assert_eq!(c.peek_approx_value(), 0);
            let mut h = c.handle(0);
            for i in 1..=200u32 {
                h.increment(&ctx);
                if i % 13 == 0 {
                    let steps_before = ctx.steps_taken();
                    let peeked = c.peek_approx_value();
                    assert_eq!(ctx.steps_taken(), steps_before, "peek is free");
                    let mut fresh = c.handle(0);
                    assert_eq!(peeked, fresh.read(&ctx), "k={k} after {i} incs");
                }
            }
        }
    }
}
