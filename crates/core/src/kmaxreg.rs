//! Algorithm 2: the k-multiplicative-accurate m-bounded max register.
//!
//! The idea (paper §IV): store only the *base-k magnitude* of written
//! values. `Write(v)` computes `p = ⌊log_k v⌋ + 1` — the index of the bit
//! to the left of `v`'s most significant base-k digit — and writes `p`
//! into an **exact** `(⌊log_k(m−1)⌋ + 1)`-bounded max register `M`.
//! `Read()` returns `k^p` for the largest stored `p` (0 if none).
//!
//! Accuracy: if the true maximum is `v` with `⌊log_k v⌋ = p − 1`, then
//! `v ∈ [k^(p−1), k^p − 1]` and the read returns `x = k^p ∈ [v, v·k]` —
//! one-sidedly within the `[v/k, v·k]` envelope.
//!
//! Step complexity: one operation on `M`, whose domain has only
//! `⌊log_k(m−1)⌋ + 2` values — so with the adaptive exact register the
//! cost is `O(min(log₂ log_k m, n))`, matching Theorem IV.2 and the lower
//! bound of Theorem V.2 (an *exponential* improvement over the exact
//! `Θ(min(log₂ m, n))`).

use crate::accuracy::log_k_floor;
use maxreg::{AdaptiveMaxRegister, AdaptiveReadMachine, AdaptiveWriteMachine};
use smr::{OpTask, Poll, ProcCtx};
use std::sync::Arc;

/// A k-multiplicative-accurate `m`-bounded max register
/// (wait-free, linearizable, `O(min(log₂ log_k m, n))` per operation).
///
/// Writes accept values in `{0,…,m−1}` (a write of 0 is a no-op, as for
/// any max register); reads return `k^p ≤ (m−1)·k`, hence the `u128`
/// return type.
///
/// ```
/// use approx_objects::KmultBoundedMaxRegister;
/// use smr::Runtime;
///
/// let rt = Runtime::free_running(1);
/// let ctx = rt.ctx(0);
/// let reg = KmultBoundedMaxRegister::new(1, 1 << 30, 2);
/// reg.write(&ctx, 1_000_000);
/// let x = reg.read(&ctx);
/// assert!(x >= 1_000_000 && x <= 2_000_000); // within [v, v·k]
/// ```
pub struct KmultBoundedMaxRegister {
    k: u64,
    m: u64,
    /// The exact bounded max register `M` over magnitude indices
    /// `{0,…,⌊log_k(m−1)⌋ + 1}`.
    magnitude: AdaptiveMaxRegister,
}

impl KmultBoundedMaxRegister {
    /// A register for values `{0,…,m−1}` shared by `n` processes, with
    /// accuracy parameter `k ≥ 2`.
    ///
    /// # Panics
    /// Panics if `m < 2`, `k < 2` or `n == 0`.
    pub fn new(n: usize, m: u64, k: u64) -> Self {
        assert!(m >= 2, "bound must be at least 2");
        assert!(k >= 2, "k must be at least 2");
        assert!(n > 0, "need at least one process");
        let top_index = u64::from(log_k_floor(m - 1, k)) + 1;
        KmultBoundedMaxRegister {
            k,
            m,
            magnitude: AdaptiveMaxRegister::new(n, top_index + 1),
        }
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The bound `m` (writes accept `{0,…,m−1}`).
    pub fn m(&self) -> u64 {
        self.m
    }

    /// `Write(v)` — paper lines 7–9.
    ///
    /// Implemented by driving [`KmultMaxWriteMachine`] to completion, so
    /// the blocking form and the resumable task form
    /// ([`KmultMaxWriteTask`]) share one transcription.
    pub fn write(&self, ctx: &ProcCtx, v: u64) {
        let mut m = KmultMaxWriteMachine::new(self, v);
        while m.step(self, ctx).is_pending() {}
    }

    /// `Read()` — paper lines 2–5: `k^p` for the largest magnitude index
    /// written, 0 if none.
    ///
    /// Like [`write`](Self::write), drives the shared
    /// [`KmultMaxReadMachine`] transcription.
    pub fn read(&self, ctx: &ProcCtx) -> u128 {
        let mut m = KmultMaxReadMachine::new(self);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }
}

/// Resume point of a `KmultBoundedMaxRegister::write`: the base-k
/// magnitude index is computed locally (paper line 8) and written into
/// the exact magnitude register through its arm-selected machine. One
/// primitive per [`step`](KmultMaxWriteMachine::step), priming step
/// free; a write of 0 is a no-op and completes on the priming step.
#[derive(Debug)]
pub struct KmultMaxWriteMachine {
    /// `None` for a write of 0 (ignored, like any max register).
    inner: Option<AdaptiveWriteMachine>,
}

impl KmultMaxWriteMachine {
    /// A machine writing `v` into `reg`.
    ///
    /// # Panics
    /// Panics if `v` is out of range, like the blocking write.
    pub fn new(reg: &KmultBoundedMaxRegister, v: u64) -> Self {
        assert!(v < reg.m, "value {v} out of range (m = {})", reg.m);
        KmultMaxWriteMachine {
            inner: (v > 0).then(|| {
                let p = u64::from(log_k_floor(v, reg.k)) + 1;
                AdaptiveWriteMachine::new(&reg.magnitude, p)
            }),
        }
    }

    /// Advance the write by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &KmultBoundedMaxRegister, ctx: &ProcCtx) -> Poll<()> {
        match &mut self.inner {
            None => Poll::Ready(()), // write of 0: zero primitives
            Some(m) => m.step(&reg.magnitude, ctx),
        }
    }
}

/// Resume point of a `KmultBoundedMaxRegister::read`: read the
/// magnitude register, then expand `k^p` locally on the completing
/// step.
#[derive(Debug)]
pub struct KmultMaxReadMachine {
    inner: AdaptiveReadMachine,
}

impl KmultMaxReadMachine {
    /// A machine reading `reg`.
    pub fn new(reg: &KmultBoundedMaxRegister) -> Self {
        KmultMaxReadMachine {
            inner: AdaptiveReadMachine::new(&reg.magnitude),
        }
    }

    /// Advance the read by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &KmultBoundedMaxRegister, ctx: &ProcCtx) -> Poll<u128> {
        self.inner.step(&reg.magnitude, ctx).map(|p| {
            if p == 0 {
                0
            } else {
                u128::from(reg.k).pow(u32::try_from(p).expect("magnitude fits u32"))
            }
        })
    }
}

/// `KmultBoundedMaxRegister::write` as a resumable [`OpTask`] for the
/// coop backend. Submit with [`OpSpec::write`](smr::OpSpec::write).
pub struct KmultMaxWriteTask {
    reg: Arc<KmultBoundedMaxRegister>,
    machine: KmultMaxWriteMachine,
}

impl KmultMaxWriteTask {
    /// A write of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range, like the blocking write.
    pub fn new(reg: Arc<KmultBoundedMaxRegister>, v: u64) -> Self {
        let machine = KmultMaxWriteMachine::new(&reg, v);
        KmultMaxWriteTask { reg, machine }
    }
}

impl OpTask for KmultMaxWriteTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx).map(|()| 0)
    }
}

/// `KmultBoundedMaxRegister::read` as a resumable [`OpTask`] for the
/// coop backend. Submit with [`OpSpec::read`](smr::OpSpec::read).
pub struct KmultMaxReadTask {
    reg: Arc<KmultBoundedMaxRegister>,
    machine: KmultMaxReadMachine,
}

impl KmultMaxReadTask {
    /// A read.
    pub fn new(reg: Arc<KmultBoundedMaxRegister>) -> Self {
        let machine = KmultMaxReadMachine::new(&reg);
        KmultMaxReadTask { reg, machine }
    }
}

impl OpTask for KmultMaxReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::within_k;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn fresh_register_reads_zero() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = KmultBoundedMaxRegister::new(1, 1 << 20, 2);
        assert_eq!(r.read(&ctx), 0);
    }

    #[test]
    fn sequential_accuracy_exhaustive_small() {
        for k in [2u64, 3, 4] {
            let m = 500;
            for v in 1..m {
                let rt = Runtime::free_running(1);
                let ctx = rt.ctx(0);
                let r = KmultBoundedMaxRegister::new(1, m, k);
                r.write(&ctx, v);
                let x = r.read(&ctx);
                assert!(within_k(u128::from(v), x, k), "k={k} v={v} read {x}");
                assert!(x >= u128::from(v), "one-sided: x ≥ v");
            }
        }
    }

    #[test]
    fn running_maximum_is_respected() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let k = 3;
        let r = KmultBoundedMaxRegister::new(1, 100_000, k);
        let mut true_max = 0u64;
        for v in [5u64, 77, 3, 9_999, 12, 80_000, 1] {
            r.write(&ctx, v);
            true_max = true_max.max(v);
            let x = r.read(&ctx);
            assert!(within_k(u128::from(true_max), x, k));
            assert!(x >= u128::from(true_max));
        }
    }

    #[test]
    fn write_zero_is_noop() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = KmultBoundedMaxRegister::new(1, 64, 2);
        r.write(&ctx, 0);
        assert_eq!(r.read(&ctx), 0);
        r.write(&ctx, 30);
        r.write(&ctx, 0);
        let x = r.read(&ctx);
        assert!(x >= 30);
    }

    #[test]
    fn step_complexity_is_doubly_logarithmic() {
        // m = 2^48, k = 2: magnitude domain has 50 values, so the tree
        // depth is ⌈log₂ 50⌉ = 6 — per-op cost ≤ ~2·6+2, far below
        // log₂ m = 48.
        let m = 1u64 << 48;
        let rt = Runtime::free_running(64);
        let r = KmultBoundedMaxRegister::new(64, m, 2);
        let ctx = rt.ctx(0);
        let s0 = ctx.steps_taken();
        r.write(&ctx, m - 1);
        let write_cost = ctx.steps_taken() - s0;
        let s0 = ctx.steps_taken();
        let _ = r.read(&ctx);
        let read_cost = ctx.steps_taken() - s0;
        assert!(write_cost <= 14, "write cost {write_cost}");
        assert!(read_cost <= 14, "read cost {read_cost}");
    }

    #[test]
    fn concurrent_writers_stay_accurate() {
        let n = 8;
        let k = 4;
        let m = 1u64 << 30;
        let rt = Runtime::free_running(n);
        let r = Arc::new(KmultBoundedMaxRegister::new(n, m, k));
        let mut handles = vec![];
        for pid in 0..n {
            let r = r.clone();
            let ctx = rt.ctx(pid);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    r.write(&ctx, (pid as u64 + 1) * 1_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ctx = rt.ctx(0);
        let true_max = u128::from((n as u64) * 1_000 + 999);
        let x = r.read(&ctx);
        assert!(within_k(true_max, x, k), "max {true_max}, read {x}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = KmultBoundedMaxRegister::new(1, 64, 2);
        r.write(&ctx, 64);
    }

    #[test]
    fn task_forms_match_blocking_forms() {
        fn run_task<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
            loop {
                if let Poll::Ready(v) = t.poll(ctx) {
                    return v;
                }
            }
        }
        // Both arms of the inner adaptive register: many processes with
        // a huge bound (collect), few values (tree).
        for (n, m, k) in [
            (1usize, 1u64 << 30, 2u64),
            (64, 1 << 20, 3),
            (2, 1 << 48, 2),
        ] {
            let seq = [1u64, 77, 0, 9_999, 12, 80_000, 5];

            let rt_a = Runtime::free_running(n);
            let ctx_a = rt_a.ctx(0);
            let reg_a = KmultBoundedMaxRegister::new(n, m, k);

            let rt_b = Runtime::free_running(n);
            let ctx_b = rt_b.ctx(0);
            let reg_b = Arc::new(KmultBoundedMaxRegister::new(n, m, k));

            for &v in &seq {
                reg_a.write(&ctx_a, v);
                let _ = run_task(KmultMaxWriteTask::new(reg_b.clone(), v), &ctx_b);
                let ra = reg_a.read(&ctx_a);
                let rb = run_task(KmultMaxReadTask::new(reg_b.clone()), &ctx_b);
                assert_eq!(ra, rb, "n={n} m={m} k={k}: after write {v}");
                assert_eq!(
                    rt_a.steps_of(0),
                    rt_b.steps_of(0),
                    "n={n} m={m} k={k}: primitive counts diverged after write {v}"
                );
            }
        }
    }

    #[test]
    fn write_of_zero_task_completes_on_the_priming_poll() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = Arc::new(KmultBoundedMaxRegister::new(1, 64, 2));
        let mut t = KmultMaxWriteTask::new(reg, 0);
        assert!(t.poll(&ctx).is_ready(), "write(0) is a no-op");
        assert_eq!(ctx.steps_taken(), 0);
    }

    #[test]
    fn top_of_range_round_trips() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let m = 1u64 << 40;
        let k = 7;
        let r = KmultBoundedMaxRegister::new(1, m, k);
        r.write(&ctx, m - 1);
        let x = r.read(&ctx);
        assert!(within_k(u128::from(m - 1), x, k));
    }
}
