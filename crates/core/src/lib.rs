//! # approx-objects — deterministic k-multiplicative-accurate objects
//!
//! The primary contribution of *"Upper and Lower Bounds for Deterministic
//! Approximate Objects"* (Hendler, Khattabi, Milani, Travers — ICDCS
//! 2021): wait-free linearizable shared objects whose reads may err by a
//! multiplicative factor `k`, in exchange for exponentially better step
//! complexity.
//!
//! * [`KmultCounter`] + [`KmultCounterHandle`] — **Algorithm 1**: the
//!   k-multiplicative-accurate unbounded counter. For `k ≥ √n` it is
//!   wait-free, linearizable and has **constant amortized step
//!   complexity** (Theorem III.9).
//! * [`KmultBoundedMaxRegister`] — **Algorithm 2**: the
//!   k-multiplicative-accurate `m`-bounded max register with worst-case
//!   step complexity `O(min(log₂ log_k m, n))` (Theorem IV.2), matching
//!   the lower bound of Theorem V.2 — an exponential improvement over
//!   exact bounded max registers (`Θ(min(log₂ m, n))`).
//! * [`KmultUnboundedMaxRegister`] — the unbounded extension sketched at
//!   the end of §IV: sub-logarithmic (`O(log₂ log_k v)`) per-operation
//!   cost.
//! * [`KaddCounter`] — the **k-additive** relaxation surveyed in §I-A
//!   (reads within `±k`), included for the relaxation-comparison
//!   ablation: additive relaxation cannot make reads cheaper than
//!   `Θ(n)`, multiplicative can (the paper's point).
//! * [`accuracy`] — the k-multiplicative accuracy predicates shared with
//!   the test suite and the linearizability checker.
//!
//! ## Quick start
//!
//! ```
//! use approx_objects::KmultCounter;
//! use smr::Runtime;
//!
//! let n = 4;
//! let k = 2; // k ≥ √n guarantees accuracy
//! let rt = Runtime::free_running(n);
//! let counter = KmultCounter::new(n, k);
//!
//! let ctx = rt.ctx(0);
//! let mut handle = counter.handle(0);
//! for _ in 0..100 {
//!     handle.increment(&ctx);
//! }
//! let approx = handle.read(&ctx);
//! assert!(approx >= 100 / k as u128 && approx <= 100 * k as u128);
//! ```
//!
//! The shared object ([`KmultCounter`]) is `Sync`; each process owns a
//! [`KmultCounterHandle`] carrying its persistent local variables, exactly
//! mirroring the paper's "code for process i" presentation.

pub mod accuracy;
pub mod kadd;
pub mod kcounter;
mod kmaxreg;
mod kmaxreg_unbounded;

pub use kadd::{
    KaddCounter, KaddCounterHandle, KaddIncMachine, KaddIncTask, KaddReadMachine, KaddReadTask,
    SharedKaddHandle,
};
pub use kcounter::{
    arith, FlushMachine, IncMachine, KmultCounter, KmultCounterHandle, KmultIncTask,
    KmultReadOutcome, KmultReadTask, ReadMachine, SharedKmultHandle,
};
pub use kmaxreg::{
    KmultBoundedMaxRegister, KmultMaxReadMachine, KmultMaxReadTask, KmultMaxWriteMachine,
    KmultMaxWriteTask,
};
pub use kmaxreg_unbounded::KmultUnboundedMaxRegister;
