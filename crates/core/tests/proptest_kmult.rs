//! Property-based tests for the paper's objects: accuracy invariants,
//! `ReturnValue` arithmetic, and structural invariants of Algorithm 1
//! under arbitrary (sequential and round-robin) operation sequences.

#![allow(clippy::needless_range_loop)] // pid-indexed handles read clearest

use approx_objects::accuracy::{log_k_floor, within_k};
use approx_objects::{arith, KmultBoundedMaxRegister, KmultCounter, KmultUnboundedMaxRegister};
use proptest::prelude::*;
use smr::Runtime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn counter_sequential_accuracy(k in 2u64..12, incs in 1u128..4_000) {
        let rt = Runtime::free_running(1);
        let counter = KmultCounter::new(1, k);
        let ctx = rt.ctx(0);
        let mut h = counter.handle(0);
        for _ in 0..incs {
            h.increment(&ctx);
        }
        let x = h.read(&ctx);
        prop_assert!(within_k(incs, x, k), "v={incs} x={x} k={k}");
    }

    #[test]
    fn counter_round_robin_accuracy(
        n in 2usize..6,
        incs_per in 1u64..800,
    ) {
        // k = n keeps the raw spec valid through the startup window.
        let k = n as u64;
        let rt = Runtime::free_running(n);
        let counter = KmultCounter::new(n, k);
        let mut handles: Vec<_> = (0..n).map(|p| counter.handle(p)).collect();
        for i in 0..incs_per {
            for pid in 0..n {
                let ctx = rt.ctx(pid);
                handles[pid].increment(&ctx);
                let _ = i;
            }
        }
        let v = u128::from(incs_per) * n as u128;
        for pid in 0..n {
            let ctx = rt.ctx(pid);
            let x = handles[pid].read(&ctx);
            prop_assert!(within_k(v, x, k), "pid={pid} v={v} x={x} k={k}");
        }
    }

    #[test]
    fn counter_reads_monotone_under_interleaving(
        k in 2u64..8,
        batches in prop::collection::vec(1u64..50, 1..30),
    ) {
        let rt = Runtime::free_running(1);
        let counter = KmultCounter::new(1, k);
        let ctx = rt.ctx(0);
        let mut h = counter.handle(0);
        let mut prev = 0u128;
        for b in batches {
            for _ in 0..b {
                h.increment(&ctx);
            }
            let x = h.read(&ctx);
            prop_assert!(x >= prev, "reads regressed {prev} → {x}");
            prev = x;
        }
    }

    #[test]
    fn switch_prefix_is_contiguous_single_process(
        k in 2u64..8,
        incs in 1u64..5_000,
    ) {
        // Lemma III.2 for one process: the set switches form a prefix.
        let rt = Runtime::free_running(1);
        let counter = KmultCounter::new(1, k);
        let ctx = rt.ctx(0);
        let mut h = counter.handle(0);
        for _ in 0..incs {
            h.increment(&ctx);
        }
        let mut seen_unset = false;
        for j in 0..200u64 {
            let set = counter.peek_switch(j);
            if seen_unset {
                prop_assert!(!set, "gap: switch {j} set after an unset one");
            }
            if !set {
                seen_unset = true;
            }
        }
    }

    #[test]
    fn return_value_equals_k_times_u_min(p in 0u64..2, q in 0u64..12, k in 2u64..10) {
        prop_assert_eq!(
            arith::return_value(p, q, k),
            u128::from(k) * arith::u_min(p, q, k)
        );
    }

    #[test]
    fn envelope_certifies_accuracy(p in 0u64..2, q in 0u64..12, k in 2u64..10, n in 1usize..64) {
        let lo = arith::u_min(p, q, k);
        let hi = arith::u_max(p, q, k, n);
        prop_assert!(lo <= hi);
        let x = arith::return_value(p, q, k);
        // Lower side always: x = k·u_min ≤ k·v for every v ≥ u_min.
        prop_assert!(x <= lo * u128::from(k));
        // Upper side — Claim III.6's inequality u_max ≤ k·x — holds for
        // k ≥ √n once the execution has left the (p, q) = (0, 0) startup
        // window (DESIGN.md §5 documents the boundary).
        if (p >= 1 || q >= 1) && u128::from(k) * u128::from(k) >= n as u128 {
            prop_assert!(
                hi <= x * u128::from(k),
                "u_max {hi} exceeds k·x = {} at (p={p}, q={q}, k={k}, n={n})",
                x * u128::from(k)
            );
        }
    }

    #[test]
    fn log_k_floor_inverts_pow(k in 2u64..20, e in 0u32..10) {
        let v = u64::try_from(arith::pow_k(k, e)).unwrap();
        prop_assert_eq!(log_k_floor(v, k), e);
        if v > 1 {
            prop_assert_eq!(log_k_floor(v - 1, k), e - 1);
        }
    }

    #[test]
    fn bounded_maxreg_accuracy(
        k in 2u64..10,
        m_bits in 3u32..40,
        values in prop::collection::vec(1u64..u64::MAX, 1..25),
    ) {
        let m = 1u64 << m_bits;
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = KmultBoundedMaxRegister::new(1, m, k);
        let mut true_max = 0u64;
        for v in values {
            let v = v % m;
            reg.write(&ctx, v);
            true_max = true_max.max(v);
            let x = reg.read(&ctx);
            prop_assert!(within_k(u128::from(true_max), x, k), "max={true_max} x={x} k={k}");
            if true_max > 0 {
                prop_assert!(x >= u128::from(true_max), "Algorithm 2 reads are one-sided");
            }
        }
    }

    #[test]
    fn unbounded_maxreg_accuracy(
        k in 2u64..10,
        values in prop::collection::vec(0u64..(u64::MAX - 1), 1..25),
    ) {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = KmultUnboundedMaxRegister::new(1, k);
        let mut true_max = 0u64;
        for v in values {
            reg.write(&ctx, v);
            true_max = true_max.max(v);
            let x = reg.read(&ctx);
            prop_assert!(within_k(u128::from(true_max), x, k), "max={true_max} x={x} k={k}");
        }
    }

    #[test]
    fn increment_worst_case_is_k_plus_one(k in 2u64..12, incs in 1u64..3_000) {
        let rt = Runtime::free_running(1);
        let counter = KmultCounter::new(1, k);
        let ctx = rt.ctx(0);
        let mut h = counter.handle(0);
        for _ in 0..incs {
            let s0 = ctx.steps_taken();
            h.increment(&ctx);
            prop_assert!(ctx.steps_taken() - s0 <= k + 1);
        }
    }
}
