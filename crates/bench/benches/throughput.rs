//! BENCH-THR — wall-clock throughput of the counter implementations under
//! real multi-threaded contention (the "does relaxation buy real-world
//! performance" sanity check motivating the paper's line of work).
//!
//! Measures operations/second for a mixed workload (1 read per 16 ops)
//! at several thread counts. Run: `cargo bench -p bench --bench throughput`.

use counter::{CollectCounter, Counter, FaaCounter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perturb::counter::{CounterTarget, KmultTarget, SharedCounter};
use smr::Runtime;
use std::sync::Arc;
use std::time::{Duration, Instant};

const OPS_PER_THREAD: u64 = 4_000;
const READ_EVERY: u64 = 16;

fn run_mixed<T: CounterTarget + 'static>(target: Arc<T>, threads: usize, iters: u64) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let rt = Runtime::free_running(threads);
        let start = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|pid| {
                let target = Arc::clone(&target);
                let ctx = rt.ctx(pid);
                std::thread::spawn(move || {
                    for i in 1..=OPS_PER_THREAD {
                        if i % READ_EVERY == 0 {
                            let _ = target.read(pid, &ctx);
                        } else {
                            target.increment(pid, &ctx);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        total += start.elapsed();
    }
    total
}

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_throughput");
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));

        group.bench_with_input(
            BenchmarkId::new("kmult_k8", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let counter = approx_objects::KmultCounter::new(threads, 8);
                    let target = Arc::new(KmultTarget::new(&counter));
                    run_mixed(target, threads, iters)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("collect", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let target = Arc::new(SharedCounter(Arc::new(CollectCounter::new(threads))));
                    run_mixed(target, threads, iters)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fetch_add", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let target = Arc::new(SharedCounter(Arc::new(FaaCounter::new())));
                    run_mixed(target, threads, iters)
                });
            },
        );
    }
    group.finish();
}

fn bench_quiescent_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("quiescent_read_latency");
    let n = 64;

    group.bench_function("kmult_read_after_1e5_incs", |b| {
        let rt = Runtime::free_running(n);
        let counter = approx_objects::KmultCounter::new(n, 8);
        let ctx = rt.ctx(0);
        let mut h = counter.handle(0);
        for _ in 0..100_000 {
            h.increment(&ctx);
        }
        b.iter(|| std::hint::black_box(h.read(&ctx)));
    });

    group.bench_function("collect_read_n64", |b| {
        let rt = Runtime::free_running(n);
        let counter = CollectCounter::new(n);
        let ctx = rt.ctx(0);
        for _ in 0..1_000 {
            counter.increment(&ctx);
        }
        b.iter(|| std::hint::black_box(counter.read(&ctx)));
    });
    group.finish();
}

criterion_group!(benches, bench_counters, bench_quiescent_reads);
criterion_main!(benches);
