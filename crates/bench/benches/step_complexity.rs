//! BENCH-STEP — wall-clock latency of single operations, complementing
//! the step-count experiments: the step-complexity hierarchy the paper
//! proves should be visible in nanoseconds too.
//!
//! Run: `cargo bench -p bench --bench step_complexity`.

use approx_objects::{KmultBoundedMaxRegister, KmultCounter, KmultUnboundedMaxRegister};
use counter::{AachCounter, CollectCounter, Counter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxreg::{MaxRegister, TreeMaxRegister};
use smr::Runtime;

fn bench_counter_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_increment");
    let n = 16;

    group.bench_function("kmult_k4", |b| {
        let rt = Runtime::free_running(n);
        let counter = KmultCounter::new(n, 4);
        let ctx = rt.ctx(0);
        let mut h = counter.handle(0);
        b.iter(|| h.increment(&ctx));
    });
    group.bench_function("collect", |b| {
        let rt = Runtime::free_running(n);
        let counter = CollectCounter::new(n);
        let ctx = rt.ctx(0);
        b.iter(|| counter.increment(&ctx));
    });
    group.bench_function("aach_m2_30", |b| {
        let rt = Runtime::free_running(n);
        let counter = AachCounter::new(n, 1 << 30);
        let ctx = rt.ctx(0);
        b.iter(|| counter.increment(&ctx));
    });
    group.finish();
}

fn bench_maxreg_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxreg_write_read");
    let n = 16;

    for bits in [16u32, 32, 48] {
        let m = 1u64 << bits;
        group.bench_with_input(BenchmarkId::new("exact_tree", bits), &m, |b, &m| {
            let rt = Runtime::free_running(n);
            let ctx = rt.ctx(0);
            let reg = TreeMaxRegister::new(m);
            let mut v = 1u64;
            b.iter(|| {
                v = (v * 7 + 3) % (m - 1);
                reg.write(&ctx, v);
                std::hint::black_box(reg.read(&ctx));
            });
        });
        group.bench_with_input(BenchmarkId::new("kmult_k4", bits), &m, |b, &m| {
            let rt = Runtime::free_running(n);
            let ctx = rt.ctx(0);
            let reg = KmultBoundedMaxRegister::new(n, m, 4);
            let mut v = 1u64;
            b.iter(|| {
                v = (v * 7 + 3) % (m - 1);
                reg.write(&ctx, v);
                std::hint::black_box(reg.read(&ctx));
            });
        });
    }

    group.bench_function("kmult_unbounded_k4_large_values", |b| {
        let rt = Runtime::free_running(n);
        let ctx = rt.ctx(0);
        let reg = KmultUnboundedMaxRegister::new(n, 4);
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1) & (u64::MAX >> 1);
            reg.write(&ctx, v);
            std::hint::black_box(reg.read(&ctx));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_counter_increment, bench_maxreg_ops);
criterion_main!(benches);
