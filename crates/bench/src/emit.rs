//! Shared flat-JSON emission for the `BENCH_*.json` artifacts.
//!
//! Every experiment binary writes the same shape — a `bench` identity,
//! a `mode` (`"smoke"` or `"full"`), and a `results` array of flat
//! rows — because that is what [`crate::regression`]'s parser diffs.
//! The envelope and the row serialization used to be hand-rolled in
//! each binary; this module is the single transcription.
//!
//! Formatting conventions are frozen so regenerating an artifact with
//! unchanged measurements produces byte-identical output (clean `git
//! diff` on committed baselines): strings quoted, bools and integers
//! bare, [`Row::float3`] for millisecond timings (`{:.3}`),
//! [`Row::float0`] for rates (`{:.0}`).

use std::fmt::Write as _;

/// One flat result row, built left to right. Key order is emission
/// order; [`crate::regression`] treats string-valued fields as row
/// identity and numeric fields as metrics.
#[derive(Default, Clone)]
pub struct Row {
    body: String,
}

impl Row {
    /// An empty row.
    pub fn new() -> Row {
        Row::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push_str(", ");
        }
        let _ = write!(self.body, "\"{key}\": ");
    }

    /// A string field (row identity for the regression differ).
    pub fn str(mut self, key: &str, v: &str) -> Row {
        self.key(key);
        let _ = write!(self.body, "\"{v}\"");
        self
    }

    /// A boolean field (also row identity).
    pub fn bool(mut self, key: &str, v: bool) -> Row {
        self.key(key);
        let _ = write!(self.body, "{v}");
        self
    }

    /// An integer metric.
    pub fn int(mut self, key: &str, v: impl Into<i128>) -> Row {
        self.key(key);
        let _ = write!(self.body, "{}", v.into());
        self
    }

    /// A millisecond-style metric, `{:.3}`.
    pub fn float3(mut self, key: &str, v: f64) -> Row {
        self.key(key);
        let _ = write!(self.body, "{v:.3}");
        self
    }

    /// A rate-style metric, `{:.0}`.
    pub fn float0(mut self, key: &str, v: f64) -> Row {
        self.key(key);
        let _ = write!(self.body, "{v:.0}");
        self
    }

    /// A per-op-average metric, `{:.1}`.
    pub fn float1(mut self, key: &str, v: f64) -> Row {
        self.key(key);
        let _ = write!(self.body, "{v:.1}");
        self
    }

    /// The row as a JSON object literal.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// A full benchmark artifact: identity, mode, rows.
pub struct Report {
    bench: String,
    mode: String,
    rows: Vec<Row>,
}

impl Report {
    /// A report named `bench` in `mode` (conventionally `"smoke"` or
    /// `"full"`; see [`mode_str`]).
    pub fn new(bench: &str, mode: &str) -> Report {
        Report {
            bench: bench.to_string(),
            mode: mode.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append one result row.
    pub fn row(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// The artifact as pretty-ish JSON — envelope on its own lines, one
    /// row per line, exactly the shape `parse_bench_json` consumes.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(json, "  \"mode\": \"{}\",", self.mode);
        json.push_str("  \"results\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(json, "    {}{}", row.to_json(), sep);
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Write the artifact to `path`, reporting the outcome on stdout
    /// the way every experiment binary does.
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => println!("\ncould not write {path}: {e}"),
        }
    }
}

/// The conventional mode string for a `--smoke` flag.
pub fn mode_str(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::parse_bench_json;

    #[test]
    fn rows_freeze_the_historical_formatting() {
        let row = Row::new()
            .str("workload", "reg")
            .bool("prune", true)
            .int("n", 100_000u64)
            .float3("millis", 12.3456)
            .float0("steps_per_sec", 98765.4);
        assert_eq!(
            row.to_json(),
            "{\"workload\": \"reg\", \"prune\": true, \"n\": 100000, \
             \"millis\": 12.346, \"steps_per_sec\": 98765}"
        );
    }

    #[test]
    fn reports_parse_back_through_the_regression_parser() {
        let mut report = Report::new("emit_selftest", mode_str(true));
        report.row(Row::new().str("config", "a").int("ops", 7u64));
        report.row(Row::new().str("config", "b").int("ops", 9u64));
        let parsed = parse_bench_json(&report.to_json()).expect("emit output parses");
        assert_eq!(parsed.bench, "emit_selftest");
        assert_eq!(parsed.mode.as_deref(), Some("smoke"));
        assert_eq!(parsed.results.len(), 2);
    }

    #[test]
    fn empty_reports_are_still_valid_artifacts() {
        let report = Report::new("empty", "full");
        let parsed = parse_bench_json(&report.to_json()).expect("empty results array parses");
        assert!(parsed.results.is_empty());
    }
}
