//! Minimal aligned-ASCII table printing for experiment output.

/// A table under construction.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for i in 0..ncols {
                let pad = widths[i] - cells[i].chars().count();
                s.push(' ');
                s.push_str(&cells[i]);
                s.push_str(&" ".repeat(pad));
                s.push_str(" |");
            }
            s
        };
        let sep = {
            let mut s = String::from("|");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('|');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "value"]);
        t.row(["1", "10"]);
        t.row(["100", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| n "));
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "aligned");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
