//! Reusable workload runners for the counter experiments.

use perturb::counter::CounterTarget;
use smr::Runtime;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a mixed increment/read workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Operations performed (increments + reads), all processes.
    pub total_ops: u64,
    /// Increments among them.
    pub total_incs: u64,
    /// Primitive steps charged, all processes.
    pub total_steps: u64,
    /// Wall-clock duration of the concurrent phase.
    pub elapsed: Duration,
    /// A quiescent read performed after all threads joined.
    pub final_read: u128,
}

impl WorkloadResult {
    /// Steps per operation — the amortized step complexity of this
    /// execution.
    pub fn amortized(&self) -> f64 {
        self.total_steps as f64 / self.total_ops as f64
    }

    /// Operations per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Run `n` free-running processes against `target`; each performs
/// `ops_per_proc` operations, one read per `read_every` operations (the
/// rest increments). Returns aggregate step and timing measurements.
pub fn run_counter_workload<T: CounterTarget + 'static>(
    target: Arc<T>,
    n: usize,
    ops_per_proc: u64,
    read_every: u64,
) -> WorkloadResult {
    assert!(read_every >= 1);
    let rt = Runtime::free_running(n);
    let start = Instant::now();
    let mut handles = Vec::new();
    for pid in 0..n {
        let target = Arc::clone(&target);
        let ctx = rt.ctx(pid);
        handles.push(std::thread::spawn(move || {
            let mut incs = 0u64;
            for i in 1..=ops_per_proc {
                if i % read_every == 0 {
                    let _ = target.read(pid, &ctx);
                } else {
                    target.increment(pid, &ctx);
                    incs += 1;
                }
            }
            incs
        }));
    }
    let total_incs: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    let elapsed = start.elapsed();
    let ctx = rt.ctx(0);
    let final_read = target.read(0, &ctx);
    WorkloadResult {
        total_ops: ops_per_proc * n as u64,
        total_incs,
        total_steps: rt.total_steps(),
        elapsed,
        final_read,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counter::CollectCounter;
    use perturb::counter::SharedCounter;

    #[test]
    fn workload_counts_and_reads_are_consistent() {
        let c = Arc::new(CollectCounter::new(4));
        let target = Arc::new(SharedCounter(Arc::clone(&c)));
        let res = run_counter_workload(target, 4, 100, 10);
        assert_eq!(res.total_ops, 400);
        assert_eq!(res.total_incs, 4 * 90);
        assert_eq!(res.final_read, u128::from(res.total_incs));
        // Collect counter: incs cost 2, reads cost n=4; the quiescent
        // final read adds another 4.
        let expected = 4 * (90 * 2 + 10 * 4) + 4;
        assert_eq!(res.total_steps, expected);
        assert!(res.amortized() > 0.0);
        assert!(res.throughput() > 0.0);
    }
}
