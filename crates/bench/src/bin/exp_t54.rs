//! EXP-T5.4 — Theorem V.4 / Lemma V.3: the m-bounded
//! k-multiplicative-accurate counter is `Θ(log_k m)`-perturbable, hence
//! worst-case `Ω(min(log₂ log_k m, n))`.
//!
//! The builder replays Lemma V.3's construction: round r performs
//! `I_r = (k²−1)·Σ_{j<r} I_j + r` increments through a fresh writer; each
//! round forces the reader's solo response past `k·ΣI_j`. Reported per
//! (m, k) and per implementation: rounds achieved L, the lower bound
//! `log₂ L`, and the reader's maximum distinct-base-object count.
//!
//! Note (paper §VI): unlike max registers, **no matching upper bound is
//! known** for bounded k-multiplicative counters — finding the maximum
//! improvement is an open question. Accordingly our measured reader
//! columns sit *above* `log₂ L`: Algorithm 1's reader walks the switch
//! intervals (Θ(log_k total) probes), and the exact counters pay more.
//!
//! Run: `cargo run --release -p bench --bin exp_t54`.

use approx_objects::KmultCounter;
use bench::log2f;
use bench::tables::{f2, Table};
use counter::{AachCounter, CollectCounter};
use perturb::counter::{perturb_counter, CounterPerturbConfig, KmultTarget, SharedCounter};
use std::sync::Arc;

fn main() {
    let writers = 64;
    let k: u64 = 2;
    let mut table = Table::new([
        "m",
        "impl",
        "rounds L",
        "Ω: log₂ L",
        "reader distinct objs",
        "every round perturbed",
    ]);

    for (label, m) in [("2^16", 1u128 << 16), ("2^20", 1 << 20), ("2^24", 1 << 24)] {
        let cfg = CounterPerturbConfig {
            writers,
            k,
            m,
            max_rounds: 128,
        };

        let kmult = {
            let c = KmultCounter::new(writers + 1, k);
            let target = KmultTarget::new(&c);
            perturb_counter(&target, cfg)
        };
        table.row([
            label.to_string(),
            format!("kmult (k={k})"),
            kmult.rounds_achieved().to_string(),
            f2(log2f(kmult.rounds_achieved() as f64)),
            kmult.max_distinct_objects().to_string(),
            kmult.every_round_perturbed.to_string(),
        ]);

        let aach = {
            let c = Arc::new(AachCounter::new(writers + 1, (m * 2) as u64));
            perturb_counter(&SharedCounter(c), cfg)
        };
        table.row([
            label.to_string(),
            "aach (exact)".into(),
            aach.rounds_achieved().to_string(),
            f2(log2f(aach.rounds_achieved() as f64)),
            aach.max_distinct_objects().to_string(),
            aach.every_round_perturbed.to_string(),
        ]);

        let collect = {
            let c = Arc::new(CollectCounter::new(writers + 1));
            perturb_counter(&SharedCounter(c), cfg)
        };
        table.row([
            label.to_string(),
            "collect (exact)".into(),
            collect.rounds_achieved().to_string(),
            f2(log2f(collect.rounds_achieved() as f64)),
            collect.max_distinct_objects().to_string(),
            collect.every_round_perturbed.to_string(),
        ]);
    }

    println!("EXP-T5.4 — perturbing executions for bounded counters");
    println!("paper claim: L = Θ(log_k m) perturbing rounds exist (Lemma V.3),");
    println!("so any m-bounded k-mult counter pays Ω(min(log₂ L, n)) distinct");
    println!("base objects in some read (Theorem V.4). All measured columns sit");
    println!("above the Ω column; no implementation matches it — the gap is the");
    println!("open question of §VI.");
    table.print("perturbation rounds and reader probes");
}
