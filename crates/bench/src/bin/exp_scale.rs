//! EXP-SCALE — execution throughput and memory vs process count,
//! across execution backends and scheduling modes.
//!
//! The paper's bounds are parameterized by the process count `n`, but a
//! thread-per-process gated driver pays one OS thread and a cross-thread
//! condvar handshake per primitive — it tops out around 10³ processes.
//! The coop backend drives *virtual* processes as resumable `OpTask`
//! state machines on the controller thread, which is what opens the
//! 10⁵–10⁶ range the `O(log log n)`-flavored results are about. This
//! experiment measures steps/s and peak RSS as `n` grows, in two modes:
//! `gated` (one controller grant per primitive, `run_schedule`) and
//! `free` (the ungated batch-polling `Driver::coop_free` loop — the
//! coop backend's throughput ceiling with scheduling costs removed):
//!
//! * `reg` workload — each process runs read-then-write chains over a
//!   striped register pool (2 primitives per op): pure harness overhead.
//! * `kmult` workload — each process alternates Algorithm 1
//!   increments/reads at `k = ⌈√n⌉` through the ported task wrappers:
//!   the paper's object at populations no thread driver can host.
//!
//! Peak RSS is per-configuration: the parent re-executes itself
//! (`--child …`) so each config is measured in a fresh address space
//! (`VmHWM` of `/proc/self/status`; 0 where unavailable).
//!
//! Results land in `BENCH_scale.json` (cwd) for regression tracking.
//!
//! Run: `cargo run --release -p bench --bin exp_scale`
//! CI:  `cargo run --release -p bench --bin exp_scale -- --smoke`
//! (`--smoke` shrinks the sweep but still proves the acceptance bar: a
//! gated schedule over 10⁵ virtual processes completing in seconds.)

use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};
use bench::emit::{mode_str, Report, Row};
use bench::tables::{f2, Table};
use parking_lot::Mutex;
use smr::backend::ExecBackend;
use smr::sched::RoundRobin;
use smr::{Driver, OpSpec, OpTask, Poll, ProcCtx, Register, Runtime};
use std::sync::Arc;
use std::time::Instant;

/// Read-then-write over a striped register pool: 2 primitives per op.
struct RegChainTask {
    pool: Arc<Vec<Register>>,
    at: usize,
    read: Option<u64>,
    primed: bool,
}

impl RegChainTask {
    fn new(pool: Arc<Vec<Register>>, at: usize) -> Self {
        RegChainTask {
            pool,
            at,
            read: None,
            primed: false,
        }
    }
}

impl OpTask for RegChainTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        let len = self.pool.len();
        match self.read {
            None => {
                self.read = Some(self.pool[self.at % len].read(ctx));
                Poll::Pending
            }
            Some(v) => {
                self.pool[(self.at + 1) % len].write(ctx, v.wrapping_add(1));
                Poll::Ready(u128::from(v))
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Coop,
    CoopFree,
    Thread,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Coop | Backend::CoopFree => "coop",
            Backend::Thread => "thread",
        }
    }

    /// Scheduling mode: `gated` runs grant one primitive at a time
    /// through the controller's gate; `free` batch-polls runnable tasks
    /// with no gate ([`Driver::coop_free`]).
    fn mode(self) -> &'static str {
        match self {
            Backend::Coop | Backend::Thread => "gated",
            Backend::CoopFree => "free",
        }
    }

    /// Unambiguous CLI token for `--child` re-execution.
    fn token(self) -> &'static str {
        match self {
            Backend::Coop => "coop",
            Backend::CoopFree => "coop_free",
            Backend::Thread => "thread",
        }
    }
}

struct Sample {
    workload: &'static str,
    backend: &'static str,
    mode: &'static str,
    n: usize,
    ops: u64,
    steps: u64,
    millis: f64,
    peak_rss_bytes: u64,
}

impl Sample {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.millis / 1e3).max(1e-9)
    }

    fn row(&self) -> Row {
        Row::new()
            .str("workload", self.workload)
            .str("backend", self.backend)
            .str("mode", self.mode)
            .int("n", self.n as u64)
            .int("ops", self.ops)
            .int("steps", self.steps)
            .float3("millis", self.millis)
            .float0("steps_per_sec", self.steps_per_sec())
            .int("peak_rss_bytes", self.peak_rss_bytes)
    }
}

/// `VmHWM` (peak resident set) of this process, in bytes; 0 where
/// `/proc` is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn submit_reg<B: ExecBackend>(d: &mut Driver<B>, n: usize, ops_per_proc: u64) {
    let pool: Arc<Vec<Register>> = Arc::new((0..1024).map(|_| Register::new(0)).collect());
    for pid in 0..n {
        for j in 0..ops_per_proc {
            d.submit_task(
                pid,
                OpSpec::custom("rmw", j as u128),
                RegChainTask::new(pool.clone(), pid + j as usize),
            );
        }
    }
}

fn submit_kmult<B: ExecBackend>(d: &mut Driver<B>, n: usize, ops_per_proc: u64) {
    let k = bench::ceil_sqrt(n as u64).max(2);
    let counter = KmultCounter::new(n, k);
    for pid in 0..n {
        let handle: SharedKmultHandle = Arc::new(Mutex::new(counter.handle(pid)));
        for j in 0..ops_per_proc {
            if j % 2 == 0 {
                d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(handle.clone()));
            } else {
                d.submit_task(pid, OpSpec::read(), KmultReadTask::new(handle.clone()));
            }
        }
    }
}

/// Run one configuration in this process and return its sample.
fn run_config(workload: &'static str, backend: Backend, n: usize, ops_per_proc: u64) -> Sample {
    let drive =
        |steps: u64, start: Instant| -> (u64, f64) { (steps, start.elapsed().as_secs_f64() * 1e3) };
    let (steps, millis) = match backend {
        Backend::Coop => {
            let mut d = Driver::coop(Runtime::coop(n));
            match workload {
                "reg" => submit_reg(&mut d, n, ops_per_proc),
                _ => submit_kmult(&mut d, n, ops_per_proc),
            }
            let start = Instant::now();
            drive(d.run_schedule(&mut RoundRobin::new()), start)
        }
        Backend::CoopFree => {
            // No gate: tasks are batch-polled until every submitted op
            // completes; steps come off the runtime's counters.
            let mut d = Driver::coop_free(Runtime::coop_free(n));
            match workload {
                "reg" => submit_reg(&mut d, n, ops_per_proc),
                _ => submit_kmult(&mut d, n, ops_per_proc),
            }
            let start = Instant::now();
            d.wait_all();
            drive(d.runtime().total_steps(), start)
        }
        Backend::Thread => {
            let mut d = Driver::new(Runtime::gated(n));
            match workload {
                "reg" => submit_reg(&mut d, n, ops_per_proc),
                _ => submit_kmult(&mut d, n, ops_per_proc),
            }
            let start = Instant::now();
            drive(d.run_schedule(&mut RoundRobin::new()), start)
        }
    };
    Sample {
        workload,
        backend: backend.name(),
        mode: backend.mode(),
        n,
        ops: n as u64 * ops_per_proc,
        steps,
        millis,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Run one configuration in a fresh child process (per-config RSS);
/// falls back to in-process measurement if re-execution fails.
fn run_isolated(workload: &'static str, backend: Backend, n: usize, ops_per_proc: u64) -> Sample {
    let child = std::env::current_exe().ok().and_then(|exe| {
        std::process::Command::new(exe)
            .args([
                "--child",
                workload,
                backend.token(),
                &n.to_string(),
                &ops_per_proc.to_string(),
            ])
            .output()
            .ok()
    });
    if let Some(out) = child {
        if out.status.success() {
            let stdout = String::from_utf8_lossy(&out.stdout);
            if let Some(line) = stdout.lines().find_map(|l| l.strip_prefix("RESULT ")) {
                return parse_child_line(line, workload, backend);
            }
        }
        eprintln!(
            "child for {}/{}/n={n} failed; measuring in-process",
            workload,
            backend.token()
        );
    }
    run_config(workload, backend, n, ops_per_proc)
}

/// Parse the child's flat JSON result line (no serde in the tree; the
/// format is our own, written by `Sample::row`).
fn parse_child_line(line: &str, workload: &'static str, backend: Backend) -> Sample {
    let field = |key: &str| -> f64 {
        let pat = format!("\"{key}\": ");
        let at = line.find(&pat).map(|i| i + pat.len()).unwrap_or(0);
        line[at..]
            .split([',', '}'])
            .next()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0.0)
    };
    Sample {
        workload,
        backend: backend.name(),
        mode: backend.mode(),
        n: field("n") as usize,
        ops: field("ops") as u64,
        steps: field("steps") as u64,
        millis: field("millis"),
        peak_rss_bytes: field("peak_rss_bytes") as u64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Child mode: run exactly one config, print one machine line.
    if args.get(1).map(String::as_str) == Some("--child") {
        let workload: &'static str = if args[2] == "reg" { "reg" } else { "kmult" };
        let backend = match args[3].as_str() {
            "coop" => Backend::Coop,
            "coop_free" => Backend::CoopFree,
            _ => Backend::Thread,
        };
        let n: usize = args[4].parse().expect("n");
        let ops: u64 = args[5].parse().expect("ops_per_proc");
        let sample = run_config(workload, backend, n, ops);
        println!("RESULT {}", sample.row().to_json());
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = bench::scale() as usize;

    // (workload, backend, n, ops_per_proc)
    let configs: Vec<(&'static str, Backend, usize, u64)> = if smoke {
        vec![
            ("reg", Backend::Thread, 100, 2),
            ("reg", Backend::Coop, 100, 2),
            ("reg", Backend::Coop, 10_000, 2),
            // The acceptance bar: ≥ 10⁵ virtual processes, gated, seconds.
            ("reg", Backend::Coop, 100_000, 2),
            ("reg", Backend::CoopFree, 100_000, 2),
            ("kmult", Backend::Coop, 10_000, 2),
            ("kmult", Backend::CoopFree, 10_000, 2),
        ]
    } else {
        vec![
            ("reg", Backend::Thread, 100, 4),
            ("reg", Backend::Thread, 300, 4),
            ("reg", Backend::Thread, 1_000, 4),
            ("reg", Backend::Coop, 100, 4),
            ("reg", Backend::Coop, 1_000, 4),
            ("reg", Backend::Coop, 10_000, 4),
            ("reg", Backend::Coop, 100_000, 4),
            ("reg", Backend::Coop, 1_000_000 * scale, 1),
            ("reg", Backend::CoopFree, 10_000, 4),
            ("reg", Backend::CoopFree, 100_000, 4),
            ("reg", Backend::CoopFree, 1_000_000 * scale, 1),
            ("kmult", Backend::Coop, 10_000, 4),
            ("kmult", Backend::Coop, 100_000 * scale, 2),
            ("kmult", Backend::CoopFree, 100_000 * scale, 2),
        ]
    };

    let mut samples = Vec::new();
    for &(workload, backend, n, ops) in &configs {
        let s = run_isolated(workload, backend, n, ops);
        eprintln!(
            "done: {workload}/{}/n={n}: {:.0} steps/s",
            backend.token(),
            s.steps_per_sec()
        );
        samples.push(s);
    }

    // The point of the exercise: huge-n gated runs finish in seconds.
    if let Some(big) = samples
        .iter()
        .find(|s| s.backend == "coop" && s.mode == "gated" && s.n >= 100_000)
    {
        assert!(
            big.millis < 60_000.0,
            "a 10⁵-process gated run took {:.0} ms — the coop backend has regressed",
            big.millis
        );
        assert!(big.steps > 0, "the big run granted no steps");
    }

    let mut table = Table::new([
        "workload", "backend", "mode", "n", "steps", "ms", "steps/s", "peak MB",
    ]);
    for s in &samples {
        table.row([
            s.workload.to_string(),
            s.backend.to_string(),
            s.mode.to_string(),
            s.n.to_string(),
            s.steps.to_string(),
            f2(s.millis),
            format!("{:.0}", s.steps_per_sec()),
            f2(s.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }

    println!("EXP-SCALE — steps/s and peak RSS vs process count");
    println!("thread = one worker thread per process (gate handshake per step);");
    println!("coop   = virtual processes polled on the controller thread");
    println!("         (mode gated = one grant per primitive; free = ungated batch polling).");
    table.print(if smoke {
        "execution-backend scaling (--smoke sizes)"
    } else {
        "execution-backend scaling"
    });

    let mut report = Report::new("backend_scaling", mode_str(smoke));
    for s in &samples {
        report.row(s.row());
    }
    report.write("BENCH_scale.json");
}
