//! EXP-T4.2 — Theorem IV.2: Algorithm 2 (the k-multiplicative-accurate
//! m-bounded max register) has worst-case step complexity
//! `O(min(log₂ log_k m, n))` — an **exponential** improvement over the
//! exact bounded max register's `Θ(min(log₂ m, n))`.
//!
//! Workload: for each bound m, a magnitude sweep of writes (1, 2, 4, …,
//! m−1) each followed by a read, on a fresh register; we record the
//! **maximum** steps any single operation took. The `n`-arm of the `min`
//! is shown with a small-n adaptive register.
//!
//! Expected shape: the exact column grows like log₂ m (doubling m's bits
//! doubles it); the k-mult columns grow like log₂ log_k m (doubling m's
//! bits adds ~1 step); with n = 4 both are capped near n.
//!
//! Run: `cargo run --release -p bench --bin exp_t42`.

use approx_objects::KmultBoundedMaxRegister;
use bench::log2f;
use bench::tables::{f2, Table};
use maxreg::{AdaptiveMaxRegister, MaxRegister, TreeMaxRegister};
use smr::Runtime;

/// Max steps for one (write, read) pair sweep over magnitudes on the
/// exact tree register.
fn sweep_exact(m: u64) -> u64 {
    let rt = Runtime::free_running(64);
    let ctx = rt.ctx(0);
    let reg = TreeMaxRegister::new(m);
    let mut worst = 0;
    let mut v = 1u64;
    loop {
        let s0 = ctx.steps_taken();
        reg.write(&ctx, v.min(m - 1));
        let _ = reg.read(&ctx);
        // Fresh register per magnitude would under-count the read path;
        // a running register measures the true walk depth.
        worst = worst.max(ctx.steps_taken() - s0);
        if v >= m - 1 {
            break;
        }
        v = v.saturating_mul(2);
    }
    worst
}

fn sweep_kmult(n: usize, m: u64, k: u64) -> u64 {
    let rt = Runtime::free_running(n);
    let ctx = rt.ctx(0);
    let reg = KmultBoundedMaxRegister::new(n, m, k);
    let mut worst = 0;
    let mut v = 1u64;
    loop {
        let s0 = ctx.steps_taken();
        reg.write(&ctx, v.min(m - 1));
        let _ = reg.read(&ctx);
        worst = worst.max(ctx.steps_taken() - s0);
        if v >= m - 1 {
            break;
        }
        v = v.saturating_mul(2);
    }
    worst
}

fn sweep_adaptive_small_n(n: usize, m: u64) -> u64 {
    let rt = Runtime::free_running(n);
    let ctx = rt.ctx(0);
    let reg = AdaptiveMaxRegister::new(n, m);
    let mut worst = 0;
    let mut v = 1u64;
    loop {
        let s0 = ctx.steps_taken();
        reg.write(&ctx, v.min(m - 1));
        let _ = reg.read(&ctx);
        worst = worst.max(ctx.steps_taken() - s0);
        if v >= m - 1 {
            break;
        }
        v = v.saturating_mul(2);
    }
    worst
}

fn main() {
    let mut table = Table::new([
        "m",
        "log₂ m",
        "exact (n=64)",
        "kmult k=2",
        "kmult k=4",
        "kmult k=16",
        "log₂log₂m",
        "exact n=4 (min arm)",
    ]);

    for bits in [8u32, 16, 24, 32, 40, 48, 56, 60] {
        let m = 1u64 << bits;
        table.row([
            format!("2^{bits}"),
            bits.to_string(),
            sweep_exact(m).to_string(),
            sweep_kmult(64, m, 2).to_string(),
            sweep_kmult(64, m, 4).to_string(),
            sweep_kmult(64, m, 16).to_string(),
            f2(log2f(bits as f64)),
            sweep_adaptive_small_n(4, m).to_string(),
        ]);
    }

    println!("EXP-T4.2 — worst-case steps per (write+read) pair vs bound m");
    println!("paper claim: exact registers pay Θ(log₂ m); the k-multiplicative");
    println!("register pays O(min(log₂ log_k m, n)) — doubling m's bits adds a");
    println!("constant, not a doubling (Theorem IV.2; optimal by Theorem V.2).");
    table.print("worst-case step complexity vs m");
}
