//! EXP-T3.9 — Theorem III.9: Algorithm 1 (the k-multiplicative-accurate
//! counter with k = ⌈√n⌉) has **constant amortized step complexity**,
//! versus the exact baselines whose amortized cost grows with n.
//!
//! Workload: n processes, each performing `ops` operations (1 read per 16
//! operations, the rest increments), free-running. Reported: steps/op
//! (the amortized step complexity of the execution) per implementation,
//! plus the final quiescent read of the k-multiplicative counter and its
//! accuracy ratio.
//!
//! Expected shape: the `kmult` column stays flat (~constant) as n grows;
//! `collect` grows linearly in n (its reads collect n cells); `aach`
//! grows like log n · log v; `faa` is the 1-step hardware reference.
//!
//! Run: `cargo run --release -p bench --bin exp_t39` (`REPRO_SCALE=4` for
//! longer runs).

use bench::tables::{f2, Table};
use bench::workloads::run_counter_workload;
use bench::{ceil_sqrt, scale};
use counter::{AachCounter, CollectCounter, FaaCounter, UnboundedTreeCounter};
use perturb::counter::{KmultTarget, SharedCounter};
use std::sync::Arc;

fn main() {
    let ops = 40_000 * scale();
    let read_every = 16;
    let mut table = Table::new([
        "n",
        "k=⌈√n⌉",
        "kmult",
        "collect",
        "aach",
        "longlived",
        "faa",
        "kmult final read",
        "accuracy v/x",
    ]);

    for n in [2usize, 4, 8, 16, 32, 64] {
        let k = ceil_sqrt(n as u64);
        let per_proc = ops / n as u64;

        let kmult = {
            let c = approx_objects::KmultCounter::new(n, k);
            let target = Arc::new(KmultTarget::new(&c));
            run_counter_workload(target, n, per_proc, read_every)
        };
        let collect = {
            let c = Arc::new(CollectCounter::new(n));
            run_counter_workload(Arc::new(SharedCounter(c)), n, per_proc, read_every)
        };
        let aach = {
            let c = Arc::new(AachCounter::new(n, (ops * 2).max(1 << 20)));
            run_counter_workload(Arc::new(SharedCounter(c)), n, per_proc, read_every)
        };
        let longlived = {
            let c = Arc::new(UnboundedTreeCounter::new(n));
            run_counter_workload(Arc::new(SharedCounter(c)), n, per_proc, read_every)
        };
        let faa = {
            let c = Arc::new(FaaCounter::new());
            run_counter_workload(Arc::new(SharedCounter(c)), n, per_proc, read_every)
        };

        let v = kmult.total_incs as f64;
        let x = kmult.final_read as f64;
        table.row([
            n.to_string(),
            k.to_string(),
            f2(kmult.amortized()),
            f2(collect.amortized()),
            f2(aach.amortized()),
            f2(longlived.amortized()),
            f2(faa.amortized()),
            kmult.final_read.to_string(),
            f2(v / x.max(1.0)),
        ]);
    }

    println!("EXP-T3.9 — amortized step complexity (steps/op), mixed workload");
    println!("paper claim: kmult column is O(1) for k ≥ √n (Theorem III.9);");
    println!("collect reads are Θ(n); AACH is Θ(log n · log v); the long-lived");
    println!("tree (Baig-et-al.-style substitute) is polylog; faa is the");
    println!("out-of-model fetch&add reference. accuracy v/x must lie in [1/k, k].");
    table.print("steps per operation vs n");
}
