//! Repo-specific source lints for the shared-memory model — invariants
//! clippy cannot see (DESIGN.md "Lint invariants"):
//!
//! 1. **`Ordering::Relaxed` is opt-in.** Every non-test `Relaxed` site
//!    must carry a `// relaxed-ok:` comment (same line or one of the two
//!    preceding lines) saying why the weak ordering is sound. The
//!    modelled primitives are `SeqCst` by construction; a stray Relaxed
//!    in runtime bookkeeping is where a real reordering bug would hide.
//! 2. **No wall-clock sleeps outside tests.** `thread::sleep` in
//!    product code either papers over a missing synchronization edge or
//!    makes a benchmark lie; gate handoffs are the one sanctioned
//!    blocking mechanism.
//! 3. **Machines stay wired and verified.** Every `pub struct
//!    *Machine` (a resume-point transcription of a blocking operation)
//!    must be referenced outside its defining file (wrapped by a task,
//!    a handle, or a re-export — not dead), and its crate must carry at
//!    least one blocking-form equivalence or determinism test, the
//!    mechanism that keeps transcriptions primitive-for-primitive
//!    faithful.
//! 4. **Thread creation in `smr` is confined.** The model's
//!    determinism story depends on exactly two places creating OS
//!    threads: the thread backend (`backend/thread.rs`, one worker per
//!    process) and the explorer's worker pool (`explore.rs`,
//!    `explore_parallel`). A `thread::spawn`/`scope`/`Builder` anywhere
//!    else in non-test `smr` code would put nondeterminism under a
//!    component the coop backend promises is single-threaded.
//! 5. **`lincheck` streams; it does not snapshot.** The online checker
//!    exists so analysis holds O(concurrency) state, not O(history).
//!    Non-test `lincheck` code must never call `history_snapshot()` —
//!    full-history collection inside an analysis pass would silently
//!    reintroduce the unbounded buffering the streaming sweep removed.
//!    (Offline entry points take a caller-built history by argument.)
//! 6. **Metric names are registered constants with unit suffixes.**
//!    Every metric-name constant in `obs/src/names.rs` (the `SUB_*`
//!    subsystem tags excepted) must end in a unit suffix the
//!    `bench::regression` differ can classify (`_total`, `_per_sec`,
//!    `_bytes`, `_entries`), and non-test call sites outside
//!    `crates/obs` must pass those constants to
//!    `obs::counter`/`gauge`/`histogram` — never string literals. A
//!    literal at a call site bypasses the registry's single naming
//!    point, and a suffixless name exports a snapshot field the differ
//!    silently mistakes for row identity.
//!
//! Exit status 0 if clean, 1 with one `file:line: message` finding per
//! violation — shaped like rustc output so CI annotates it. Pass the
//! repo root as the first argument (defaults to `.`).
//!
//! Test code is exempt from rules 1–2: files under `tests/`, and
//! everything from a `#[cfg(test)]` marker to end of file (the repo
//! convention is trailing test modules).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

struct SourceFile {
    path: PathBuf,
    lines: Vec<String>,
    /// Per line: does it fall in a test region?
    in_test: Vec<bool>,
}

fn is_test_path(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches")
}

fn load(path: PathBuf) -> Option<SourceFile> {
    let text = fs::read_to_string(&path).ok()?;
    let lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let mut in_test = vec![is_test_path(&path); lines.len()];
    let mut seen_cfg_test = false;
    for (i, line) in lines.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            seen_cfg_test = true;
        }
        if seen_cfg_test {
            in_test[i] = true;
        }
    }
    Some(SourceFile {
        path,
        lines,
        in_test,
    })
}

/// Every `.rs` file under `root`'s source trees, skipping build output
/// and vendored dependencies (their idioms are not ours to lint).
fn collect_sources(root: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = ["crates", "src", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .filter(|d| d.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                if name != "target" && name != "vendor" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Some(f) = load(path) {
                    files.push(f);
                }
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    files
}

/// `line` (0-based) or one of the three lines above it carries the
/// justification comment (three, so a short comment block or a
/// multi-line method chain still reaches its annotation).
fn has_relaxed_ok(f: &SourceFile, line: usize) -> bool {
    (line.saturating_sub(3)..=line).any(|i| f.lines[i].contains("relaxed-ok:"))
}

/// Extract `Ident` from a `pub struct IdentMachine` declaration line.
fn machine_decl(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix("pub struct ")?;
    let name: &str = rest
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .next()?;
    name.ends_with("Machine").then_some(name)
}

/// The crate (or workspace root) a source file belongs to, for pairing
/// machines with their equivalence tests.
fn crate_root(path: &Path) -> PathBuf {
    let comps: Vec<_> = path.components().collect();
    for (i, c) in comps.iter().enumerate() {
        if c.as_os_str() == "crates" && i + 1 < comps.len() {
            return comps[..=i + 1].iter().collect();
        }
    }
    PathBuf::new() // workspace root: src/, tests/, examples/
}

/// Test-function name fragments that count as a machine-faithfulness
/// test: blocking-form equivalence, cross-backend equivalence, or a
/// determinism signature check.
const PAIRING_MARKERS: &[&str] = &["match_blocking_forms", "determinism", "equivalence"];

/// The unit suffixes `bench::regression` classifies (rule 6); mirrors
/// `UNIT_SUFFIXES` in `obs::registry`, which asserts the same set at
/// registration time.
const UNIT_SUFFIXES: &[&str] = &["_total", "_per_sec", "_bytes", "_entries"];

/// Extract `(NAME, value)` from a `pub const NAME: &str = "value";`
/// metric-name declaration line.
fn metric_const(line: &str) -> Option<(&str, &str)> {
    let rest = line.trim_start().strip_prefix("pub const ")?;
    let (name, rest) = rest.split_once(':')?;
    rest.contains("&str")
        .then(|| rest.split('"').nth(1))
        .flatten()
        .map(|value| (name.trim(), value))
}

fn main() {
    let root = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".into()));
    let files = collect_sources(&root);
    if files.is_empty() {
        eprintln!("lint_smr: no sources found under {}", root.display());
        std::process::exit(2);
    }
    let mut findings: Vec<String> = Vec::new();

    // Rules 1, 2, 4 and 5: line scans over non-test code.
    for f in &files {
        if f.path.file_name().is_some_and(|n| n == "lint_smr.rs") {
            continue; // the linter's own docs name the patterns it flags
        }
        let in_smr = f.path.components().any(|c| c.as_os_str() == "smr") && !is_test_path(&f.path);
        let in_lincheck =
            f.path.components().any(|c| c.as_os_str() == "lincheck") && !is_test_path(&f.path);
        let sanctioned_spawner =
            f.path.ends_with("src/backend/thread.rs") || f.path.ends_with("src/explore.rs");
        for (i, line) in f.lines.iter().enumerate() {
            if f.in_test[i] {
                continue;
            }
            if line.contains("Ordering::Relaxed") && !has_relaxed_ok(f, i) {
                findings.push(format!(
                    "{}:{}: Ordering::Relaxed without a `// relaxed-ok:` justification",
                    f.path.display(),
                    i + 1
                ));
            }
            if line.contains("thread::sleep") {
                findings.push(format!(
                    "{}:{}: thread::sleep in non-test code (synchronize via the gate instead)",
                    f.path.display(),
                    i + 1
                ));
            }
            let spawns = ["thread::spawn", "thread::scope", "thread::Builder"]
                .iter()
                .any(|p| line.contains(p));
            if in_smr && !sanctioned_spawner && spawns {
                findings.push(format!(
                    "{}:{}: thread creation in smr outside the thread backend and the \
                     explorer's worker pool (the coop model is single-threaded by contract)",
                    f.path.display(),
                    i + 1
                ));
            }
            if in_lincheck && line.contains("history_snapshot") {
                findings.push(format!(
                    "{}:{}: history_snapshot() in lincheck non-test code — checker-side \
                     analysis must stream (OnlineChecker), not buffer the full history",
                    f.path.display(),
                    i + 1
                ));
            }
            // Rule 6a: metric-name constants carry a classifiable unit
            // suffix (subsystem tags exempt).
            if f.path.ends_with("obs/src/names.rs") {
                if let Some((name, value)) = metric_const(line) {
                    if !name.starts_with("SUB_")
                        && !UNIT_SUFFIXES.iter().any(|s| value.ends_with(s))
                    {
                        findings.push(format!(
                            "{}:{}: metric name `{value}` lacks a unit suffix the \
                             regression differ classifies (one of {UNIT_SUFFIXES:?})",
                            f.path.display(),
                            i + 1
                        ));
                    }
                }
            }
            // Rule 6b: registration outside crates/obs goes through the
            // named constants, never ad-hoc string literals.
            let in_obs = f.path.components().any(|c| c.as_os_str() == "obs");
            let registers = ["obs::counter(", "obs::gauge(", "obs::histogram("]
                .iter()
                .any(|p| line.contains(p));
            if !in_obs && registers && line.contains('"') {
                findings.push(format!(
                    "{}:{}: metric registered with a string literal — name metrics \
                     via `obs::names` constants so the unit-suffix scheme stays \
                     enforceable in one place",
                    f.path.display(),
                    i + 1
                ));
            }
        }
    }

    // Rule 3: machine wiring and test pairing.
    for f in &files {
        for (i, line) in f.lines.iter().enumerate() {
            let Some(name) = machine_decl(line) else {
                continue;
            };
            let wired = files
                .iter()
                .filter(|other| other.path != f.path)
                .any(|other| other.lines.iter().any(|l| l.contains(name)));
            if !wired {
                findings.push(format!(
                    "{}:{}: machine `{name}` is not referenced outside its defining \
                     file — wrap it in a task or handle (or remove it)",
                    f.path.display(),
                    i + 1
                ));
            }
            let home = crate_root(&f.path);
            let paired = files
                .iter()
                .filter(|other| crate_root(&other.path) == home)
                .flat_map(|other| other.lines.iter())
                .any(|l| PAIRING_MARKERS.iter().any(|m| l.contains(m)));
            if !paired {
                findings.push(format!(
                    "{}:{}: machine `{name}`'s crate has no blocking-form equivalence \
                     or determinism test (expected a test mentioning one of {PAIRING_MARKERS:?})",
                    f.path.display(),
                    i + 1
                ));
            }
        }
    }

    if findings.is_empty() {
        let sources = files.len();
        println!("lint_smr: {sources} files clean");
        return;
    }
    let mut out = String::new();
    for finding in &findings {
        let _ = writeln!(out, "{finding}");
    }
    eprint!("{out}");
    eprintln!("lint_smr: {} finding(s)", findings.len());
    std::process::exit(1);
}
