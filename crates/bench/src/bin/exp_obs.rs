//! EXP-OBS — what does self-measurement cost?
//!
//! The `obs` layer claims to be zero-cost when disabled (one relaxed
//! load per metric operation) and near-zero when enabled (one relaxed
//! `fetch_add` on a thread-private shard). This experiment measures
//! both claims on the hottest instrumented path in the tree: the
//! free-running coop backend, whose poll loop fires the `coop` poll
//! counter once per task poll, at 10⁵–10⁶ virtual processes.
//!
//! Method: for each process count, run the same read-then-write
//! register workload with metrics disabled and enabled, interleaved
//! (off/on, off/on, …) so drift hits both sides equally, and keep the
//! best run of each side. The acceptance bar — asserted here, not just
//! reported — is that metrics-on keeps at least 95% of metrics-off
//! throughput at 10⁵ processes, estimated as the larger of the
//! best-on/best-off quotient and the best single-round pairwise ratio
//! (adjacent runs see the same machine load); a failing estimate
//! re-measures up to three times before the assert fires, since one
//! scheduler hiccup at ~100ms run lengths costs more than the whole
//! budget.
//!
//! Results land in `BENCH_obs.json` (cwd) for regression tracking
//! (rows keyed by `obs: off/on`, so the differ tracks both sides
//! independently), and the final metrics-on run's [`MetricsSnapshot`]
//! lands in `OBS_snapshot.json` — the machine-readable counter dump
//! CI uploads as an artifact next to the bench history.
//!
//! [`MetricsSnapshot`]: obs::MetricsSnapshot

use bench::emit::{mode_str, Report, Row};
use bench::tables::{f2, Table};
use smr::{Driver, OpSpec, OpTask, Poll, ProcCtx, Register, Runtime};
use std::sync::Arc;
use std::time::Instant;

/// Read-then-write over a striped register pool: 2 primitives per op
/// (the same workload shape as `exp_scale`'s `reg` rows).
struct RegChainTask {
    pool: Arc<Vec<Register>>,
    at: usize,
    read: Option<u64>,
    primed: bool,
}

impl RegChainTask {
    fn new(pool: Arc<Vec<Register>>, at: usize) -> Self {
        RegChainTask {
            pool,
            at,
            read: None,
            primed: false,
        }
    }
}

impl OpTask for RegChainTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        let len = self.pool.len();
        match self.read {
            None => {
                self.read = Some(self.pool[self.at % len].read(ctx));
                Poll::Pending
            }
            Some(v) => {
                self.pool[(self.at + 1) % len].write(ctx, v.wrapping_add(1));
                Poll::Ready(u128::from(v))
            }
        }
    }
}

struct Sample {
    obs: &'static str,
    n: usize,
    ops: u64,
    steps: u64,
    millis: f64,
}

impl Sample {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.millis / 1e3).max(1e-9)
    }

    fn row(&self) -> Row {
        Row::new()
            .str("workload", "reg")
            .str("backend", "coop")
            .str("mode", "free")
            .str("obs", self.obs)
            .int("n", self.n as u64)
            .int("ops", self.ops)
            .int("steps", self.steps)
            .float3("millis", self.millis)
            .float0("steps_per_sec", self.steps_per_sec())
    }
}

/// One free-running coop run; `enabled` toggles metric collection for
/// its duration (restored to off afterwards so the harness itself
/// never pays for metrics between measurements).
fn run_once(n: usize, ops_per_proc: u64, enabled: bool) -> Sample {
    obs::registry::reset_all();
    obs::set_enabled(enabled);
    let mut d = Driver::coop_free(Runtime::coop_free(n));
    let pool: Arc<Vec<Register>> = Arc::new((0..1024).map(|_| Register::new(0)).collect());
    for pid in 0..n {
        for j in 0..ops_per_proc {
            d.submit_task(
                pid,
                OpSpec::custom("rmw", j as u128),
                RegChainTask::new(pool.clone(), pid + j as usize),
            );
        }
    }
    let start = Instant::now();
    d.wait_all();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let steps = d.runtime().total_steps();
    obs::set_enabled(false);
    Sample {
        obs: if enabled { "on" } else { "off" },
        n,
        ops: n as u64 * ops_per_proc,
        steps,
        millis,
    }
}

/// One interleaved off/on measurement: the best run of each side, the
/// best *pairwise* on/off ratio across rounds (adjacent runs see the
/// same machine load, so per-round ratios cancel drift the
/// best-of-each-side quotient cannot), and the metrics snapshot taken
/// after the final enabled run (counts are per-run: the registry is
/// reset before each run).
struct Measurement {
    best_off: Sample,
    best_on: Sample,
    best_pair_ratio: f64,
    snap: obs::MetricsSnapshot,
}

fn measure(n: usize, ops_per_proc: u64, rounds: usize) -> Measurement {
    let mut best_off: Option<Sample> = None;
    let mut best_on: Option<Sample> = None;
    let mut best_pair_ratio = 0.0f64;
    let mut snap = obs::snapshot();
    let better = |best: Option<Sample>, s: Sample| -> Option<Sample> {
        match best {
            Some(b) if b.millis <= s.millis => Some(b),
            _ => Some(s),
        }
    };
    for _ in 0..rounds {
        let off = run_once(n, ops_per_proc, false);
        let on = run_once(n, ops_per_proc, true);
        snap = obs::snapshot();
        best_pair_ratio = best_pair_ratio.max(on.steps_per_sec() / off.steps_per_sec().max(1e-9));
        best_off = better(best_off, off);
        best_on = better(best_on, on);
    }
    Measurement {
        best_off: best_off.expect("rounds >= 1"),
        best_on: best_on.expect("rounds >= 1"),
        best_pair_ratio,
        snap,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = bench::scale() as usize;

    // (n, ops_per_proc, rounds). The 10⁵ row is the asserted
    // acceptance bar and runs in both modes.
    let configs: Vec<(usize, u64, usize)> = if smoke {
        vec![(10_000, 2, 2), (100_000, 4, 3)]
    } else {
        vec![(10_000, 4, 3), (100_000, 4, 3), (1_000_000 * scale, 1, 2)]
    };

    // A deterministic sampling cadence for the instrumented runs: the
    // reporter is pumped with cumulative *step* counts, never wall
    // clock, so two identical runs sample at identical points.
    let mut reporter = obs::Reporter::new(250_000);
    let mut pumped_steps: u64 = 0;

    let mut samples: Vec<Sample> = Vec::new();
    let mut last_snapshot: Option<obs::MetricsSnapshot> = None;
    let mut bar_ratio = 0.0f64;
    for &(n, ops, rounds) in &configs {
        let m = measure(n, ops, rounds);
        eprintln!(
            "done: n={n}: off {:.0} steps/s, on {:.0} steps/s ({:.1}%)",
            m.best_off.steps_per_sec(),
            m.best_on.steps_per_sec(),
            100.0 * m.best_on.steps_per_sec() / m.best_off.steps_per_sec().max(1e-9),
        );
        pumped_steps += m.best_on.steps;
        reporter.poll(pumped_steps);
        let polls = m
            .snap
            .get(obs::names::SUB_COOP, obs::names::COOP_POLLS)
            .unwrap_or(0);
        assert!(
            polls > 0,
            "an enabled run at n={n} recorded zero coop polls — the hot path lost \
             its instrumentation"
        );
        if n == 100_000 {
            let quotient = m.best_on.steps_per_sec() / m.best_off.steps_per_sec().max(1e-9);
            bar_ratio = bar_ratio.max(quotient).max(m.best_pair_ratio);
        }
        last_snapshot = Some(m.snap);
        samples.push(m.best_off);
        samples.push(m.best_on);
    }

    // The acceptance bar: enabled metrics keep ≥ 95% of disabled
    // throughput at 10⁵ processes. The ratio is estimated two ways —
    // best-on over best-off, and the best single-round pairwise
    // quotient (robust when machine load drifts *across* rounds) —
    // and the larger estimate is compared; both estimators are only
    // ever depressed by noise, never inflated past the true ratio's
    // noise envelope. Runs at this size last ~100–200ms, where one
    // scheduler hiccup on a shared runner costs more than the whole
    // 5% budget, so a failing estimate re-measures (merging into the
    // running maxima) up to three times before the assert fires. A
    // real regression in the enabled path fails every attempt; a
    // noisy neighbour does not.
    let bar = configs
        .iter()
        .find(|&&(n, _, _)| n == 100_000)
        .expect("the 10⁵ config always runs");
    for _ in 0..3 {
        if bar_ratio >= 0.95 {
            break;
        }
        eprintln!("bar attempt came in at {bar_ratio:.3}; re-measuring");
        let m = measure(bar.0, bar.1, bar.2);
        let quotient = m.best_on.steps_per_sec() / m.best_off.steps_per_sec().max(1e-9);
        bar_ratio = bar_ratio.max(quotient).max(m.best_pair_ratio);
    }
    assert!(
        bar_ratio >= 0.95,
        "metrics-on throughput at 10⁵ procs is {:.1}% of metrics-off — the \
         enabled path exceeds the 5% budget",
        100.0 * bar_ratio,
    );

    println!("EXP-OBS — metrics overhead on the free-running coop backend");
    println!("off = obs disabled (one relaxed load per metric op);");
    println!("on  = obs enabled (sharded relaxed fetch_add per event).");
    println!(
        "10⁵-proc bar: on/off = {:.3} (≥ 0.950 required); reporter took {} snapshot(s).",
        bar_ratio,
        reporter.samples().len()
    );
    let mut table = Table::new(["n", "obs", "ops", "steps", "ms", "steps/s"]);
    for s in &samples {
        table.row([
            s.n.to_string(),
            s.obs.to_string(),
            s.ops.to_string(),
            s.steps.to_string(),
            f2(s.millis),
            format!("{:.0}", s.steps_per_sec()),
        ]);
    }
    table.print(if smoke {
        "metrics on/off (--smoke sizes)"
    } else {
        "metrics on/off"
    });

    let mut report = Report::new("obs_overhead", mode_str(smoke));
    for s in &samples {
        report.row(s.row());
    }
    report.write("BENCH_obs.json");

    // The counter dump CI uploads next to the bench artifacts: every
    // registered metric after the final instrumented run, in the same
    // flat-JSON shape the regression parser consumes.
    if let Some(snap) = last_snapshot {
        let path = "OBS_snapshot.json";
        match std::fs::write(path, snap.to_json(mode_str(smoke))) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
}
