//! EXP-LENGTH — Theorem III.9's "executions of arbitrary length" clause:
//! Algorithm 1's amortized step complexity stays constant as the
//! execution grows by orders of magnitude, where the restricted-use
//! exact counters (paper §I-A) degrade.
//!
//! This is the property that separates the paper's counter from the
//! bounded-use constructions of Aspnes–Attiya–Censor-Hillel: their cost
//! is polylog in the *count*, so it creeps up with execution length,
//! and the JTT Ω(n) bound catches up for executions exponential in n.
//!
//! Run: `cargo run --release -p bench --bin exp_length`.

use approx_objects::KmultCounter;
use bench::tables::{f2, Table};
use bench::workloads::run_counter_workload;
use counter::{AachCounter, CollectCounter, UnboundedTreeCounter};
use perturb::counter::{KmultTarget, SharedCounter};
use std::sync::Arc;

fn main() {
    let n = 8usize;
    let k = 3u64; // ⌈√8⌉
    let mut table = Table::new([
        "total ops",
        "kmult steps/op",
        "collect steps/op",
        "aach steps/op",
        "longlived steps/op",
        "kmult switch frontier",
    ]);

    for exp in [3u32, 4, 5, 6] {
        let total: u64 = 10u64.pow(exp);
        let per = total / n as u64;

        let (kmult_am, frontier) = {
            let c = KmultCounter::new(n, k);
            let target = Arc::new(KmultTarget::new(&c));
            let res = run_counter_workload(target, n, per, 16);
            let mut f = 0u64;
            while c.peek_switch(f) {
                f += 1;
            }
            (res.amortized(), f)
        };
        let collect_am = {
            let c = Arc::new(CollectCounter::new(n));
            run_counter_workload(Arc::new(SharedCounter(c)), n, per, 16).amortized()
        };
        let aach_am = {
            let c = Arc::new(AachCounter::new(n, (total * 2).max(1 << 20)));
            run_counter_workload(Arc::new(SharedCounter(c)), n, per, 16).amortized()
        };
        let longlived_am = {
            let c = Arc::new(UnboundedTreeCounter::new(n));
            run_counter_workload(Arc::new(SharedCounter(c)), n, per, 16).amortized()
        };

        table.row([
            format!("10^{exp}"),
            f2(kmult_am),
            f2(collect_am),
            f2(aach_am),
            f2(longlived_am),
            frontier.to_string(),
        ]);
    }

    println!("EXP-LENGTH — amortized steps/op vs execution length (n = {n}, k = {k})");
    println!("paper claim: Algorithm 1's O(1) amortized bound holds for executions");
    println!("of arbitrary length — announcements get geometrically rarer (the");
    println!("switch frontier grows only logarithmically in the op count), while");
    println!("AACH's per-op polylog(count) cost creeps upward.");
    table.print("amortized step complexity vs execution length");
}
