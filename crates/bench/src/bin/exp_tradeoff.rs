//! EXP-TRADEOFF — ablation of the relaxation knob: what does each unit
//! of allowed inaccuracy buy, and how do the paper's *multiplicative*
//! relaxation and the related-work *additive* relaxation (§I-A) differ?
//!
//! Fixed n, sweeping k for both relaxations, mixed workload. Reported:
//! amortized steps/op and the worst observed error (ratio v/x for
//! multiplicative, |v − x| for additive).
//!
//! Expected shape (and the paper's structural point):
//!
//! * the **multiplicative** counter's cost collapses to O(1) once
//!   `k ≥ √n` and stays there — both increments *and* reads are cheap
//!   because reads walk geometrically-spaced announcements;
//! * the **additive** counter can only cheapen *increments* (batching);
//!   its reads stay Θ(n) forever — mirroring the Aspnes et al.
//!   `Ω(min(n − 1, log m − log k))` bound: additive slack k must reach
//!   `≈ m` before reads can get cheap.
//!
//! Run: `cargo run --release -p bench --bin exp_tradeoff`.

use approx_objects::{KaddCounter, KmultCounter};
use bench::scale;
use bench::tables::{f2, Table};
use smr::Runtime;

const READ_EVERY: u64 = 16;

struct Measured {
    amortized: f64,
    worst_err: f64,
}

fn run_kmult(n: usize, k: u64, ops_per: u64) -> Measured {
    let rt = Runtime::free_running(n);
    let counter = KmultCounter::new(n, k);
    let workers: Vec<_> = (0..n)
        .map(|pid| {
            let ctx = rt.ctx(pid);
            let mut h = counter.handle(pid);
            std::thread::spawn(move || {
                for i in 1..=ops_per {
                    if i % READ_EVERY == 0 {
                        let _ = h.read(&ctx);
                    } else {
                        h.increment(&ctx);
                    }
                }
                h
            })
        })
        .collect();
    let mut handles: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let total_ops = ops_per * n as u64;
    let incs = (ops_per - ops_per / READ_EVERY) * n as u64;
    let x = handles[0].read(&rt.ctx(0));
    let ratio = incs as f64 / x as f64;
    Measured {
        amortized: rt.total_steps() as f64 / total_ops as f64,
        worst_err: if ratio < 1.0 { 1.0 / ratio } else { ratio },
    }
}

fn run_kadd(n: usize, k: u64, ops_per: u64) -> Measured {
    let rt = Runtime::free_running(n);
    let counter = KaddCounter::new(n, k);
    let workers: Vec<_> = (0..n)
        .map(|pid| {
            let ctx = rt.ctx(pid);
            let mut h = counter.handle(pid);
            std::thread::spawn(move || {
                for i in 1..=ops_per {
                    if i % READ_EVERY == 0 {
                        let _ = h.read(&ctx);
                    } else {
                        h.increment(&ctx);
                    }
                }
                h
            })
        })
        .collect();
    let handles: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let total_ops = ops_per * n as u64;
    let incs = (ops_per - ops_per / READ_EVERY) * n as u64;
    let x = handles[0].read(&rt.ctx(0));
    Measured {
        amortized: rt.total_steps() as f64 / total_ops as f64,
        worst_err: (u128::from(incs)).abs_diff(x) as f64,
    }
}

fn main() {
    let n = 16usize;
    let ops_per = 20_000 * scale();
    let mut table = Table::new([
        "k",
        "k ≥ √n?",
        "kmult steps/op",
        "kmult quiescent ratio (≤ k)",
        "kadd steps/op",
        "kadd quiescent |err| (≤ k)",
    ]);

    for k in [2u64, 4, 8, 16, 64, 256, 1024] {
        let mult = run_kmult(n, k, ops_per);
        let add = run_kadd(n, k, ops_per);
        table.row([
            k.to_string(),
            if k * k >= n as u64 {
                "yes".into()
            } else {
                "no".to_string()
            },
            f2(mult.amortized),
            f2(mult.worst_err),
            f2(add.amortized),
            f2(add.worst_err),
        ]);
    }

    println!("EXP-TRADEOFF — the relaxation knob at n = {n} (mixed workload,");
    println!("1 read per {READ_EVERY} ops). The multiplicative counter collapses");
    println!("to O(1) steps/op once k ≥ √n and gains nothing more; the additive");
    println!("counter's batching cheapens increments with k, but its reads stay");
    println!("Θ(n) — the structural asymmetry behind the paper's choice of the");
    println!("multiplicative relaxation.");
    table.print("relaxation tradeoff: multiplicative vs additive");
}
