//! BENCH-DIFF — warn when a fresh `BENCH_*.json` regresses a committed
//! baseline by more than a factor (default 2×): throughput (`_per_sec`)
//! dropping, or memory (`_bytes`, e.g. `peak_rss_bytes`) growing.
//!
//! Usage: `bench_diff BASELINE.json FRESH.json [--factor 2.0] [--strict]`
//!
//! Rows are matched by their stable identity fields; every compared
//! metric present on both sides is checked (see `bench::regression`).
//! The exit code is 0 by default — CI machines vary too much to gate on
//! wall-clock throughput — but regressions are printed loudly so a
//! slowdown is visible in the log the moment it lands. `--strict` turns
//! regressions beyond the factor into exit 1, for local gating runs
//! (pre-release sweeps on a quiet box); CI stays warn-only.
//!
//! CI: after an experiment rewrites its JSON in place, diff against the
//! previously-committed copy:
//!
//! ```bash
//! cp BENCH_sketch.json /tmp/baseline.json
//! cargo run --release -p bench --bin exp_sketch -- --smoke
//! cargo run --release -p bench --bin bench_diff -- /tmp/baseline.json BENCH_sketch.json
//! ```

use bench::regression::{diff, parse_bench_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_diff BASELINE.json FRESH.json [--factor F] [--strict]");
        std::process::exit(2);
    }
    let strict = args.iter().any(|a| a == "--strict");
    let factor = match args.iter().position(|a| a == "--factor") {
        None => 2.0,
        Some(i) => match args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
            Some(f) if f >= 1.0 => f,
            _ => {
                eprintln!(
                    "bench_diff: --factor needs a number ≥ 1 (got {:?})",
                    args.get(i + 1)
                );
                std::process::exit(2);
            }
        },
    };

    let read = |path: &str| -> bench::regression::BenchFile {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_bench_json(&text).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&args[1]);
    let fresh = read(&args[2]);
    if baseline.bench != fresh.bench {
        eprintln!(
            "bench_diff: comparing different benches ({} vs {}) — nothing to do",
            baseline.bench, fresh.bench
        );
        return;
    }

    let regressions = diff(&baseline, &fresh, factor);
    println!(
        "bench_diff: {} ({} baseline rows, {} fresh rows, factor {factor}x)",
        fresh.bench,
        baseline.results.len(),
        fresh.results.len()
    );
    if regressions.is_empty() {
        println!("bench_diff: no regressions beyond {factor}x");
        return;
    }
    for r in &regressions {
        let verb = match r.kind {
            bench::regression::MetricKind::Throughput => "slowed down",
            bench::regression::MetricKind::Memory => "grew",
        };
        println!(
            "WARNING: {}: {} {verb} {:.1}x ({:.0} -> {:.0})",
            r.row,
            r.metric,
            r.severity(),
            r.baseline,
            r.fresh
        );
    }
    if strict {
        println!(
            "bench_diff: {} regression(s) beyond {factor}x — failing (--strict)",
            regressions.len()
        );
        std::process::exit(1);
    }
    println!(
        "bench_diff: {} regression(s) beyond {factor}x — investigate before trusting \
         the committed numbers (exit 0: wall-clock noise is not a CI failure)",
        regressions.len()
    );
}
