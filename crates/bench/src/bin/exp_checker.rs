//! EXP-CHECKER — throughput of the linearizability checkers on
//! synthetic large counter histories: the `O(R log R + I log I)` sweep
//! engine vs the retained `O(R² log I)` pairwise reference.
//!
//! The north star is checking **million-op histories**; this experiment
//! tracks the asymptotic win that makes that feasible. Histories are
//! synthesized from a valid execution (every read returns its
//! forced-before count, which always linearizes), with heavily
//! overlapping windows, pending operations and multi-unit increment
//! batches, so the sweep's monotone stack and the reference's Fenwick
//! streaming both do real work. On each size where both engines run,
//! their verdicts are cross-checked.
//!
//! Results land in `BENCH_checker.json` (cwd) for regression tracking.
//!
//! Run: `cargo run --release -p bench --bin exp_checker`
//! CI:  `cargo run --release -p bench --bin exp_checker -- --smoke`
//! (`--smoke` shrinks the sizes to keep the bin exercised without
//! costing CI minutes; `REPRO_SCALE` multiplies the full sizes.)

use bench::tables::{f2, Table};
use lincheck::monotone::{check_counter, prefix_sums, weighted_lt};
use lincheck::{naive, CounterHistory, Interval, TimedInc, TimedRead};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Synthesize a linearizable counter history of `n_incs` increment
/// records and `n_reads` reads with overlapping windows. Reads return
/// their forced-before weight `A_r` — always a valid assignment (the
/// greedy's own lower bound), so the sweep runs to completion over the
/// whole history instead of bailing at the first read.
fn synth_history(n_incs: usize, n_reads: usize, seed: u64) -> CounterHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = 2 * (n_incs + n_reads) as u64 + 2;
    let mut incs = Vec::with_capacity(n_incs);
    for _ in 0..n_incs {
        let inv = rng.random_range(0..horizon);
        let pending = rng.random_range(0..16) == 0;
        let amount = 1 + rng.random_range(0..3);
        incs.push(TimedInc {
            window: if pending {
                Interval::pending(inv)
            } else {
                Interval::done(inv, inv + 1 + rng.random_range(0..32))
            },
            amount,
        });
    }
    // Forced-before table: completed increments by response, using the
    // checker's own weighted-count primitives so the generator can never
    // drift from the engine's boundary semantics.
    let mut by_resp: Vec<(u64, u64)> = incs
        .iter()
        .filter_map(|i| i.window.resp.map(|r| (r, i.amount)))
        .collect();
    by_resp.sort_unstable();
    let prefix = prefix_sums(&by_resp);
    let reads = (0..n_reads)
        .map(|_| {
            let inv = rng.random_range(0..horizon);
            TimedRead {
                inv,
                resp: inv + 1 + rng.random_range(0..32),
                value: weighted_lt(&by_resp, &prefix, inv),
            }
        })
        .collect();
    CounterHistory { incs, reads }
}

struct Sample {
    engine: &'static str,
    total_ops: usize,
    millis: f64,
    verdict: bool,
}

fn time_engine<F: Fn(&CounterHistory) -> bool>(
    engine: &'static str,
    h: &CounterHistory,
    f: F,
) -> Sample {
    let start = Instant::now();
    let verdict = f(h);
    let millis = start.elapsed().as_secs_f64() * 1e3;
    Sample {
        engine,
        total_ops: h.incs.len() + h.reads.len(),
        millis,
        verdict,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = bench::scale() as usize;

    // (total records, run the quadratic reference too?)
    let sizes: Vec<(usize, bool)> = if smoke {
        vec![(2_000, true), (10_000, false)]
    } else {
        vec![
            (10_000, true),
            (30_000, true),
            (100_000 * scale, false),
            (300_000 * scale, false),
            (1_000_000 * scale, false),
        ]
    };

    let mut table = Table::new(["records", "engine", "ms", "records/s", "verdict"]);
    let mut samples: Vec<Sample> = Vec::new();

    for (idx, &(total, with_naive)) in sizes.iter().enumerate() {
        // 2/3 increments, 1/3 reads — roughly the stress-test mix.
        let h = synth_history(total * 2 / 3, total - total * 2 / 3, 0xC0DE + idx as u64);

        let sweep = time_engine("sweep", &h, |h| check_counter(h, 1).is_ok());
        assert!(sweep.verdict, "synthetic history must linearize");
        samples.push(sweep);

        if with_naive {
            let reference = time_engine("naive", &h, |h| naive::check_counter(h, 1).is_ok());
            let s = samples.last().unwrap();
            assert_eq!(
                s.verdict, reference.verdict,
                "engines disagree on a {total}-record history"
            );
            samples.push(reference);
        }
    }

    for s in &samples {
        table.row([
            s.total_ops.to_string(),
            s.engine.to_string(),
            f2(s.millis),
            format!("{:.0}", s.total_ops as f64 / (s.millis / 1e3).max(1e-9)),
            if s.verdict {
                "ok".into()
            } else {
                "VIOLATION".to_string()
            },
        ]);
    }

    println!("EXP-CHECKER — monotone checker throughput on synthetic histories");
    println!("sweep = O(R log R + I log I) production engine;");
    println!("naive = retained O(R² log I) pairwise reference (small sizes only).");
    table.print(if smoke {
        "checker throughput (--smoke sizes)"
    } else {
        "checker throughput"
    });

    // Machine-readable results for regression tracking.
    let mut json = String::from("{\n  \"bench\": \"checker_throughput\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"records\": {}, \"millis\": {:.3}, \"records_per_sec\": {:.0}}}{}\n",
            s.engine,
            s.total_ops,
            s.millis,
            s.total_ops as f64 / (s.millis / 1e3).max(1e-9),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_checker.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
