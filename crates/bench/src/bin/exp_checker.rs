//! EXP-CHECKER — throughput of the linearizability checkers on
//! synthetic large counter histories, in two modes:
//!
//! * **offline** — the post-hoc `O(R log R + I log I)` sweep engine vs
//!   the retained `O(R² log I)` pairwise reference;
//! * **online** — the streaming [`lincheck::OnlineChecker`] consuming
//!   the same history as a pre-sorted record stream, one push per
//!   announcement/completion, with retained state bounded by the
//!   history's maximum concurrency rather than its length.
//!
//! The north star is checking **million-op histories** as they are
//! produced; this experiment tracks both the asymptotic win that makes
//! post-hoc checking feasible and the streaming overhead + footprint
//! that make *inline* checking feasible. Histories are synthesized from
//! a valid execution (every read returns its forced-before count, which
//! always linearizes), with heavily overlapping windows, pending
//! operations and multi-unit increment batches, so the sweep's monotone
//! stack and the online checker's watermark retirement both do real
//! work. On each size where several engines run, their verdicts are
//! cross-checked; the online engine's peak retained state is asserted
//! against the history's measured concurrency, and at the 10⁶-record
//! config its throughput is asserted to be at least the offline
//! sweep's.
//!
//! Results land in `BENCH_checker.json` (cwd) for regression tracking.
//! Each row carries a `mode` field (`offline` / `online`) that joins
//! the row identity, and online rows add `peak_retained_entries` — a
//! memory-direction metric `bench_diff` checks for growth.
//!
//! Run: `cargo run --release -p bench --bin exp_checker`
//! CI:  `cargo run --release -p bench --bin exp_checker -- --smoke`
//! (`--smoke` shrinks the sizes to keep the bin exercised without
//! costing CI minutes; `REPRO_SCALE` multiplies the full sizes.)

use bench::emit::{mode_str, Report, Row};
use bench::tables::{f2, Table};
use lincheck::monotone::{check_counter, prefix_sums, weighted_lt};
use lincheck::{naive, CounterHistory, Interval, OnlineChecker, TimedInc, TimedRead};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smr::{OpKind, OpRecord};
use std::time::Instant;

/// Synthesize a linearizable counter history of `n_incs` increment
/// records and `n_reads` reads with overlapping windows. Reads return
/// their forced-before weight `A_r` — always a valid assignment (the
/// greedy's own lower bound), so the sweep runs to completion over the
/// whole history instead of bailing at the first read.
fn synth_history(n_incs: usize, n_reads: usize, seed: u64) -> CounterHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = 2 * (n_incs + n_reads) as u64 + 2;
    let mut incs = Vec::with_capacity(n_incs);
    for _ in 0..n_incs {
        let inv = rng.random_range(0..horizon);
        let pending = rng.random_range(0..16) == 0;
        let amount = 1 + rng.random_range(0..3);
        incs.push(TimedInc {
            window: if pending {
                Interval::pending(inv)
            } else {
                Interval::done(inv, inv + 1 + rng.random_range(0..32))
            },
            amount,
        });
    }
    // Forced-before table: completed increments by response, using the
    // checker's own weighted-count primitives so the generator can never
    // drift from the engine's boundary semantics.
    let mut by_resp: Vec<(u64, u64)> = incs
        .iter()
        .filter_map(|i| i.window.resp.map(|r| (r, i.amount)))
        .collect();
    by_resp.sort_unstable();
    let prefix = prefix_sums(&by_resp);
    let reads = (0..n_reads)
        .map(|_| {
            let inv = rng.random_range(0..horizon);
            TimedRead {
                inv,
                resp: inv + 1 + rng.random_range(0..32),
                value: weighted_lt(&by_resp, &prefix, inv),
            }
        })
        .collect();
    CounterHistory { incs, reads }
}

/// Flatten a history into the record stream a live run would emit:
/// one announcement per operation at its invocation, one completion at
/// its response (pending operations never complete), sorted by
/// timestamp with announcements first at ties. Built *outside* the
/// timed region — in the streaming scenario the stream arrives in
/// order for free.
fn online_stream(h: &CounterHistory) -> Vec<OpRecord> {
    let mut events: Vec<(u64, u8, OpRecord)> =
        Vec::with_capacity(2 * (h.reads.len() + h.incs.len()));
    let rec = |pid: usize, kind: OpKind, inv: u64, resp: Option<u64>| OpRecord {
        pid,
        kind,
        inv,
        resp,
        steps: 0,
    };
    for (j, r) in h.reads.iter().enumerate() {
        let kind = OpKind::Read { returned: r.value };
        events.push((r.inv, 0, rec(j, kind, r.inv, None)));
        events.push((r.resp, 1, rec(j, kind, r.inv, Some(r.resp))));
    }
    for (i, inc) in h.incs.iter().enumerate() {
        let pid = h.reads.len() + i;
        let kind = OpKind::Inc { amount: inc.amount };
        let inv = inc.window.inv;
        events.push((inv, 0, rec(pid, kind, inv, None)));
        if let Some(resp) = inc.window.resp {
            events.push((resp, 1, rec(pid, kind, inv, Some(resp))));
        }
    }
    events.sort_by_key(|&(t, tie, _)| (t, tie));
    events.into_iter().map(|(_, _, r)| r).collect()
}

/// Maximum number of simultaneously open operations in the history:
/// +1 at each invocation, −1 at each response, pending operations open
/// forever. Arrivals count before departures at equal timestamps, so
/// the measure upper-bounds what the online checker can have open.
fn max_concurrency(h: &CounterHistory) -> usize {
    let mut deltas: Vec<(u64, u8, i64)> = Vec::new();
    let op = |inv: u64, resp: Option<u64>, deltas: &mut Vec<(u64, u8, i64)>| {
        deltas.push((inv, 0, 1));
        if let Some(r) = resp {
            deltas.push((r, 1, -1));
        }
    };
    for r in &h.reads {
        op(r.inv, Some(r.resp), &mut deltas);
    }
    for i in &h.incs {
        op(i.window.inv, i.window.resp, &mut deltas);
    }
    deltas.sort_unstable_by_key(|&(t, tie, _)| (t, tie));
    let mut open = 0i64;
    let mut peak = 0i64;
    for (_, _, d) in deltas {
        open += d;
        peak = peak.max(open);
    }
    peak as usize
}

struct Sample {
    mode: &'static str,
    engine: &'static str,
    total_ops: usize,
    millis: f64,
    verdict: bool,
    peak_retained: Option<usize>,
}

fn time_engine<F: Fn(&CounterHistory) -> bool>(
    engine: &'static str,
    h: &CounterHistory,
    f: F,
) -> Sample {
    let start = Instant::now();
    let verdict = f(h);
    let millis = start.elapsed().as_secs_f64() * 1e3;
    Sample {
        mode: "offline",
        engine,
        total_ops: h.incs.len() + h.reads.len(),
        millis,
        verdict,
        peak_retained: None,
    }
}

/// Time the streaming checker over a pre-sorted record stream.
fn time_online(h: &CounterHistory) -> Sample {
    let stream = online_stream(h);
    let start = Instant::now();
    let mut checker = OnlineChecker::counter(1);
    let mut verdict = true;
    for r in &stream {
        if checker.push(r).is_err() {
            verdict = false;
            break;
        }
    }
    verdict = verdict && checker.finish().is_ok();
    let millis = start.elapsed().as_secs_f64() * 1e3;

    let peak = checker.peak_retained();
    let conc = max_concurrency(h);
    assert!(
        peak <= 4 * conc + 64,
        "online checker retained {peak} entries against a measured \
         max concurrency of {conc}: the watermark is not retiring"
    );
    Sample {
        mode: "online",
        engine: "online",
        total_ops: h.incs.len() + h.reads.len(),
        millis,
        verdict,
        peak_retained: Some(peak),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = bench::scale() as usize;

    // (total records, run the quadratic reference too?)
    let sizes: Vec<(usize, bool)> = if smoke {
        vec![(2_000, true), (10_000, false)]
    } else {
        vec![
            (10_000, true),
            (30_000, true),
            (100_000 * scale, false),
            (300_000 * scale, false),
            (1_000_000 * scale, false),
        ]
    };

    let mut table = Table::new([
        "records",
        "mode",
        "engine",
        "ms",
        "records/s",
        "peak",
        "verdict",
    ]);
    let mut samples: Vec<Sample> = Vec::new();

    for (idx, &(total, with_naive)) in sizes.iter().enumerate() {
        // 2/3 increments, 1/3 reads — roughly the stress-test mix.
        let h = synth_history(total * 2 / 3, total - total * 2 / 3, 0xC0DE + idx as u64);

        let sweep = time_engine("sweep", &h, |h| check_counter(h, 1).is_ok());
        assert!(sweep.verdict, "synthetic history must linearize");
        let sweep_millis = sweep.millis;
        samples.push(sweep);

        if with_naive {
            let reference = time_engine("naive", &h, |h| naive::check_counter(h, 1).is_ok());
            let s = samples.last().unwrap();
            assert_eq!(
                s.verdict, reference.verdict,
                "engines disagree on a {total}-record history"
            );
            samples.push(reference);
        }

        let online = time_online(&h);
        assert!(
            online.verdict,
            "online checker rejected a linearizable {total}-record history"
        );
        if total >= 1_000_000 {
            // The acceptance bar for inline checking: at serving scale
            // the stream must not check slower than the post-hoc sweep.
            assert!(
                online.millis <= sweep_millis,
                "online checking ({:.1}ms) slower than the offline sweep \
                 ({sweep_millis:.1}ms) at {total} records",
                online.millis
            );
        }
        samples.push(online);
    }

    println!("EXP-CHECKER — monotone checker throughput on synthetic histories");
    println!("offline/sweep  = O(R log R + I log I) post-hoc engine;");
    println!("offline/naive  = retained O(R² log I) pairwise reference (small sizes only);");
    println!("online/online  = streaming checker, watermark-bounded retained state.");
    for s in &samples {
        table.row([
            s.total_ops.to_string(),
            s.mode.to_string(),
            s.engine.to_string(),
            f2(s.millis),
            format!("{:.0}", s.total_ops as f64 / (s.millis / 1e3).max(1e-9)),
            s.peak_retained
                .map_or_else(|| "-".into(), |p| p.to_string()),
            if s.verdict {
                "ok".into()
            } else {
                "VIOLATION".to_string()
            },
        ]);
    }
    table.print(if smoke {
        "checker throughput (--smoke sizes)"
    } else {
        "checker throughput"
    });

    // Machine-readable results for regression tracking. The per-row
    // `mode` joins row identity (an online row never diffs against an
    // offline one); `peak_retained_entries` is a memory-direction
    // metric.
    let mut report = Report::new("checker_throughput", mode_str(smoke));
    for s in &samples {
        let mut row = Row::new()
            .str("engine", s.engine)
            .str("mode", s.mode)
            .int("records", s.total_ops as u64)
            .float3("millis", s.millis)
            .float0(
                "records_per_sec",
                s.total_ops as f64 / (s.millis / 1e3).max(1e-9),
            );
        if let Some(p) = s.peak_retained {
            row = row.int("peak_retained_entries", p as u64);
        }
        report.row(row);
    }
    report.write("BENCH_checker.json");
}
