//! EXP-EXT — the §IV extension: an **unbounded** k-multiplicative max
//! register with sub-logarithmic step complexity, from plugging the
//! bounded register (Algorithm 2) into a level-doubling unbounded
//! construction (see DESIGN.md for the substitution note re Baig et al.).
//!
//! Workload: for values v of increasing magnitude, a fresh register takes
//! one `write(v)` + one `read`; we record steps per operation pair.
//!
//! Expected shape: the exact unbounded chain pays Θ(log₂ v) (like a
//! bounded exact register sized to v); the k-multiplicative version pays
//! O(log₂ log_k v) — the curve flattens as v grows, and larger k
//! flattens it further. The collect register's O(n) line is the
//! few-processes alternative.
//!
//! Run: `cargo run --release -p bench --bin exp_ext`.

use approx_objects::KmultUnboundedMaxRegister;
use bench::log2f;
use bench::tables::{f2, Table};
use maxreg::{CollectMaxRegister, MaxRegister, UnboundedMaxRegister};
use smr::Runtime;

fn measure<W: Fn(&smr::ProcCtx), R: Fn(&smr::ProcCtx)>(n: usize, write: W, read: R) -> u64 {
    let rt = Runtime::free_running(n);
    let ctx = rt.ctx(0);
    write(&ctx);
    read(&ctx);
    rt.steps_of(0)
}

fn main() {
    let n = 64;
    let mut table = Table::new([
        "value v",
        "log₂ v",
        "log₂ log₂ v",
        "exact chain",
        "kmult k=2",
        "kmult k=16",
        "collect (O(n), n=64)",
    ]);

    for bits in [4u32, 8, 16, 24, 32, 40, 48, 56, 62] {
        let v = 1u64 << bits;

        let exact = {
            let reg = UnboundedMaxRegister::new();
            measure(
                n,
                |c| reg.write(c, v),
                |c| {
                    let _ = reg.read(c);
                },
            )
        };
        let k2 = {
            let reg = KmultUnboundedMaxRegister::new(n, 2);
            measure(
                n,
                |c| reg.write(c, v),
                |c| {
                    let _ = reg.read(c);
                },
            )
        };
        let k16 = {
            let reg = KmultUnboundedMaxRegister::new(n, 16);
            measure(
                n,
                |c| reg.write(c, v),
                |c| {
                    let _ = reg.read(c);
                },
            )
        };
        let collect = {
            let reg = CollectMaxRegister::new(n);
            measure(
                n,
                |c| reg.write(c, v),
                |c| {
                    let _ = reg.read(c);
                },
            )
        };

        table.row([
            format!("2^{bits}"),
            bits.to_string(),
            f2(log2f(bits as f64)),
            exact.to_string(),
            k2.to_string(),
            k16.to_string(),
            collect.to_string(),
        ]);
    }

    println!("EXP-EXT — unbounded max registers: steps for one write + one read");
    println!("paper claim (§IV closing remark): plugging the bounded k-mult");
    println!("register into an unbounded construction gives sub-logarithmic");
    println!("cost — the kmult columns grow like log₂ log_k v while the exact");
    println!("chain grows like log₂ v.");
    table.print("steps per (write+read) vs value magnitude");
}
