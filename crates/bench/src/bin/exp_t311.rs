//! EXP-T3.11 — Theorem III.11 / Lemma III.10 / Corollary III.10.1: the
//! amortized lower bound `Ω(log(n/k²))` for k-multiplicative counters
//! with `k ≤ √n/2`, and the awareness-set structure behind it.
//!
//! Three parts:
//!
//! **(A) Amortized cost of spec-compliant counters vs the bound.** Every
//! exact counter is in particular a k-multiplicative counter for any k,
//! so the bound applies to it. Workload = the theorem's: each process
//! performs one `CounterIncrement` then one `CounterRead`, under a gated
//! round-robin schedule. Measured steps/op must sit **above**
//! `log₂(n/k²)` for all spec-compliant implementations.
//!
//! **(B) Awareness sets (Corollary III.10.1).** From the same gated,
//! traced executions we compute awareness sets (Definition III.2/III.3)
//! and report how many processes are aware of ≥ n/2k² others — the
//! corollary says at least n/2 must be.
//!
//! **(C) Why k < √n escapes nothing.** Algorithm 1 run with k ≤ √n/2
//! beats the bound's cost — but it then violates k-accuracy, which we
//! exhibit: the quiescent accuracy ratio v/x exceeds k. The bound binds
//! only objects that actually satisfy the spec.
//!
//! Run: `cargo run --release -p bench --bin exp_t311`.

#![allow(clippy::needless_range_loop)] // pid-indexed handles read clearest

use approx_objects::KmultCounter;
use bench::log2f;
use bench::tables::{f2, Table};
use counter::{AachCounter, CollectCounter, Counter, SnapshotCounter};
use parking_lot::Mutex;
use smr::sched::RoundRobin;
use smr::{Driver, OpSpec, Runtime};
use std::sync::Arc;

/// Run the one-increment-one-read workload gated + traced; return
/// (steps/op, awareness report).
fn one_shot_workload<F, G>(
    n: usize,
    mut inc_op: F,
    mut read_op: G,
) -> (f64, perturb::awareness::AwarenessReport)
where
    F: FnMut(usize) -> Box<dyn FnOnce(&smr::ProcCtx) -> u128 + Send>,
    G: FnMut(usize) -> Box<dyn FnOnce(&smr::ProcCtx) -> u128 + Send>,
{
    let rt = Runtime::gated(n);
    rt.enable_tracing();
    let mut driver = Driver::new(rt.clone());
    for pid in 0..n {
        driver.submit(pid, OpSpec::inc(), inc_op(pid));
        driver.submit(pid, OpSpec::read(), read_op(pid));
    }
    let steps = driver.run_schedule(&mut RoundRobin::new());
    rt.disable_tracing();
    let trace = rt.take_trace();
    let report = perturb::awareness::compute(n, &trace);
    (steps as f64 / (2 * n) as f64, report)
}

fn main() {
    let k: u64 = 2;

    // Part A + B: spec-compliant counters.
    let mut a = Table::new([
        "n",
        "k",
        "Ω: log₂(n/k²)",
        "collect",
        "aach",
        "snapshot",
        "kmult k=⌈√n⌉",
    ]);
    let mut b = Table::new([
        "n",
        "impl",
        "threshold n/2k²",
        "#procs ≥ threshold",
        "corollary needs",
    ]);

    for n in [16usize, 32, 64, 128] {
        let bound = log2f(n as f64 / (k * k) as f64);

        let (collect_amrt, collect_aw) = {
            let c = Arc::new(CollectCounter::new(n));
            let c2 = Arc::clone(&c);
            one_shot_workload(
                n,
                move |_pid| {
                    let c = Arc::clone(&c);
                    Box::new(move |ctx| {
                        c.increment(ctx);
                        0
                    })
                },
                move |_pid| {
                    let c = Arc::clone(&c2);
                    Box::new(move |ctx| c.read(ctx))
                },
            )
        };
        let (aach_amrt, _) = {
            let c = Arc::new(AachCounter::new(n, 1 << 20));
            let c2 = Arc::clone(&c);
            one_shot_workload(
                n,
                move |_pid| {
                    let c = Arc::clone(&c);
                    Box::new(move |ctx| {
                        c.increment(ctx);
                        0
                    })
                },
                move |_pid| {
                    let c = Arc::clone(&c2);
                    Box::new(move |ctx| c.read(ctx))
                },
            )
        };
        let (snap_amrt, _) = {
            let c = Arc::new(SnapshotCounter::new(n));
            let c2 = Arc::clone(&c);
            one_shot_workload(
                n,
                move |_pid| {
                    let c = Arc::clone(&c);
                    Box::new(move |ctx| {
                        c.increment(ctx);
                        0
                    })
                },
                move |_pid| {
                    let c = Arc::clone(&c2);
                    Box::new(move |ctx| c.read(ctx))
                },
            )
        };
        // kmult at its legal k = ⌈√n⌉ (spec-compliant there).
        let legal_k = bench::ceil_sqrt(n as u64);
        let (kmult_amrt, kmult_aw) = {
            let c = KmultCounter::new(n, legal_k);
            let handles: Arc<Vec<Mutex<approx_objects::KmultCounterHandle>>> =
                Arc::new((0..n).map(|p| Mutex::new(c.handle(p))).collect());
            let h2 = Arc::clone(&handles);
            one_shot_workload(
                n,
                move |pid| {
                    let h = Arc::clone(&handles);
                    Box::new(move |ctx| {
                        h[pid].lock().increment(ctx);
                        0
                    })
                },
                move |pid| {
                    let h = Arc::clone(&h2);
                    Box::new(move |ctx| h[pid].lock().read(ctx))
                },
            )
        };

        a.row([
            n.to_string(),
            k.to_string(),
            f2(bound),
            f2(collect_amrt),
            f2(aach_amrt),
            f2(snap_amrt),
            format!("{} (k={legal_k})", f2(kmult_amrt)),
        ]);

        let threshold = (n as u64).div_ceil(2 * k * k) as usize;
        b.row([
            n.to_string(),
            "collect (exact ⇒ k-mult for any k)".into(),
            threshold.to_string(),
            collect_aw
                .processes_aware_of_at_least(threshold)
                .to_string(),
            format!("≥ {}", n / 2),
        ]);
        let legal_threshold = (n as u64).div_ceil(2 * legal_k * legal_k) as usize;
        b.row([
            n.to_string(),
            format!("kmult (k={legal_k})"),
            legal_threshold.to_string(),
            kmult_aw
                .processes_aware_of_at_least(legal_threshold)
                .to_string(),
            format!("≥ {}", n / 2),
        ]);
    }

    println!("EXP-T3.11 — the Ω(log(n/k²)) amortized lower bound (k ≤ √n/2)");
    println!("workload: every process runs one increment then one read, gated");
    println!("round-robin. All spec-compliant implementations must sit above");
    println!("the Ω column; Algorithm 1 at its legal k = ⌈√n⌉ may sit below —");
    println!("it satisfies a weaker spec (k ≥ √n), outside the bound's regime.");
    a.print("(A) measured steps/op vs the lower bound (k = 2)");

    println!("\ncorollary III.10.1: after the workload, ≥ n/2 processes must be");
    println!("aware of ≥ n/2k² processes (awareness per Definition III.2).");
    b.print("(B) awareness sets");

    // Part C: running Algorithm 1 below its legal k breaks accuracy.
    let mut c_table = Table::new([
        "n",
        "illegal k",
        "√n",
        "quiescent v",
        "read x",
        "v/x",
        "k-accurate?",
    ]);
    for n in [16usize, 64, 256] {
        let illegal_k: u64 = 2;
        let rt = Runtime::free_running(n);
        let c = KmultCounter::new(n, illegal_k);
        let mut handles: Vec<_> = (0..n).map(|p| c.handle(p)).collect();
        // Each process: one increment (some announce, most stay local).
        for pid in 0..n {
            let ctx = rt.ctx(pid);
            handles[pid].increment(&ctx);
        }
        let ctx = rt.ctx(0);
        let x = handles[0].read(&ctx);
        let v = n as u128;
        let ok = v <= x * u128::from(illegal_k) && x <= v * u128::from(illegal_k);
        c_table.row([
            n.to_string(),
            illegal_k.to_string(),
            f2((n as f64).sqrt()),
            v.to_string(),
            x.to_string(),
            f2(v as f64 / x as f64),
            if ok {
                "yes".into()
            } else {
                "NO — spec violated".to_string()
            },
        ]);
    }
    println!("\nwhy small k escapes nothing: Algorithm 1 forced to k < √n stops");
    println!("being a k-multiplicative counter at all (v/x exceeds k).");
    c_table.print("(C) Algorithm 1 outside its premise");
}
