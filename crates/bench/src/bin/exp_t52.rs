//! EXP-T5.2 — Theorem V.2 / Lemma V.1: the m-bounded
//! k-multiplicative-accurate max register is `Θ(log_k m)`-perturbable,
//! hence worst-case `Ω(min(log₂ log_k m, n))` — and Algorithm 2 sits *on*
//! that bound.
//!
//! The perturbation builder (crate `perturb`) replays Lemma V.1's
//! construction: round r writes `v_r = k²·v_{r−1} + 1` through a fresh
//! writer, and the designated reader's solo run is traced. Reported per
//! (m, k): rounds achieved L (≈ ½·log_{k²}(m)), the lower-bound value
//! `log₂ L`, and the maximum number of distinct base objects the reader
//! accessed — which must be ≥ the bound, and for Algorithm 2 stays within
//! a constant of it (matching upper bound, Theorem IV.2).
//!
//! The exact register is perturbed with `+1` steps (its perturbation
//! bound is m−1), showing the `Θ(log₂ m)` exact cost for contrast.
//!
//! Run: `cargo run --release -p bench --bin exp_t52`.

use approx_objects::KmultBoundedMaxRegister;
use bench::log2f;
use bench::tables::{f2, Table};
use maxreg::TreeMaxRegister;
use perturb::maxreg::{perturb_maxreg, PerturbConfig};

fn main() {
    let writers = 256;
    let mut table = Table::new([
        "m",
        "k",
        "rounds L",
        "Ω: log₂ L",
        "reader distinct objs",
        "every round perturbed",
        "stop cause",
    ]);

    for bits in [16u32, 32, 48, 60] {
        let m = 1u64 << bits;

        // Exact register, +1 perturbations capped at `writers` rounds
        // (its L = m−1 is astronomically larger; the cap realizes the
        // min(·, n) arm).
        let exact = TreeMaxRegister::new(m);
        let r = perturb_maxreg(
            &exact,
            PerturbConfig {
                writers,
                factor: 1,
                max_rounds: 512,
            },
        );
        table.row([
            format!("2^{bits}"),
            "exact".into(),
            r.rounds_achieved().to_string(),
            f2(log2f(r.rounds_achieved() as f64)),
            r.max_distinct_objects().to_string(),
            r.every_round_perturbed.to_string(),
            stop_cause(&r.saturated, &r.value_exhausted),
        ]);

        for k in [2u64, 4] {
            let reg = KmultBoundedMaxRegister::new(writers + 1, m, k);
            let r = perturb_maxreg(
                &reg,
                PerturbConfig {
                    writers,
                    factor: k * k,
                    max_rounds: 512,
                },
            );
            table.row([
                format!("2^{bits}"),
                k.to_string(),
                r.rounds_achieved().to_string(),
                f2(log2f(r.rounds_achieved() as f64)),
                r.max_distinct_objects().to_string(),
                r.every_round_perturbed.to_string(),
                stop_cause(&r.saturated, &r.value_exhausted),
            ]);
        }
    }

    println!("EXP-T5.2 — perturbing executions for bounded max registers");
    println!("paper claim: the k-mult register admits L = Θ(log_k m) perturbing");
    println!("rounds (Lemma V.1), so any implementation pays Ω(min(log₂ L, n))");
    println!("distinct base objects in some read (Theorem V.2 via [5] Thm 1);");
    println!("Algorithm 2's reader column sits within a constant of log₂ L —");
    println!("the bound is tight. The exact register pays Θ(log₂ m).");
    table.print("perturbation rounds and reader probes");
}

fn stop_cause(saturated: &bool, value_exhausted: &bool) -> String {
    match (saturated, value_exhausted) {
        (true, _) => "writers exhausted (n arm)".into(),
        (_, true) => "bound m reached (log arm)".into(),
        _ => "round cap".into(),
    }
}
