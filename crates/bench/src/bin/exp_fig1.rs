//! EXP-F1 — Figure 1 / Claim III.6: the switch-state cases behind the
//! linearizability proof of Algorithm 1, reproduced as executable
//! scenarios.
//!
//! Figure 1 depicts what a `CounterRead` can observe about the (q+1)-th
//! interval of switches (k = 4 here, so interval 1 is `switch_1 …
//! switch_4`):
//!
//! * **case a** — the read finds the interval's *first* switch unset
//!   (`p = 0`): every switch of interval q is set, none of interval q+1
//!   is known set.
//! * **case b.1 / b.2** — the read finds the first switch set and the
//!   *last* unset (`p = 1`): the middle switches may (b.1) or may not
//!   (b.2) be set — the read **cannot distinguish** the two, which is
//!   why `u_max` charges `p·(k−1)·k^(q+1)` for the possibly-set middles.
//!
//! Each scenario is constructed by deterministic increments of one or two
//! processes; the table shows the observed switch prefix, the read's
//! `(p, q)`, its return value, the true increment count, and Claim
//! III.6's envelope `[u_min, u_max]` — the count always falls inside.
//!
//! Run: `cargo run --release -p bench --bin exp_fig1`.

use approx_objects::{arith, KmultCounter};
use bench::tables::Table;
use smr::Runtime;

const K: u64 = 4;

struct Scenario {
    name: &'static str,
    description: &'static str,
    /// (pid, increments) batches, applied in order.
    batches: Vec<(usize, u64)>,
}

fn main() {
    let scenarios = vec![
        Scenario {
            name: "case a",
            description: "interval 1 full; first switch of interval 2 unset (p=0, q=1)",
            // One process announces k times within interval 1 (k incs per
            // announcement): switches 1..=4 all set.
            batches: vec![(0, 1), (0, K * K)],
        },
        Scenario {
            name: "case b.2",
            description: "only the first switch of interval 1 set (p=1, q=0)",
            // switch_0 (1 inc), then one announcement in interval 1.
            batches: vec![(0, 1), (0, K)],
        },
        Scenario {
            name: "case b.1",
            description: "first AND a middle switch of interval 1 set — same read outcome as b.2",
            // p0 sets switch_0 and switch_1; p1's first inc loses switch_0,
            // then k more incs: attempts switch_1 (set), wins switch_2.
            batches: vec![(0, 1), (0, K), (1, 1 + K)],
        },
    ];

    let mut table = Table::new([
        "scenario",
        "switch prefix",
        "(p, q)",
        "true count v",
        "read x",
        "u_min",
        "u_max",
        "v ∈ [u_min, u_max]?",
        "x = k·u_min?",
    ]);

    for sc in &scenarios {
        let n = 2;
        let rt = Runtime::free_running(n);
        let counter = KmultCounter::new(n, K);
        let mut handles: Vec<_> = (0..n).map(|p| counter.handle(p)).collect();
        let mut true_count: u128 = 0;
        for &(pid, incs) in &sc.batches {
            let ctx = rt.ctx(pid);
            for _ in 0..incs {
                handles[pid].increment(&ctx);
                true_count += 1;
            }
        }

        let prefix: String = (0..10)
            .map(|j| if counter.peek_switch(j) { '1' } else { '0' })
            .collect();

        let ctx = rt.ctx(0);
        let outcome = handles[0].read_detailed(&ctx);
        let umin = arith::u_min(outcome.p, outcome.q, K);
        let umax = arith::u_max(outcome.p, outcome.q, K, n);
        let in_envelope = umin <= true_count && true_count <= umax;

        table.row([
            sc.name.to_string(),
            prefix,
            format!("({}, {})", outcome.p, outcome.q),
            true_count.to_string(),
            outcome.value.to_string(),
            umin.to_string(),
            umax.to_string(),
            in_envelope.to_string(),
            (outcome.value == u128::from(K) * umin).to_string(),
        ]);
        println!("{}: {}", sc.name, sc.description);
    }

    println!("\nEXP-F1 — Figure 1's switch-state cases (k = {K}, n = 2)");
    println!("claim III.6: a read returning ReturnValue(p, q) = k·u_min has");
    println!("between u_min and u_max increments linearized before it. Note");
    println!("b.1 and b.2 produce the same (p, q) and the same return value");
    println!("from different true counts — the reader cannot distinguish them.");
    table.print("switch states and the Claim III.6 envelope");
}
