//! EXP-EXPLORE — schedule exploration throughput and coverage over the
//! coop backend.
//!
//! The paper's correctness claims are schedule-quantified; `smr::explore`
//! turns them into finite checks by enumerating interleavings of small
//! configurations and feeding each history cut to the `lincheck`
//! monotone checkers. This experiment measures that harness across its
//! reduction algorithms and pins its correctness on every run:
//!
//! * **count assertions** — for programs with schedule-independent
//!   per-process step counts, exhaustively enumerated interleavings must
//!   equal the multinomial closed form `(Σsᵢ)!/Πsᵢ!`;
//! * **zero violations** — every real-object configuration must pass
//!   its checker on every cut (the bin exits non-zero otherwise);
//! * **throughput** — interleavings/second under exhaustive DFS,
//!   adjacent-swap pruning (`dfs-prune`), dynamic partial-order
//!   reduction (`dpor`), and the parallel frontier-replay pool
//!   (`dpor-parallel:N`), plus crash injection.
//!
//! The `algo` column is part of each row's identity for
//! `bench::regression` diffs; a `dpor` row counts *Mazurkiewicz trace
//! representatives*, not raw interleavings, so counts are comparable
//! only within one algorithm.
//!
//! Results land in `BENCH_explore.json` (cwd) for regression tracking.
//!
//! Run: `cargo run --release -p bench --bin exp_explore`
//! CI:  `cargo run --release -p bench --bin exp_explore -- --smoke`
//! The worker count of the `dpor-parallel` rows is pinned with
//! `--algo dpor-parallel:N` (default 2; the value is part of the row's
//! `algo` identity, so CI lanes must pass the committed count).

use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};
use bench::emit::{mode_str, Report, Row};
use bench::multinomial;
use bench::tables::{f2, Table};
use counter::{CollectCounter, CollectIncTask, CollectReadTask};
use lincheck::{check_counter_records, check_maxreg_records};
use maxreg::{TreeMaxReadTask, TreeMaxRegister, TreeMaxWriteTask};
use parking_lot::Mutex;
use smr::explore::{explore, explore_parallel, ExploreAlgo, ExploreConfig};
use smr::{CoopBackend, Driver, History, OpSpec, Runtime};
use std::sync::Arc;
use std::time::Instant;

type Factory = Box<dyn Fn() -> Driver<CoopBackend> + Sync>;
type Checker = Box<dyn Fn(&History) -> Result<(), String> + Sync>;

/// How a configuration is driven through the explorer.
enum Run {
    /// `smr::explore` on the calling thread (all sequential algorithms).
    Seq,
    /// `smr::explore_parallel` with the given worker count.
    Par(usize),
}

struct Config {
    name: &'static str,
    cfg: ExploreConfig,
    run: Run,
    /// Closed-form interleaving count, where per-process step counts
    /// are schedule-independent (exhaustive, unreduced configs only).
    expected: Option<u128>,
    factory: Factory,
    checker: Checker,
}

impl Config {
    /// The `algo` identity string reported for this row.
    fn algo(&self) -> String {
        match self.run {
            Run::Par(n) => format!("dpor-parallel:{n}"),
            Run::Seq if !self.cfg.prune => "dfs".to_string(),
            Run::Seq => match self.cfg.algo {
                ExploreAlgo::Dfs => "dfs-prune".to_string(),
                ExploreAlgo::Dpor => "dpor".to_string(),
            },
        }
    }
}

struct Sample {
    name: &'static str,
    algo: String,
    prune: bool,
    crashes: usize,
    interleavings: u64,
    pruned: u64,
    steps_replayed: u64,
    millis: f64,
    violations: usize,
}

impl Sample {
    fn per_sec(&self) -> f64 {
        self.interleavings as f64 / (self.millis / 1e3).max(1e-9)
    }

    fn row(&self) -> Row {
        Row::new()
            .str("config", self.name)
            .str("algo", &self.algo)
            .bool("prune", self.prune)
            .int("max_crashes", self.crashes as u64)
            .int("interleavings", self.interleavings)
            .int("pruned_subtrees", self.pruned)
            .int("steps_replayed", self.steps_replayed)
            .float3("millis", self.millis)
            .float0("interleavings_per_sec", self.per_sec())
            .int("violations", self.violations as u64)
    }
}

/// 3 processes × 2 collect-counter increments each: 4 schedule-
/// independent primitives per process.
fn collect_incs() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = Arc::new(CollectCounter::new(3));
        for pid in 0..3 {
            for _ in 0..2 {
                d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(c.clone()));
            }
        }
        d
    })
}

/// The 4-process acceptance program for DPOR: 3 incrementers × 2 incs
/// each plus a reader issuing 2 full collects. Exhaustive enumeration of
/// its 20 primitives is ~4.4 × 10⁹ interleavings — far beyond DFS — but
/// the conflict structure (each collect read races only the owning
/// incrementer's writes) collapses to a few thousand trace classes.
fn collect_4x2() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(4));
        let c = Arc::new(CollectCounter::new(4));
        for pid in 0..3 {
            for _ in 0..2 {
                d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(c.clone()));
            }
        }
        for _ in 0..2 {
            d.submit_task(3, OpSpec::read(), CollectReadTask::new(c.clone()));
        }
        d
    })
}

/// 2 incrementers + 1 reader over the collect counter.
fn collect_with_reader() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = Arc::new(CollectCounter::new(3));
        d.submit_task(0, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(1, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(2, OpSpec::read(), CollectReadTask::new(c.clone()));
        d
    })
}

/// The count-assert configuration: 3 processes × 2 Algorithm 1
/// increments at k = 3 (first announces via switch_0 — one primitive win
/// or lose — the second stays below threshold: zero primitives).
fn kmult_3x2() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = KmultCounter::new(3, 3);
        for pid in 0..3 {
            let h: SharedKmultHandle = Arc::new(Mutex::new(c.handle(pid)));
            for _ in 0..2 {
                d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(h.clone()));
            }
        }
        d
    })
}

/// Algorithm 1 with reads mixed in (schedule-dependent read costs).
fn kmult_mixed() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = KmultCounter::new(3, 2);
        let hs: Vec<SharedKmultHandle> =
            (0..3).map(|p| Arc::new(Mutex::new(c.handle(p)))).collect();
        for (pid, h) in hs.iter().enumerate() {
            d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(h.clone()));
            d.submit_task(pid, OpSpec::read(), KmultReadTask::new(h.clone()));
        }
        d
    })
}

/// Two writers + one reader over an 8-bounded AACH tree max register.
fn tree_maxreg() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let r = Arc::new(TreeMaxRegister::new(8));
        d.submit_task(0, OpSpec::write(5), TreeMaxWriteTask::new(r.clone(), 5));
        d.submit_task(1, OpSpec::write(3), TreeMaxWriteTask::new(r.clone(), 3));
        d.submit_task(2, OpSpec::read(), TreeMaxReadTask::new(r.clone()));
        d
    })
}

fn counter_checker(k: u64) -> Checker {
    Box::new(move |h| check_counter_records(h, k))
}

fn maxreg_checker(k: u64) -> Checker {
    Box::new(move |h| check_maxreg_records(h, k))
}

/// Parse `--algo dpor-parallel:N` (or `--algo=dpor-parallel:N`) into the
/// worker count used by the `dpor-parallel` rows.
fn parallel_workers(args: &[String]) -> usize {
    let mut spec: Option<&str> = None;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--algo=") {
            spec = Some(v);
        } else if a == "--algo" {
            spec = args.get(i + 1).map(String::as_str);
        }
    }
    let Some(spec) = spec else { return 2 };
    spec.strip_prefix("dpor-parallel:")
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| panic!("--algo expects dpor-parallel:N (N ≥ 1), got {spec:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let workers = parallel_workers(&args);

    let dfs_prune = ExploreConfig {
        algo: ExploreAlgo::Dfs,
        ..ExploreConfig::default()
    };

    let mut configs = vec![
        Config {
            name: "collect-3x2-exhaustive",
            cfg: ExploreConfig::exhaustive(100),
            run: Run::Seq,
            expected: Some(multinomial(&[4, 4, 4])),
            factory: collect_incs(),
            checker: counter_checker(1),
        },
        Config {
            name: "collect-3x2-pruned",
            cfg: dfs_prune.clone(),
            run: Run::Seq,
            expected: None,
            factory: collect_incs(),
            checker: counter_checker(1),
        },
        Config {
            name: "collect-3x2-dpor",
            cfg: ExploreConfig::default(),
            run: Run::Seq,
            expected: None,
            factory: collect_incs(),
            checker: counter_checker(1),
        },
        Config {
            name: "collect-3x2-dpor-parallel",
            cfg: ExploreConfig::default(),
            run: Run::Par(workers),
            expected: None,
            factory: collect_incs(),
            checker: counter_checker(1),
        },
        Config {
            name: "kmult-3x2-exhaustive",
            cfg: ExploreConfig::exhaustive(100),
            run: Run::Seq,
            expected: Some(multinomial(&[1, 1, 1])),
            factory: kmult_3x2(),
            checker: counter_checker(3),
        },
    ];
    if !smoke {
        configs.push(Config {
            name: "collect-4x2-dpor",
            cfg: ExploreConfig::default(),
            run: Run::Seq,
            expected: None,
            factory: collect_4x2(),
            checker: counter_checker(1),
        });
        configs.push(Config {
            name: "collect-4x2-dpor-parallel",
            cfg: ExploreConfig::default(),
            run: Run::Par(workers),
            expected: None,
            factory: collect_4x2(),
            checker: counter_checker(1),
        });
        configs.push(Config {
            name: "collect-reader-crashes",
            cfg: ExploreConfig {
                max_crashes: 2,
                ..ExploreConfig::default()
            },
            run: Run::Seq,
            expected: None,
            factory: collect_with_reader(),
            checker: counter_checker(1),
        });
        configs.push(Config {
            name: "kmult-mixed-dpor",
            cfg: ExploreConfig::default(),
            run: Run::Seq,
            expected: None,
            factory: kmult_mixed(),
            checker: counter_checker(2),
        });
        configs.push(Config {
            name: "tree-maxreg-exhaustive",
            cfg: ExploreConfig::exhaustive(100),
            run: Run::Seq,
            expected: None,
            factory: tree_maxreg(),
            checker: maxreg_checker(1),
        });
        configs.push(Config {
            name: "tree-maxreg-dpor",
            cfg: ExploreConfig::default(),
            run: Run::Seq,
            expected: None,
            factory: tree_maxreg(),
            checker: maxreg_checker(1),
        });
    }

    let mut samples = Vec::new();
    for c in &configs {
        let start = Instant::now();
        let stats = match c.run {
            Run::Seq => explore(&c.cfg, &c.factory, &c.checker),
            Run::Par(n) => explore_parallel(&c.cfg, n, &c.factory, &c.checker),
        };
        let millis = start.elapsed().as_secs_f64() * 1e3;

        // The correctness bars: exact counts where a closed form
        // exists, zero violations everywhere.
        if let Some(expected) = c.expected {
            assert_eq!(
                u128::from(stats.interleavings),
                expected,
                "{}: enumerated interleavings diverge from the closed form",
                c.name
            );
        }
        assert!(
            stats.all_ok(),
            "{}: explorer found violations on a real object: {:?}",
            c.name,
            stats.violations
        );
        assert!(!stats.capped, "{}: unexpected cap", c.name);

        eprintln!(
            "done: {} [{}]: {} interleavings ({} pruned subtrees) in {millis:.0} ms",
            c.name,
            c.algo(),
            stats.interleavings,
            stats.pruned
        );
        samples.push(Sample {
            name: c.name,
            algo: c.algo(),
            prune: c.cfg.prune,
            crashes: c.cfg.max_crashes,
            interleavings: stats.interleavings,
            pruned: stats.pruned,
            steps_replayed: stats.steps_replayed,
            millis,
            violations: stats.violations.len(),
        });
    }

    let mut table = Table::new([
        "config",
        "algo",
        "prune",
        "crashes",
        "interleavings",
        "pruned",
        "steps",
        "ms",
        "ileav/s",
    ]);
    for s in &samples {
        table.row([
            s.name.to_string(),
            s.algo.clone(),
            s.prune.to_string(),
            s.crashes.to_string(),
            s.interleavings.to_string(),
            s.pruned.to_string(),
            s.steps_replayed.to_string(),
            f2(s.millis),
            format!("{:.0}", s.per_sec()),
        ]);
    }

    println!("EXP-EXPLORE — schedule exploration (coop backend)");
    println!("every enumerated interleaving checked against lincheck; dpor rows");
    println!("count Mazurkiewicz trace representatives; count-asserted configs");
    println!("must match the multinomial closed form.");
    table.print(if smoke {
        "schedule exploration (--smoke configs)"
    } else {
        "schedule exploration"
    });

    let mut report = Report::new("schedule_exploration", mode_str(smoke));
    for s in &samples {
        report.row(s.row());
    }
    report.write("BENCH_explore.json");
}
