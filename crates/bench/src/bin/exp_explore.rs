//! EXP-EXPLORE — exhaustive schedule exploration throughput and
//! coverage over the coop backend.
//!
//! The paper's correctness claims are schedule-quantified; `smr::explore`
//! turns them into finite checks by enumerating *every* interleaving of
//! small configurations and feeding each history cut to the `lincheck`
//! monotone checkers. This experiment measures that harness and pins its
//! correctness on every run:
//!
//! * **count assertions** — for programs with schedule-independent
//!   per-process step counts, the enumerated interleavings must equal
//!   the multinomial closed form `(Σsᵢ)!/Πsᵢ!`;
//! * **zero violations** — every real-object configuration must pass
//!   its checker on every cut (the bin exits non-zero otherwise);
//! * **throughput** — interleavings/second enumerated, with and without
//!   commuting-step pruning, and under crash injection.
//!
//! Results land in `BENCH_explore.json` (cwd) for regression tracking.
//!
//! Run: `cargo run --release -p bench --bin exp_explore`
//! CI:  `cargo run --release -p bench --bin exp_explore -- --smoke`
//! (`--smoke` runs the two closed-form configs and the pruned variant —
//! the acceptance bar: exhaustive enumeration, count exact, no
//! violations.)

use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};
use bench::multinomial;
use bench::tables::{f2, Table};
use counter::{CollectCounter, CollectIncTask, CollectReadTask};
use lincheck::{check_counter_records, check_maxreg_records};
use maxreg::{TreeMaxReadTask, TreeMaxRegister, TreeMaxWriteTask};
use parking_lot::Mutex;
use smr::explore::{explore, ExploreConfig};
use smr::{CoopBackend, Driver, History, OpSpec, Runtime};
use std::sync::Arc;
use std::time::Instant;

type Factory = Box<dyn Fn() -> Driver<CoopBackend>>;
type Checker = Box<dyn FnMut(&History) -> Result<(), String>>;

struct Config {
    name: &'static str,
    cfg: ExploreConfig,
    /// Closed-form interleaving count, where per-process step counts
    /// are schedule-independent (exhaustive, unpruned configs only).
    expected: Option<u128>,
    factory: Factory,
    checker: Checker,
}

struct Sample {
    name: &'static str,
    prune: bool,
    crashes: usize,
    interleavings: u64,
    pruned: u64,
    steps_replayed: u64,
    millis: f64,
    violations: usize,
}

impl Sample {
    fn per_sec(&self) -> f64 {
        self.interleavings as f64 / (self.millis / 1e3).max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"config\": \"{}\", \"prune\": {}, \"max_crashes\": {}, \
             \"interleavings\": {}, \"pruned_subtrees\": {}, \"steps_replayed\": {}, \
             \"millis\": {:.3}, \"interleavings_per_sec\": {:.0}, \"violations\": {}}}",
            self.name,
            self.prune,
            self.crashes,
            self.interleavings,
            self.pruned,
            self.steps_replayed,
            self.millis,
            self.per_sec(),
            self.violations,
        )
    }
}

/// 3 processes × 2 collect-counter increments each: 4 schedule-
/// independent primitives per process.
fn collect_incs() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = Arc::new(CollectCounter::new(3));
        for pid in 0..3 {
            for _ in 0..2 {
                d.submit_task(pid, OpSpec::inc(), CollectIncTask::new(c.clone()));
            }
        }
        d
    })
}

/// 2 incrementers + 1 reader over the collect counter.
fn collect_with_reader() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = Arc::new(CollectCounter::new(3));
        d.submit_task(0, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(1, OpSpec::inc(), CollectIncTask::new(c.clone()));
        d.submit_task(2, OpSpec::read(), CollectReadTask::new(c.clone()));
        d
    })
}

/// The acceptance configuration: 3 processes × 2 Algorithm 1 increments
/// at k = 3 (first announces via switch_0 — one primitive win or lose —
/// the second stays below threshold: zero primitives).
fn kmult_3x2() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = KmultCounter::new(3, 3);
        for pid in 0..3 {
            let h: SharedKmultHandle = Arc::new(Mutex::new(c.handle(pid)));
            for _ in 0..2 {
                d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(h.clone()));
            }
        }
        d
    })
}

/// Algorithm 1 with reads mixed in (schedule-dependent read costs).
fn kmult_mixed() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let c = KmultCounter::new(3, 2);
        let hs: Vec<SharedKmultHandle> =
            (0..3).map(|p| Arc::new(Mutex::new(c.handle(p)))).collect();
        for (pid, h) in hs.iter().enumerate() {
            d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(h.clone()));
            d.submit_task(pid, OpSpec::read(), KmultReadTask::new(h.clone()));
        }
        d
    })
}

/// Two writers + one reader over an 8-bounded AACH tree max register.
fn tree_maxreg() -> Factory {
    Box::new(|| {
        let mut d = Driver::coop(Runtime::coop(3));
        let r = Arc::new(TreeMaxRegister::new(8));
        d.submit_task(0, OpSpec::write(5), TreeMaxWriteTask::new(r.clone(), 5));
        d.submit_task(1, OpSpec::write(3), TreeMaxWriteTask::new(r.clone(), 3));
        d.submit_task(2, OpSpec::read(), TreeMaxReadTask::new(r.clone()));
        d
    })
}

fn counter_checker(k: u64) -> Checker {
    Box::new(move |h| check_counter_records(h, k))
}

fn maxreg_checker(k: u64) -> Checker {
    Box::new(move |h| check_maxreg_records(h, k))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mut configs = vec![
        Config {
            name: "collect-3x2-exhaustive",
            cfg: ExploreConfig::exhaustive(100),
            expected: Some(multinomial(&[4, 4, 4])),
            factory: collect_incs(),
            checker: counter_checker(1),
        },
        Config {
            name: "collect-3x2-pruned",
            cfg: ExploreConfig::default(),
            expected: None,
            factory: collect_incs(),
            checker: counter_checker(1),
        },
        Config {
            name: "kmult-3x2-exhaustive",
            cfg: ExploreConfig::exhaustive(100),
            expected: Some(multinomial(&[1, 1, 1])),
            factory: kmult_3x2(),
            checker: counter_checker(3),
        },
    ];
    if !smoke {
        configs.push(Config {
            name: "collect-reader-crashes",
            cfg: ExploreConfig {
                max_crashes: 2,
                ..ExploreConfig::default()
            },
            expected: None,
            factory: collect_with_reader(),
            checker: counter_checker(1),
        });
        configs.push(Config {
            name: "kmult-mixed-pruned",
            cfg: ExploreConfig::default(),
            expected: None,
            factory: kmult_mixed(),
            checker: counter_checker(2),
        });
        configs.push(Config {
            name: "tree-maxreg-exhaustive",
            cfg: ExploreConfig::exhaustive(100),
            expected: None,
            factory: tree_maxreg(),
            checker: maxreg_checker(1),
        });
        configs.push(Config {
            name: "tree-maxreg-pruned",
            cfg: ExploreConfig::default(),
            expected: None,
            factory: tree_maxreg(),
            checker: maxreg_checker(1),
        });
    }

    let mut samples = Vec::new();
    for c in &mut configs {
        let start = Instant::now();
        let stats = explore(&c.cfg, &c.factory, &mut c.checker);
        let millis = start.elapsed().as_secs_f64() * 1e3;

        // The correctness bars: exact counts where a closed form
        // exists, zero violations everywhere.
        if let Some(expected) = c.expected {
            assert_eq!(
                u128::from(stats.interleavings),
                expected,
                "{}: enumerated interleavings diverge from the closed form",
                c.name
            );
        }
        assert!(
            stats.all_ok(),
            "{}: explorer found violations on a real object: {:?}",
            c.name,
            stats.violations
        );
        assert!(!stats.capped, "{}: unexpected cap", c.name);

        eprintln!(
            "done: {}: {} interleavings ({} pruned subtrees) in {millis:.0} ms",
            c.name, stats.interleavings, stats.pruned
        );
        samples.push(Sample {
            name: c.name,
            prune: c.cfg.prune,
            crashes: c.cfg.max_crashes,
            interleavings: stats.interleavings,
            pruned: stats.pruned,
            steps_replayed: stats.steps_replayed,
            millis,
            violations: stats.violations.len(),
        });
    }

    let mut table = Table::new([
        "config",
        "prune",
        "crashes",
        "interleavings",
        "pruned",
        "steps",
        "ms",
        "ileav/s",
    ]);
    for s in &samples {
        table.row([
            s.name.to_string(),
            s.prune.to_string(),
            s.crashes.to_string(),
            s.interleavings.to_string(),
            s.pruned.to_string(),
            s.steps_replayed.to_string(),
            f2(s.millis),
            format!("{:.0}", s.per_sec()),
        ]);
    }

    println!("EXP-EXPLORE — exhaustive schedule exploration (coop backend)");
    println!("every interleaving of each configuration checked against lincheck;");
    println!("count-asserted configs must match the multinomial closed form.");
    table.print(if smoke {
        "schedule exploration (--smoke configs)"
    } else {
        "schedule exploration"
    });

    let mut json = String::from("{\n  \"bench\": \"schedule_exploration\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            s.to_json(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_explore.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
