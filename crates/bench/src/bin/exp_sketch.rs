//! EXP-SKETCH — sharded approximate-aggregation workloads (top-k +
//! quantiles) over the k-multiplicative primitives.
//!
//! Measures the `sketch` crate under serving-shaped traffic on both
//! execution backends — the thread backend free-running (native-speed
//! writers) and the coop backend gated (deterministic schedules over
//! many virtual processes) — across a grid of process-count ×
//! shard-count configurations, and **asserts the accuracy envelope on
//! every sampled read**:
//!
//! * every recorded top-k / quantile / rank read is checked against the
//!   composed rank-error envelope by `lincheck::sketchlog` (the bin
//!   exits non-zero on any violation);
//! * after quiescence, every per-key counter is shadow-checked against
//!   the exact totals reconstructed from the typed event log (free
//!   `peek_approx_value`, zero primitives).
//!
//! Workload shape: each writer hammers its own hot key, spreads over its
//! owned key stripe, and grazes its neighbor's hot key (so every key has
//! at most 2 writers — the `w` of the envelope); writers batch through
//! `flush_every = 8` handles (the ROADMAP's "batch increments in
//! handles"). Readers interleave top-k, quantile and rank queries.
//!
//! Results land in `BENCH_sketch.json` (cwd) for regression tracking —
//! CI diffs a fresh smoke run against the committed file via
//! `bench_diff`.
//!
//! Run: `cargo run --release -p bench --bin exp_sketch`
//! CI:  `cargo run --release -p bench --bin exp_sketch -- --smoke`

use bench::emit::{mode_str, Report, Row};
use bench::tables::{f2, Table};
use lincheck::sketchlog;
use lincheck::SketchEnvelope;
use parking_lot::Mutex;
use sketch::{
    specs, QuantileConfig, QuantileObserveTask, QuantileSketch, QuantileValueTask, RankTask,
    SharedQuantileHandle, SharedTopKHandle, TopKAddTask, TopKConfig, TopKReadTask, TopKSketch,
};
use smr::backend::ExecBackend;
use smr::sched::RoundRobin;
use smr::{Driver, History, OpKind, Runtime};
use std::sync::Arc;
use std::time::Instant;

const FLUSH_EVERY: u64 = 8;
const K: u64 = 4;

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    /// Thread backend, free-running: native-speed execution.
    Thread,
    /// Coop backend, gated round-robin: deterministic virtual processes.
    Coop,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Thread => "thread",
            Backend::Coop => "coop",
        }
    }
}

struct Sample {
    object: &'static str,
    backend: &'static str,
    n: usize,
    /// Shards (top-k) or buckets (quantile).
    partitions: usize,
    keys: usize,
    writes: u64,
    reads: u64,
    millis: f64,
    read_steps_avg: f64,
}

impl Sample {
    fn writes_per_sec(&self) -> f64 {
        self.writes as f64 / (self.millis / 1e3).max(1e-9)
    }

    fn row(&self) -> Row {
        let part_key = if self.object == "topk" {
            "shards"
        } else {
            "buckets"
        };
        Row::new()
            .str("object", self.object)
            .str("backend", self.backend)
            .int("n", self.n as u64)
            .int(part_key, self.partitions as u64)
            .int("keys", self.keys as u64)
            .int("k", K)
            .int("flush_every", FLUSH_EVERY)
            .int("writes", self.writes)
            .int("reads", self.reads)
            .float3("millis", self.millis)
            .float0("writes_per_sec", self.writes_per_sec())
            .float1("read_steps_avg", self.read_steps_avg)
            .int("violations", 0u64)
    }
}

/// Average `steps` of the completed read records with `label`.
fn read_steps_avg(h: &History, label: &str) -> f64 {
    let mut steps = 0u64;
    let mut count = 0u64;
    for op in h.ops() {
        if let OpKind::Custom { label: l, .. } = op.kind {
            if l == label && op.resp.is_some() {
                steps += op.steps;
                count += 1;
            }
        }
    }
    steps as f64 / count.max(1) as f64
}

/// Exact per-key (or per-value) completed write totals from the log.
fn exact_totals(h: &History, label: &str) -> std::collections::BTreeMap<u64, u128> {
    let mut totals = std::collections::BTreeMap::new();
    for op in h.ops() {
        if let OpKind::Custom { label: l, arg, .. } = op.kind {
            if l == label && op.resp.is_some() {
                let (key, amount) = sketchlog::unpack_keyed(arg);
                *totals.entry(key).or_insert(0u128) += u128::from(amount);
            }
        }
    }
    totals
}

/// The writer key pattern: hot own key, owned-stripe spread, neighbor
/// grazing. Writer `i` owns the keys `≡ i (mod writers)`; only hot keys
/// (`key < writers`) are grazed by the left neighbor, so every key has
/// at most 2 writers — the `w` of the envelope.
fn writer_key(i: usize, j: u64, writers: usize, keys: usize) -> usize {
    debug_assert!(writers <= keys);
    if j.is_multiple_of(5) {
        (i + 1) % writers
    } else if j.is_multiple_of(3) {
        // Keys x < keys with x ≡ i (mod writers): i, i+W, i+2W, …
        let owned = (keys - i).div_ceil(writers);
        i + ((j / 3) as usize % owned) * writers
    } else {
        i
    }
}

fn submit_topk<B: ExecBackend>(
    d: &mut Driver<B>,
    sk: &Arc<TopKSketch>,
    writers: usize,
    n: usize,
    ops_per_writer: u64,
    reads_per_reader: u64,
) -> (u64, u64) {
    let keys = sk.config().keys;
    let q = 8.min(keys);
    let mut writes = 0u64;
    for i in 0..writers {
        let h: SharedTopKHandle = Arc::new(Mutex::new(sk.handle(i, FLUSH_EVERY)));
        for j in 0..ops_per_writer {
            let key = writer_key(i, j, writers, keys);
            let amount = 1 + j % 3;
            writes += amount;
            d.submit_task(
                i,
                specs::topk_add(key, amount),
                TopKAddTask::new(h.clone(), key, amount),
            );
        }
    }
    let mut reads = 0u64;
    for pid in writers..n {
        let h: SharedTopKHandle = Arc::new(Mutex::new(sk.handle(pid, FLUSH_EVERY)));
        for _ in 0..reads_per_reader {
            reads += 1;
            d.submit_task(pid, specs::topk_read(q), TopKReadTask::new(h.clone(), q));
        }
    }
    (writes, reads)
}

fn run_topk(backend: Backend, n: usize, shards: usize, ops_per_writer: u64) -> Sample {
    let readers = (n / 8).max(1);
    let writers = n - readers;
    assert!(
        writers >= 2,
        "need at least two writers for the neighbor pattern"
    );
    let keys = 64.max(4 * shards).max(writers);
    let cfg = TopKConfig {
        n,
        keys,
        shards,
        k: K,
        max_accuracy: 2,
        max_bound: 1 << 48,
    };
    let sk = TopKSketch::new(cfg);
    let reads_per_reader = 6;

    let (history, writes, reads, millis) = match backend {
        Backend::Coop => {
            let mut d = Driver::coop(Runtime::coop(n));
            let (w, r) = submit_topk(&mut d, &sk, writers, n, ops_per_writer, reads_per_reader);
            let start = Instant::now();
            d.run_schedule(&mut RoundRobin::new());
            let millis = start.elapsed().as_secs_f64() * 1e3;
            (d.take_history(), w, r, millis)
        }
        Backend::Thread => {
            let mut d = Driver::new(Runtime::free_running(n));
            let start = Instant::now();
            let (w, r) = submit_topk(&mut d, &sk, writers, n, ops_per_writer, reads_per_reader);
            d.wait_all();
            let millis = start.elapsed().as_secs_f64() * 1e3;
            (d.take_history(), w, r, millis)
        }
    };

    // The accuracy bar, part 1: every sampled read within its envelope.
    let env = SketchEnvelope::new(K, 2).with_buffer_slack(FLUSH_EVERY - 1);
    sketchlog::check_topk_records(&history, &env)
        .unwrap_or_else(|e| panic!("topk {}/{n}x{shards}: {e}", backend.name()));

    // Part 2: quiescent per-key shadow check against the exact totals
    // (free peeks, zero primitives; unflushed buffers are the only gap).
    let totals = exact_totals(&history, sketchlog::TOPK_ADD);
    for key in 0..keys {
        let f = totals.get(&(key as u64)).copied().unwrap_or(0);
        let peek = sk.counter(key).peek_approx_value();
        assert!(
            peek <= u128::from(K) * f,
            "key {key}: peek {peek} above k x exact {f}"
        );
        assert!(
            f <= 3 * peek + 2 * u128::from(FLUSH_EVERY - 1),
            "key {key}: exact {f} above (w+1) x peek {peek} + slack"
        );
    }

    Sample {
        object: "topk",
        backend: backend.name(),
        n,
        partitions: shards,
        keys,
        writes,
        reads,
        millis,
        read_steps_avg: read_steps_avg(&history, sketchlog::TOPK_READ),
    }
}

/// Deterministic value stream (splitmix-style LCG), log-uniformish over
/// `1..=max` by masking with a pid-and-step-dependent width.
fn value_stream(pid: usize, j: u64, max: u64) -> u64 {
    let mut x = (pid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ j;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (x >> 27);
    let width = 1 + (x % 16) as u32; // 1..=16 significant bits
    1 + ((x >> 16) & ((1 << width) - 1)) % max
}

fn submit_quantile<B: ExecBackend>(
    d: &mut Driver<B>,
    sk: &Arc<QuantileSketch>,
    observers: usize,
    ops_per_obs: u64,
    reads_per_reader: u64,
) -> (u64, u64) {
    let max = sk.config().max_value;
    let mut writes = 0u64;
    for pid in 0..observers {
        let h: SharedQuantileHandle = Arc::new(Mutex::new(sk.handle(pid, FLUSH_EVERY)));
        for j in 0..ops_per_obs {
            let v = value_stream(pid, j, max);
            let amount = 1 + j % 2;
            writes += amount;
            d.submit_task(
                pid,
                specs::quantile_observe(v, amount),
                QuantileObserveTask::new(h.clone(), v, amount),
            );
        }
    }
    let reader = observers;
    let h: SharedQuantileHandle = Arc::new(Mutex::new(sk.handle(reader, FLUSH_EVERY)));
    let mut reads = 0u64;
    for i in 0..reads_per_reader {
        reads += 1;
        match i % 4 {
            0 => d.submit_task(
                reader,
                specs::quantile_read(1, 2),
                QuantileValueTask::new(h.clone(), 1, 2),
            ),
            1 => d.submit_task(
                reader,
                specs::quantile_read(95, 100),
                QuantileValueTask::new(h.clone(), 95, 100),
            ),
            2 => d.submit_task(
                reader,
                specs::quantile_read(99, 100),
                QuantileValueTask::new(h.clone(), 99, 100),
            ),
            _ => d.submit_task(reader, specs::rank(256), RankTask::new(h.clone(), 256)),
        }
    }
    (writes, reads)
}

fn run_quantile(backend: Backend, n: usize, ops_per_obs: u64) -> Sample {
    assert!(n >= 2, "need an observer and a reader");
    let observers = n - 1;
    let cfg = QuantileConfig {
        n,
        k: K,
        base: 2,
        max_value: 1 << 16,
    };
    let sk = QuantileSketch::new(cfg);
    let reads_per_reader = 8;

    let (history, writes, reads, millis) = match backend {
        Backend::Coop => {
            let mut d = Driver::coop(Runtime::coop(n));
            let (w, r) = submit_quantile(&mut d, &sk, observers, ops_per_obs, reads_per_reader);
            let start = Instant::now();
            d.run_schedule(&mut RoundRobin::new());
            let millis = start.elapsed().as_secs_f64() * 1e3;
            (d.take_history(), w, r, millis)
        }
        Backend::Thread => {
            let mut d = Driver::new(Runtime::free_running(n));
            let start = Instant::now();
            let (w, r) = submit_quantile(&mut d, &sk, observers, ops_per_obs, reads_per_reader);
            d.wait_all();
            let millis = start.elapsed().as_secs_f64() * 1e3;
            (d.take_history(), w, r, millis)
        }
    };

    let env = SketchEnvelope::new(K, observers as u64).with_buffer_slack(FLUSH_EVERY - 1);
    sketchlog::check_quantile_records(&history, &env, 2)
        .unwrap_or_else(|e| panic!("quantile {}/{n}: {e}", backend.name()));

    // Quiescent per-bucket shadow check (observers all share buckets).
    let totals = exact_totals(&history, sketchlog::QUANTILE_OBSERVE);
    let w = observers as u128;
    let slack = w * u128::from(FLUSH_EVERY - 1);
    for i in 0..sk.num_buckets() {
        let f: u128 = totals
            .iter()
            .filter(|(&v, _)| sk.bucket_of(v) == i)
            .map(|(_, &amt)| amt)
            .sum();
        let peek = sk.bucket(i).peek_approx_value();
        assert!(
            peek <= u128::from(K) * f,
            "bucket {i}: peek {peek} above k x exact {f}"
        );
        assert!(
            f <= (w + 1) * peek + slack,
            "bucket {i}: exact {f} above (w+1) x peek {peek} + slack"
        );
    }

    Sample {
        object: "quantile",
        backend: backend.name(),
        n,
        partitions: sk.num_buckets(),
        keys: sk.num_buckets(),
        writes,
        reads,
        millis,
        read_steps_avg: read_steps_avg(&history, sketchlog::QUANTILE_READ),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = bench::scale();

    // (backend, n, shards, ops_per_writer) — ≥ 4 process-count ×
    // shard-count configurations on each backend. The smoke grid is a
    // strict subset of the full grid's (backend, n, shards) identities
    // (with smaller op counts — a volatile field), so every smoke row
    // matches a committed full-run row and CI's bench_diff actually
    // compares it; only the two largest coop configs go undiffed.
    let topk_configs: Vec<(Backend, usize, usize, u64)> = if smoke {
        vec![
            (Backend::Thread, 4, 1, 1_000),
            (Backend::Thread, 8, 4, 1_000),
            (Backend::Thread, 16, 8, 1_000),
            (Backend::Thread, 64, 16, 300),
            (Backend::Coop, 4, 1, 1_000),
            (Backend::Coop, 8, 4, 1_000),
            (Backend::Coop, 16, 8, 1_000),
            (Backend::Coop, 64, 16, 300),
        ]
    } else {
        vec![
            (Backend::Thread, 4, 1, 2_000 * scale),
            (Backend::Thread, 8, 4, 2_000 * scale),
            (Backend::Thread, 16, 8, 1_000 * scale),
            (Backend::Thread, 64, 16, 500 * scale),
            (Backend::Coop, 4, 1, 2_000 * scale),
            (Backend::Coop, 8, 4, 2_000 * scale),
            (Backend::Coop, 16, 8, 1_000 * scale),
            (Backend::Coop, 64, 16, 500 * scale),
            (Backend::Coop, 256, 32, 100 * scale),
            (Backend::Coop, 1_000, 64, 20 * scale),
        ]
    };
    let quantile_configs: Vec<(Backend, usize, u64)> = if smoke {
        vec![
            (Backend::Thread, 4, 1_000),
            (Backend::Thread, 16, 500),
            (Backend::Coop, 16, 500),
            (Backend::Coop, 64, 200),
        ]
    } else {
        vec![
            (Backend::Thread, 4, 2_000 * scale),
            (Backend::Thread, 16, 1_000 * scale),
            (Backend::Coop, 16, 1_000 * scale),
            (Backend::Coop, 64, 200 * scale),
        ]
    };

    let mut samples = Vec::new();
    for &(backend, n, shards, ops) in &topk_configs {
        let s = run_topk(backend, n, shards, ops);
        eprintln!(
            "done: topk/{}/n={n}/S={shards}: {:.0} writes/s, topk read ≈ {:.0} steps",
            backend.name(),
            s.writes_per_sec(),
            s.read_steps_avg
        );
        samples.push(s);
    }
    for &(backend, n, ops) in &quantile_configs {
        let s = run_quantile(backend, n, ops);
        eprintln!(
            "done: quantile/{}/n={n}: {:.0} writes/s, quantile read ≈ {:.0} steps",
            backend.name(),
            s.writes_per_sec(),
            s.read_steps_avg
        );
        samples.push(s);
    }

    // The acceptance bar: ≥ 4 topk n×S configurations per backend, all
    // checked (the checkers above panicked otherwise).
    for b in ["thread", "coop"] {
        let count = samples
            .iter()
            .filter(|s| s.object == "topk" && s.backend == b)
            .count();
        assert!(count >= 4, "only {count} topk configs on the {b} backend");
    }

    let mut table = Table::new([
        "object",
        "backend",
        "n",
        "parts",
        "keys",
        "writes",
        "reads",
        "ms",
        "writes/s",
        "read steps",
    ]);
    for s in &samples {
        table.row([
            s.object.to_string(),
            s.backend.to_string(),
            s.n.to_string(),
            s.partitions.to_string(),
            s.keys.to_string(),
            s.writes.to_string(),
            s.reads.to_string(),
            f2(s.millis),
            format!("{:.0}", s.writes_per_sec()),
            format!("{:.1}", s.read_steps_avg),
        ]);
    }

    println!("EXP-SKETCH — approximate aggregation over k-multiplicative primitives");
    println!("thread = free-running native speed; coop = gated round-robin virtual procs.");
    println!("every recorded read checked against the composed rank-error envelope;");
    println!("per-key counters shadow-checked against exact totals after quiescence.");
    table.print(if smoke {
        "sketch workloads (--smoke sizes)"
    } else {
        "sketch workloads"
    });

    let mut report = Report::new("sketch_workloads", mode_str(smoke));
    for s in &samples {
        report.row(s.row());
    }
    report.write("BENCH_sketch.json");
}
