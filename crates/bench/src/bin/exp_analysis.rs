//! EXP-ANALYSIS — what the online trace-analysis passes cost.
//!
//! The `smr::analysis` bundle (poll-discipline, access-kind
//! conformance, happens-before) consumes every trace event inline,
//! during the run. Its price must be two-sided:
//!
//! * **zero when disabled** — with no analyzer attached the tracer's
//!   fast path is one relaxed load per primitive, so a passes-off run
//!   must match plain driver throughput, and
//! * **bounded when enabled** — proportional to the workload's
//!   *communication density*, the happens-before floor (see the
//!   `smr::analysis::hb` module docs and DESIGN.md).
//!
//! Two workloads pin down both regimes on the coop backend, gated,
//! round-robin, analysis off vs on over identical submissions:
//!
//! * **cluster** — read/write chains confined to 8-process clusters.
//!   Communication (and thus vector-clock size) is bounded by
//!   construction, so the passes must run O(1) amortized per event and
//!   stay within a small constant factor all the way to 10⁵ virtual
//!   processes. This is the regime the `--smoke` CI lane gates on.
//! * **kmult** — Algorithm 1 increments/reads at `k = ⌈√n⌉`. Every
//!   process funnels through the same `switch` bits, so every causal
//!   past legitimately densifies to all `n` processes and each
//!   happens-before join pays Θ(new information). No encoding beats
//!   that floor; the configs stay at bounded `n` and the table shows
//!   the density cost honestly instead of hiding it.
//!
//! The passes must also come back *clean* — a violation on either
//! workload would be a runtime-contract bug, and the run fails loudly.
//!
//! Results land in `BENCH_analysis.json` (cwd); CI diffs it against the
//! committed copy via `bench_diff`.
//!
//! Run: `cargo run --release -p bench --bin exp_analysis`
//! CI:  `cargo run --release -p bench --bin exp_analysis -- --smoke`

use approx_objects::{KmultCounter, KmultIncTask, KmultReadTask, SharedKmultHandle};
use bench::emit::{mode_str, Report, Row};
use bench::tables::{f2, Table};
use parking_lot::Mutex;
use smr::analysis::Analyzer;
use smr::sched::RoundRobin;
use smr::{Driver, OpSpec, OpTask, Poll, ProcCtx, Register, Runtime};
use std::sync::Arc;
use std::time::Instant;

/// Processes per communication cluster in the `cluster` workload.
const CLUSTER: usize = 8;

/// Read own slot, write the ring-neighbour's slot within an 8-process
/// cluster: 2 primitives per op, causality confined to the cluster, so
/// happens-before clocks never exceed `CLUSTER` entries.
struct ClusterChainTask {
    pool: Arc<Vec<Register>>,
    pid: usize,
    read: Option<u64>,
    primed: bool,
}

impl ClusterChainTask {
    fn new(pool: Arc<Vec<Register>>, pid: usize) -> Self {
        ClusterChainTask {
            pool,
            pid,
            read: None,
            primed: false,
        }
    }

    fn neighbour(&self) -> usize {
        let base = self.pid - (self.pid % CLUSTER);
        let next = base + (self.pid + 1) % CLUSTER;
        next.min(self.pool.len() - 1)
    }
}

impl OpTask for ClusterChainTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        match self.read {
            None => {
                self.read = Some(self.pool[self.pid].read(ctx));
                Poll::Pending
            }
            Some(v) => {
                self.pool[self.neighbour()].write(ctx, v.wrapping_add(1));
                Poll::Ready(u128::from(v))
            }
        }
    }
}

struct Sample {
    workload: &'static str,
    analysis: &'static str,
    n: usize,
    ops: u64,
    steps: u64,
    millis: f64,
}

impl Sample {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.millis / 1e3).max(1e-9)
    }

    fn row(&self) -> Row {
        Row::new()
            .str("workload", self.workload)
            .str("backend", "coop")
            .str("analysis", self.analysis)
            .int("n", self.n as u64)
            .int("ops", self.ops)
            .int("steps", self.steps)
            .float3("millis", self.millis)
            .float0("steps_per_sec", self.steps_per_sec())
    }
}

fn submit_cluster(d: &mut Driver<smr::backend::CoopBackend>, n: usize, ops_per_proc: u64) {
    let pool: Arc<Vec<Register>> = Arc::new((0..n).map(|_| Register::new(0)).collect());
    for pid in 0..n {
        for j in 0..ops_per_proc {
            d.submit_task(
                pid,
                OpSpec::custom("chain", j as u128),
                ClusterChainTask::new(pool.clone(), pid),
            );
        }
    }
}

fn submit_kmult(d: &mut Driver<smr::backend::CoopBackend>, n: usize, ops_per_proc: u64) {
    let k = bench::ceil_sqrt(n as u64).max(2);
    let counter = KmultCounter::new(n, k);
    for pid in 0..n {
        let handle: SharedKmultHandle = Arc::new(Mutex::new(counter.handle(pid)));
        for j in 0..ops_per_proc {
            if j % 2 == 0 {
                d.submit_task(pid, OpSpec::inc(), KmultIncTask::new(handle.clone()));
            } else {
                d.submit_task(pid, OpSpec::read(), KmultReadTask::new(handle.clone()));
            }
        }
    }
}

fn run_config(workload: &'static str, analysis: bool, n: usize, ops_per_proc: u64) -> Sample {
    let rt = Runtime::coop(n);
    if analysis {
        rt.attach_analysis(Analyzer::standard());
    }
    let mut d = Driver::coop(rt.clone());
    match workload {
        "cluster" => submit_cluster(&mut d, n, ops_per_proc),
        _ => submit_kmult(&mut d, n, ops_per_proc),
    }
    let start = Instant::now();
    let steps = d.run_schedule(&mut RoundRobin::new());
    let millis = start.elapsed().as_secs_f64() * 1e3;
    drop(d);
    if analysis {
        let violations = rt.analysis().expect("analyzer attached").finish();
        assert!(
            violations.is_empty(),
            "the standard passes flagged the {workload} workload (n = {n}) — \
             a runtime-contract bug, not noise: {violations:?}"
        );
    }
    Sample {
        workload,
        analysis: if analysis { "on" } else { "off" },
        n,
        ops: n as u64 * ops_per_proc,
        steps,
        millis,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    // (workload, n, ops_per_proc) — each measured off then on. The
    // cluster workload scales to 10⁵ (bounded communication); kmult
    // stays at bounded n (dense communication — the happens-before
    // audit pays Θ(n) per join there, by design; see module docs).
    let configs: Vec<(&'static str, usize, u64)> = if smoke {
        vec![
            ("cluster", 10_000, 2),
            ("cluster", 100_000, 2),
            ("kmult", 1_000, 2),
            ("kmult", 3_000, 2),
        ]
    } else {
        vec![
            ("cluster", 10_000, 4),
            ("cluster", 100_000, 4),
            ("kmult", 1_000, 4),
            ("kmult", 3_000, 4),
        ]
    };

    let mut samples = Vec::new();
    for &(workload, n, ops) in &configs {
        for analysis in [false, true] {
            let s = run_config(workload, analysis, n, ops);
            eprintln!(
                "done: {workload}/coop/n={n}/analysis={}: {:.0} steps/s",
                s.analysis,
                s.steps_per_sec()
            );
            // Runaway guard, both workloads: a config that takes minutes
            // means a pass diverged, not that the box is busy.
            assert!(
                s.millis < 120_000.0,
                "{workload} (n = {n}, analysis {}) took {:.0} ms — a pass diverged",
                s.analysis,
                s.millis
            );
            samples.push(s);
        }
    }

    let mut table = Table::new([
        "workload", "n", "analysis", "steps", "ms", "steps/s", "overhead",
    ]);
    for pair in samples.chunks(2) {
        let [off, on] = pair else { unreachable!() };
        for s in pair {
            table.row([
                s.workload.to_string(),
                s.n.to_string(),
                s.analysis.to_string(),
                s.steps.to_string(),
                f2(s.millis),
                format!("{:.0}", s.steps_per_sec()),
                if s.analysis == "on" {
                    format!("{:.2}x", off.steps_per_sec() / on.steps_per_sec().max(1e-9))
                } else {
                    "—".to_string()
                },
            ]);
        }
        // The bounded-communication regime is the gated claim: wall
        // clock on shared CI boxes is noisy, but a 10x blowup on the
        // cluster workload means a pass stopped being O(1) amortized —
        // fail rather than commit the number. (kmult's overhead grows
        // with n by design — the density floor — so only the runaway
        // guard above applies there.)
        if off.workload == "cluster" {
            let overhead = off.steps_per_sec() / on.steps_per_sec().max(1e-9);
            assert!(
                overhead < 10.0,
                "analysis overhead {overhead:.1}x on the cluster workload \
                 (n = {}) — a pass has regressed",
                off.n
            );
        }
    }

    println!("EXP-ANALYSIS — online trace-analysis overhead (coop backend)");
    println!("off = no analyzer attached (tracer fast path: one relaxed load per step);");
    println!("on  = poll-discipline + conformance + happens-before, inline.");
    println!("cluster = communication bounded by construction (the O(1)-amortized regime);");
    println!("kmult   = one global counter: causal pasts densify to all n (the Θ(n) floor).");
    table.print(if smoke {
        "analysis passes on/off (--smoke sizes)"
    } else {
        "analysis passes on/off"
    });

    let mut report = Report::new("analysis_overhead", mode_str(smoke));
    for s in &samples {
        report.row(s.row());
    }
    report.write("BENCH_analysis.json");
}
