//! Shared plumbing for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table/figure of the paper
//! (see `EXPERIMENTS.md` for the index). This library provides the ASCII
//! table printer, the mixed increment/read workload runner used by the
//! counter experiments, and small helpers.
//!
//! All experiments honour the `REPRO_SCALE` environment variable
//! (default 1): larger values multiply operation counts for
//! tighter measurements at the cost of runtime.

pub mod emit;
pub mod regression;
pub mod tables;
pub mod workloads;

/// The operation-count multiplier from `REPRO_SCALE` (default 1, min 1).
pub fn scale() -> u64 {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1)
}

/// `(s₁ + … + sₙ)! / (s₁! · … · sₙ!)` — the number of interleavings of
/// `n` sequences with fixed lengths. The closed form `exp_explore` and
/// the explorer acceptance tests assert exhaustive enumeration against.
pub fn multinomial(counts: &[u64]) -> u128 {
    let mut result: u128 = 1;
    let mut placed: u128 = 0;
    for &c in counts {
        for i in 1..=u128::from(c) {
            placed += 1;
            result = result * placed / i; // binomial prefix: always divides
        }
    }
    result
}

/// `⌈√n⌉` — the accuracy threshold of Theorem III.9.
pub fn ceil_sqrt(n: u64) -> u64 {
    let mut k = (n as f64).sqrt() as u64;
    while k * k < n {
        k += 1;
    }
    while k > 1 && (k - 1) * (k - 1) >= n {
        k -= 1;
    }
    k
}

/// `log₂ x` as a float, 0 for x ≤ 1 (plot-friendly).
pub fn log2f(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_sqrt_values() {
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(4), 2);
        assert_eq!(ceil_sqrt(5), 3);
        assert_eq!(ceil_sqrt(9), 3);
        assert_eq!(ceil_sqrt(10), 4);
        assert_eq!(ceil_sqrt(64), 8);
        assert_eq!(ceil_sqrt(65), 9);
    }

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    #[test]
    fn multinomial_values() {
        assert_eq!(multinomial(&[]), 1);
        assert_eq!(multinomial(&[0, 3]), 1);
        assert_eq!(multinomial(&[1, 1, 1]), 6);
        assert_eq!(multinomial(&[2, 2]), 6);
        assert_eq!(multinomial(&[4, 4, 4]), 34650);
        assert_eq!(multinomial(&[2, 2, 3]), 210);
    }
}
