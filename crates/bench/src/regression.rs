//! Throughput-regression diffing for the committed `BENCH_*.json`
//! artifacts — the first step toward the ROADMAP's benchmark job with
//! regression tracking.
//!
//! Every experiment binary writes a flat JSON file of the shape
//!
//! ```json
//! { "bench": "…", "mode": "…", "results": [ { flat row }, … ] }
//! ```
//!
//! (our own format, written by hand — no serde in the tree). This module
//! parses that shape, matches rows between a committed baseline and a
//! fresh run by their **identity fields** (everything except metrics and
//! volatile measurements), and reports every metric that regressed by
//! more than a caller-chosen factor:
//!
//! * **throughput** metrics (fields ending in `_per_sec`) regress by
//!   *dropping* below `baseline / factor`;
//! * **memory** metrics (fields ending in `_bytes`, e.g.
//!   `peak_rss_bytes`, or in `_entries`, e.g. the online checker's
//!   `peak_retained_entries`) regress by *growing* beyond
//!   `baseline × factor` — footprint counts are far less noisy than
//!   wall-clock, so a 2× growth is a real layout or leak problem, not
//!   jitter.
//!
//! The `bench_diff` binary wraps this as a CI step that *warns* (CI
//! machines vary too much to gate on wall-clock throughput).

use std::collections::BTreeMap;

/// A scalar cell of a result row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A JSON string.
    Str(String),
    /// A JSON number (all our numbers fit f64 exactly enough for
    /// ratio checks).
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Num(x) => format!("{x}"),
            Cell::Bool(b) => format!("{b}"),
        }
    }
}

/// One flat result row.
pub type Row = BTreeMap<String, Cell>;

/// A parsed `BENCH_*.json` file.
#[derive(Debug, Clone)]
pub struct BenchFile {
    /// The top-level `bench` tag.
    pub bench: String,
    /// The top-level `mode` tag, when present (`full` / `smoke`).
    pub mode: Option<String>,
    /// The result rows.
    pub results: Vec<Row>,
}

/// The direction a metric is good in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Higher is better (`_per_sec`): a regression *drops*.
    Throughput,
    /// Lower is better (`_bytes`): a regression *grows*.
    Memory,
}

/// Compared-metric classification; `None` for identity/volatile fields.
fn metric_kind(name: &str) -> Option<MetricKind> {
    if name.ends_with("_per_sec") {
        Some(MetricKind::Throughput)
    } else if name.ends_with("_bytes") || name.ends_with("_entries") {
        Some(MetricKind::Memory)
    } else {
        None
    }
}

fn is_volatile(name: &str) -> bool {
    const VOLATILE: &[&str] = &[
        "millis",
        "steps",
        "ops",
        "writes",
        "reads",
        "interleavings",
        "pruned_subtrees",
        "steps_replayed",
        "violations",
    ];
    // The suffix classes cover obs metric-snapshot exports: raw event
    // counts (`_total`, histogram `_count`) and histogram quantiles
    // (`_p50`/`_p90`/`_p99`/`_max`) vary run to run and carry no
    // better/worse direction, so they are neither identity nor
    // compared metrics.
    const VOLATILE_SUFFIXES: &[&str] = &[
        "_avg", "_ms", "_total", "_count", "_p50", "_p90", "_p99", "_max",
    ];
    VOLATILE.contains(&name) || VOLATILE_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// The identity key of a row: every stable field, rendered.
pub fn identity(row: &Row) -> String {
    row.iter()
        .filter(|(k, _)| metric_kind(k).is_none() && !is_volatile(k))
        .map(|(k, v)| format!("{k}={}", v.render()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// One detected metric regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Identity of the affected row.
    pub row: String,
    /// The metric that regressed.
    pub metric: String,
    /// Which way "worse" points for this metric.
    pub kind: MetricKind,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub fresh: f64,
}

impl Regression {
    /// How many times worse the fresh run is: `baseline / fresh` for
    /// throughput (slowdown), `fresh / baseline` for memory (growth).
    /// Always > 1 for a reported regression.
    pub fn severity(&self) -> f64 {
        match self.kind {
            MetricKind::Throughput => self.baseline / self.fresh.max(f64::MIN_POSITIVE),
            MetricKind::Memory => self.fresh / self.baseline.max(f64::MIN_POSITIVE),
        }
    }

    /// `baseline / fresh` — how many times slower the fresh run is.
    /// Meaningful for throughput metrics only; see
    /// [`severity`](Regression::severity) for the direction-aware ratio.
    pub fn slowdown(&self) -> f64 {
        self.baseline / self.fresh.max(f64::MIN_POSITIVE)
    }
}

/// Compare `fresh` against `baseline`: every compared metric present in
/// both versions of a row that got more than `factor` times worse —
/// throughput below `baseline / factor`, memory above
/// `baseline × factor` — is reported. Rows present on only one side are
/// ignored (configs come and go).
pub fn diff(baseline: &BenchFile, fresh: &BenchFile, factor: f64) -> Vec<Regression> {
    assert!(factor >= 1.0, "a regression factor below 1 is meaningless");
    let mut by_id: BTreeMap<String, &Row> = BTreeMap::new();
    for row in &baseline.results {
        by_id.insert(identity(row), row);
    }
    let mut out = Vec::new();
    for row in &fresh.results {
        let id = identity(row);
        let Some(base) = by_id.get(&id) else {
            continue;
        };
        for (name, cell) in row.iter() {
            let Some(kind) = metric_kind(name) else {
                continue;
            };
            let (Cell::Num(fresh_v), Some(Cell::Num(base_v))) = (cell, base.get(name)) else {
                continue;
            };
            let regressed = match kind {
                MetricKind::Throughput => *fresh_v * factor < *base_v,
                MetricKind::Memory => *fresh_v > *base_v * factor,
            };
            if *base_v > 0.0 && regressed {
                out.push(Regression {
                    row: id.clone(),
                    metric: name.clone(),
                    kind,
                    baseline: *base_v,
                    fresh: *fresh_v,
                });
            }
        }
    }
    out
}

/// Parse a `BENCH_*.json` file (the flat shape our binaries write).
pub fn parse_bench_json(text: &str) -> Result<BenchFile, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut bench = None;
    let mut mode = None;
    let mut results = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "results" => {
                p.expect(b'[')?;
                loop {
                    p.skip_ws();
                    if p.eat(b']') {
                        break;
                    }
                    results.push(p.flat_object()?);
                    p.skip_ws();
                    p.eat(b',');
                }
            }
            _ => {
                let cell = p.cell()?;
                match (key.as_str(), cell) {
                    ("bench", Cell::Str(s)) => bench = Some(s),
                    ("mode", Cell::Str(s)) => mode = Some(s),
                    _ => {} // other top-level scalars: ignored
                }
            }
        }
        p.skip_ws();
        p.eat(b',');
    }
    Ok(BenchFile {
        bench: bench.ok_or("missing top-level \"bench\" tag")?,
        mode,
        results,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.at;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.at += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escapes are not used in bench JSON".into());
            }
            self.at += 1;
        }
        Err("unterminated string".into())
    }

    fn cell(&mut self) -> Result<Cell, String> {
        match self.peek() {
            Some(b'"') => Ok(Cell::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                let word = if self.peek() == Some(b't') {
                    "true"
                } else {
                    "false"
                };
                if self.bytes[self.at..].starts_with(word.as_bytes()) {
                    self.at += word.len();
                    Ok(Cell::Bool(word == "true"))
                } else {
                    Err(format!("malformed literal at byte {}", self.at))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.at;
                while self
                    .peek()
                    .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
                {
                    self.at += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.at])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Cell::Num)
                    .ok_or_else(|| format!("malformed number at byte {start}"))
            }
            other => Err(format!(
                "unexpected value start {other:?} at byte {}",
                self.at
            )),
        }
    }

    fn flat_object(&mut self) -> Result<Row, String> {
        self.expect(b'{')?;
        let mut row = Row::new();
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(row);
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let cell = self.cell()?;
            row.insert(key, cell);
            self.skip_ws();
            self.eat(b',');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
  "bench": "sketch_workloads",
  "mode": "full",
  "results": [
    {"object": "topk", "backend": "coop", "n": 8, "shards": 4, "adds_per_sec": 1000000, "millis": 12.5, "violations": 0, "peak_rss_bytes": 100000000},
    {"object": "topk", "backend": "thread", "n": 4, "shards": 1, "adds_per_sec": 500000, "millis": 9.0, "violations": 0, "peak_rss_bytes": 50000000}
  ]
}"#;

    #[test]
    fn parses_our_shape() {
        let f = parse_bench_json(OLD).expect("parses");
        assert_eq!(f.bench, "sketch_workloads");
        assert_eq!(f.mode.as_deref(), Some("full"));
        assert_eq!(f.results.len(), 2);
        assert_eq!(f.results[0].get("backend"), Some(&Cell::Str("coop".into())));
        assert_eq!(f.results[0].get("n"), Some(&Cell::Num(8.0)));
    }

    #[test]
    fn identity_ignores_metrics_and_volatiles() {
        let f = parse_bench_json(OLD).unwrap();
        let id = identity(&f.results[0]);
        assert!(id.contains("backend=coop") && id.contains("n=8"));
        assert!(!id.contains("adds_per_sec") && !id.contains("millis"));
        assert!(!id.contains("violations"));
        assert!(
            !id.contains("peak_rss_bytes"),
            "memory metrics compared, not matched"
        );
    }

    #[test]
    fn detects_a_regression_beyond_the_factor() {
        let old = parse_bench_json(OLD).unwrap();
        let new_text = OLD
            .replace("\"adds_per_sec\": 1000000", "\"adds_per_sec\": 400000")
            .replace("\"adds_per_sec\": 500000", "\"adds_per_sec\": 300000");
        let new = parse_bench_json(&new_text).unwrap();
        let regs = diff(&old, &new, 2.0);
        // 1M → 400k is a 2.5× drop (reported); 500k → 300k is 1.67×
        // (within tolerance).
        assert_eq!(regs.len(), 1);
        assert!(regs[0].row.contains("backend=coop"));
        assert_eq!(regs[0].metric, "adds_per_sec");
        assert_eq!(regs[0].kind, MetricKind::Throughput);
        assert!((regs[0].slowdown() - 2.5).abs() < 1e-9);
        assert!((regs[0].severity() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn detects_a_memory_regression_in_the_growth_direction() {
        let old = parse_bench_json(OLD).unwrap();
        // Coop row: RSS grows 2.5× (reported). Thread row: RSS *shrinks*
        // 10× — an improvement, never a regression.
        let new_text = OLD
            .replace(
                "\"peak_rss_bytes\": 100000000",
                "\"peak_rss_bytes\": 250000000",
            )
            .replace(
                "\"peak_rss_bytes\": 50000000",
                "\"peak_rss_bytes\": 5000000",
            );
        let fresh = parse_bench_json(&new_text).unwrap();
        let regs = diff(&old, &fresh, 2.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "peak_rss_bytes");
        assert_eq!(regs[0].kind, MetricKind::Memory);
        assert!(regs[0].row.contains("backend=coop"));
        assert!((regs[0].severity() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn memory_growth_within_the_factor_passes() {
        let old = parse_bench_json(OLD).unwrap();
        let new_text = OLD.replace(
            "\"peak_rss_bytes\": 100000000",
            "\"peak_rss_bytes\": 180000000",
        );
        let fresh = parse_bench_json(&new_text).unwrap();
        assert!(
            diff(&old, &fresh, 2.0).is_empty(),
            "1.8x growth is within 2x"
        );
    }

    #[test]
    fn unmatched_rows_are_ignored() {
        let old = parse_bench_json(OLD).unwrap();
        let new_text = OLD.replace("\"n\": 8", "\"n\": 16");
        let new = parse_bench_json(&new_text).unwrap();
        let regs = diff(
            &old,
            &parse_bench_json(&new_text.replace("1000000", "1")).unwrap(),
            2.0,
        );
        let _ = new;
        assert!(regs.is_empty(), "different n: different identity");
    }

    #[test]
    fn mode_mismatch_still_matches_rows() {
        // Smoke runs produce a subset of rows with the same identities;
        // the top-level mode tag does not enter row identity.
        let old = parse_bench_json(OLD).unwrap();
        let new_text = OLD.replace("\"mode\": \"full\"", "\"mode\": \"smoke\"");
        let fresh = parse_bench_json(&new_text).unwrap();
        assert!(diff(&old, &fresh, 2.0).is_empty());
    }

    #[test]
    fn explore_rows_key_on_algo() {
        // exp_explore emits one row per (config, algo) pair; the algo
        // tag must be part of row identity so a dpor row is never
        // diffed against a dfs baseline.
        let text = r#"{
  "bench": "schedule_exploration",
  "results": [
    {"config": "collect-3x2", "algo": "dfs-prune", "prune": true, "max_crashes": 0, "interleavings": 131, "millis": 1.9, "interleavings_per_sec": 69216, "violations": 0},
    {"config": "collect-3x2", "algo": "dpor", "prune": true, "max_crashes": 0, "interleavings": 132, "millis": 1.0, "interleavings_per_sec": 128883, "violations": 0}
  ]
}"#;
        let f = parse_bench_json(text).unwrap();
        let ids: Vec<String> = f.results.iter().map(identity).collect();
        assert!(ids[0].contains("algo=dfs-prune") && ids[1].contains("algo=dpor"));
        assert_ne!(ids[0], ids[1], "algo distinguishes otherwise-equal rows");
    }

    #[test]
    fn checker_rows_key_on_mode() {
        // exp_checker emits offline and online rows for the same
        // record count; the per-row mode tag must enter identity so an
        // online row is never diffed against the offline sweep, while
        // peak_retained_entries is a compared memory metric, not
        // identity.
        let text = r#"{
  "bench": "checker_throughput",
  "results": [
    {"engine": "sweep", "mode": "offline", "records": 10000, "millis": 5.0, "records_per_sec": 2000000},
    {"engine": "online", "mode": "online", "records": 10000, "millis": 4.0, "records_per_sec": 2500000, "peak_retained_entries": 120}
  ]
}"#;
        let f = parse_bench_json(text).unwrap();
        let ids: Vec<String> = f.results.iter().map(identity).collect();
        assert!(ids[0].contains("mode=offline") && ids[1].contains("mode=online"));
        assert_ne!(ids[0], ids[1], "mode distinguishes the rows");
        assert!(
            !ids[1].contains("peak_retained_entries"),
            "retained-state metrics compared, not matched"
        );
        // Retained state growing beyond the factor is a reported memory
        // regression, in the growth direction only.
        let grown = text.replace(
            "\"peak_retained_entries\": 120",
            "\"peak_retained_entries\": 500",
        );
        let regs = diff(&f, &parse_bench_json(&grown).unwrap(), 2.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "peak_retained_entries");
        assert_eq!(regs[0].kind, MetricKind::Memory);
    }

    #[test]
    fn real_bench_artifacts_parse() {
        // The committed artifacts in the repo root must stay parseable —
        // this is what CI diffs against.
        for name in [
            "BENCH_checker.json",
            "BENCH_scale.json",
            "BENCH_explore.json",
            "BENCH_sketch.json",   // consumed by CI's sketch bench_diff step
            "BENCH_analysis.json", // consumed by CI's analysis bench_diff step
            "BENCH_obs.json",      // consumed by CI's obs-overhead bench_diff step
        ] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                let f = parse_bench_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(!f.results.is_empty(), "{name} has rows");
            }
        }
    }
}
