//! Streaming (online) linearizability checking: the monotone sweep of
//! [`crate::monotone`], re-expressed as a push-driven state machine
//! that consumes [`OpRecord`]s one at a time and keeps retained state
//! proportional to the number of *concurrently open* operations, not
//! to the length of the history.
//!
//! # How the offline sweep becomes incremental
//!
//! The offline counter sweep processes three event types in timestamp
//! order — a read's *query* at its invocation, its *insert* at its
//! response, and a completed increment's *arrival* at its response —
//! and resolves each query against two global weighted tables
//! (`A` = completed-before weight, `B` = possibly-before weight) plus
//! the monotone stack of earlier read assignments. All three inputs
//! are prefix quantities of the very stream the sweep walks, so a
//! push-driven checker needs no tables at all:
//!
//! * `A` at a read's invocation is the running sum of completed
//!   increment amounts — *captured when the read is announced*;
//! * `B` at a read's response is the running sum of announced
//!   increment amounts — read when the read completes;
//! * the stack maximum a query observes is the stack's state at the
//!   read's invocation — also captured at announcement.
//!
//! Both engines therefore split every operation into an
//! **announcement** (at `inv`, before any same-timestamp completion)
//! and a **completion** (at `resp`); the per-operation capture lives
//! in a small per-process map while the operation is open and dies
//! with its completion (or crash). Verdicts are identical to the
//! offline sweep — only the *detection point* moves, from a read's
//! invocation (where the offline sweep evaluates its query) to its
//! response (where the online checker has finally seen `B`).
//!
//! # Watermark retirement: why retained state stays bounded
//!
//! The one structure that could still grow with history length is the
//! monotone stack. Its future behavior, however, depends only on the
//! term of the last live entry below each *future* `raise_before`
//! boundary — and those boundaries are exactly the invocation
//! timestamps of the increments currently in flight (a not-yet-seen
//! increment invokes in the future, above every stack key). The
//! checker keeps that boundary set as a multiset of open-increment
//! invocations and periodically folds every adjacent pair of stack
//! entries whose gap contains no boundary
//! ([`MonotoneStack::fold_and_compact`]); after a fold the live stack
//! has at most `open increments + 1` entries. Folding is triggered
//! when the live count has doubled since the last fold, so its `O(live)`
//! cost amortizes to `O(1)` per record. The max-register engine's
//! analogue prunes its witness set below
//! `min(max(completed write, finalized read), min open-read base)` —
//! values at or below that floor can never again be selected.
//!
//! # Input contract
//!
//! Records must be pushed in nondecreasing timestamp order, with an
//! operation's announcement (`resp: None`) arriving before any
//! same-timestamp completion. Driver-emitted streams satisfy this by
//! construction (tickets are globally unique and drawn in order). A
//! completed record with no prior announcement is accepted as an
//! atomic announce-then-complete, which is only valid while no other
//! operation overlaps it — overlapping operations must be streamed as
//! separate announcement and completion records. Violating the order
//! contract is *detected*, not undefined: the checker returns a
//! violation, which is what lets tests feed it deliberately reordered
//! streams and watch it object.

use crate::history::{CounterHistory, MaxRegHistory, Violation};
use crate::sweep::MonotoneStack;
use smr::{OpKind, OpRecord};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound::{Excluded, Included};
use std::sync::OnceLock;

/// Shared metric handles, resolved once per process. Pushes and folds
/// are the checker's two cost centers (per-record work and the
/// amortized compaction that keeps retained state bounded); the
/// retained gauge mirrors the peak so a snapshot shows how far the
/// streaming bound was stressed without calling
/// [`OnlineChecker::peak_retained`] on a live checker.
struct CheckerMetrics {
    pushes: &'static obs::Counter,
    folds: &'static obs::Counter,
    retained_peak: &'static obs::Gauge,
}

fn metrics() -> &'static CheckerMetrics {
    static METRICS: OnceLock<CheckerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CheckerMetrics {
        pushes: obs::counter(obs::names::SUB_LINCHECK, obs::names::LINCHECK_PUSHES),
        folds: obs::counter(obs::names::SUB_LINCHECK, obs::names::LINCHECK_FOLDS),
        retained_peak: obs::gauge(obs::names::SUB_LINCHECK, obs::names::LINCHECK_RETAINED),
    })
}

/// A relaxed counter read specification, mirroring the two closed-form
/// windows of [`crate::monotone::check_counter`] and
/// [`crate::monotone::check_counter_additive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterSpec {
    /// `k`-multiplicative accuracy: a read of `x` admits exact counts
    /// in `[⌈x/k⌉, x·k]` (saturating at the top).
    Multiplicative(u64),
    /// `k`-additive accuracy: a read of `x` admits exact counts in
    /// `[x − k, x + k]` (saturating at both ends).
    Additive(u64),
}

impl CounterSpec {
    /// The inclusive window of exact counts admitting a read of `x` —
    /// identical to the closures the offline entry points pass to
    /// `check_counter_with`.
    pub fn window(self, x: u128) -> (u128, u128) {
        match self {
            CounterSpec::Multiplicative(k) => {
                let kk = u128::from(k);
                (x.div_ceil(kk), x.saturating_mul(kk))
            }
            CounterSpec::Additive(k) => {
                let kk = u128::from(k);
                (x.saturating_sub(kk), x.saturating_add(kk))
            }
        }
    }
}

/// What a process's open operation captured at announcement time.
enum OpenCounterOp {
    Read {
        inv: u64,
        /// `A`: completed-increment weight at the read's invocation.
        a: u128,
        /// Stack maximum at the read's invocation.
        m: Option<u128>,
    },
    Inc {
        inv: u64,
        amount: u64,
    },
}

struct CounterState {
    spec: CounterSpec,
    /// Running weight of *completed* increments (`A` source).
    completed: u128,
    /// Running weight of *announced* increments (`B` source).
    announced: u128,
    stack: MonotoneStack,
    open: HashMap<usize, OpenCounterOp>,
    /// Multiset of in-flight increment invocations — the only possible
    /// future `raise_before` boundaries at or below current stack keys.
    seps: BTreeMap<u64, u32>,
    /// Live stack size right after the last fold; the next fold fires
    /// when the live count has (roughly) doubled past it.
    fold_floor: usize,
}

enum OpenMaxRegOp {
    Read {
        inv: u64,
        /// Forced maximum at the read's invocation.
        base: u128,
    },
    Write,
}

struct MaxRegState {
    k: u128,
    /// Largest completed write value.
    cwm: u128,
    /// Largest finalized (linearized) read maximum.
    frm: u128,
    /// Effective values of announced writes, distinct. A `BTreeSet`
    /// suffices: reads only ever take the *minimum* admissible witness
    /// in a value range, so multiplicity is irrelevant.
    witnesses: BTreeSet<u128>,
    open: HashMap<usize, OpenMaxRegOp>,
    /// Multiset of open-read bases, for the witness retirement floor.
    bases: BTreeMap<u128, u32>,
}

enum Inner {
    Counter(CounterState),
    MaxReg(MaxRegState),
}

/// Incremental linearizability checker for the counter and
/// max-register vocabularies. See the [module docs](self) for the
/// algorithm and the input contract.
pub struct OnlineChecker {
    inner: Inner,
    /// Last processed `(timestamp, phase)`; phase 0 = announcements,
    /// phase 1 = completions. Pushes must not regress below it.
    frontier: (u64, u8),
    /// First violation, sticky: every later call re-returns it.
    failed: Option<Violation>,
    /// Completed reads checked so far (for violation numbering).
    reads_checked: usize,
    peak: usize,
}

impl OnlineChecker {
    /// Checker for the `k`-multiplicative-accurate counter.
    pub fn counter(k: u64) -> Self {
        assert!(k >= 1);
        Self::counter_with(CounterSpec::Multiplicative(k))
    }

    /// Checker for the `k`-additive-accurate counter.
    pub fn counter_additive(k: u64) -> Self {
        Self::counter_with(CounterSpec::Additive(k))
    }

    /// Checker for an arbitrary [`CounterSpec`].
    pub fn counter_with(spec: CounterSpec) -> Self {
        OnlineChecker::new(Inner::Counter(CounterState {
            spec,
            completed: 0,
            announced: 0,
            stack: MonotoneStack::with_capacity(64),
            open: HashMap::new(),
            seps: BTreeMap::new(),
            fold_floor: 0,
        }))
    }

    /// Checker for the `k`-multiplicative-accurate max register.
    pub fn maxreg(k: u64) -> Self {
        assert!(k >= 1);
        OnlineChecker::new(Inner::MaxReg(MaxRegState {
            k: u128::from(k),
            cwm: 0,
            frm: 0,
            witnesses: BTreeSet::new(),
            open: HashMap::new(),
            bases: BTreeMap::new(),
        }))
    }

    fn new(inner: Inner) -> Self {
        OnlineChecker {
            inner,
            frontier: (0, 0),
            failed: None,
            reads_checked: 0,
            peak: 0,
        }
    }

    /// Currently retained entries: open operations plus live stack
    /// entries (counter) or retained witnesses (max register). This is
    /// the quantity the streaming design bounds by the maximum number
    /// of concurrently open operations.
    pub fn retained(&self) -> usize {
        match &self.inner {
            Inner::Counter(c) => c.open.len() + c.stack.live_len(),
            Inner::MaxReg(m) => m.open.len() + m.witnesses.len(),
        }
    }

    /// High-water mark of [`retained`](Self::retained) over the run.
    pub fn peak_retained(&self) -> usize {
        self.peak
    }

    /// Feed one record. `resp: None` announces an operation (captures
    /// its invocation-time state); `resp: Some` completes the
    /// operation announced earlier for the same pid, or — if none is
    /// open — performs an atomic announce-then-complete (valid only
    /// for non-overlapping operations; see the module docs).
    ///
    /// The first violation is sticky: once `Err` is returned, every
    /// subsequent call returns the same violation.
    pub fn push(&mut self, rec: &OpRecord) -> Result<(), Violation> {
        metrics().pushes.inc();
        if let Some(v) = &self.failed {
            return Err(v.clone());
        }
        let result = match rec.resp {
            None => self.announce(rec.pid, rec.kind, rec.inv),
            Some(resp) => {
                if self.has_open(rec.pid) {
                    self.complete(rec.pid, rec.kind, resp)
                } else {
                    self.announce(rec.pid, rec.kind, rec.inv)
                        .and_then(|()| self.complete(rec.pid, rec.kind, resp))
                }
            }
        };
        if let Err(v) = &result {
            self.failed = Some(v.clone());
        }
        let retained = self.retained();
        if retained > self.peak {
            // The gauge carries the peak, not the instantaneous value:
            // the instantaneous value swings every record, while the
            // peak is the quantity the streaming bound is about.
            metrics()
                .retained_peak
                .add(i64::try_from(retained - self.peak).unwrap_or(i64::MAX));
            self.peak = retained;
        }
        result
    }

    /// The process crashed: its open operation (if any) never
    /// completes. A crashed read imposes no constraint and is dropped;
    /// a crashed increment keeps its announced weight (it may have
    /// taken effect) but will never force a raise, so its invocation
    /// stops being a fold boundary; a crashed write keeps its witness
    /// (it may have taken effect).
    pub fn crash(&mut self, pid: usize) {
        match &mut self.inner {
            Inner::Counter(c) => match c.open.remove(&pid) {
                Some(OpenCounterOp::Inc { inv, .. }) => remove_sep(&mut c.seps, inv),
                Some(OpenCounterOp::Read { .. }) | None => {}
            },
            Inner::MaxReg(m) => match m.open.remove(&pid) {
                Some(OpenMaxRegOp::Read { base, .. }) => {
                    remove_base(&mut m.bases, base);
                    m.prune_witnesses();
                }
                Some(OpenMaxRegOp::Write) | None => {}
            },
        }
    }

    /// Finish the stream. Operations still open are pending records:
    /// they impose no further constraints (exactly as the offline
    /// extractors treat them), so this only re-reports a sticky
    /// violation, if any.
    pub fn finish(&mut self) -> Result<(), Violation> {
        match &self.failed {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    pub(crate) fn has_open(&self, pid: usize) -> bool {
        match &self.inner {
            Inner::Counter(c) => c.open.contains_key(&pid),
            Inner::MaxReg(m) => m.open.contains_key(&pid),
        }
    }

    /// Enforce the push-order contract: `key` must not regress below
    /// the frontier.
    fn advance(&mut self, key: (u64, u8), what: &str) -> Result<(), Violation> {
        if key < self.frontier {
            return Err(Violation {
                message: format!(
                    "online checker fed out of order: {what} at timestamp {} \
                     after the stream already advanced past timestamp {} \
                     (announcements must precede same-timestamp completions, \
                     and timestamps must not decrease)",
                    key.0, self.frontier.0
                ),
            });
        }
        self.frontier = key;
        Ok(())
    }

    fn announce(&mut self, pid: usize, kind: OpKind, inv: u64) -> Result<(), Violation> {
        self.advance((inv, 0), "announcement")?;
        match &mut self.inner {
            Inner::Counter(c) => {
                let op = match kind {
                    OpKind::Inc { amount } => {
                        c.announced += u128::from(amount);
                        *c.seps.entry(inv).or_insert(0) += 1;
                        OpenCounterOp::Inc { inv, amount }
                    }
                    OpKind::Read { .. } => OpenCounterOp::Read {
                        inv,
                        a: c.completed,
                        m: c.stack.max(),
                    },
                    other => return Err(vocabulary_violation(pid, other, "counter")),
                };
                if c.open.insert(pid, op).is_some() {
                    return Err(overlap_violation(pid, inv));
                }
            }
            Inner::MaxReg(m) => {
                let op = match kind {
                    OpKind::Write { value } => {
                        let ev = u128::from(value).max(m.cwm).max(m.frm);
                        m.witnesses.insert(ev);
                        OpenMaxRegOp::Write
                    }
                    OpKind::Read { .. } => {
                        let base = m.cwm.max(m.frm);
                        *m.bases.entry(base).or_insert(0) += 1;
                        OpenMaxRegOp::Read { inv, base }
                    }
                    other => return Err(vocabulary_violation(pid, other, "max register")),
                };
                if m.open.insert(pid, op).is_some() {
                    return Err(overlap_violation(pid, inv));
                }
            }
        }
        Ok(())
    }

    fn complete(&mut self, pid: usize, kind: OpKind, resp: u64) -> Result<(), Violation> {
        self.advance((resp, 1), "completion")?;
        let now = self.frontier.0;
        match &mut self.inner {
            Inner::Counter(c) => match (c.open.remove(&pid), kind) {
                (Some(OpenCounterOp::Inc { inv, amount }), _) => {
                    c.completed += u128::from(amount);
                    remove_sep(&mut c.seps, inv);
                    c.stack.raise_before(inv, u128::from(amount));
                    c.maybe_fold(now);
                }
                (Some(OpenCounterOp::Read { inv, a, m }), OpKind::Read { returned }) => {
                    let b = c.announced;
                    let (spec_lo, spec_hi) = c.spec.window(returned);
                    let lo = spec_lo.max(a).max(m.unwrap_or(0));
                    let hi = spec_hi.min(b);
                    let j = self.reads_checked;
                    if lo > hi {
                        return Err(Violation {
                            message: format!(
                                "read #{j} (window [{inv}, {resp}]) returned {returned} \
                                 but the exact count is confined to an empty window: \
                                 need ≥ {lo}, ≤ {hi} (forced-before A = {a}, \
                                 possible-before B = {b})"
                            ),
                        });
                    }
                    self.reads_checked += 1;
                    c.stack.insert(resp, lo);
                    c.maybe_fold(now);
                }
                (Some(OpenCounterOp::Read { .. }), other) => {
                    return Err(vocabulary_violation(pid, other, "counter"));
                }
                (None, _) => unreachable!("push() announces before completing"),
            },
            Inner::MaxReg(m) => match (m.open.remove(&pid), kind) {
                (Some(OpenMaxRegOp::Write), _) => {
                    if let OpKind::Write { value } = kind {
                        m.cwm = m.cwm.max(u128::from(value));
                    }
                    m.prune_witnesses();
                }
                (Some(OpenMaxRegOp::Read { inv, base }), OpKind::Read { returned }) => {
                    remove_base(&mut m.bases, base);
                    let spec_lo = returned.div_ceil(m.k.max(1)).min(returned);
                    let spec_hi = returned.saturating_mul(m.k);
                    let chosen = if base >= spec_lo {
                        (base <= spec_hi).then_some(base)
                    } else {
                        m.witnesses.range(spec_lo..=spec_hi).next().copied()
                    };
                    let i = self.reads_checked;
                    match chosen {
                        Some(v) => {
                            self.reads_checked += 1;
                            m.frm = m.frm.max(v);
                            m.prune_witnesses();
                        }
                        None => {
                            return Err(Violation {
                                message: format!(
                                    "read #{i} (window [{inv}, {resp}]) returned \
                                     {returned} but no admissible maximum exists: \
                                     forced maximum {base}, admissible value window \
                                     [{spec_lo}, {spec_hi}], and no write invoked at \
                                     or before the response timestamp {resp} has an \
                                     effective value in that window"
                                ),
                            });
                        }
                    }
                }
                (Some(OpenMaxRegOp::Read { .. }), other) => {
                    return Err(vocabulary_violation(pid, other, "max register"));
                }
                (None, _) => unreachable!("push() announces before completing"),
            },
        }
        Ok(())
    }

    /// Feed a whole counter history (the offline input type) through
    /// the checker, splitting each operation into announcement and
    /// completion events and delivering them in the offline sweep's
    /// exact order. Convenience for differential tests and benches;
    /// the checker must have been built by a `counter*` constructor.
    pub fn feed_counter_history(&mut self, h: &CounterHistory) -> Result<(), Violation> {
        assert!(
            matches!(self.inner, Inner::Counter(_)),
            "feed_counter_history on a max-register checker"
        );
        // (timestamp, phase, record). Reads first, then increments,
        // stably sorted — the same relative order the offline sweep's
        // event vector ends up in, so equal-timestamp processing
        // matches it operation for operation.
        let mut events: Vec<(u64, u8, OpRecord)> =
            Vec::with_capacity(2 * (h.reads.len() + h.incs.len()));
        for (j, r) in h.reads.iter().enumerate() {
            let pid = j;
            let kind = OpKind::Read { returned: r.value };
            events.push((r.inv, 0, announce_rec(pid, kind, r.inv)));
            events.push((r.resp, 1, complete_rec(pid, kind, r.inv, r.resp)));
        }
        for (i, inc) in h.incs.iter().enumerate() {
            let pid = h.reads.len() + i;
            let kind = OpKind::Inc { amount: inc.amount };
            let inv = inc.window.inv;
            events.push((inv, 0, announce_rec(pid, kind, inv)));
            if let Some(resp) = inc.window.resp {
                events.push((resp, 1, complete_rec(pid, kind, inv, resp)));
            }
        }
        events.sort_by_key(|&(t, tie, _)| (t, tie));
        for (_, _, rec) in &events {
            self.push(rec)?;
        }
        self.finish()
    }

    /// Max-register analogue of
    /// [`feed_counter_history`](Self::feed_counter_history).
    pub fn feed_maxreg_history(&mut self, h: &MaxRegHistory) -> Result<(), Violation> {
        assert!(
            matches!(self.inner, Inner::MaxReg(_)),
            "feed_maxreg_history on a counter checker"
        );
        let mut events: Vec<(u64, u8, OpRecord)> =
            Vec::with_capacity(2 * (h.reads.len() + h.writes.len()));
        for (j, r) in h.reads.iter().enumerate() {
            let pid = j;
            let kind = OpKind::Read { returned: r.value };
            events.push((r.inv, 0, announce_rec(pid, kind, r.inv)));
            events.push((r.resp, 1, complete_rec(pid, kind, r.inv, r.resp)));
        }
        for (i, w) in h.writes.iter().enumerate() {
            let pid = h.reads.len() + i;
            let kind = OpKind::Write { value: w.value };
            let inv = w.window.inv;
            events.push((inv, 0, announce_rec(pid, kind, inv)));
            if let Some(resp) = w.window.resp {
                events.push((resp, 1, complete_rec(pid, kind, inv, resp)));
            }
        }
        events.sort_by_key(|&(t, tie, _)| (t, tie));
        for (_, _, rec) in &events {
            self.push(rec)?;
        }
        self.finish()
    }
}

impl CounterState {
    /// Fold + compact when the live stack has doubled since the last
    /// fold. A gap `(lo, hi]` is protected while an in-flight
    /// increment's invocation lies in it — or while `hi` is still at
    /// the stream frontier, where a not-yet-announced increment could
    /// tie with it (impossible with globally unique tickets, possible
    /// in synthetic histories).
    fn maybe_fold(&mut self, now: u64) {
        if self.stack.live_len() < 2 * self.fold_floor + 16 {
            return;
        }
        metrics().folds.inc();
        let seps = &self.seps;
        self.stack.fold_and_compact(|lo, hi| {
            hi >= now || seps.range((Excluded(lo), Included(hi))).next().is_some()
        });
        self.fold_floor = self.stack.live_len();
    }
}

impl MaxRegState {
    /// Drop witnesses that can never again be selected: a future read
    /// takes the witness branch only when its base — at least
    /// `max(cwm, frm)` by monotonicity — is *below* its window, so it
    /// needs a witness strictly above that base; an open read likewise
    /// needs one strictly above its captured base.
    fn prune_witnesses(&mut self) {
        let mut floor = self.cwm.max(self.frm);
        if let Some((&b, _)) = self.bases.iter().next() {
            floor = floor.min(b);
        }
        while let Some(&w) = self.witnesses.range(..=floor).next_back() {
            self.witnesses.remove(&w);
        }
    }
}

fn remove_sep(seps: &mut BTreeMap<u64, u32>, inv: u64) {
    if let Some(n) = seps.get_mut(&inv) {
        *n -= 1;
        if *n == 0 {
            seps.remove(&inv);
        }
    }
}

fn remove_base(bases: &mut BTreeMap<u128, u32>, base: u128) {
    if let Some(n) = bases.get_mut(&base) {
        *n -= 1;
        if *n == 0 {
            bases.remove(&base);
        }
    }
}

fn vocabulary_violation(pid: usize, kind: OpKind, expected: &str) -> Violation {
    Violation {
        message: format!(
            "operation \"{}\" (pid {pid}) is not part of the {expected} \
             vocabulary the online checker was configured for",
            kind.label()
        ),
    }
}

fn overlap_violation(pid: usize, inv: u64) -> Violation {
    Violation {
        message: format!(
            "process {pid} announced an operation (timestamp {inv}) while \
             its previous operation is still open: per-process operation \
             windows must be disjoint"
        ),
    }
}

fn announce_rec(pid: usize, kind: OpKind, inv: u64) -> OpRecord {
    OpRecord {
        pid,
        kind,
        inv,
        resp: None,
        steps: 0,
    }
}

fn complete_rec(pid: usize, kind: OpKind, inv: u64, resp: u64) -> OpRecord {
    OpRecord {
        pid,
        kind,
        inv,
        resp: Some(resp),
        steps: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Interval, TimedInc, TimedRead, TimedWrite};
    use crate::monotone::{check_counter, check_counter_additive, check_maxreg};

    fn inc(inv: u64, resp: u64) -> TimedInc {
        TimedInc::unit(Interval::done(inv, resp))
    }

    fn read(inv: u64, resp: u64, value: u128) -> TimedRead {
        TimedRead { inv, resp, value }
    }

    fn write(inv: u64, resp: u64, value: u64) -> TimedWrite {
        TimedWrite {
            window: Interval::done(inv, resp),
            value,
        }
    }

    #[test]
    fn counter_matches_offline_on_simple_histories() {
        let good = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 2)],
        };
        let bad = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 0)],
        };
        for (h, k) in [(&good, 1), (&bad, 1), (&bad, 2)] {
            let offline = check_counter(h, k);
            let online = OnlineChecker::counter(k).feed_counter_history(h);
            assert_eq!(offline.is_ok(), online.is_ok(), "k = {k}");
            let offline = check_counter_additive(h, k - 1);
            let online = OnlineChecker::counter_additive(k - 1).feed_counter_history(h);
            assert_eq!(offline.is_ok(), online.is_ok(), "additive k = {k}");
        }
    }

    #[test]
    fn maxreg_matches_offline_on_simple_histories() {
        let good = MaxRegHistory {
            writes: vec![write(0, 1, 5), write(2, 3, 3)],
            reads: vec![read(4, 5, 5)],
        };
        let bad = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 3)],
        };
        for (h, k) in [(&good, 1), (&bad, 1), (&bad, 2)] {
            let offline = check_maxreg(h, k);
            let online = OnlineChecker::maxreg(k).feed_maxreg_history(h);
            assert_eq!(offline.is_ok(), online.is_ok(), "k = {k}");
        }
    }

    #[test]
    fn pending_increment_widens_b_but_never_raises() {
        // A pending increment admits a read of 1 (it may have taken
        // effect) and, separately, a read of 0 (it may not have) — but
        // never forces anything.
        for value in [0u128, 1] {
            let h = CounterHistory {
                incs: vec![TimedInc::unit(Interval::pending(0))],
                reads: vec![read(1, 2, value)],
            };
            assert!(check_counter(&h, 1).is_ok());
            assert!(OnlineChecker::counter(1).feed_counter_history(&h).is_ok());
        }
    }

    #[test]
    fn crash_drops_the_separator_but_keeps_announced_weight() {
        let mut c = OnlineChecker::counter(1);
        c.push(&announce_rec(0, OpKind::Inc { amount: 1 }, 0))
            .unwrap();
        c.crash(0);
        // The crashed increment may still have taken effect: a read of
        // 1 is admissible...
        c.push(&complete_rec(1, OpKind::Read { returned: 1 }, 1, 2))
            .unwrap();
        // ...and so is a later read of 0 (it may not have).
        // (Monotonicity: the read of 1 linearized at count >= ... no —
        // lo for the read of 1 is max(spec_lo=1, A=0, m=none) = 1, so a
        // later read of 0 with hi = min(0, B=1) = 0 must fail.)
        let err = c
            .push(&complete_rec(2, OpKind::Read { returned: 0 }, 3, 4))
            .unwrap_err();
        assert!(err.message.contains("empty window"), "{}", err.message);
        // Offline agrees.
        let h = CounterHistory {
            incs: vec![TimedInc::unit(Interval::pending(0))],
            reads: vec![read(1, 2, 1), read(3, 4, 0)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn out_of_order_pushes_are_detected_and_sticky() {
        let mut c = OnlineChecker::counter(1);
        c.push(&complete_rec(0, OpKind::Inc { amount: 1 }, 5, 6))
            .unwrap();
        let err = c
            .push(&complete_rec(1, OpKind::Read { returned: 1 }, 2, 3))
            .unwrap_err();
        assert!(err.message.contains("out of order"), "{}", err.message);
        // Sticky: a perfectly fine record now re-reports the failure.
        let again = c
            .push(&announce_rec(2, OpKind::Inc { amount: 1 }, 9))
            .unwrap_err();
        assert_eq!(err, again);
        assert!(c.finish().is_err());
    }

    #[test]
    fn overlapping_announcements_on_one_pid_are_rejected() {
        let mut c = OnlineChecker::counter(1);
        c.push(&announce_rec(0, OpKind::Inc { amount: 1 }, 0))
            .unwrap();
        let err = c
            .push(&announce_rec(0, OpKind::Inc { amount: 1 }, 1))
            .unwrap_err();
        assert!(err.message.contains("still open"), "{}", err.message);
    }

    #[test]
    fn wrong_vocabulary_is_flagged() {
        let mut c = OnlineChecker::counter(1);
        let err = c
            .push(&announce_rec(0, OpKind::Write { value: 3 }, 0))
            .unwrap_err();
        assert!(err.message.contains("vocabulary"), "{}", err.message);
        let mut m = OnlineChecker::maxreg(1);
        let err = m
            .push(&announce_rec(0, OpKind::Inc { amount: 1 }, 0))
            .unwrap_err();
        assert!(err.message.contains("vocabulary"), "{}", err.message);
    }

    #[test]
    fn retained_state_stays_bounded_on_a_long_sequential_stream() {
        // 100k sequential increment/read pairs: everything folds — the
        // retained state must stay tiny, nowhere near history size.
        let mut c = OnlineChecker::counter(1);
        let mut t = 0;
        for i in 0..100_000u64 {
            c.push(&complete_rec(0, OpKind::Inc { amount: 1 }, t, t + 1))
                .unwrap();
            c.push(&complete_rec(
                1,
                OpKind::Read {
                    returned: u128::from(i) + 1,
                },
                t + 2,
                t + 3,
            ))
            .unwrap();
            t += 4;
        }
        assert!(
            c.peak_retained() <= 64,
            "peak retained {} on a sequential stream",
            c.peak_retained()
        );
    }

    #[test]
    fn maxreg_witnesses_are_pruned_behind_the_floor() {
        let mut m = OnlineChecker::maxreg(2);
        let mut t = 0;
        for i in 1..=10_000u64 {
            m.push(&complete_rec(0, OpKind::Write { value: i }, t, t + 1))
                .unwrap();
            t += 2;
        }
        m.push(&complete_rec(1, OpKind::Read { returned: 9_999 }, t, t + 1))
            .unwrap();
        assert!(
            m.peak_retained() <= 8,
            "peak retained {} on sequential writes",
            m.peak_retained()
        );
    }
}
