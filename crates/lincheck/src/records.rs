//! One-call checker entry points for raw driver histories — the form
//! `smr::explore` hands its checker closure.
//!
//! The explorer's contract is `Fn(&smr::History) -> Result<(), String>`;
//! these helpers bundle the typed extraction
//! ([`CounterHistory::from_records`] / [`MaxRegHistory::from_records`])
//! with the monotone decision procedures and flatten both failure kinds
//! (a record outside the object vocabulary, a genuine linearizability
//! violation) into the explorer's error string. `k = 1` checks the
//! exact specification.

use crate::history::{CounterHistory, MaxRegHistory};
use crate::monotone;
use smr::History;

/// Check a driver history against the k-multiplicative counter
/// specification (`k = 1`: the exact counter). Pending increments are
/// honoured as optional effects; pending reads constrain nothing.
pub fn check_counter_records(h: &History, k: u64) -> Result<(), String> {
    let ch = CounterHistory::from_records(h).map_err(|e| e.to_string())?;
    monotone::check_counter(&ch, k).map_err(|v| v.to_string())
}

/// Check a driver history against the k-multiplicative max-register
/// specification (`k = 1`: the exact max register).
pub fn check_maxreg_records(h: &History, k: u64) -> Result<(), String> {
    let mh = MaxRegHistory::from_records(h).map_err(|e| e.to_string())?;
    monotone::check_maxreg(&mh, k).map_err(|v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{OpRecord, OpSpec};

    fn rec(pid: usize, spec: OpSpec, ret: u128, inv: u64, resp: Option<u64>) -> OpRecord {
        OpRecord {
            pid,
            kind: spec.kind(ret),
            inv,
            resp,
            steps: 1,
        }
    }

    #[test]
    fn counter_records_pass_and_fail() {
        let mut h = History::new();
        h.push(rec(0, OpSpec::inc(), 0, 0, Some(1)));
        h.push(rec(1, OpSpec::read(), 1, 2, Some(3)));
        assert_eq!(check_counter_records(&h, 1), Ok(()));

        // A later read that missed the completed increment.
        h.push(rec(1, OpSpec::read(), 0, 4, Some(5)));
        let err = check_counter_records(&h, 1).expect_err("stale read");
        assert!(!err.is_empty());
    }

    #[test]
    fn counter_records_reject_foreign_ops_gracefully() {
        let mut h = History::new();
        h.push(rec(0, OpSpec::custom("cas", 7), 0, 0, Some(1)));
        let err = check_counter_records(&h, 1).expect_err("foreign op");
        assert!(err.contains("counter"), "diagnosis names the vocabulary");
    }

    #[test]
    fn maxreg_records_pass_and_fail() {
        let mut h = History::new();
        h.push(rec(0, OpSpec::write(9), 0, 0, Some(1)));
        h.push(rec(1, OpSpec::read(), 9, 2, Some(3)));
        assert_eq!(check_maxreg_records(&h, 1), Ok(()));

        h.push(rec(1, OpSpec::read(), 0, 4, Some(5)));
        assert!(check_maxreg_records(&h, 1).is_err(), "max regressed");
        // The same history is also k-inadmissible for any k: 0 is not
        // within a factor of k of 9.
        assert!(check_maxreg_records(&h, 3).is_err());
    }
}
