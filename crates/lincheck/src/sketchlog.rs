//! Typed event-log vocabulary and rank-envelope checkers for the
//! `sketch` crate's approximate-aggregation objects.
//!
//! Sketch operations travel through the driver history as
//! [`OpKind::Custom`] records; this module is the single source of truth
//! for their labels and argument packing (the `sketch` crate submits
//! with these helpers, the checkers below extract with them — no
//! duplicated wire format).
//!
//! ## What the checkers assert
//!
//! The sketches are *compositions* of k-multiplicative primitives, so
//! their reads do not satisfy the per-object `[v/k, v·k]` spec — they
//! satisfy envelopes **derived** from the primitives' bounds. The
//! derivation (DESIGN.md, "Approximate aggregation workloads") composes
//! three facts, all sound on *every* interleaving:
//!
//! 1. **Counter upper bound** — a `KmultCounter` read `x` of a counter
//!    whose exact visible count is `v` satisfies `x ≤ k·v` (Claim III.6:
//!    `x = k·u_min ≤ k·v`).
//! 2. **Counter lower bound** — `v ≤ (w+1)·x` where `w` is the number of
//!    processes that ever increment that counter: Claim III.6's
//!    `u_max(p, q, n)` term `n·(k^{q+1} − 1)` counts per-incrementer
//!    unannounced `lcounter`s, and `k^{q+1} ≤ k·u_min` at every `(p, q)`,
//!    so `u_max ≤ (w+1)·k·u_min = (w+1)·x`.
//! 3. **Buffering slack** — a batching handle may hold up to
//!    `buffer_slack` completed-but-unflushed unit increments per writer
//!    (its flush threshold minus one); these are *invisible* to every
//!    read, so each forced-count `F` below is discounted by
//!    `w·buffer_slack` before it constrains anything.
//!
//! Real-time windows are the monotone checker's: an increment is
//! *forced* before a read if it completed strictly before the read's
//! invocation, and *possible* if it was invoked at or before the read's
//! response. `F(·)` sums forced amounts matching a predicate, `G(·)`
//! possible amounts.
//!
//! **Top-k** (reads record `(q, len, c)` where `len` entries were
//! reported and `c` is the smallest reported approximate count, 0 when
//! `len < q`):
//!
//! * *completeness* — the `(len+1)`-th largest per-key forced count is
//!   at most `w·(w+1)·c + w·buffer_slack` (an unreported key was either
//!   scanned — its count read lost to `c` — or pruned behind a shard max
//!   register whose reads are one-sided above every completed flush's
//!   counter read);
//! * *soundness* — when `len > 0`, `c ≤ k·(len-th largest per-key
//!   possible count)` (reported counts are genuine counter reads).
//!
//! **Quantile histogram** (base-`b` buckets; a `quantile(num/den)` read
//! returns the upper edge `b^(j+1)` of the first bucket whose cumulative
//! approximate population reaches the target rank):
//!
//! * *not too low* — `k·(w+1)·G(< v)·den ≥ num·(F_tot ⊖ w·slack)`: the
//!   observations at or below the returned value must carry enough of
//!   the total mass;
//! * *not too high* — `(F(< v/b) ⊖ w·slack)·den < (w+1)·(num·k·G_tot +
//!   den)`: the mass strictly below the returned bucket must not already
//!   exceed the target;
//! * a return of 0 forces `F_tot ≤ w·slack` (an empty-looking sketch).
//!
//! **Rank** (`rank(v)` returns the approximate number of observations in
//! buckets entirely at or below `v`): `ret ≤ k·G(≤ v)` and
//! `(w+1)·ret + w·slack ≥ F(≤ ⌊v/b⌋)` — the "(k·k')-multiplicative rank
//! error" with the value-side slack `k' = b` explicit.

use crate::history::{UnsupportedOp, Violation};
use smr::{History, OpKind};

/// Label of a top-k keyed increment (`arg` = [`pack_keyed`]`(key,
/// amount)`).
pub const TOPK_ADD: &str = "sk_add";
/// Label of a top-k read (`arg` = requested `q`; `ret` =
/// [`pack_topk_ret`]).
pub const TOPK_READ: &str = "sk_topk";
/// Label of a quantile observation (`arg` = [`pack_keyed`]`(value,
/// amount)`).
pub const QUANTILE_OBSERVE: &str = "sk_obs";
/// Label of a quantile-value read (`arg` = [`pack_ratio`]; `ret` = the
/// returned value).
pub const QUANTILE_READ: &str = "sk_quant";
/// Label of a rank read (`arg` = the queried value; `ret` = the
/// approximate rank).
pub const RANK_READ: &str = "sk_rank";
/// Label of an explicit flush (no count semantics; `arg` = `ret` = 0).
pub const FLUSH: &str = "sk_flush";

/// Pack a `(key-or-value, amount)` pair into a custom-op argument.
pub fn pack_keyed(key: u64, amount: u64) -> u128 {
    (u128::from(key) << 64) | u128::from(amount)
}

/// Inverse of [`pack_keyed`].
pub fn unpack_keyed(arg: u128) -> (u64, u64) {
    ((arg >> 64) as u64, arg as u64)
}

/// Pack a top-k read result digest: number of reported entries and the
/// smallest reported approximate count.
///
/// # Panics
/// Panics if `kth` does not fit 64 bits (counts that large are outside
/// the modelled range; saturating silently would weaken the envelope).
pub fn pack_topk_ret(len: usize, kth: u128) -> u128 {
    let kth64 = u64::try_from(kth).expect("top-k count digest exceeds 64 bits");
    (u128::from(len as u64) << 64) | u128::from(kth64)
}

/// Inverse of [`pack_topk_ret`].
pub fn unpack_topk_ret(ret: u128) -> (usize, u128) {
    ((ret >> 64) as usize, ret & u128::from(u64::MAX))
}

/// Pack a quantile `num/den` rank ratio.
///
/// # Panics
/// Panics unless `0 < num ≤ den`.
pub fn pack_ratio(num: u32, den: u32) -> u128 {
    assert!(
        num > 0 && num <= den,
        "rank ratio must satisfy 0 < num ≤ den"
    );
    (u128::from(num) << 32) | u128::from(den)
}

/// Inverse of [`pack_ratio`].
pub fn unpack_ratio(arg: u128) -> (u32, u32) {
    ((arg >> 32) as u32, arg as u32)
}

/// Envelope parameters shared by the sketch checkers.
#[derive(Debug, Clone, Copy)]
pub struct SketchEnvelope {
    /// Accuracy parameter of the underlying `KmultCounter`s.
    pub k: u64,
    /// Largest number of distinct processes that increment any one
    /// counter (per-key writers for top-k, observers for quantile).
    pub writers: u64,
    /// Completed-but-unflushed unit increments a batching handle may
    /// hold (its flush threshold minus one); 0 when every add flushes.
    pub buffer_slack: u64,
}

impl SketchEnvelope {
    /// An envelope with no batching slack.
    pub fn new(k: u64, writers: u64) -> Self {
        SketchEnvelope {
            k,
            writers,
            buffer_slack: 0,
        }
    }

    /// The same envelope with `buffer_slack` invisible units per writer.
    pub fn with_buffer_slack(mut self, slack: u64) -> Self {
        self.buffer_slack = slack;
        self
    }

    /// Total invisible units across all writers: `w·buffer_slack`.
    fn total_slack(&self) -> u128 {
        u128::from(self.writers) * u128::from(self.buffer_slack)
    }
}

/// One weighted increment/observation with its real-time window.
#[derive(Debug, Clone, Copy)]
struct KeyedInc {
    /// Key (top-k) or observed value (quantile).
    key: u64,
    amount: u64,
    inv: u64,
    resp: Option<u64>,
}

impl KeyedInc {
    fn forced_before(&self, inv: u64) -> bool {
        matches!(self.resp, Some(r) if r < inv)
    }

    fn possible_before(&self, resp: u64) -> bool {
        self.inv <= resp
    }
}

/// A completed read with its window and decoded payload.
#[derive(Debug, Clone, Copy)]
struct TimedCustomRead {
    arg: u128,
    ret: u128,
    inv: u64,
    resp: u64,
}

/// A top-k history extracted from driver records.
#[derive(Debug, Default)]
pub struct TopKHistory {
    adds: Vec<KeyedInc>,
    reads: Vec<TimedCustomRead>,
}

/// A quantile history extracted from driver records.
#[derive(Debug, Default)]
pub struct QuantileHistory {
    obs: Vec<KeyedInc>,
    quantiles: Vec<TimedCustomRead>,
    ranks: Vec<TimedCustomRead>,
}

/// Split one record into the caller-supplied buckets; shared by both
/// extractors. Returns `Err` on labels outside `accept`.
fn extract(
    h: &History,
    expected: &'static str,
    mut on_inc: impl FnMut(KeyedInc),
    mut on_read: impl FnMut(&'static str, TimedCustomRead),
    inc_label: &'static str,
    read_labels: &[&'static str],
) -> Result<(), UnsupportedOp> {
    for op in h.ops() {
        let OpKind::Custom { label, arg, ret } = op.kind else {
            return Err(UnsupportedOp {
                pid: op.pid,
                label: op.label(),
                expected,
            });
        };
        if label == inc_label {
            let (key, amount) = unpack_keyed(arg);
            on_inc(KeyedInc {
                key,
                amount,
                inv: op.inv,
                resp: op.resp,
            });
        } else if label == FLUSH {
            // Flushes carry no count semantics: the units they apply
            // were recorded by the adds that deferred them.
        } else if read_labels.contains(&label) {
            if let Some(resp) = op.resp {
                on_read(
                    label,
                    TimedCustomRead {
                        arg,
                        ret,
                        inv: op.inv,
                        resp,
                    },
                );
            }
            // Pending reads returned nothing checkable.
        } else {
            return Err(UnsupportedOp {
                pid: op.pid,
                label,
                expected,
            });
        }
    }
    Ok(())
}

impl TopKHistory {
    /// Extract a top-k history; records outside the `sk_add` /
    /// `sk_topk` / `sk_flush` vocabulary are rejected.
    pub fn from_records(h: &History) -> Result<Self, UnsupportedOp> {
        let mut out = TopKHistory::default();
        extract(
            h,
            "top-k sketch",
            |inc| out.adds.push(inc),
            |_, r| out.reads.push(r),
            TOPK_ADD,
            &[TOPK_READ],
        )?;
        Ok(out)
    }
}

impl QuantileHistory {
    /// Extract a quantile history; records outside the `sk_obs` /
    /// `sk_quant` / `sk_rank` / `sk_flush` vocabulary are rejected.
    pub fn from_records(h: &History) -> Result<Self, UnsupportedOp> {
        let mut out = QuantileHistory::default();
        let (quantiles, ranks) = (&mut Vec::new(), &mut Vec::new());
        extract(
            h,
            "quantile sketch",
            |inc| out.obs.push(inc),
            |label, r| {
                if label == QUANTILE_READ {
                    quantiles.push(r)
                } else {
                    ranks.push(r)
                }
            },
            QUANTILE_OBSERVE,
            &[QUANTILE_READ, RANK_READ],
        )?;
        out.quantiles = std::mem::take(quantiles);
        out.ranks = std::mem::take(ranks);
        Ok(out)
    }
}

/// Check every completed top-k read of `h` against the composed
/// envelope by deciding whether *some* set of reported keys is
/// consistent with the `(q, len, c)` digest:
///
/// * keys whose forced count exceeds `w(w+1)·c + w·slack` **must** have
///   been reported (`c` taken as 0 when `len < q`, where the read
///   claims no further nonzero key exists) — at most `len` such keys;
/// * every reported key's count read is at least `c` and at most
///   `k`·its possible count, so at least `len` keys must support `c`;
/// * the key realizing the minimum `c` satisfies `f ≤ (w+1)·c +
///   w·slack`, and when the must-report set is already full it must
///   come from there.
pub fn check_topk(h: &TopKHistory, env: &SketchEnvelope) -> Result<(), Violation> {
    let w = u128::from(env.writers);
    let k = u128::from(env.k);
    let slack = env.total_slack();
    for (i, r) in h.reads.iter().enumerate() {
        let q_req = r.arg as usize;
        let (len, kth) = unpack_topk_ret(r.ret);
        if len > q_req {
            return Err(Violation {
                message: format!("top-k read #{i} reported {len} entries for q = {q_req}"),
            });
        }
        // Per-key (forced, possible) totals over this read's window.
        let mut by_key: std::collections::BTreeMap<u64, (u128, u128)> =
            std::collections::BTreeMap::new();
        for a in &h.adds {
            let e = by_key.entry(a.key).or_default();
            if a.forced_before(r.inv) {
                e.0 += u128::from(a.amount);
            }
            if a.possible_before(r.resp) {
                e.1 += u128::from(a.amount);
            }
        }
        // Completeness: keys too heavy to have gone unreported. With
        // len < q the read claims no further nonzero key exists, so the
        // unreported bound drops to the buffering slack alone.
        let c_complete = if len == q_req { kth } else { 0 };
        let unreported_limit = w * (w + 1) * c_complete + slack;
        let must_report: Vec<u64> = by_key
            .iter()
            .filter(|(_, &(f, _))| f > unreported_limit)
            .map(|(&key, _)| key)
            .collect();
        if must_report.len() > len {
            return Err(Violation {
                message: format!(
                    "top-k read #{i} (window [{}, {}], q = {q_req}) reported {len} \
                     entries with smallest count {kth}, but {} keys have forced \
                     counts above {unreported_limit} — a heavy hitter was missed",
                    r.inv,
                    r.resp,
                    must_report.len()
                ),
            });
        }
        if len == 0 {
            continue;
        }
        // Soundness: len distinct keys must be able to carry a count
        // read of at least kth (a read never exceeds k·possible)…
        let eligible = |key: u64| -> bool {
            let &(_, g) = by_key.get(&key).expect("key came from the map");
            g >= 1 && kth <= k * g
        };
        let eligible_count = by_key.keys().filter(|&&u| eligible(u)).count();
        if eligible_count < len || must_report.iter().any(|&u| !eligible(u)) {
            return Err(Violation {
                message: format!(
                    "top-k read #{i} (window [{}, {}]) reported a smallest count of \
                     {kth}, but only {eligible_count} keys have enough possible \
                     increments to support it (k = {})",
                    r.inv, r.resp, env.k
                ),
            });
        }
        // …and the key realizing the minimum must not itself be too
        // heavy: its count read kth bounds its forced count from above.
        let min_limit = (w + 1) * kth + slack;
        let can_be_min =
            |key: u64| -> bool { by_key.get(&key).expect("key came from the map").0 <= min_limit };
        let witness = if must_report.len() == len {
            must_report.iter().any(|&u| can_be_min(u))
        } else {
            by_key.keys().any(|&u| eligible(u) && can_be_min(u))
        };
        if !witness {
            return Err(Violation {
                message: format!(
                    "top-k read #{i} (window [{}, {}]) reported a smallest count of \
                     {kth}, but every reportable key has a forced count above \
                     {min_limit} — the reported count is too small for any key",
                    r.inv, r.resp
                ),
            });
        }
    }
    Ok(())
}

/// Check every completed quantile/rank read of `h` against the composed
/// rank envelope (see the [module docs](self)). `base` is the sketch's
/// bucket base `b` (the value-side accuracy `k'`).
pub fn check_quantile(
    h: &QuantileHistory,
    env: &SketchEnvelope,
    base: u64,
) -> Result<(), Violation> {
    assert!(base >= 2, "bucket base must be at least 2");
    let k = u128::from(env.k);
    let w = u128::from(env.writers);
    let slack = env.total_slack();
    let b = u128::from(base);

    // Weighted obs totals matching `pred` over a read's window.
    let windowed = |inv: u64, resp: u64, pred: &dyn Fn(u64) -> bool| -> (u128, u128) {
        let mut f = 0u128;
        let mut g = 0u128;
        for o in &h.obs {
            if !pred(o.key) {
                continue;
            }
            if o.forced_before(inv) {
                f += u128::from(o.amount);
            }
            if o.possible_before(resp) {
                g += u128::from(o.amount);
            }
        }
        (f, g)
    };

    for (i, r) in h.quantiles.iter().enumerate() {
        let (num, den) = unpack_ratio(r.arg);
        let (num, den) = (u128::from(num), u128::from(den));
        let (f_tot, g_tot) = windowed(r.inv, r.resp, &|_| true);
        let v = r.ret;
        if v == 0 {
            // An empty-looking sketch: every forced observation must be
            // buffering slack.
            if f_tot > slack {
                return Err(Violation {
                    message: format!(
                        "quantile read #{i} (window [{}, {}]) returned 0 but {f_tot} \
                         observations were forced before it (slack {slack})",
                        r.inv, r.resp
                    ),
                });
            }
            continue;
        }
        // The returned value is a bucket upper edge b^(j+1).
        if !is_power_of(v, b) || v < b {
            return Err(Violation {
                message: format!(
                    "quantile read #{i} returned {v}, which is not a bucket edge \
                     (power of {base})"
                ),
            });
        }
        let (_, g_below_v) = windowed(r.inv, r.resp, &|x| u128::from(x) < v);
        // Not too low: k(w+1)·G(<v)·den ≥ num·(F_tot − w·slack).
        if k * (w + 1) * g_below_v * den < num * f_tot.saturating_sub(slack) {
            return Err(Violation {
                message: format!(
                    "quantile read #{i} (window [{}, {}], rank {num}/{den}) returned \
                     {v}, but only {g_below_v} of {f_tot} forced observations can \
                     lie below it — the returned value is too small",
                    r.inv, r.resp
                ),
            });
        }
        // Not too high: (F(<v/b) − w·slack)·den < (w+1)(num·k·G_tot + den).
        let edge_below = v / b; // b^j, exact by construction
        let (f_strictly_below, _) = windowed(r.inv, r.resp, &|x| u128::from(x) < edge_below);
        if f_strictly_below.saturating_sub(slack) * den >= (w + 1) * (num * k * g_tot + den) {
            return Err(Violation {
                message: format!(
                    "quantile read #{i} (window [{}, {}], rank {num}/{den}) returned \
                     {v}, but {f_strictly_below} forced observations already lie \
                     strictly below its bucket — the returned value is too large",
                    r.inv, r.resp
                ),
            });
        }
    }

    for (i, r) in h.ranks.iter().enumerate() {
        let v = r.arg;
        let ret = r.ret;
        let (_, g_le_v) = windowed(r.inv, r.resp, &|x| u128::from(x) <= v);
        if ret > k * g_le_v {
            return Err(Violation {
                message: format!(
                    "rank read #{i} (window [{}, {}]) returned {ret} for value {v}, \
                     but only {g_le_v} observations ≤ {v} were possible (k = {})",
                    r.inv, r.resp, env.k
                ),
            });
        }
        let (f_le_vb, _) = windowed(r.inv, r.resp, &|x| u128::from(x) <= v / b);
        if (w + 1) * ret + slack < f_le_vb {
            return Err(Violation {
                message: format!(
                    "rank read #{i} (window [{}, {}]) returned {ret} for value {v}, \
                     but {f_le_vb} observations ≤ {} were forced before it",
                    r.inv,
                    r.resp,
                    v / b
                ),
            });
        }
    }
    Ok(())
}

fn is_power_of(v: u128, b: u128) -> bool {
    let mut x = v;
    while x > 1 {
        if !x.is_multiple_of(b) {
            return false;
        }
        x /= b;
    }
    x == 1
}

/// One-call form of [`check_topk`] for `smr::explore` checker closures.
pub fn check_topk_records(h: &History, env: &SketchEnvelope) -> Result<(), String> {
    let th = TopKHistory::from_records(h).map_err(|e| e.to_string())?;
    check_topk(&th, env).map_err(|v| v.to_string())
}

/// One-call form of [`check_quantile`] for `smr::explore` checker
/// closures.
pub fn check_quantile_records(h: &History, env: &SketchEnvelope, base: u64) -> Result<(), String> {
    let qh = QuantileHistory::from_records(h).map_err(|e| e.to_string())?;
    check_quantile(&qh, env, base).map_err(|v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{OpRecord, OpSpec};

    fn rec(
        pid: usize,
        label: &'static str,
        arg: u128,
        ret: u128,
        inv: u64,
        resp: Option<u64>,
    ) -> OpRecord {
        OpRecord {
            pid,
            kind: OpSpec::custom(label, arg).kind(ret),
            inv,
            resp,
            steps: 1,
        }
    }

    fn add(pid: usize, key: u64, amount: u64, inv: u64, resp: Option<u64>) -> OpRecord {
        rec(pid, TOPK_ADD, pack_keyed(key, amount), 0, inv, resp)
    }

    fn topk_read(pid: usize, q: usize, len: usize, kth: u128, inv: u64, resp: u64) -> OpRecord {
        rec(
            pid,
            TOPK_READ,
            q as u128,
            pack_topk_ret(len, kth),
            inv,
            Some(resp),
        )
    }

    #[test]
    fn packing_round_trips() {
        assert_eq!(unpack_keyed(pack_keyed(7, 300)), (7, 300));
        assert_eq!(
            unpack_keyed(pack_keyed(u64::MAX, u64::MAX)),
            (u64::MAX, u64::MAX)
        );
        assert_eq!(unpack_topk_ret(pack_topk_ret(3, 99)), (3, 99));
        assert_eq!(unpack_ratio(pack_ratio(95, 100)), (95, 100));
    }

    #[test]
    #[should_panic(expected = "0 < num ≤ den")]
    fn zero_ratio_rejected() {
        let _ = pack_ratio(0, 100);
    }

    #[test]
    fn topk_accepts_a_faithful_read() {
        let mut h = History::new();
        h.push(add(0, 1, 10, 0, Some(1)));
        h.push(add(1, 2, 3, 2, Some(3)));
        // Reports both keys; smallest reported approx count 3 (exact).
        h.push(topk_read(2, 2, 2, 3, 4, 5));
        let env = SketchEnvelope::new(2, 1);
        assert!(check_topk_records(&h, &env).is_ok());
    }

    #[test]
    fn topk_catches_a_missed_heavy_hitter() {
        let mut h = History::new();
        // Key 1 has 100 forced units; the read reports one entry with a
        // tiny count — key 1 (or an equally heavy key) was missed.
        h.push(add(0, 1, 100, 0, Some(1)));
        h.push(add(1, 2, 1, 2, Some(3)));
        h.push(topk_read(2, 1, 1, 1, 4, 5));
        let env = SketchEnvelope::new(2, 1);
        let err = check_topk_records(&h, &env).expect_err("key 2's count cannot beat key 1");
        // Key 1 is too heavy to go unreported, yet a count of 1 is too
        // small to be key 1's — either way the read lied.
        assert!(err.contains("too small for any key"), "diagnosis: {err}");
    }

    #[test]
    fn topk_catches_an_inflated_kth_count() {
        let mut h = History::new();
        h.push(add(0, 1, 2, 0, Some(1)));
        // Claims 2 reported entries with smallest count 50: no second key
        // has anywhere near 50/k possible increments.
        h.push(topk_read(2, 2, 2, 50, 2, 3));
        let env = SketchEnvelope::new(2, 1);
        let err = check_topk_records(&h, &env).expect_err("second key has no support");
        assert!(err.contains("possible"), "diagnosis: {err}");
    }

    #[test]
    fn topk_short_report_requires_emptiness() {
        let mut h = History::new();
        h.push(add(0, 1, 5, 0, Some(1)));
        h.push(add(0, 2, 5, 2, Some(3)));
        // q = 3 but only 1 entry reported: claims only one nonzero key.
        h.push(topk_read(1, 3, 1, 5, 4, 5));
        let env = SketchEnvelope::new(2, 1);
        assert!(check_topk_records(&h, &env).is_err(), "key 2 was dropped");
    }

    #[test]
    fn topk_pending_adds_are_optional() {
        let mut h = History::new();
        h.push(add(0, 1, 100, 0, None)); // pending: may or may not count
        h.push(topk_read(1, 1, 0, 0, 1, 2));
        let env = SketchEnvelope::new(2, 1);
        assert!(check_topk_records(&h, &env).is_ok());
    }

    #[test]
    fn topk_buffer_slack_excuses_small_misses() {
        let mut h = History::new();
        h.push(add(0, 1, 3, 0, Some(1)));
        h.push(topk_read(1, 1, 0, 0, 2, 3));
        let strict = SketchEnvelope::new(2, 1);
        assert!(
            check_topk_records(&h, &strict).is_err(),
            "without slack, 3 forced units cannot vanish"
        );
        let slack = SketchEnvelope::new(2, 1).with_buffer_slack(3);
        assert!(check_topk_records(&h, &slack).is_ok());
    }

    #[test]
    fn topk_rejects_foreign_ops() {
        let mut h = History::new();
        h.push(OpRecord {
            pid: 0,
            kind: OpSpec::inc().kind(0),
            inv: 0,
            resp: Some(1),
            steps: 1,
        });
        let env = SketchEnvelope::new(2, 1);
        let err = check_topk_records(&h, &env).expect_err("inc is foreign here");
        assert!(err.contains("top-k"), "diagnosis: {err}");
    }

    fn obs(pid: usize, value: u64, amount: u64, inv: u64, resp: Option<u64>) -> OpRecord {
        rec(
            pid,
            QUANTILE_OBSERVE,
            pack_keyed(value, amount),
            0,
            inv,
            resp,
        )
    }

    fn quant(pid: usize, num: u32, den: u32, ret: u128, inv: u64, resp: u64) -> OpRecord {
        rec(
            pid,
            QUANTILE_READ,
            pack_ratio(num, den),
            ret,
            inv,
            Some(resp),
        )
    }

    fn rank(pid: usize, v: u64, ret: u128, inv: u64, resp: u64) -> OpRecord {
        rec(pid, RANK_READ, u128::from(v), ret, inv, Some(resp))
    }

    #[test]
    fn quantile_accepts_a_faithful_read() {
        let mut h = History::new();
        // 10 observations of value 3 (bucket [2,4) at base 2), 1 of 100.
        h.push(obs(0, 3, 10, 0, Some(1)));
        h.push(obs(1, 100, 1, 2, Some(3)));
        // Median: bucket [2,4) holds rank 6 of 11 → edge 4.
        h.push(quant(2, 1, 2, 4, 4, 5));
        let env = SketchEnvelope::new(2, 1);
        assert!(check_quantile_records(&h, &env, 2).is_ok());
    }

    #[test]
    fn quantile_catches_too_small_a_value() {
        let mut h = History::new();
        h.push(obs(0, 1000, 100, 0, Some(1)));
        // p99 of 100 observations of 1000, yet the sketch answered 2:
        // nothing can lie below 2.
        h.push(quant(1, 99, 100, 2, 2, 3));
        let env = SketchEnvelope::new(2, 1);
        let err = check_quantile_records(&h, &env, 2).expect_err("mass is all at 1000");
        assert!(err.contains("too small"), "diagnosis: {err}");
    }

    #[test]
    fn quantile_catches_too_large_a_value() {
        let mut h = History::new();
        h.push(obs(0, 1, 1000, 0, Some(1)));
        // p1 of 1000 observations of value 1, yet the sketch answered
        // 4096: the mass strictly below bucket [2048, 4096) is overwhelming.
        h.push(quant(1, 1, 100, 4096, 2, 3));
        let env = SketchEnvelope::new(2, 1);
        let err = check_quantile_records(&h, &env, 2).expect_err("mass is all at 1");
        assert!(err.contains("too large"), "diagnosis: {err}");
    }

    #[test]
    fn quantile_zero_requires_empty() {
        let mut h = History::new();
        h.push(obs(0, 5, 4, 0, Some(1)));
        h.push(quant(1, 1, 2, 0, 2, 3));
        let env = SketchEnvelope::new(2, 1);
        assert!(check_quantile_records(&h, &env, 2).is_err());
        let slack = SketchEnvelope::new(2, 1).with_buffer_slack(4);
        assert!(check_quantile_records(&h, &slack, 2).is_ok());
    }

    #[test]
    fn quantile_rejects_non_edge_values() {
        let mut h = History::new();
        h.push(obs(0, 5, 4, 0, Some(1)));
        h.push(quant(1, 1, 2, 6, 2, 3)); // 6 is not a power of 2
        let env = SketchEnvelope::new(2, 1);
        let err = check_quantile_records(&h, &env, 2).expect_err("6 is not an edge");
        assert!(err.contains("bucket edge"), "diagnosis: {err}");
    }

    #[test]
    fn rank_envelope_two_sided() {
        let mut h = History::new();
        h.push(obs(0, 3, 10, 0, Some(1)));
        h.push(obs(0, 100, 5, 2, Some(3)));
        let env = SketchEnvelope::new(2, 1);
        // rank(7): the 10 obs of 3 are ≤ 7; honest answer ~10.
        let mut ok = h.clone();
        ok.push(rank(1, 7, 10, 4, 5));
        assert!(check_quantile_records(&ok, &env, 2).is_ok());
        // Overcount: 40 > k·G(≤7) = 2·10.
        let mut over = h.clone();
        over.push(rank(1, 7, 40, 4, 5));
        assert!(check_quantile_records(&over, &env, 2).is_err());
        // Undercount: rank(100) must cover the obs ≤ 100/2 = 50, i.e.
        // the 10 units at value 3: (w+1)·1 = 2 < 10.
        let mut under = h;
        under.push(rank(1, 100, 1, 4, 5));
        assert!(check_quantile_records(&under, &env, 2).is_err());
    }

    #[test]
    fn flush_records_are_ignored() {
        let mut h = History::new();
        h.push(add(0, 1, 2, 0, Some(1)));
        h.push(rec(0, FLUSH, 0, 0, 2, Some(3)));
        h.push(topk_read(1, 1, 1, 2, 4, 5));
        let env = SketchEnvelope::new(2, 1);
        assert!(check_topk_records(&h, &env).is_ok());
        let mut q = History::new();
        q.push(obs(0, 4, 1, 0, Some(1)));
        q.push(rec(0, FLUSH, 0, 0, 2, Some(3)));
        assert!(check_quantile_records(&q, &env, 2).is_ok());
    }
}
