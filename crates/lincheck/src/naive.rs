//! Reference checkers: direct transcriptions of the decision procedures
//! in [`monotone`](crate::monotone), without the sweep machinery.
//!
//! * [`check_counter_with`] is the previous engine generation: the
//!   per-read window bounds plus an explicit **pairwise** loop over all
//!   preceding reads for constraint 3 — `O(R² log I)` for `R` reads and
//!   `I` increment records.
//! * [`check_maxreg`] evaluates the max-register greedy with plain
//!   quadratic scans instead of the event sweep — `O(R·W + W²)`.
//!
//! Both decide the same predicates as their [`monotone`] counterparts;
//! their sole purpose is cross-validation (`tests/cross_validation.rs`
//! compares the engines on thousands of randomized histories, and
//! `exp_checker` measures the asymptotic gap). Do not use them on large
//! histories.
//!
//! [`monotone`]: crate::monotone

use crate::history::{CounterHistory, MaxRegHistory, Violation};
use crate::monotone::{prefix_sums, weighted_leq, weighted_lt};

/// Pairwise-reference check of a counter history against the
/// k-multiplicative spec (`k = 1` for the exact counter).
pub fn check_counter(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);
    check_counter_with(h, |x| (x.div_ceil(kk), x.saturating_mul(kk)))
}

/// Pairwise-reference check against the **k-additive** spec.
pub fn check_counter_additive(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    let kk = u128::from(k);
    check_counter_with(h, move |x| (x.saturating_sub(kk), x.saturating_add(kk)))
}

/// Pairwise-reference check against an arbitrary relaxed read
/// specification — the retired `O(R² log I)` hot loop, kept verbatim as
/// the cross-validation oracle for the sweep engine.
pub fn check_counter_with<W>(h: &CounterHistory, window: W) -> Result<(), Violation>
where
    W: Fn(u128) -> (u128, u128),
{
    // Completed increments, by response; all increments, by invocation
    // (both weighted by multiplicity).
    let mut by_resp: Vec<(u64, u64)> = h
        .incs
        .iter()
        .filter_map(|i| i.window.resp.map(|r| (r, i.amount)))
        .collect();
    by_resp.sort_unstable();
    let resp_prefix = prefix_sums(&by_resp);
    let mut by_inv: Vec<(u64, u64)> = h.incs.iter().map(|i| (i.window.inv, i.amount)).collect();
    by_inv.sort_unstable();
    let inv_prefix = prefix_sums(&by_inv);

    // Completed increments as (resp, inv, amount), sorted by resp —
    // streamed into the Fenwick tree (indexed by inv rank) as the loop
    // passes their response times.
    let mut completed: Vec<(u64, u64, u64)> = h
        .incs
        .iter()
        .filter_map(|i| i.window.resp.map(|r| (r, i.window.inv, i.amount)))
        .collect();
    completed.sort_unstable();
    let inv_rank = |t: u64| -> usize { by_inv.partition_point(|&(x, _)| x <= t) };

    let mut reads: Vec<(usize, &crate::history::TimedRead)> = h.reads.iter().enumerate().collect();
    reads.sort_by_key(|(_, r)| r.inv);

    let mut fen = Fenwick::new(by_inv.len());
    let mut stream = 0usize;
    // Assigned counts, in `reads` (inv-sorted) order.
    let mut assigned: Vec<u128> = Vec::with_capacity(reads.len());

    for (pos, (idx, r)) in reads.iter().enumerate() {
        assert!(r.inv < r.resp, "read window must satisfy inv < resp");
        // Stream increments with resp < r.inv into the Fenwick tree.
        while stream < completed.len() && completed[stream].0 < r.inv {
            fen.add(inv_rank(completed[stream].1) - 1, completed[stream].2);
            stream += 1;
        }
        let a = weighted_lt(&by_resp, &resp_prefix, r.inv);
        let b = weighted_leq(&by_inv, &inv_prefix, r.resp);
        let (spec_lo, spec_hi) = window(r.value);
        let mut lo = spec_lo.max(a);
        let hi = spec_hi.min(b);

        // Pairwise constraints from every read that precedes r.
        for (ppos, (_, p)) in reads.iter().enumerate().take(pos) {
            if p.resp < r.inv {
                // D = completed increments with inv > p.resp and resp < r.inv.
                // The tree currently holds exactly those with resp < r.inv.
                let d = fen.count_suffix(inv_rank(p.resp));
                lo = lo.max(assigned[ppos] + d);
            }
        }

        if lo > hi {
            return Err(Violation {
                message: format!(
                    "read #{idx} (window [{}, {}]) returned {} but the exact \
                     count is confined to an empty window: need ≥ {lo}, ≤ {hi} \
                     (forced-before A = {a}, possible-before B = {b})",
                    r.inv, r.resp, r.value
                ),
            });
        }
        assigned.push(lo);
    }
    Ok(())
}

/// Quadratic-reference check of a max-register history against the
/// k-multiplicative spec: the same greedy minimal-maximum recurrence as
/// [`monotone::check_maxreg`](crate::monotone::check_maxreg), with every
/// quantity recomputed by a plain scan.
pub fn check_maxreg(h: &MaxRegHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);

    // Reads in response order; minimal[j] = the minimal achievable
    // maximum at read j's linearization point.
    let mut reads: Vec<(usize, &crate::history::TimedRead)> = h.reads.iter().enumerate().collect();
    reads.sort_by_key(|(_, r)| r.resp);
    let mut minimal: Vec<u128> = Vec::with_capacity(reads.len());

    // Largest completed write with resp strictly before t.
    let max_write_before = |t: u64| -> u128 {
        h.writes
            .iter()
            .filter(|w| matches!(w.window.resp, Some(wr) if wr < t))
            .map(|w| u128::from(w.value))
            .max()
            .unwrap_or(0)
    };

    for (pos, (idx, r)) in reads.iter().enumerate() {
        assert!(r.inv < r.resp, "read window must satisfy inv < resp");
        let spec_lo = r.value.div_ceil(kk).min(r.value);
        let spec_hi = r.value.saturating_mul(kk);
        // Reads finalized so far are exactly those with smaller resp, so
        // scanning the `minimal` prefix covers every read that could
        // precede r (or a witness) in real time.
        let max_read_before = |cut: usize, t: u64| -> u128 {
            reads[..cut]
                .iter()
                .zip(&minimal)
                .filter(|((_, p), _)| p.resp < t)
                .map(|(_, &m)| m)
                .max()
                .unwrap_or(0)
        };
        let base = max_write_before(r.inv).max(max_read_before(pos, r.inv));
        let m = if base >= spec_lo {
            (base <= spec_hi).then_some(base)
        } else {
            // Smallest admissible effective value among witness writes
            // invoked at or before r.resp.
            h.writes
                .iter()
                .filter(|w| w.window.inv <= r.resp)
                .map(|w| {
                    u128::from(w.value)
                        .max(max_write_before(w.window.inv))
                        .max(max_read_before(pos, w.window.inv))
                })
                .filter(|&ev| ev >= spec_lo && ev <= spec_hi)
                .min()
        };
        match m {
            Some(m) => minimal.push(m),
            None => {
                return Err(Violation {
                    message: format!(
                        "read #{idx} (window [{}, {}]) returned {} but no \
                         admissible maximum exists: forced maximum {base}, \
                         admissible value window [{spec_lo}, {spec_hi}], and \
                         no witness write invoked by {} has an effective \
                         value in that window (k = {k})",
                        r.inv, r.resp, r.value, r.resp
                    ),
                })
            }
        }
    }
    Ok(())
}

/// A Fenwick (binary indexed) tree over `len` slots, counting weighted
/// points.
struct Fenwick {
    tree: Vec<u128>,
    total: u128,
}

impl Fenwick {
    fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
            total: 0,
        }
    }

    fn add(&mut self, i: usize, delta: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += u128::from(delta);
            i += i & i.wrapping_neg();
        }
        self.total += u128::from(delta);
    }

    /// Sum of slots `0..=i-1` (prefix of length `i`).
    fn prefix(&self, i: usize) -> u128 {
        let mut i = i.min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Weight in slots `from..` (suffix).
    fn count_suffix(&self, from: usize) -> u128 {
        self.total - self.prefix(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Interval, TimedInc, TimedRead, TimedWrite};

    fn inc(inv: u64, resp: u64) -> TimedInc {
        TimedInc::unit(Interval::done(inv, resp))
    }

    fn read(inv: u64, resp: u64, value: u128) -> TimedRead {
        TimedRead { inv, resp, value }
    }

    fn write(inv: u64, resp: u64, value: u64) -> TimedWrite {
        TimedWrite {
            window: Interval::done(inv, resp),
            value,
        }
    }

    #[test]
    fn fenwick_counts() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 1);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 1);
        assert_eq!(f.prefix(4), 3);
        assert_eq!(f.prefix(8), 4);
        assert_eq!(f.count_suffix(4), 1);
        assert_eq!(f.count_suffix(0), 4);
    }

    #[test]
    fn reference_counter_decides_the_textbook_cases() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4)],
            reads: vec![read(1, 2, 1), read(5, 6, 1)],
        };
        assert!(check_counter(&h, 1).is_err(), "forced accumulation");
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::done(0, 1), 5)],
            reads: vec![read(2, 3, 5)],
        };
        assert!(check_counter(&h, 1).is_ok(), "multiplicity-aware");
        assert!(check_counter_additive(&h, 4).is_ok());
    }

    #[test]
    fn reference_maxreg_decides_the_textbook_cases() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5), write(2, 3, 3)],
            reads: vec![read(4, 5, 5)],
        };
        assert!(check_maxreg(&h, 1).is_ok());
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 3)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "3 was never the maximum");
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 8), write(2, 3, 2)],
            reads: vec![read(4, 5, 8), read(6, 7, 2)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "maximum cannot shrink");
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 8)],
        };
        assert!(check_maxreg(&h, 2).is_ok(), "k = 2 admits 8 for v = 5");
    }
}
