//! [`LinearizabilityPass`]: the [`OnlineChecker`] packaged as an
//! [`smr::analysis::AnalysisPass`], so any driver run — and every
//! `smr::explore` replay — checks linearizability inline, with
//! findings surfaced (and ddmin-minimized by the explorer) like every
//! other pass finding.
//!
//! # Event-order robustness
//!
//! The checker consumes operations in timestamp order. On the coop
//! backend the trace stream already *is* timestamp-ordered (one
//! controller thread emits every event), but on the thread backend a
//! worker can draw its ticket and lose the CPU before emitting, so
//! nearby events may appear slightly out of order in the stream. The
//! pass therefore runs every event through a small bounded reorder
//! buffer (a min-heap on `(timestamp, phase, seq)`), only releasing
//! an event to the checker once [`WINDOW`] newer events are buffered
//! behind it. If the stream raced further than that — a released
//! event still lands behind the checker's watermark, or a completion
//! arrives whose announcement was lost beyond the window — the pass
//! goes *inert* for the rest of the run instead of risking a false
//! report: linearizability checking on the thread backend is
//! best-effort by nature, and a silent skip is strictly better than a
//! spurious violation. On gated coop runs the buffer is invisible and
//! the check is exact.
//!
//! `Custom` operations are outside both checkable vocabularies and
//! are skipped silently; a `Write` in counter mode (or an `Inc` in
//! max-register mode) is a real finding — the run is exercising an
//! object the checker was not configured for.

use crate::online::{CounterSpec, OnlineChecker};
use smr::analysis::{AnalysisPass, RunMeta, Violation};
use smr::{OpKind, OpRecord, TraceEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How many newer events must pile up behind a buffered event before
/// it is released to the checker. Large enough to cover the thread
/// backend's ticket-draw-to-emit race window many times over; small
/// enough that the buffer's memory footprint is negligible.
const WINDOW: usize = 256;

/// One buffered trace event, ordered by `(ts, phase, seq)`. Phase 0 =
/// announcement, 1 = completion, 2 = crash (keyed at the largest
/// timestamp seen, so it drains after everything it could have
/// interrupted).
struct Buffered {
    ts: u64,
    phase: u8,
    seq: u64,
    pid: usize,
    kind: Option<OpKind>,
}

impl Buffered {
    fn key(&self) -> (u64, u8, u64) {
        (self.ts, self.phase, self.seq)
    }
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Buffered {}
impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Buffered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

enum Mode {
    Counter(CounterSpec),
    MaxReg(u64),
}

impl Mode {
    fn build(&self) -> OnlineChecker {
        match *self {
            Mode::Counter(spec) => OnlineChecker::counter_with(spec),
            Mode::MaxReg(k) => OnlineChecker::maxreg(k),
        }
    }
}

/// Streaming linearizability checking as an analysis pass. See the
/// [module docs](self).
pub struct LinearizabilityPass {
    mode: Mode,
    checker: OnlineChecker,
    heap: BinaryHeap<Reverse<Buffered>>,
    /// `(ts, phase)` of the last event released to the checker.
    released: (u64, u8),
    /// Largest timestamp seen on any buffered event (crash key).
    max_ts: u64,
    /// First finding, sticky.
    found: Option<Violation>,
    /// The stream outran the reorder window: stay silent forever.
    inert: bool,
    /// Checkable events accepted before the pass went inert (or so
    /// far, if it never did) — what "after N events" in
    /// [`summary`](AnalysisPass::summary) reports.
    events_seen: u64,
    /// Counts inert *transitions* (at most one per attach), so a batch
    /// of explorer replays shows how many silently dropped coverage.
    inert_transitions: &'static obs::Counter,
    /// Reorder-buffer depth sampled at every buffered event: p99 near
    /// [`WINDOW`] means the stream is racing the buffer and inertness
    /// is close.
    occupancy: &'static obs::Histogram,
}

impl LinearizabilityPass {
    /// Check the run against the `k`-multiplicative counter spec.
    pub fn counter(k: u64) -> Self {
        Self::with_mode(Mode::Counter(CounterSpec::Multiplicative(k)))
    }

    /// Check the run against the `k`-additive counter spec.
    pub fn counter_additive(k: u64) -> Self {
        Self::with_mode(Mode::Counter(CounterSpec::Additive(k)))
    }

    /// Check the run against an arbitrary [`CounterSpec`].
    pub fn counter_with(spec: CounterSpec) -> Self {
        Self::with_mode(Mode::Counter(spec))
    }

    /// Check the run against the `k`-multiplicative max-register spec.
    pub fn maxreg(k: u64) -> Self {
        Self::with_mode(Mode::MaxReg(k))
    }

    fn with_mode(mode: Mode) -> Self {
        let checker = mode.build();
        LinearizabilityPass {
            mode,
            checker,
            heap: BinaryHeap::with_capacity(WINDOW + 1),
            released: (0, 0),
            max_ts: 0,
            found: None,
            inert: false,
            events_seen: 0,
            inert_transitions: obs::counter(obs::names::SUB_LINCHECK, obs::names::LINCHECK_INERT),
            occupancy: obs::histogram(
                obs::names::SUB_LINCHECK,
                obs::names::LINCHECK_REORDER_OCCUPANCY,
                2,
                1,
            ),
        }
    }

    fn active(&self) -> bool {
        !self.inert && self.found.is_none()
    }

    /// Transition to the inert state (idempotent per attach). Counted
    /// so the degradation is visible in a metrics snapshot even though
    /// it produces no violation.
    fn go_inert(&mut self) {
        if !self.inert {
            self.inert = true;
            self.inert_transitions.inc();
        }
    }

    /// Pop the oldest buffered event and apply it to the checker.
    fn release_one(&mut self) {
        let Some(Reverse(b)) = self.heap.pop() else {
            return;
        };
        if !self.active() {
            return;
        }
        if b.phase == 2 {
            self.checker.crash(b.pid);
            return;
        }
        let key = (b.ts, b.phase);
        if key < self.released {
            // An event older than something already released surfaced:
            // the stream raced beyond the reorder window.
            self.go_inert();
            return;
        }
        let kind = b.kind.expect("announce/complete events carry a kind");
        let rec = if b.phase == 0 {
            OpRecord {
                pid: b.pid,
                kind,
                inv: b.ts,
                resp: None,
                steps: 0,
            }
        } else {
            if !self.checker.has_open(b.pid) {
                // The matching announcement was lost beyond the window
                // (or the pass attached mid-run): go inert rather than
                // let the checker misread this as a fresh operation.
                self.go_inert();
                return;
            }
            OpRecord {
                pid: b.pid,
                kind,
                // Unused: the checker takes the invocation from the
                // open announcement it just matched.
                inv: 0,
                resp: Some(b.ts),
                steps: 0,
            }
        };
        if let Err(v) = self.checker.push(&rec) {
            self.found = Some(Violation {
                pass: "linearizability",
                pid: Some(b.pid),
                seq: Some(b.seq),
                message: v.message,
            });
        }
        self.released = key;
    }
}

impl AnalysisPass for LinearizabilityPass {
    fn name(&self) -> &'static str {
        "linearizability"
    }

    fn on_attach(&mut self, _meta: &RunMeta) {
        self.checker = self.mode.build();
        self.heap.clear();
        self.released = (0, 0);
        self.max_ts = 0;
        self.found = None;
        self.inert = false;
        self.events_seen = 0;
    }

    fn on_event(&mut self, ev: &TraceEvent) {
        if !self.active() {
            return;
        }
        match *ev {
            TraceEvent::Invoke {
                seq,
                pid,
                kind,
                inv,
            } => {
                self.max_ts = self.max_ts.max(inv);
                if matches!(kind, OpKind::Custom { .. }) {
                    return; // outside both vocabularies: skipped silently
                }
                self.heap.push(Reverse(Buffered {
                    ts: inv,
                    phase: 0,
                    seq,
                    pid,
                    kind: Some(kind),
                }));
            }
            TraceEvent::Complete {
                seq,
                pid,
                kind,
                resp,
            } => {
                self.max_ts = self.max_ts.max(resp);
                if matches!(kind, OpKind::Custom { .. }) {
                    return;
                }
                self.heap.push(Reverse(Buffered {
                    ts: resp,
                    phase: 1,
                    seq,
                    pid,
                    kind: Some(kind),
                }));
            }
            TraceEvent::Crash { seq, pid } => {
                self.heap.push(Reverse(Buffered {
                    ts: self.max_ts,
                    phase: 2,
                    seq,
                    pid,
                    kind: None,
                }));
            }
            TraceEvent::Access(_) | TraceEvent::Grant { .. } => return,
        }
        self.events_seen += 1;
        self.occupancy.record(self.heap.len() as u64);
        while self.heap.len() > WINDOW {
            self.release_one();
        }
    }

    fn finish(&mut self) -> Vec<Violation> {
        while !self.heap.is_empty() {
            self.release_one();
        }
        self.found.clone().into_iter().collect()
    }

    fn summary(&self) -> Option<String> {
        if self.inert {
            Some(format!(
                "pass went inert after {} events: the stream outran the \
                 reorder window; later operations were not checked",
                self.events_seen
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invoke(seq: u64, pid: usize, kind: OpKind, inv: u64) -> TraceEvent {
        TraceEvent::Invoke {
            seq,
            pid,
            kind,
            inv,
        }
    }

    fn complete(seq: u64, pid: usize, kind: OpKind, resp: u64) -> TraceEvent {
        TraceEvent::Complete {
            seq,
            pid,
            kind,
            resp,
        }
    }

    #[test]
    fn clean_counter_stream_has_no_findings() {
        let mut p = LinearizabilityPass::counter(1);
        p.on_event(&invoke(0, 0, OpKind::Inc { amount: 1 }, 0));
        p.on_event(&complete(1, 0, OpKind::Inc { amount: 1 }, 1));
        p.on_event(&invoke(2, 1, OpKind::Read { returned: 0 }, 2));
        p.on_event(&complete(3, 1, OpKind::Read { returned: 1 }, 3));
        assert!(p.finish().is_empty());
    }

    #[test]
    fn stale_read_is_reported() {
        let mut p = LinearizabilityPass::counter(1);
        p.on_event(&invoke(0, 0, OpKind::Inc { amount: 1 }, 0));
        p.on_event(&complete(1, 0, OpKind::Inc { amount: 1 }, 1));
        p.on_event(&invoke(2, 1, OpKind::Read { returned: 0 }, 2));
        p.on_event(&complete(3, 1, OpKind::Read { returned: 0 }, 3));
        let found = p.finish();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].pass, "linearizability");
        assert_eq!(found[0].pid, Some(1));
        assert!(found[0].message.contains("empty window"));
    }

    #[test]
    fn small_reorders_inside_the_window_are_absorbed() {
        let mut p = LinearizabilityPass::counter(1);
        // Invoke/complete pairs delivered slightly shuffled, as a
        // thread-backend stream might: the heap restores ticket order.
        p.on_event(&complete(0, 0, OpKind::Inc { amount: 1 }, 1));
        p.on_event(&invoke(1, 0, OpKind::Inc { amount: 1 }, 0));
        p.on_event(&complete(2, 1, OpKind::Read { returned: 1 }, 3));
        p.on_event(&invoke(3, 1, OpKind::Read { returned: 0 }, 2));
        assert!(p.finish().is_empty());
    }

    #[test]
    fn custom_ops_are_skipped_but_writes_are_vocabulary_findings() {
        let mut p = LinearizabilityPass::counter(1);
        let custom = OpKind::Custom {
            label: "cas",
            arg: 0,
            ret: 0,
        };
        p.on_event(&invoke(0, 0, custom, 0));
        p.on_event(&complete(1, 0, custom, 1));
        assert!(p.finish().is_empty());

        let mut p = LinearizabilityPass::counter(1);
        p.on_event(&invoke(0, 0, OpKind::Write { value: 7 }, 0));
        let found = p.finish();
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("vocabulary"));
    }

    #[test]
    fn crash_closes_the_open_operation() {
        let mut p = LinearizabilityPass::counter(1);
        p.on_event(&invoke(0, 0, OpKind::Inc { amount: 1 }, 0));
        p.on_event(&TraceEvent::Crash { seq: 1, pid: 0 });
        // The crashed increment may or may not have taken effect.
        p.on_event(&invoke(2, 1, OpKind::Read { returned: 0 }, 1));
        p.on_event(&complete(3, 1, OpKind::Read { returned: 1 }, 2));
        assert!(p.finish().is_empty());
    }

    #[test]
    fn unmatched_completion_degrades_silently() {
        obs::set_enabled(true);
        let mut p = LinearizabilityPass::counter(1);
        let inert_before = p.inert_transitions.get();
        p.on_event(&complete(0, 0, OpKind::Read { returned: 5 }, 3));
        assert!(p.summary().is_none(), "still buffered: not yet inert");
        assert!(p.finish().is_empty(), "inert, not a false positive");
        // The degradation is silent in the verdict, but not invisible:
        // the transition is counted and the summary names it.
        assert_eq!(p.inert_transitions.get(), inert_before + 1);
        let s = p.summary().expect("inert pass reports a summary");
        assert!(s.contains("inert after 1 events"), "got: {s}");
        // A fresh attach clears the degraded state.
        p.on_attach(&RunMeta {
            n: 1,
            gated: true,
            coop: true,
        });
        assert!(p.summary().is_none());
    }
}
