//! Polynomial-time linearizability checking for monotone objects with
//! (possibly) relaxed reads.
//!
//! ## Counter
//!
//! A history of (weighted) increments and reads returning `x_r` is
//! linearizable w.r.t. the k-multiplicative counter spec iff each read
//! `r` can be assigned an exact count `v_r` such that
//!
//! 1. `⌈x_r/k⌉ ≤ v_r ≤ x_r·k` (spec admissibility);
//! 2. `A_r ≤ v_r ≤ B_r`, where `A_r` sums increments *completed
//!    strictly before* `r` was invoked (they are forced before `r`) and
//!    `B_r` sums increments invoked at or before `r`'s response (only
//!    these can precede `r` — `i` may precede `r` iff `r` does not
//!    strictly precede `i`, i.e. `i.inv ≤ r.resp`);
//! 3. for every pair of reads with `r.resp < s.inv`:
//!    `v_s ≥ v_r + D(r, s)`, where `D(r, s)` sums increments whose whole
//!    window lies between `r`'s response and `s`'s invocation — everything
//!    `r` counted precedes `s` too, and the `D` increments are forced in
//!    between.
//!
//! An increment record of multiplicity `m` counts as `m` everywhere — it
//! is exactly `m` unit increments sharing one window (a pending batch
//! may have landed any prefix of them).
//!
//! Necessity of 1–3 is immediate; sufficiency is the standard
//! interval-order construction (place reads in `v_r`-order refined by
//! real time, then slot increments). The greedy longest-path assignment
//! `v_r = max(lo_r, max_{r'≺r}(v_{r'} + D(r', r)))` is minimal, so it
//! succeeds iff some assignment does.
//!
//! ### The sweep
//!
//! Constraint 3 is the hot loop. Evaluating it pairwise is `O(R²)`
//! ([`naive`](crate::naive) keeps that transcription as the
//! cross-validation reference); this engine instead sweeps all events in
//! timestamp order and maintains, in a monotone stack, the running
//! quantity
//!
//! ```text
//! M(t) = max over reads p with p.resp < t of  ( v_p + D(p, t) )
//! ```
//!
//! so a read invoked at `t` needs just `v_r ≥ max(lo_r, M(t))`. Three
//! event types drive the sweep: a read *query* at `r.inv` (assign
//! `v_r`), a read *insert* at `r.resp` (add the term `v_r`, with
//! `D(r, t) = 0` at that instant), and an increment *arrival* at
//! `i.resp` (add its amount to the term of every read with
//! `p.resp < i.inv` — exactly the reads whose `D` the increment enters).
//! Terms only grow, prefixes (in `resp` order) grow fastest, so the set
//! of reads that can ever realize the maximum is a stack of strictly
//! increasing terms; each read enters and leaves it at most once.
//!
//! **Complexity: `O(R log R + I log I)`** for `R` reads and `I`
//! increment records — each event costs one `O(log)` ordered-map
//! operation plus amortized-constant stack pops, and the only other
//! work is sorting. (The previous pairwise engine was `O(R² log I)`.)
//! Cross-validated against [`naive`](crate::naive) and the exhaustive
//! [`wg`](crate::wg) checker on randomized histories (see `tests/`).
//!
//! ## Max register
//!
//! Analogous, with max instead of sum. Each read `r` gets a minimal
//! achievable maximum `m_r` with: `m_r ≥ base(r) = max(M_A(r), m_{r'}
//! for reads r' that precede r)` where `M_A(r)` is the largest write
//! completed before `r.inv`; `m_r` admissible for `x_r`. If `base(r)` is
//! not already admissible, a *witness* write `w` with `w.inv ≤ r.resp`
//! must be linearized before `r` — but placing `w` drags along everything
//! forced before `w` in real time: earlier-completed **writes** (their
//! values) and earlier-completed **reads** (whose own minimal maxima were
//! forced by *their* witnesses). So the witness's **effective value** is
//!
//! ```text
//! ev(w) = max(w.value,
//!             max{w'.value : w'.resp < w.inv},
//!             max{m_{r'}   : r'.resp < w.inv})
//! ```
//!
//! and the greedy picks the smallest admissible `ev(w)`. All quantities
//! depend only on strictly earlier timestamps, so a single event-ordered
//! sweep (write invocations before read responses at equal times)
//! computes everything: `O((R + W) log (R + W))` for `R` reads and `W`
//! writes.

use crate::history::{CounterHistory, MaxRegHistory, Violation};

/// Check a counter history against the k-multiplicative-accurate counter
/// specification (`k = 1` for the exact counter).
pub fn check_counter(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);
    check_counter_with(h, |x| (x.div_ceil(kk), x.saturating_mul(kk)))
}

/// Check a counter history against the **k-additive**-accurate counter
/// specification: a read may return `x` with `|v − x| ≤ k`.
pub fn check_counter_additive(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    let kk = u128::from(k);
    check_counter_with(h, move |x| (x.saturating_sub(kk), x.saturating_add(kk)))
}

/// The sweep's three event types. Tie-breaking at equal timestamps:
/// queries first (a read's constraints come from *strictly* earlier
/// responses), then inserts and increment arrivals (their relative order
/// is immaterial — an increment's `inv` is strictly below its `resp`, so
/// it never targets a read inserted at the same instant).
#[derive(Clone, Copy)]
enum Event {
    /// Assign `v_r` for read `j` (at `r.inv`).
    Query(usize),
    /// Add read `j`'s term to the stack (at `r.resp`).
    Insert(usize),
    /// Completed increment `i` arrives (at `i.resp`).
    IncArrival(usize),
}

/// Check a counter history against an arbitrary relaxed read
/// specification: `window(x)` maps a returned value to the inclusive
/// interval of exact counts that may have produced it.
///
/// Complexity `O(R log R + I log I)` — see the [module docs](self).
///
/// # Panics
/// If a hand-built read has `inv ≥ resp` — a malformed window
/// ([`Interval::done`](crate::Interval::done) enforces the same
/// invariant, and driver-recorded histories satisfy it by
/// construction).
pub fn check_counter_with<W>(h: &CounterHistory, window: W) -> Result<(), Violation>
where
    W: Fn(u128) -> (u128, u128),
{
    // Weighted timestamp tables for the per-read window bounds.
    // A_r = sum over completed increments with resp < r.inv;
    // B_r = sum over all increments with inv ≤ r.resp.
    let mut by_resp: Vec<(u64, u64)> = h
        .incs
        .iter()
        .filter_map(|i| i.window.resp.map(|r| (r, i.amount)))
        .collect();
    by_resp.sort_unstable();
    let resp_prefix = prefix_sums(&by_resp);
    let mut by_inv: Vec<(u64, u64)> = h.incs.iter().map(|i| (i.window.inv, i.amount)).collect();
    by_inv.sort_unstable();
    let inv_prefix = prefix_sums(&by_inv);

    // Completed increments as (inv, amount), indexed by the arrival
    // events (which fire at the increment's resp).
    let arrivals: Vec<(u64, u64)> = h
        .incs
        .iter()
        .filter(|i| i.window.resp.is_some())
        .map(|i| (i.window.inv, i.amount))
        .collect();

    let mut events: Vec<(u64, u8, Event)> = Vec::with_capacity(2 * h.reads.len() + arrivals.len());
    for (j, r) in h.reads.iter().enumerate() {
        assert!(r.inv < r.resp, "read window must satisfy inv < resp");
        events.push((r.inv, 0, Event::Query(j)));
        events.push((r.resp, 1, Event::Insert(j)));
    }
    {
        let mut idx = 0;
        for i in &h.incs {
            if let Some(resp) = i.window.resp {
                events.push((resp, 1, Event::IncArrival(idx)));
                idx += 1;
            }
        }
    }
    events.sort_by_key(|&(t, tie, _)| (t, tie));

    let mut assigned: Vec<u128> = vec![0; h.reads.len()];
    let mut stack = MonotoneStack::with_capacity(h.reads.len());

    for &(_, _, ev) in &events {
        match ev {
            Event::Query(j) => {
                let r = &h.reads[j];
                let a = weighted_lt(&by_resp, &resp_prefix, r.inv);
                let b = weighted_leq(&by_inv, &inv_prefix, r.resp);
                let (spec_lo, spec_hi) = window(r.value);
                let mut lo = spec_lo.max(a);
                if let Some(m) = stack.max() {
                    lo = lo.max(m);
                }
                let hi = spec_hi.min(b);
                if lo > hi {
                    return Err(Violation {
                        message: format!(
                            "read #{j} (window [{}, {}]) returned {} but the exact \
                             count is confined to an empty window: need ≥ {lo}, ≤ {hi} \
                             (forced-before A = {a}, possible-before B = {b})",
                            r.inv, r.resp, r.value
                        ),
                    });
                }
                assigned[j] = lo;
            }
            Event::Insert(j) => {
                stack.insert(h.reads[j].resp, assigned[j]);
            }
            Event::IncArrival(i) => {
                let (inv, amount) = arrivals[i];
                stack.raise_before(inv, u128::from(amount));
            }
        }
    }
    Ok(())
}

/// The monotone stack behind the counter sweep: entries `(resp, term)`
/// inserted in nondecreasing `resp` order, supporting
///
/// * `raise_before(t, w)` — add `w` to the term of every entry with
///   `resp < t` (a *prefix* of the stack);
/// * `max()` — the largest current term;
/// * `insert(resp, term)` — add an entry at the top.
///
/// Invariant: terms strictly increase from bottom (oldest `resp`) to
/// top. An entry whose term is overtaken by an earlier entry is
/// *dominated forever* — every future `raise_before` that reaches it
/// also reaches the earlier entry — so it is retired. Terms are stored
/// as successive differences in an append-only sorted vec: a prefix
/// raise is `+w` on the first live difference and a deficit walk from
/// the boundary (one `partition_point`) that retires entries whose
/// difference it exhausts. Retired entries keep a zero diff in place —
/// prefix sums are unaffected — and are hopped over with union-find
/// "next live" pointers that compress on traversal, so the walk costs
/// `O(α)` amortized per retired entry and nothing is allocated after
/// construction. (The previous `BTreeMap` encoding hit an allocator +
/// pointer-chasing knee near 10⁶ records.)
struct MonotoneStack {
    /// `(resp, diff)` in nondecreasing `resp` order; the term of a live
    /// entry is the sum of all diffs up to and including its own.
    entries: Vec<(u64, u128)>,
    /// Next-live pointers: `skip[i] == i` marks a live entry; a dead
    /// entry points at some strictly larger index (possibly
    /// `entries.len()`). Dead entries are never revived — a same-`resp`
    /// replacement appends a fresh entry instead — so compressed paths
    /// stay valid forever.
    skip: Vec<usize>,
    /// Number of live entries.
    live: usize,
    /// Sum of all diffs = term of the top live entry = current maximum.
    total: u128,
}

impl MonotoneStack {
    /// An empty stack pre-sized for `cap` inserts (each `insert` appends
    /// at most one entry, so a sweep over `R` reads never reallocates).
    fn with_capacity(cap: usize) -> Self {
        MonotoneStack {
            entries: Vec::with_capacity(cap),
            skip: Vec::with_capacity(cap),
            live: 0,
            total: 0,
        }
    }

    /// Largest current term, if any entry is live.
    fn max(&self) -> Option<u128> {
        (self.live > 0).then_some(self.total)
    }

    /// Number of live entries (the analogue of the old map's `len`).
    #[cfg(test)]
    fn live_len(&self) -> usize {
        self.live
    }

    /// First live index at or after `i` (or `entries.len()`), with path
    /// compression over the dead chain it walked.
    fn first_live(&mut self, i: usize) -> usize {
        let mut j = i;
        while j < self.entries.len() && self.skip[j] != j {
            j = self.skip[j];
        }
        let mut k = i;
        while k < self.entries.len() && self.skip[k] != k {
            k = std::mem::replace(&mut self.skip[k], j);
        }
        j
    }

    /// Retire entry `i`: zero diff stays in place, pointers hop past it.
    fn retire(&mut self, i: usize) {
        self.entries[i].1 = 0;
        self.skip[i] = i + 1;
        self.live -= 1;
    }

    /// Push `(resp, term)`. Requires `resp` ≥ every present key (inserts
    /// arrive in response order). A term not exceeding the current
    /// maximum is dominated on arrival and discarded.
    fn insert(&mut self, resp: u64, term: u128) {
        if self.live > 0 && term <= self.total {
            return;
        }
        // An existing live entry at the same `resp` (necessarily the
        // top) has identical future exposure and a smaller term: retire
        // it, folding its diff into the newcomer's.
        let mut folded = 0;
        if let Some(i) = self.entries.len().checked_sub(1) {
            debug_assert!(self.entries[i].0 <= resp, "inserts arrive in resp order");
            if self.entries[i].0 == resp && self.skip[i] == i {
                folded = self.entries[i].1;
                self.retire(i);
            }
        }
        self.entries.push((resp, term - self.total + folded));
        self.skip.push(self.skip.len());
        self.live += 1;
        self.total = term;
    }

    /// Add `w` to the term of every entry with `resp < t`, retiring
    /// entries this dominates.
    fn raise_before(&mut self, t: u64, w: u128) {
        let first = self.first_live(0);
        if first >= self.entries.len() || self.entries[first].0 >= t {
            return; // no live entry precedes t
        }
        self.entries[first].1 += w;
        self.total += w;
        // Restore the terms of entries at or beyond the boundary by
        // walking the deficit through their diffs; an exhausted diff
        // means the entry's term sank to its predecessor's — dominated.
        let mut deficit = w;
        let mut i = self.entries.partition_point(|&(resp, _)| resp < t);
        loop {
            i = self.first_live(i);
            if i >= self.entries.len() {
                break;
            }
            let d = deficit.min(self.entries[i].1);
            self.entries[i].1 -= d;
            deficit -= d;
            self.total -= d;
            if self.entries[i].1 == 0 {
                self.retire(i);
            }
            if deficit == 0 {
                break;
            }
            i += 1;
        }
    }
}

/// Check a max-register history against the k-multiplicative-accurate max
/// register specification (`k = 1` for the exact max register).
pub fn check_maxreg(h: &MaxRegHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);

    // Completed writes as (resp, value), with prefix maxima in resp order.
    let mut by_resp: Vec<(u64, u64)> = h
        .writes
        .iter()
        .filter_map(|w| w.window.resp.map(|t| (t, w.value)))
        .collect();
    by_resp.sort_unstable();
    let mut resp_prefix_max: Vec<u64> = Vec::with_capacity(by_resp.len());
    let mut run = 0;
    for &(_, v) in &by_resp {
        run = run.max(v);
        resp_prefix_max.push(run);
    }
    // Largest completed write strictly before time t.
    let max_completed_before = |t: u64| -> u128 {
        let cnt = count_lt_key(&by_resp, t);
        if cnt == 0 {
            0
        } else {
            u128::from(resp_prefix_max[cnt - 1])
        }
    };

    // Event-ordered sweep: write invocations (computing ev) interleaved
    // with read responses (finalizing minimal maxima). At equal times a
    // write invocation is processed first, so `w.inv <= r.resp` witnesses
    // are available, while `r'.resp < w.inv` reads are strictly earlier.
    #[derive(Clone, Copy)]
    enum Event {
        WriteInv(usize),
        ReadResp(usize),
    }
    let mut events: Vec<(u64, u8, Event)> = Vec::new();
    for (i, w) in h.writes.iter().enumerate() {
        events.push((w.window.inv, 0, Event::WriteInv(i)));
    }
    for (i, r) in h.reads.iter().enumerate() {
        events.push((r.resp, 1, Event::ReadResp(i)));
    }
    events.sort_by_key(|&(t, tie, _)| (t, tie));

    // Finalized reads as (resp, running max of minimal maxima), in
    // response order.
    let mut read_chain: Vec<(u64, u128)> = Vec::new();
    let max_read_before = |chain: &[(u64, u128)], t: u64| -> u128 {
        let cnt = chain.partition_point(|&(resp, _)| resp < t);
        if cnt == 0 {
            0
        } else {
            chain[cnt - 1].1
        }
    };
    // Effective values of writes whose invocation the sweep has passed.
    let mut witnesses: Vec<u128> = Vec::new();

    for &(_, _, ev) in &events {
        match ev {
            Event::WriteInv(i) => {
                let w = &h.writes[i];
                let forced = max_completed_before(w.window.inv)
                    .max(max_read_before(&read_chain, w.window.inv));
                witnesses.push(u128::from(w.value).max(forced));
            }
            Event::ReadResp(i) => {
                let r = &h.reads[i];
                let spec_lo = r.value.div_ceil(kk.max(1)).min(r.value);
                let spec_hi = r.value.saturating_mul(kk);
                let base = max_completed_before(r.inv).max(max_read_before(&read_chain, r.inv));
                let m = if base >= spec_lo {
                    // The forced maximum alone is admissible (and
                    // realized) -- no extra witness needed.
                    (base <= spec_hi).then_some(base)
                } else {
                    // Need a witness write (invoked at or before r.resp --
                    // a write w may precede r iff r does not strictly
                    // precede w) whose effective value is admissible.
                    witnesses
                        .iter()
                        .copied()
                        .filter(|&ev| ev >= spec_lo && ev <= spec_hi)
                        .min()
                };
                match m {
                    Some(m) => {
                        let running = read_chain.last().map_or(0, |&(_, x)| x).max(m);
                        read_chain.push((r.resp, running));
                    }
                    None => {
                        return Err(Violation {
                            message: format!(
                                "read #{i} (window [{}, {}]) returned {} but \
                                 no admissible maximum exists: forced maximum \
                                 {base}, admissible value window [{spec_lo}, \
                                 {spec_hi}], and no witness write invoked by \
                                 {} has an effective value in that window \
                                 (k = {k})",
                                r.inv, r.resp, r.value, r.resp
                            ),
                        })
                    }
                }
            }
        }
    }
    Ok(())
}

/// Prefix sums of the weights of a time-sorted `(time, weight)` slice.
/// With [`weighted_lt`]/[`weighted_leq`], the weighted-count primitive
/// shared by both checker engines and by history generators that must
/// agree with their boundary semantics (e.g. `exp_checker`).
pub fn prefix_sums(sorted: &[(u64, u64)]) -> Vec<u128> {
    let mut out = Vec::with_capacity(sorted.len());
    let mut run: u128 = 0;
    for &(_, w) in sorted {
        run += u128::from(w);
        out.push(run);
    }
    out
}

/// Total weight of entries with time strictly less than `t`.
pub fn weighted_lt(sorted: &[(u64, u64)], prefix: &[u128], t: u64) -> u128 {
    let cnt = sorted.partition_point(|&(x, _)| x < t);
    if cnt == 0 {
        0
    } else {
        prefix[cnt - 1]
    }
}

/// Total weight of entries with time less than or equal to `t`.
pub fn weighted_leq(sorted: &[(u64, u64)], prefix: &[u128], t: u64) -> u128 {
    let cnt = sorted.partition_point(|&(x, _)| x <= t);
    if cnt == 0 {
        0
    } else {
        prefix[cnt - 1]
    }
}

/// Elements of a key-sorted slice with key strictly less than `t`.
fn count_lt_key(sorted: &[(u64, u64)], t: u64) -> usize {
    sorted.partition_point(|&(x, _)| x < t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Interval, TimedInc, TimedRead, TimedWrite};

    fn inc(inv: u64, resp: u64) -> TimedInc {
        TimedInc::unit(Interval::done(inv, resp))
    }

    fn read(inv: u64, resp: u64, value: u128) -> TimedRead {
        TimedRead { inv, resp, value }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_counter(&CounterHistory::default(), 2).is_ok());
        assert!(check_maxreg(&MaxRegHistory::default(), 2).is_ok());
    }

    #[test]
    fn exact_sequential_counter_accepts() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
    }

    #[test]
    fn exact_sequential_counter_rejects_wrong_value() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 3)],
        };
        assert!(check_counter(&h, 1).is_err());
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn relaxation_widens_acceptance() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 4)],
        };
        assert!(check_counter(&h, 1).is_err(), "exact rejects 4 for v=2");
        assert!(check_counter(&h, 2).is_ok(), "k=2 accepts 4 for v=2");
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter(&h, 2).is_ok(), "k=2 accepts 1 for v=2");
    }

    #[test]
    fn concurrent_increment_may_or_may_not_count() {
        // inc concurrent with the read: both 0 and 1 acceptable.
        for ret in [0u128, 1] {
            let h = CounterHistory {
                incs: vec![inc(0, 10)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
        let h = CounterHistory {
            incs: vec![inc(0, 10)],
            reads: vec![read(1, 2, 2)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn long_lived_increment_forces_accumulation() {
        // The trap the pairwise D-term exists for: a long increment iP
        // counted by read 1 plus a short increment completed in between
        // force read 2 to see at least 2.
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4)],
            reads: vec![read(1, 2, 1), read(5, 6, 1)],
        };
        assert!(
            check_counter(&h, 1).is_err(),
            "read1 counted iP; the short inc is forced between the reads"
        );
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4)],
            reads: vec![read(1, 2, 1), read(5, 6, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
    }

    #[test]
    fn sequenced_reads_must_be_monotone() {
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 1), read(4, 5, 0)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn chained_reads_accumulate_through_the_stack() {
        // Three sequenced reads, an in-between increment after each:
        // every read forces the next one unit higher. Exercises repeated
        // raise_before + insert interleavings.
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4), inc(7, 8)],
            reads: vec![read(1, 2, 1), read(5, 6, 2), read(9, 10, 3)],
        };
        assert!(check_counter(&h, 1).is_ok());
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4), inc(7, 8)],
            reads: vec![read(1, 2, 1), read(5, 6, 2), read(9, 10, 2)],
        };
        assert!(check_counter(&h, 1).is_err(), "third read must reach 3");
    }

    #[test]
    fn batched_increment_counts_with_multiplicity() {
        // One completed batch of 5: a later read must return 5 exactly.
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::done(0, 1), 5)],
            reads: vec![read(2, 3, 5)],
        };
        assert!(check_counter(&h, 1).is_ok());
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::done(0, 1), 5)],
            reads: vec![read(2, 3, 1)],
        };
        assert!(
            check_counter(&h, 1).is_err(),
            "a completed batch forces all 5 units"
        );
    }

    #[test]
    fn pending_batch_allows_any_prefix() {
        // A pending batch of 4 concurrent with the read: any value in
        // 0..=4 is a legal prefix; 5 is not.
        for ret in 0u128..=4 {
            let h = CounterHistory {
                incs: vec![TimedInc::batch(Interval::pending(0), 4)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::pending(0), 4)],
            reads: vec![read(1, 2, 5)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn additive_spec_accepts_and_rejects() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3), inc(4, 5)],
            reads: vec![read(6, 7, 1)],
        };
        assert!(check_counter_additive(&h, 2).is_ok(), "|3 − 1| ≤ 2");
        assert!(check_counter_additive(&h, 1).is_err(), "|3 − 1| > 1");
        // Additive overshoot is also allowed.
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 3)],
        };
        assert!(check_counter_additive(&h, 2).is_ok());
        assert!(check_counter_additive(&h, 1).is_err());
    }

    #[test]
    fn custom_window_checker() {
        // A "never below half" spec via the generic entry point.
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter_with(&h, |x| (x, x * 2)).is_ok());
        assert!(check_counter_with(&h, |x| (x, x)).is_err());
    }

    #[test]
    fn pending_increment_is_optional() {
        for ret in [0u128, 1] {
            let h = CounterHistory {
                incs: vec![TimedInc::unit(Interval::pending(0))],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
    }

    #[test]
    fn monotone_stack_prefix_raises_and_domination() {
        let mut s = MonotoneStack::with_capacity(4);
        assert_eq!(s.max(), None);
        s.insert(2, 5);
        s.insert(4, 7);
        s.insert(6, 20);
        assert_eq!(s.max(), Some(20));
        // Raise entries with resp < 3 by 4: terms 9, 7→dominated, 20.
        s.raise_before(3, 4);
        assert_eq!(s.max(), Some(20));
        assert_eq!(s.live_len(), 2, "middle entry retired");
        // Raise entries with resp < 7 by 100: both remaining entries.
        s.raise_before(7, 100);
        assert_eq!(s.max(), Some(120));
        // Dominated-on-arrival insert is discarded.
        s.insert(9, 3);
        assert_eq!(s.live_len(), 2);
        // Raise with boundary before everything: no-op.
        s.raise_before(1, 50);
        assert_eq!(s.max(), Some(120));
    }

    fn write(inv: u64, resp: u64, value: u64) -> TimedWrite {
        TimedWrite {
            window: Interval::done(inv, resp),
            value,
        }
    }

    #[test]
    fn exact_maxreg_accepts_and_rejects() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5), write(2, 3, 3)],
            reads: vec![read(4, 5, 5)],
        };
        assert!(check_maxreg(&h, 1).is_ok());
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 3)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "3 was never the maximum");
    }

    #[test]
    fn kmult_maxreg_accepts_magnitude() {
        // Algorithm 2 returns k^p ∈ [v, v·k]: e.g. v = 5, k = 2, x = 8.
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 8)],
        };
        assert!(check_maxreg(&h, 1).is_err());
        assert!(check_maxreg(&h, 2).is_ok());
    }

    #[test]
    fn maxreg_sequenced_reads_monotone() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 8), write(2, 3, 2)],
            reads: vec![read(4, 5, 8), read(6, 7, 2)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "maximum cannot shrink");
    }

    #[test]
    fn maxreg_concurrent_write_optional() {
        for ret in [0u128, 4] {
            let h = MaxRegHistory {
                writes: vec![write(0, 10, 4)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_maxreg(&h, 1).is_ok(), "ret {ret}");
        }
    }

    #[test]
    fn maxreg_zero_read_requires_zero_history() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 4)],
            reads: vec![read(2, 3, 0)],
        };
        assert!(check_maxreg(&h, 3).is_err(), "x = 0 forces v = 0");
    }
}
