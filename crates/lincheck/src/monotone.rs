//! Polynomial-time linearizability checking for monotone objects with
//! (possibly) relaxed reads.
//!
//! ## Counter
//!
//! A history of (weighted) increments and reads returning `x_r` is
//! linearizable w.r.t. the k-multiplicative counter spec iff each read
//! `r` can be assigned an exact count `v_r` such that
//!
//! 1. `⌈x_r/k⌉ ≤ v_r ≤ x_r·k` (spec admissibility);
//! 2. `A_r ≤ v_r ≤ B_r`, where `A_r` sums increments *completed
//!    strictly before* `r` was invoked (they are forced before `r`) and
//!    `B_r` sums increments invoked at or before `r`'s response (only
//!    these can precede `r` — `i` may precede `r` iff `r` does not
//!    strictly precede `i`, i.e. `i.inv ≤ r.resp`);
//! 3. for every pair of reads with `r.resp < s.inv`:
//!    `v_s ≥ v_r + D(r, s)`, where `D(r, s)` sums increments whose whole
//!    window lies between `r`'s response and `s`'s invocation — everything
//!    `r` counted precedes `s` too, and the `D` increments are forced in
//!    between.
//!
//! An increment record of multiplicity `m` counts as `m` everywhere — it
//! is exactly `m` unit increments sharing one window (a pending batch
//! may have landed any prefix of them).
//!
//! Necessity of 1–3 is immediate; sufficiency is the standard
//! interval-order construction (place reads in `v_r`-order refined by
//! real time, then slot increments). The greedy longest-path assignment
//! `v_r = max(lo_r, max_{r'≺r}(v_{r'} + D(r', r)))` is minimal, so it
//! succeeds iff some assignment does.
//!
//! ### The sweep
//!
//! Constraint 3 is the hot loop. Evaluating it pairwise is `O(R²)`
//! ([`naive`](crate::naive) keeps that transcription as the
//! cross-validation reference); this engine instead sweeps all events in
//! timestamp order and maintains, in a monotone stack, the running
//! quantity
//!
//! ```text
//! M(t) = max over reads p with p.resp < t of  ( v_p + D(p, t) )
//! ```
//!
//! so a read invoked at `t` needs just `v_r ≥ max(lo_r, M(t))`. Three
//! event types drive the sweep: a read *query* at `r.inv` (assign
//! `v_r`), a read *insert* at `r.resp` (add the term `v_r`, with
//! `D(r, t) = 0` at that instant), and an increment *arrival* at
//! `i.resp` (add its amount to the term of every read with
//! `p.resp < i.inv` — exactly the reads whose `D` the increment enters).
//! Terms only grow, prefixes (in `resp` order) grow fastest, so the set
//! of reads that can ever realize the maximum is a stack of strictly
//! increasing terms; each read enters and leaves it at most once.
//!
//! **Complexity: `O(R log R + I log I)`** for `R` reads and `I`
//! increment records — each event costs one `O(log)` ordered-map
//! operation plus amortized-constant stack pops, and the only other
//! work is sorting. (The previous pairwise engine was `O(R² log I)`.)
//! Cross-validated against [`naive`](crate::naive) and the exhaustive
//! [`wg`](crate::wg) checker on randomized histories (see `tests/`).
//!
//! ## Max register
//!
//! Analogous, with max instead of sum. Each read `r` gets a minimal
//! achievable maximum `m_r` with: `m_r ≥ base(r) = max(M_A(r), m_{r'}
//! for reads r' that precede r)` where `M_A(r)` is the largest write
//! completed before `r.inv`; `m_r` admissible for `x_r`. If `base(r)` is
//! not already admissible, a *witness* write `w` with `w.inv ≤ r.resp`
//! must be linearized before `r` — but placing `w` drags along everything
//! forced before `w` in real time: earlier-completed **writes** (their
//! values) and earlier-completed **reads** (whose own minimal maxima were
//! forced by *their* witnesses). So the witness's **effective value** is
//!
//! ```text
//! ev(w) = max(w.value,
//!             max{w'.value : w'.resp < w.inv},
//!             max{m_{r'}   : r'.resp < w.inv})
//! ```
//!
//! and the greedy picks the smallest admissible `ev(w)`. All quantities
//! depend only on strictly earlier timestamps, so a single event-ordered
//! sweep (write invocations before read responses at equal times)
//! computes everything: `O((R + W) log (R + W))` for `R` reads and `W`
//! writes.

use crate::history::{CounterHistory, MaxRegHistory, Violation};
use crate::sweep::MonotoneStack;

/// Check a counter history against the k-multiplicative-accurate counter
/// specification (`k = 1` for the exact counter).
///
/// A read returning `x` admits exact counts in the inclusive window
/// `[⌈x/k⌉, x·k]`: integer `div_ceil` at the bottom (the smallest `v`
/// with `v·k ≥ x`), saturating multiplication at the top. Saturation
/// is exact, not an approximation: a count can never exceed
/// `u128::MAX`, so clamping the upper bound there loses nothing. At
/// `x = 0` the window is `[0, 0]` for every `k` — a zero read always
/// claims the counter has never been incremented.
pub fn check_counter(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);
    check_counter_with(h, |x| (x.div_ceil(kk), x.saturating_mul(kk)))
}

/// Check a counter history against the **k-additive**-accurate counter
/// specification: a read may return `x` with `|v − x| ≤ k`.
///
/// A read returning `x` admits exact counts in the inclusive window
/// `[x − k, x + k]`, saturating at both ends: `x − k` clamps to zero
/// (counts are nonnegative) and `x + k` clamps to `u128::MAX` (counts
/// cannot exceed it), so both clamps are exact rather than lossy.
/// `k = 0` degenerates to the exact counter.
pub fn check_counter_additive(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    let kk = u128::from(k);
    check_counter_with(h, move |x| (x.saturating_sub(kk), x.saturating_add(kk)))
}

/// The sweep's three event types. Tie-breaking at equal timestamps:
/// queries first (a read's constraints come from *strictly* earlier
/// responses), then inserts and increment arrivals (their relative order
/// is immaterial — an increment's `inv` is strictly below its `resp`, so
/// it never targets a read inserted at the same instant).
#[derive(Clone, Copy)]
enum Event {
    /// Assign `v_r` for read `j` (at `r.inv`).
    Query(usize),
    /// Add read `j`'s term to the stack (at `r.resp`).
    Insert(usize),
    /// Completed increment `i` arrives (at `i.resp`).
    IncArrival(usize),
}

/// Check a counter history against an arbitrary relaxed read
/// specification: `window(x)` maps a returned value to the inclusive
/// interval of exact counts that may have produced it.
///
/// Complexity `O(R log R + I log I)` — see the [module docs](self).
///
/// # Panics
/// If a hand-built read has `inv ≥ resp` — a malformed window
/// ([`Interval::done`](crate::Interval::done) enforces the same
/// invariant, and driver-recorded histories satisfy it by
/// construction).
pub fn check_counter_with<W>(h: &CounterHistory, window: W) -> Result<(), Violation>
where
    W: Fn(u128) -> (u128, u128),
{
    // Weighted timestamp tables for the per-read window bounds.
    // A_r = sum over completed increments with resp < r.inv;
    // B_r = sum over all increments with inv ≤ r.resp.
    let mut by_resp: Vec<(u64, u64)> = h
        .incs
        .iter()
        .filter_map(|i| i.window.resp.map(|r| (r, i.amount)))
        .collect();
    by_resp.sort_unstable();
    let resp_prefix = prefix_sums(&by_resp);
    let mut by_inv: Vec<(u64, u64)> = h.incs.iter().map(|i| (i.window.inv, i.amount)).collect();
    by_inv.sort_unstable();
    let inv_prefix = prefix_sums(&by_inv);

    // Completed increments as (inv, amount), indexed by the arrival
    // events (which fire at the increment's resp).
    let arrivals: Vec<(u64, u64)> = h
        .incs
        .iter()
        .filter(|i| i.window.resp.is_some())
        .map(|i| (i.window.inv, i.amount))
        .collect();

    let mut events: Vec<(u64, u8, Event)> = Vec::with_capacity(2 * h.reads.len() + arrivals.len());
    for (j, r) in h.reads.iter().enumerate() {
        assert!(r.inv < r.resp, "read window must satisfy inv < resp");
        events.push((r.inv, 0, Event::Query(j)));
        events.push((r.resp, 1, Event::Insert(j)));
    }
    {
        let mut idx = 0;
        for i in &h.incs {
            if let Some(resp) = i.window.resp {
                events.push((resp, 1, Event::IncArrival(idx)));
                idx += 1;
            }
        }
    }
    events.sort_by_key(|&(t, tie, _)| (t, tie));

    let mut assigned: Vec<u128> = vec![0; h.reads.len()];
    let mut stack = MonotoneStack::with_capacity(h.reads.len());

    for &(_, _, ev) in &events {
        match ev {
            Event::Query(j) => {
                let r = &h.reads[j];
                let a = weighted_lt(&by_resp, &resp_prefix, r.inv);
                let b = weighted_leq(&by_inv, &inv_prefix, r.resp);
                let (spec_lo, spec_hi) = window(r.value);
                let mut lo = spec_lo.max(a);
                if let Some(m) = stack.max() {
                    lo = lo.max(m);
                }
                let hi = spec_hi.min(b);
                if lo > hi {
                    return Err(Violation {
                        message: format!(
                            "read #{j} (window [{}, {}]) returned {} but the exact \
                             count is confined to an empty window: need ≥ {lo}, ≤ {hi} \
                             (forced-before A = {a}, possible-before B = {b})",
                            r.inv, r.resp, r.value
                        ),
                    });
                }
                assigned[j] = lo;
            }
            Event::Insert(j) => {
                stack.insert(h.reads[j].resp, assigned[j]);
            }
            Event::IncArrival(i) => {
                let (inv, amount) = arrivals[i];
                stack.raise_before(inv, u128::from(amount));
            }
        }
    }
    Ok(())
}

/// Check a max-register history against the k-multiplicative-accurate max
/// register specification (`k = 1` for the exact max register).
pub fn check_maxreg(h: &MaxRegHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);

    // Completed writes as (resp, value), with prefix maxima in resp order.
    let mut by_resp: Vec<(u64, u64)> = h
        .writes
        .iter()
        .filter_map(|w| w.window.resp.map(|t| (t, w.value)))
        .collect();
    by_resp.sort_unstable();
    let mut resp_prefix_max: Vec<u64> = Vec::with_capacity(by_resp.len());
    let mut run = 0;
    for &(_, v) in &by_resp {
        run = run.max(v);
        resp_prefix_max.push(run);
    }
    // Largest completed write strictly before time t.
    let max_completed_before = |t: u64| -> u128 {
        let cnt = count_lt_key(&by_resp, t);
        if cnt == 0 {
            0
        } else {
            u128::from(resp_prefix_max[cnt - 1])
        }
    };

    // Event-ordered sweep: write invocations (computing ev) interleaved
    // with read responses (finalizing minimal maxima). At equal times a
    // write invocation is processed first, so `w.inv <= r.resp` witnesses
    // are available, while `r'.resp < w.inv` reads are strictly earlier.
    #[derive(Clone, Copy)]
    enum Event {
        WriteInv(usize),
        ReadResp(usize),
    }
    let mut events: Vec<(u64, u8, Event)> = Vec::new();
    for (i, w) in h.writes.iter().enumerate() {
        events.push((w.window.inv, 0, Event::WriteInv(i)));
    }
    for (i, r) in h.reads.iter().enumerate() {
        events.push((r.resp, 1, Event::ReadResp(i)));
    }
    events.sort_by_key(|&(t, tie, _)| (t, tie));

    // Finalized reads as (resp, running max of minimal maxima), in
    // response order.
    let mut read_chain: Vec<(u64, u128)> = Vec::new();
    let max_read_before = |chain: &[(u64, u128)], t: u64| -> u128 {
        let cnt = chain.partition_point(|&(resp, _)| resp < t);
        if cnt == 0 {
            0
        } else {
            chain[cnt - 1].1
        }
    };
    // Effective values of writes whose invocation the sweep has passed.
    let mut witnesses: Vec<u128> = Vec::new();

    for &(_, _, ev) in &events {
        match ev {
            Event::WriteInv(i) => {
                let w = &h.writes[i];
                let forced = max_completed_before(w.window.inv)
                    .max(max_read_before(&read_chain, w.window.inv));
                witnesses.push(u128::from(w.value).max(forced));
            }
            Event::ReadResp(i) => {
                let r = &h.reads[i];
                let spec_lo = r.value.div_ceil(kk.max(1)).min(r.value);
                let spec_hi = r.value.saturating_mul(kk);
                let base = max_completed_before(r.inv).max(max_read_before(&read_chain, r.inv));
                let m = if base >= spec_lo {
                    // The forced maximum alone is admissible (and
                    // realized) -- no extra witness needed.
                    (base <= spec_hi).then_some(base)
                } else {
                    // Need a witness write (invoked at or before r.resp --
                    // a write w may precede r iff r does not strictly
                    // precede w) whose effective value is admissible.
                    witnesses
                        .iter()
                        .copied()
                        .filter(|&ev| ev >= spec_lo && ev <= spec_hi)
                        .min()
                };
                match m {
                    Some(m) => {
                        let running = read_chain.last().map_or(0, |&(_, x)| x).max(m);
                        read_chain.push((r.resp, running));
                    }
                    None => {
                        return Err(Violation {
                            message: format!(
                                "read #{i} (window [{}, {}]) returned {} but \
                                 no admissible maximum exists: forced maximum \
                                 {base}, admissible value window [{spec_lo}, \
                                 {spec_hi}], and no write invoked at or before \
                                 the response timestamp {} has an effective \
                                 value in that window (k = {k})",
                                r.inv, r.resp, r.value, r.resp
                            ),
                        })
                    }
                }
            }
        }
    }
    Ok(())
}

/// Prefix sums of the weights of a time-sorted `(time, weight)` slice.
/// With [`weighted_lt`]/[`weighted_leq`], the weighted-count primitive
/// shared by both checker engines and by history generators that must
/// agree with their boundary semantics (e.g. `exp_checker`).
///
/// The slice **must** be sorted by time: the companion lookups run
/// `partition_point`, which silently returns garbage on unsorted
/// input. All three functions `debug_assert!` the contract, so a
/// violation panics in debug builds instead of corrupting verdicts.
pub fn prefix_sums(sorted: &[(u64, u64)]) -> Vec<u128> {
    debug_assert!(
        sorted.windows(2).all(|w| w[0].0 <= w[1].0),
        "prefix_sums requires a time-sorted slice"
    );
    let mut out = Vec::with_capacity(sorted.len());
    let mut run: u128 = 0;
    for &(_, w) in sorted {
        run += u128::from(w);
        out.push(run);
    }
    out
}

/// Total weight of entries with time strictly less than `t`.
/// `sorted` must be time-sorted (see [`prefix_sums`]).
pub fn weighted_lt(sorted: &[(u64, u64)], prefix: &[u128], t: u64) -> u128 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0].0 <= w[1].0),
        "weighted_lt requires a time-sorted slice"
    );
    let cnt = sorted.partition_point(|&(x, _)| x < t);
    if cnt == 0 {
        0
    } else {
        prefix[cnt - 1]
    }
}

/// Total weight of entries with time less than or equal to `t`.
/// `sorted` must be time-sorted (see [`prefix_sums`]).
pub fn weighted_leq(sorted: &[(u64, u64)], prefix: &[u128], t: u64) -> u128 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0].0 <= w[1].0),
        "weighted_leq requires a time-sorted slice"
    );
    let cnt = sorted.partition_point(|&(x, _)| x <= t);
    if cnt == 0 {
        0
    } else {
        prefix[cnt - 1]
    }
}

/// Elements of a key-sorted slice with key strictly less than `t`.
fn count_lt_key(sorted: &[(u64, u64)], t: u64) -> usize {
    sorted.partition_point(|&(x, _)| x < t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Interval, TimedInc, TimedRead, TimedWrite};

    fn inc(inv: u64, resp: u64) -> TimedInc {
        TimedInc::unit(Interval::done(inv, resp))
    }

    fn read(inv: u64, resp: u64, value: u128) -> TimedRead {
        TimedRead { inv, resp, value }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_counter(&CounterHistory::default(), 2).is_ok());
        assert!(check_maxreg(&MaxRegHistory::default(), 2).is_ok());
    }

    #[test]
    fn exact_sequential_counter_accepts() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
    }

    #[test]
    fn exact_sequential_counter_rejects_wrong_value() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 3)],
        };
        assert!(check_counter(&h, 1).is_err());
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn relaxation_widens_acceptance() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 4)],
        };
        assert!(check_counter(&h, 1).is_err(), "exact rejects 4 for v=2");
        assert!(check_counter(&h, 2).is_ok(), "k=2 accepts 4 for v=2");
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter(&h, 2).is_ok(), "k=2 accepts 1 for v=2");
    }

    #[test]
    fn concurrent_increment_may_or_may_not_count() {
        // inc concurrent with the read: both 0 and 1 acceptable.
        for ret in [0u128, 1] {
            let h = CounterHistory {
                incs: vec![inc(0, 10)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
        let h = CounterHistory {
            incs: vec![inc(0, 10)],
            reads: vec![read(1, 2, 2)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn long_lived_increment_forces_accumulation() {
        // The trap the pairwise D-term exists for: a long increment iP
        // counted by read 1 plus a short increment completed in between
        // force read 2 to see at least 2.
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4)],
            reads: vec![read(1, 2, 1), read(5, 6, 1)],
        };
        assert!(
            check_counter(&h, 1).is_err(),
            "read1 counted iP; the short inc is forced between the reads"
        );
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4)],
            reads: vec![read(1, 2, 1), read(5, 6, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
    }

    #[test]
    fn sequenced_reads_must_be_monotone() {
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 1), read(4, 5, 0)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn chained_reads_accumulate_through_the_stack() {
        // Three sequenced reads, an in-between increment after each:
        // every read forces the next one unit higher. Exercises repeated
        // raise_before + insert interleavings.
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4), inc(7, 8)],
            reads: vec![read(1, 2, 1), read(5, 6, 2), read(9, 10, 3)],
        };
        assert!(check_counter(&h, 1).is_ok());
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4), inc(7, 8)],
            reads: vec![read(1, 2, 1), read(5, 6, 2), read(9, 10, 2)],
        };
        assert!(check_counter(&h, 1).is_err(), "third read must reach 3");
    }

    #[test]
    fn batched_increment_counts_with_multiplicity() {
        // One completed batch of 5: a later read must return 5 exactly.
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::done(0, 1), 5)],
            reads: vec![read(2, 3, 5)],
        };
        assert!(check_counter(&h, 1).is_ok());
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::done(0, 1), 5)],
            reads: vec![read(2, 3, 1)],
        };
        assert!(
            check_counter(&h, 1).is_err(),
            "a completed batch forces all 5 units"
        );
    }

    #[test]
    fn pending_batch_allows_any_prefix() {
        // A pending batch of 4 concurrent with the read: any value in
        // 0..=4 is a legal prefix; 5 is not.
        for ret in 0u128..=4 {
            let h = CounterHistory {
                incs: vec![TimedInc::batch(Interval::pending(0), 4)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::pending(0), 4)],
            reads: vec![read(1, 2, 5)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn additive_spec_accepts_and_rejects() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3), inc(4, 5)],
            reads: vec![read(6, 7, 1)],
        };
        assert!(check_counter_additive(&h, 2).is_ok(), "|3 − 1| ≤ 2");
        assert!(check_counter_additive(&h, 1).is_err(), "|3 − 1| > 1");
        // Additive overshoot is also allowed.
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 3)],
        };
        assert!(check_counter_additive(&h, 2).is_ok());
        assert!(check_counter_additive(&h, 1).is_err());
    }

    #[test]
    fn custom_window_checker() {
        // A "never below half" spec via the generic entry point.
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter_with(&h, |x| (x, x * 2)).is_ok());
        assert!(check_counter_with(&h, |x| (x, x)).is_err());
    }

    #[test]
    fn pending_increment_is_optional() {
        for ret in [0u128, 1] {
            let h = CounterHistory {
                incs: vec![TimedInc::unit(Interval::pending(0))],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
    }

    fn write(inv: u64, resp: u64, value: u64) -> TimedWrite {
        TimedWrite {
            window: Interval::done(inv, resp),
            value,
        }
    }

    #[test]
    fn exact_maxreg_accepts_and_rejects() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5), write(2, 3, 3)],
            reads: vec![read(4, 5, 5)],
        };
        assert!(check_maxreg(&h, 1).is_ok());
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 3)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "3 was never the maximum");
    }

    #[test]
    fn kmult_maxreg_accepts_magnitude() {
        // Algorithm 2 returns k^p ∈ [v, v·k]: e.g. v = 5, k = 2, x = 8.
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 8)],
        };
        assert!(check_maxreg(&h, 1).is_err());
        assert!(check_maxreg(&h, 2).is_ok());
    }

    #[test]
    fn maxreg_sequenced_reads_monotone() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 8), write(2, 3, 2)],
            reads: vec![read(4, 5, 8), read(6, 7, 2)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "maximum cannot shrink");
    }

    #[test]
    fn maxreg_concurrent_write_optional() {
        for ret in [0u128, 4] {
            let h = MaxRegHistory {
                writes: vec![write(0, 10, 4)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_maxreg(&h, 1).is_ok(), "ret {ret}");
        }
    }

    #[test]
    fn maxreg_zero_read_requires_zero_history() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 4)],
            reads: vec![read(2, 3, 0)],
        };
        assert!(check_maxreg(&h, 3).is_err(), "x = 0 forces v = 0");
    }

    #[test]
    fn counter_violation_message_snapshot() {
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 0)],
        };
        let err = check_counter(&h, 1).unwrap_err();
        assert_eq!(
            err.message,
            "read #0 (window [2, 3]) returned 0 but the exact count is \
             confined to an empty window: need \u{2265} 1, \u{2264} 0 \
             (forced-before A = 1, possible-before B = 1)"
        );
    }

    #[test]
    fn maxreg_violation_message_snapshot() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 3)],
        };
        let err = check_maxreg(&h, 1).unwrap_err();
        assert_eq!(
            err.message,
            "read #0 (window [2, 3]) returned 3 but no admissible maximum \
             exists: forced maximum 5, admissible value window [3, 3], and \
             no write invoked at or before the response timestamp 3 has an \
             effective value in that window (k = 1)"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-sorted")]
    fn prefix_sums_panics_on_unsorted_slice_in_debug() {
        let _ = prefix_sums(&[(5, 1), (2, 1)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-sorted")]
    fn weighted_lt_panics_on_unsorted_slice_in_debug() {
        let _ = weighted_lt(&[(5, 1), (2, 1)], &[1, 2], 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-sorted")]
    fn weighted_leq_panics_on_unsorted_slice_in_debug() {
        let _ = weighted_leq(&[(5, 1), (2, 1)], &[1, 2], 3);
    }

    #[test]
    fn multiplicative_window_boundaries() {
        // k = 1: the window degenerates to [x, x].
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
        // A read of u128::MAX under k = u64::MAX still demands a count
        // of at least div_ceil(u128::MAX, u64::MAX) > 0; with no
        // increments the possible-before weight is 0, so it rejects
        // (and the saturating upper bound must not mask that).
        let h = CounterHistory {
            incs: vec![],
            reads: vec![read(0, 1, u128::MAX)],
        };
        assert!(check_counter(&h, u64::MAX).is_err());
        // Batched increments of u64::MAX amounts accumulate in u128
        // without overflow; the exact sum is accepted at k = 1.
        let amounts = 3u128 * u128::from(u64::MAX);
        let h = CounterHistory {
            incs: vec![
                TimedInc::batch(Interval::done(0, 1), u64::MAX),
                TimedInc::batch(Interval::done(2, 3), u64::MAX),
                TimedInc::batch(Interval::done(4, 5), u64::MAX),
            ],
            reads: vec![read(6, 7, amounts)],
        };
        assert!(check_counter(&h, 1).is_ok());
        // Saturating upper bound: x * k clamps to u128::MAX, which is
        // exact (no count exceeds it), so a huge read under a huge k
        // accepts any sufficiently large exact count.
        let h = CounterHistory {
            incs: vec![TimedInc::batch(Interval::done(0, 1), u64::MAX)],
            reads: vec![read(2, 3, u128::MAX / u128::from(u64::MAX))],
        };
        assert!(check_counter(&h, u64::MAX).is_ok());
    }

    #[test]
    fn additive_window_boundaries() {
        // k = 0 degenerates to the exact counter.
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 1)],
        };
        assert!(check_counter_additive(&h, 0).is_ok());
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 2)],
        };
        assert!(check_counter_additive(&h, 0).is_err());
        // Lower bound saturates at zero: a read of 0 under a huge k
        // admits any small count.
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 0)],
        };
        assert!(check_counter_additive(&h, u64::MAX).is_ok());
        // Upper bound saturates at u128::MAX: a read of u128::MAX with
        // k = u64::MAX still demands a count of at least
        // u128::MAX - u64::MAX, which no history here provides.
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, u128::MAX)],
        };
        assert!(check_counter_additive(&h, u64::MAX).is_err());
    }
}
