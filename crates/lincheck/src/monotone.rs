//! Polynomial-time linearizability checking for monotone objects with
//! (possibly) relaxed reads.
//!
//! ## Counter
//!
//! A history of unit increments and reads returning `x_r` is linearizable
//! w.r.t. the k-multiplicative counter spec iff each read `r` can be
//! assigned an exact count `v_r` such that
//!
//! 1. `⌈x_r/k⌉ ≤ v_r ≤ x_r·k` (spec admissibility);
//! 2. `A_r ≤ v_r ≤ B_r`, where `A_r` counts increments *completed
//!    strictly before* `r` was invoked (they are forced before `r`) and
//!    `B_r` counts increments invoked at or before `r`'s response (only
//!    these can precede `r` — `i` may precede `r` iff `r` does not
//!    strictly precede `i`, i.e. `i.inv ≤ r.resp`);
//! 3. for every pair of reads with `r.resp < s.inv`:
//!    `v_s ≥ v_r + D(r, s)`, where `D(r, s)` counts increments whose whole
//!    window lies between `r`'s response and `s`'s invocation — everything
//!    `r` counted precedes `s` too, and the `D` increments are forced in
//!    between.
//!
//! Necessity of 1–3 is immediate; sufficiency is the standard
//! interval-order construction (place reads in `v_r`-order refined by
//! real time, then slot increments). The greedy longest-path assignment
//! `v_r = max(lo_r, max_{r'≺r}(v_{r'} + D(r', r)))` is minimal, so it
//! succeeds iff some assignment does. This engine is additionally
//! cross-validated against the exhaustive [`wg`](crate::wg) checker on
//! thousands of randomized histories (see `tests/`).
//!
//! ## Max register
//!
//! Analogous, with max instead of sum. Each read `r` gets a minimal
//! achievable maximum `m_r` with: `m_r ≥ base(r) = max(M_A(r), m_{r'}
//! for reads r' that precede r)` where `M_A(r)` is the largest write
//! completed before `r.inv`; `m_r` admissible for `x_r`. If `base(r)` is
//! not already admissible, a *witness* write `w` with `w.inv ≤ r.resp`
//! must be linearized before `r` — but placing `w` drags along everything
//! forced before `w` in real time: earlier-completed **writes** (their
//! values) and earlier-completed **reads** (whose own minimal maxima were
//! forced by *their* witnesses). So the witness's **effective value** is
//!
//! ```text
//! ev(w) = max(w.value,
//!             max{w'.value : w'.resp < w.inv},
//!             max{m_{r'}   : r'.resp < w.inv})
//! ```
//!
//! and the greedy picks the smallest admissible `ev(w)`. All quantities
//! depend only on strictly earlier timestamps, so a single event-ordered
//! sweep (write invocations before read responses at equal times)
//! computes everything; the greedy-minimal assignment succeeds iff some
//! assignment does.
//!
//! Complexity: `O(R² log I + I log I)` for `R` reads and `I` updates —
//! comfortably fast for the stress-test histories this crate checks.

use crate::history::{CounterHistory, MaxRegHistory, Violation};

/// Check a counter history against the k-multiplicative-accurate counter
/// specification (`k = 1` for the exact counter).
pub fn check_counter(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);
    check_counter_with(h, |x| (x.div_ceil(kk), x.saturating_mul(kk)))
}

/// Check a counter history against the **k-additive**-accurate counter
/// specification: a read may return `x` with `|v − x| ≤ k`.
pub fn check_counter_additive(h: &CounterHistory, k: u64) -> Result<(), Violation> {
    let kk = u128::from(k);
    check_counter_with(h, move |x| (x.saturating_sub(kk), x.saturating_add(kk)))
}

/// Check a counter history against an arbitrary relaxed read
/// specification: `window(x)` maps a returned value to the inclusive
/// interval of exact counts that may have produced it.
pub fn check_counter_with<W>(h: &CounterHistory, window: W) -> Result<(), Violation>
where
    W: Fn(u128) -> (u128, u128),
{
    // Completed increments, by response; all increments, by invocation.
    let mut resp_times: Vec<u64> = h.incs.iter().filter_map(|i| i.resp).collect();
    resp_times.sort_unstable();
    let mut inv_times: Vec<u64> = h.incs.iter().map(|i| i.inv).collect();
    inv_times.sort_unstable();

    // Completed increments as (resp, inv), sorted by resp — streamed into
    // the Fenwick tree (indexed by inv rank) as the sweep passes their
    // response times.
    let mut completed: Vec<(u64, u64)> = h
        .incs
        .iter()
        .filter_map(|i| i.resp.map(|r| (r, i.inv)))
        .collect();
    completed.sort_unstable();
    let inv_rank = |t: u64| -> usize { partition_point_leq(&inv_times, t) };

    let mut reads: Vec<(usize, &crate::history::TimedRead)> = h.reads.iter().enumerate().collect();
    reads.sort_by_key(|(_, r)| r.inv);

    let mut fen = Fenwick::new(inv_times.len());
    let mut stream = 0usize;
    // Assigned counts, in `reads` (inv-sorted) order.
    let mut assigned: Vec<u128> = Vec::with_capacity(reads.len());

    for (pos, (idx, r)) in reads.iter().enumerate() {
        // Stream increments with resp < r.inv into the Fenwick tree.
        while stream < completed.len() && completed[stream].0 < r.inv {
            fen.add(inv_rank(completed[stream].1) - 1, 1);
            stream += 1;
        }
        let a = count_lt(&resp_times, r.inv) as u128;
        let b = count_leq(&inv_times, r.resp) as u128;
        let (spec_lo, spec_hi) = window(r.value);
        let mut lo = spec_lo.max(a);
        let hi = spec_hi.min(b);

        // Pairwise constraints from every read that precedes r.
        for (ppos, (_, p)) in reads.iter().enumerate().take(pos) {
            if p.resp < r.inv {
                // D = completed increments with inv > p.resp and resp < r.inv.
                // The tree currently holds exactly those with resp < r.inv.
                let d = fen.count_suffix(inv_rank(p.resp)) as u128;
                lo = lo.max(assigned[ppos] + d);
            }
        }

        if lo > hi {
            return Err(Violation {
                message: format!(
                    "read #{idx} (window [{}, {}]) returned {} but the exact \
                     count is confined to an empty window: need ≥ {lo}, ≤ {hi} \
                     (forced-before A = {a}, possible-before B = {b})",
                    r.inv, r.resp, r.value
                ),
            });
        }
        assigned.push(lo);
    }
    Ok(())
}

/// Check a max-register history against the k-multiplicative-accurate max
/// register specification (`k = 1` for the exact max register).
pub fn check_maxreg(h: &MaxRegHistory, k: u64) -> Result<(), Violation> {
    assert!(k >= 1);
    let kk = u128::from(k);

    // Completed writes as (resp, value), with prefix maxima in resp order.
    let mut by_resp: Vec<(u64, u64)> = h
        .writes
        .iter()
        .filter_map(|w| w.window.resp.map(|t| (t, w.value)))
        .collect();
    by_resp.sort_unstable();
    let mut resp_prefix_max: Vec<u64> = Vec::with_capacity(by_resp.len());
    let mut run = 0;
    for &(_, v) in &by_resp {
        run = run.max(v);
        resp_prefix_max.push(run);
    }
    // Largest completed write strictly before time t.
    let max_completed_before = |t: u64| -> u128 {
        let cnt = count_lt_key(&by_resp, t);
        if cnt == 0 {
            0
        } else {
            u128::from(resp_prefix_max[cnt - 1])
        }
    };

    // Event-ordered sweep: write invocations (computing ev) interleaved
    // with read responses (finalizing minimal maxima). At equal times a
    // write invocation is processed first, so `w.inv <= r.resp` witnesses
    // are available, while `r'.resp < w.inv` reads are strictly earlier.
    #[derive(Clone, Copy)]
    enum Event {
        WriteInv(usize),
        ReadResp(usize),
    }
    let mut events: Vec<(u64, u8, Event)> = Vec::new();
    for (i, w) in h.writes.iter().enumerate() {
        events.push((w.window.inv, 0, Event::WriteInv(i)));
    }
    for (i, r) in h.reads.iter().enumerate() {
        events.push((r.resp, 1, Event::ReadResp(i)));
    }
    events.sort_by_key(|&(t, tie, _)| (t, tie));

    // Finalized reads as (resp, running max of minimal maxima), in
    // response order.
    let mut read_chain: Vec<(u64, u128)> = Vec::new();
    let max_read_before = |chain: &[(u64, u128)], t: u64| -> u128 {
        let cnt = chain.partition_point(|&(resp, _)| resp < t);
        if cnt == 0 {
            0
        } else {
            chain[cnt - 1].1
        }
    };
    // Effective values of writes whose invocation the sweep has passed.
    let mut witnesses: Vec<u128> = Vec::new();

    for &(_, _, ev) in &events {
        match ev {
            Event::WriteInv(i) => {
                let w = &h.writes[i];
                let forced = max_completed_before(w.window.inv)
                    .max(max_read_before(&read_chain, w.window.inv));
                witnesses.push(u128::from(w.value).max(forced));
            }
            Event::ReadResp(i) => {
                let r = &h.reads[i];
                let spec_lo = r.value.div_ceil(kk.max(1)).min(r.value);
                let spec_hi = r.value.saturating_mul(kk);
                let base = max_completed_before(r.inv).max(max_read_before(&read_chain, r.inv));
                let m = if base >= spec_lo {
                    // The forced maximum alone is admissible (and
                    // realized) -- no extra witness needed.
                    (base <= spec_hi).then_some(base)
                } else {
                    // Need a witness write (invoked at or before r.resp --
                    // a write w may precede r iff r does not strictly
                    // precede w) whose effective value is admissible.
                    witnesses
                        .iter()
                        .copied()
                        .filter(|&ev| ev >= spec_lo && ev <= spec_hi)
                        .min()
                };
                match m {
                    Some(m) => {
                        let running = read_chain.last().map_or(0, |&(_, x)| x).max(m);
                        read_chain.push((r.resp, running));
                    }
                    None => {
                        return Err(Violation {
                            message: format!(
                                "read #{i} (window [{}, {}]) returned {} but \
                                 no admissible maximum exists: forced maximum \
                                 {base}, admissible value window [{spec_lo}, \
                                 {spec_hi}], and no witness write invoked by \
                                 {} has an effective value in that window \
                                 (k = {k})",
                                r.inv, r.resp, r.value, r.resp
                            ),
                        })
                    }
                }
            }
        }
    }
    Ok(())
}

/// Elements of a sorted slice strictly less than `t`.
fn count_lt(sorted: &[u64], t: u64) -> usize {
    sorted.partition_point(|&x| x < t)
}

/// Elements of a sorted slice less than or equal to `t`.
fn count_leq(sorted: &[u64], t: u64) -> usize {
    sorted.partition_point(|&x| x <= t)
}

/// Elements of a key-sorted slice with key strictly less than `t`.
fn count_lt_key(sorted: &[(u64, u64)], t: u64) -> usize {
    sorted.partition_point(|&(x, _)| x < t)
}

/// Elements of a sorted slice less than or equal to `t`.
fn partition_point_leq(sorted: &[u64], t: u64) -> usize {
    sorted.partition_point(|&x| x <= t)
}

/// A Fenwick (binary indexed) tree over `len` slots, counting points.
struct Fenwick {
    tree: Vec<u64>,
    total: u64,
}

impl Fenwick {
    fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
            total: 0,
        }
    }

    fn add(&mut self, i: usize, delta: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
        self.total += delta;
    }

    /// Sum of slots `0..=i-1` (prefix of length `i`).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i.min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Points in slots `from..` (suffix).
    fn count_suffix(&self, from: usize) -> u64 {
        self.total - self.prefix(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Interval, TimedRead, TimedWrite};

    fn inc(inv: u64, resp: u64) -> Interval {
        Interval::done(inv, resp)
    }

    fn read(inv: u64, resp: u64, value: u128) -> TimedRead {
        TimedRead { inv, resp, value }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_counter(&CounterHistory::default(), 2).is_ok());
        assert!(check_maxreg(&MaxRegHistory::default(), 2).is_ok());
    }

    #[test]
    fn exact_sequential_counter_accepts() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
    }

    #[test]
    fn exact_sequential_counter_rejects_wrong_value() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 3)],
        };
        assert!(check_counter(&h, 1).is_err());
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn relaxation_widens_acceptance() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 4)],
        };
        assert!(check_counter(&h, 1).is_err(), "exact rejects 4 for v=2");
        assert!(check_counter(&h, 2).is_ok(), "k=2 accepts 4 for v=2");
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter(&h, 2).is_ok(), "k=2 accepts 1 for v=2");
    }

    #[test]
    fn concurrent_increment_may_or_may_not_count() {
        // inc concurrent with the read: both 0 and 1 acceptable.
        for ret in [0u128, 1] {
            let h = CounterHistory {
                incs: vec![inc(0, 10)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
        let h = CounterHistory {
            incs: vec![inc(0, 10)],
            reads: vec![read(1, 2, 2)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn long_lived_increment_forces_accumulation() {
        // The trap the pairwise D-term exists for: a long increment iP
        // counted by read 1 plus a short increment completed in between
        // force read 2 to see at least 2.
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4)],
            reads: vec![read(1, 2, 1), read(5, 6, 1)],
        };
        assert!(
            check_counter(&h, 1).is_err(),
            "read1 counted iP; the short inc is forced between the reads"
        );
        let h = CounterHistory {
            incs: vec![inc(0, 100), inc(3, 4)],
            reads: vec![read(1, 2, 1), read(5, 6, 2)],
        };
        assert!(check_counter(&h, 1).is_ok());
    }

    #[test]
    fn sequenced_reads_must_be_monotone() {
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 1), read(4, 5, 0)],
        };
        assert!(check_counter(&h, 1).is_err());
    }

    #[test]
    fn additive_spec_accepts_and_rejects() {
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3), inc(4, 5)],
            reads: vec![read(6, 7, 1)],
        };
        assert!(check_counter_additive(&h, 2).is_ok(), "|3 − 1| ≤ 2");
        assert!(check_counter_additive(&h, 1).is_err(), "|3 − 1| > 1");
        // Additive overshoot is also allowed.
        let h = CounterHistory {
            incs: vec![inc(0, 1)],
            reads: vec![read(2, 3, 3)],
        };
        assert!(check_counter_additive(&h, 2).is_ok());
        assert!(check_counter_additive(&h, 1).is_err());
    }

    #[test]
    fn custom_window_checker() {
        // A "never below half" spec via the generic entry point.
        let h = CounterHistory {
            incs: vec![inc(0, 1), inc(2, 3)],
            reads: vec![read(4, 5, 1)],
        };
        assert!(check_counter_with(&h, |x| (x, x * 2)).is_ok());
        assert!(check_counter_with(&h, |x| (x, x)).is_err());
    }

    #[test]
    fn pending_increment_is_optional() {
        for ret in [0u128, 1] {
            let h = CounterHistory {
                incs: vec![Interval::pending(0)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_counter(&h, 1).is_ok(), "ret {ret}");
        }
    }

    fn write(inv: u64, resp: u64, value: u64) -> TimedWrite {
        TimedWrite {
            window: Interval::done(inv, resp),
            value,
        }
    }

    #[test]
    fn exact_maxreg_accepts_and_rejects() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5), write(2, 3, 3)],
            reads: vec![read(4, 5, 5)],
        };
        assert!(check_maxreg(&h, 1).is_ok());
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 3)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "3 was never the maximum");
    }

    #[test]
    fn kmult_maxreg_accepts_magnitude() {
        // Algorithm 2 returns k^p ∈ [v, v·k]: e.g. v = 5, k = 2, x = 8.
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 5)],
            reads: vec![read(2, 3, 8)],
        };
        assert!(check_maxreg(&h, 1).is_err());
        assert!(check_maxreg(&h, 2).is_ok());
    }

    #[test]
    fn maxreg_sequenced_reads_monotone() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 8), write(2, 3, 2)],
            reads: vec![read(4, 5, 8), read(6, 7, 2)],
        };
        assert!(check_maxreg(&h, 1).is_err(), "maximum cannot shrink");
    }

    #[test]
    fn maxreg_concurrent_write_optional() {
        for ret in [0u128, 4] {
            let h = MaxRegHistory {
                writes: vec![write(0, 10, 4)],
                reads: vec![read(1, 2, ret)],
            };
            assert!(check_maxreg(&h, 1).is_ok(), "ret {ret}");
        }
    }

    #[test]
    fn maxreg_zero_read_requires_zero_history() {
        let h = MaxRegHistory {
            writes: vec![write(0, 1, 4)],
            reads: vec![read(2, 3, 0)],
        };
        assert!(check_maxreg(&h, 3).is_err(), "x = 0 forces v = 0");
    }

    #[test]
    fn fenwick_counts() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 1);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 1);
        assert_eq!(f.prefix(4), 3);
        assert_eq!(f.prefix(8), 4);
        assert_eq!(f.count_suffix(4), 1);
        assert_eq!(f.count_suffix(0), 4);
    }
}
