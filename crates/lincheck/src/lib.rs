//! # lincheck — linearizability checking for (relaxed) monotone objects
//!
//! Validates recorded histories against the paper's sequential
//! specifications:
//!
//! * the **exact counter** / **exact max register**;
//! * the **k-multiplicative-accurate** variants, where a read may return
//!   any `x` with `v/k ≤ x ≤ v·k` for the exact value `v` at its
//!   linearization point (`k = 1` recovers the exact specs).
//!
//! Two engines:
//!
//! * [`monotone`] — an `O(h log h)` decision procedure exploiting
//!   monotonicity: each read constrains the object value over its
//!   real-time window to an interval; a greedy minimal assignment that
//!   respects real-time read ordering exists iff the history is
//!   linearizable. This is the engine used by the stress tests.
//! * [`wg`] — an exhaustive Wing&ndash;Gong search (with memoization),
//!   exponential but spec-agnostic; used on small randomized histories to
//!   cross-validate the monotone engine (see this crate's tests).
//!
//! Histories come from [`smr::History`] records via
//! [`CounterHistory::from_records`] / [`MaxRegHistory::from_records`], or
//! can be built by hand.

mod history;
pub mod monotone;
pub mod wg;

pub use history::{CounterHistory, Interval, MaxRegHistory, TimedRead, TimedWrite, Violation};
