//! # lincheck — linearizability checking for (relaxed) monotone objects
//!
//! Validates recorded histories against the paper's sequential
//! specifications:
//!
//! * the **exact counter** / **exact max register**;
//! * the **k-multiplicative-accurate** variants, where a read may return
//!   any `x` with `v/k ≤ x ≤ v·k` for the exact value `v` at its
//!   linearization point (`k = 1` recovers the exact specs).
//!
//! Three engines:
//!
//! * [`monotone`] — the production decision procedure exploiting
//!   monotonicity: each read constrains the object value over its
//!   real-time window to an interval; a greedy minimal assignment that
//!   respects real-time read ordering exists iff the history is
//!   linearizable. The counter checker evaluates the cross-read
//!   constraints with a timestamp sweep over a monotone stack in
//!   `O(R log R + I log I)`; this is the engine used by the stress tests
//!   and sized for million-op histories.
//! * [`naive`] — the retired quadratic transcriptions of the same
//!   predicates, retained as cross-validation references.
//! * [`wg`] — an exhaustive Wing&ndash;Gong search (with memoization),
//!   exponential but spec-agnostic; used on small randomized histories to
//!   cross-validate the polynomial engines (see this crate's tests).
//!
//! Beyond the per-object specs, [`sketchlog`] checks the `sketch`
//! crate's *composed* aggregation reads (top-k digests, quantile/rank
//! answers) against rank-error envelopes derived from the per-counter
//! bounds — see its module docs and DESIGN.md §6.
//!
//! Histories come from the **typed** [`smr::History`] event log via
//! [`CounterHistory::from_records`] / [`MaxRegHistory::from_records`]
//! (pattern-matching on [`smr::OpKind`] — no label strings, and records
//! outside the object vocabulary are rejected with [`UnsupportedOp`],
//! not a panic), or can be built by hand. For `smr::explore`'s checker
//! closures, [`records`] bundles extraction and checking into one call
//! returning the explorer's `Result<(), String>` shape.

mod history;
pub mod monotone;
pub mod naive;
pub mod online;
pub mod pass;
pub mod records;
pub mod sketchlog;
mod sweep;
pub mod wg;

pub use history::{
    CounterHistory, Interval, MaxRegHistory, TimedInc, TimedRead, TimedWrite, UnsupportedOp,
    Violation,
};
pub use online::{CounterSpec, OnlineChecker};
pub use pass::LinearizabilityPass;
pub use records::{check_counter_records, check_maxreg_records};
pub use sketchlog::{check_quantile_records, check_topk_records, SketchEnvelope};
