//! History representations consumed by the checkers.
//!
//! Extraction from driver records is **typed**: [`CounterHistory`] and
//! [`MaxRegHistory`] pattern-match on [`smr::OpKind`] — no label
//! strings — and a record outside the expected vocabulary is rejected
//! with an [`UnsupportedOp`] error instead of a panic. Increment records
//! carry a multiplicity ([`TimedInc::amount`]): one submitted closure
//! that performs N unit increments is weighted as N by the checkers.

use smr::{History, OpKind};

/// An operation's execution window. `resp = None` means the operation
/// never completed (its effects may or may not have taken place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Invocation timestamp.
    pub inv: u64,
    /// Response timestamp, if the operation completed.
    pub resp: Option<u64>,
}

impl Interval {
    /// A completed operation window.
    pub fn done(inv: u64, resp: u64) -> Self {
        assert!(inv < resp, "response must follow invocation");
        Interval {
            inv,
            resp: Some(resp),
        }
    }

    /// A pending operation window.
    pub fn pending(inv: u64) -> Self {
        Interval { inv, resp: None }
    }

    /// `true` if `self` completed before `other` was invoked.
    pub fn precedes(&self, other: &Interval) -> bool {
        matches!(self.resp, Some(r) if r < other.inv)
    }
}

/// A completed read operation and the value it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRead {
    /// Invocation timestamp.
    pub inv: u64,
    /// Response timestamp.
    pub resp: u64,
    /// The value the read returned.
    pub value: u128,
}

/// An increment operation: a window plus a multiplicity. A batch of
/// `amount` unit increments submitted as one closure is one `TimedInc`;
/// the checkers treat it exactly like `amount` unit increments sharing
/// the window (a pending batch may have landed any prefix of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedInc {
    /// Execution window.
    pub window: Interval,
    /// How many unit increments the operation performs.
    pub amount: u64,
}

impl TimedInc {
    /// A single unit increment over `window`.
    pub fn unit(window: Interval) -> Self {
        TimedInc { window, amount: 1 }
    }

    /// A batch of `amount` unit increments over `window`.
    pub fn batch(window: Interval, amount: u64) -> Self {
        TimedInc { window, amount }
    }
}

/// A write operation (max-register histories) and its argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedWrite {
    /// Execution window.
    pub window: Interval,
    /// The written value.
    pub value: u64,
}

/// Why a history is not linearizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable diagnosis naming the offending read.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Violation {}

/// A record that does not belong to the object vocabulary a history
/// extractor expected — e.g. a `Custom` op (whose argument may not even
/// fit the object's value domain) in a counter history, or a `Write` in
/// one. Returned by the `from_records` constructors instead of
/// panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedOp {
    /// Invoking process of the offending record.
    pub pid: usize,
    /// Diagnostic label of the offending record.
    pub label: &'static str,
    /// Which history extraction rejected it.
    pub expected: &'static str,
}

impl std::fmt::Display for UnsupportedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "operation \"{}\" (pid {}) is not part of the {} vocabulary",
            self.label, self.pid, self.expected
        )
    }
}

impl std::error::Error for UnsupportedOp {}

/// A counter history: (weighted) increments plus reads.
#[derive(Debug, Clone, Default)]
pub struct CounterHistory {
    /// Increment windows (completed and pending) with multiplicities.
    pub incs: Vec<TimedInc>,
    /// Completed reads (pending reads returned nothing checkable).
    pub reads: Vec<TimedRead>,
}

impl CounterHistory {
    /// Extract a counter history from driver records: `Inc` records are
    /// increments (weighted by their `amount`), `Read` records are
    /// reads. Pending reads are dropped; pending increments are kept
    /// (their effect is optional). A `Write` or `Custom` record is
    /// rejected with [`UnsupportedOp`].
    pub fn from_records(h: &History) -> Result<Self, UnsupportedOp> {
        let mut out = CounterHistory::default();
        for op in h.ops() {
            match op.kind {
                OpKind::Inc { amount } => out.incs.push(TimedInc {
                    window: Interval {
                        inv: op.inv,
                        resp: op.resp,
                    },
                    amount,
                }),
                OpKind::Read { returned } => {
                    if let Some(resp) = op.resp {
                        out.reads.push(TimedRead {
                            inv: op.inv,
                            resp,
                            value: returned,
                        });
                    }
                }
                OpKind::Write { .. } | OpKind::Custom { .. } => {
                    return Err(UnsupportedOp {
                        pid: op.pid,
                        label: op.label(),
                        expected: "counter",
                    })
                }
            }
        }
        Ok(out)
    }

    /// Total completed unit increments (weighted by multiplicity) — the
    /// exact quiescent count.
    pub fn completed_incs(&self) -> u128 {
        self.incs
            .iter()
            .filter(|i| i.window.resp.is_some())
            .map(|i| u128::from(i.amount))
            .sum()
    }
}

/// A max-register history: writes plus reads.
#[derive(Debug, Clone, Default)]
pub struct MaxRegHistory {
    /// Writes (completed and pending) with their arguments.
    pub writes: Vec<TimedWrite>,
    /// Completed reads.
    pub reads: Vec<TimedRead>,
}

impl MaxRegHistory {
    /// Extract a max-register history from driver records: `Write`
    /// records are writes (the value is `u64` by construction — no
    /// narrowing, no panic), `Read` records are reads. An `Inc` or
    /// `Custom` record (whose argument may exceed the register's `u64`
    /// domain) is rejected with [`UnsupportedOp`].
    pub fn from_records(h: &History) -> Result<Self, UnsupportedOp> {
        let mut out = MaxRegHistory::default();
        for op in h.ops() {
            match op.kind {
                OpKind::Write { value } => out.writes.push(TimedWrite {
                    window: Interval {
                        inv: op.inv,
                        resp: op.resp,
                    },
                    value,
                }),
                OpKind::Read { returned } => {
                    if let Some(resp) = op.resp {
                        out.reads.push(TimedRead {
                            inv: op.inv,
                            resp,
                            value: returned,
                        });
                    }
                }
                OpKind::Inc { .. } | OpKind::Custom { .. } => {
                    return Err(UnsupportedOp {
                        pid: op.pid,
                        label: op.label(),
                        expected: "max-register",
                    })
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{OpRecord, OpSpec};

    fn rec(pid: usize, spec: OpSpec, ret: u128, inv: u64, resp: Option<u64>) -> OpRecord {
        OpRecord {
            pid,
            kind: spec.kind(ret),
            inv,
            resp,
            steps: 1,
        }
    }

    #[test]
    fn interval_precedence() {
        let a = Interval::done(0, 5);
        let b = Interval::done(6, 9);
        let c = Interval::pending(1);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!c.precedes(&b));
    }

    #[test]
    #[should_panic(expected = "response must follow")]
    fn bad_interval_rejected() {
        let _ = Interval::done(5, 5);
    }

    #[test]
    fn from_records_partitions_ops() {
        let mut h = History::new();
        h.push(rec(0, OpSpec::inc(), 0, 0, Some(1)));
        h.push(rec(1, OpSpec::read(), 7, 2, Some(3)));
        h.push(rec(2, OpSpec::read(), 9, 4, None));
        h.push(rec(2, OpSpec::inc_by(3), 0, 5, None));
        let ch = CounterHistory::from_records(&h).expect("typed counter history");
        assert_eq!(ch.incs.len(), 2);
        assert_eq!(ch.reads.len(), 1, "pending read dropped");
        assert_eq!(ch.completed_incs(), 1, "pending batch not counted");
    }

    #[test]
    fn batched_increments_are_weighted() {
        let mut h = History::new();
        h.push(rec(0, OpSpec::inc_by(10), 0, 0, Some(1)));
        h.push(rec(1, OpSpec::inc(), 0, 2, Some(3)));
        let ch = CounterHistory::from_records(&h).expect("typed counter history");
        assert_eq!(ch.incs.len(), 2, "two records");
        assert_eq!(ch.completed_incs(), 11, "eleven unit increments");
    }

    #[test]
    fn counter_history_rejects_foreign_ops_gracefully() {
        let mut h = History::new();
        h.push(rec(0, OpSpec::inc(), 0, 0, Some(1)));
        h.push(rec(3, OpSpec::custom("cas", 9), 1, 2, Some(3)));
        let err = CounterHistory::from_records(&h).expect_err("custom op rejected");
        assert_eq!(err.pid, 3);
        assert_eq!(err.label, "cas");
        assert!(err.to_string().contains("counter"));
    }

    #[test]
    fn maxreg_history_accepts_writes_rejects_custom() {
        let mut h = History::new();
        h.push(rec(0, OpSpec::write(5), 0, 0, Some(1)));
        h.push(rec(1, OpSpec::read(), 5, 2, Some(3)));
        let mh = MaxRegHistory::from_records(&h).expect("typed maxreg history");
        assert_eq!(mh.writes.len(), 1);
        assert_eq!(mh.reads.len(), 1);

        // Regression: an oversized argument can only enter through the
        // Custom escape hatch now, and it is rejected gracefully — the
        // old `u64::try_from(arg).expect(...)` panic path is gone.
        h.push(rec(2, OpSpec::custom("write", u128::MAX), 0, 4, Some(5)));
        let err = MaxRegHistory::from_records(&h).expect_err("oversized custom op rejected");
        assert_eq!(err.pid, 2);
        assert!(err.to_string().contains("max-register"));
    }
}
