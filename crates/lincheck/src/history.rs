//! History representations consumed by the checkers.

use smr::History;

/// An operation's execution window. `resp = None` means the operation
/// never completed (its effects may or may not have taken place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Invocation timestamp.
    pub inv: u64,
    /// Response timestamp, if the operation completed.
    pub resp: Option<u64>,
}

impl Interval {
    /// A completed operation window.
    pub fn done(inv: u64, resp: u64) -> Self {
        assert!(inv < resp, "response must follow invocation");
        Interval {
            inv,
            resp: Some(resp),
        }
    }

    /// A pending operation window.
    pub fn pending(inv: u64) -> Self {
        Interval { inv, resp: None }
    }

    /// `true` if `self` completed before `other` was invoked.
    pub fn precedes(&self, other: &Interval) -> bool {
        matches!(self.resp, Some(r) if r < other.inv)
    }
}

/// A completed read operation and the value it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRead {
    /// Invocation timestamp.
    pub inv: u64,
    /// Response timestamp.
    pub resp: u64,
    /// The value the read returned.
    pub value: u128,
}

/// A write operation (max-register histories) and its argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedWrite {
    /// Execution window.
    pub window: Interval,
    /// The written value.
    pub value: u64,
}

/// Why a history is not linearizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable diagnosis naming the offending read.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Violation {}

/// A counter history: unit increments plus reads.
#[derive(Debug, Clone, Default)]
pub struct CounterHistory {
    /// Increment windows (completed and pending).
    pub incs: Vec<Interval>,
    /// Completed reads (pending reads returned nothing checkable).
    pub reads: Vec<TimedRead>,
}

impl CounterHistory {
    /// Extract a counter history from driver records: operations labelled
    /// `inc_label` are increments, `read_label` are reads. Pending reads
    /// are dropped; pending increments are kept (their effect is
    /// optional).
    pub fn from_records(h: &History, inc_label: &str, read_label: &str) -> Self {
        let mut out = CounterHistory::default();
        for op in h.ops() {
            if op.label == inc_label {
                out.incs.push(Interval {
                    inv: op.inv,
                    resp: op.resp,
                });
            } else if op.label == read_label {
                if let Some(resp) = op.resp {
                    out.reads.push(TimedRead {
                        inv: op.inv,
                        resp,
                        value: op.ret,
                    });
                }
            }
        }
        out
    }

    /// Total completed increments — the exact quiescent count.
    pub fn completed_incs(&self) -> u128 {
        self.incs.iter().filter(|i| i.resp.is_some()).count() as u128
    }
}

/// A max-register history: writes plus reads.
#[derive(Debug, Clone, Default)]
pub struct MaxRegHistory {
    /// Writes (completed and pending) with their arguments.
    pub writes: Vec<TimedWrite>,
    /// Completed reads.
    pub reads: Vec<TimedRead>,
}

impl MaxRegHistory {
    /// Extract a max-register history from driver records (`arg` is the
    /// written value for `write_label` operations).
    pub fn from_records(h: &History, write_label: &str, read_label: &str) -> Self {
        let mut out = MaxRegHistory::default();
        for op in h.ops() {
            if op.label == write_label {
                out.writes.push(TimedWrite {
                    window: Interval {
                        inv: op.inv,
                        resp: op.resp,
                    },
                    value: u64::try_from(op.arg).expect("written value fits u64"),
                });
            } else if op.label == read_label {
                if let Some(resp) = op.resp {
                    out.reads.push(TimedRead {
                        inv: op.inv,
                        resp,
                        value: op.ret,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::OpRecord;

    #[test]
    fn interval_precedence() {
        let a = Interval::done(0, 5);
        let b = Interval::done(6, 9);
        let c = Interval::pending(1);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!c.precedes(&b));
    }

    #[test]
    #[should_panic(expected = "response must follow")]
    fn bad_interval_rejected() {
        let _ = Interval::done(5, 5);
    }

    #[test]
    fn from_records_partitions_ops() {
        let mut h = History::new();
        h.push(OpRecord {
            pid: 0,
            label: "inc",
            arg: 0,
            ret: 0,
            inv: 0,
            resp: Some(1),
            steps: 1,
        });
        h.push(OpRecord {
            pid: 1,
            label: "read",
            arg: 0,
            ret: 7,
            inv: 2,
            resp: Some(3),
            steps: 1,
        });
        h.push(OpRecord {
            pid: 2,
            label: "read",
            arg: 0,
            ret: 9,
            inv: 4,
            resp: None,
            steps: 1,
        });
        h.push(OpRecord {
            pid: 2,
            label: "inc",
            arg: 0,
            ret: 0,
            inv: 5,
            resp: None,
            steps: 1,
        });
        let ch = CounterHistory::from_records(&h, "inc", "read");
        assert_eq!(ch.incs.len(), 2);
        assert_eq!(ch.reads.len(), 1, "pending read dropped");
        assert_eq!(ch.completed_incs(), 1);
    }
}
