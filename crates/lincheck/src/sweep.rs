//! The monotone stack shared by the offline counter sweep
//! ([`crate::monotone::check_counter_with`]) and the streaming checker
//! ([`crate::online`]): entries `(resp, term)` inserted in
//! nondecreasing `resp` order, supporting
//!
//! * `raise_before(t, w)` — add `w` to the term of every entry with
//!   `resp < t` (a *prefix* of the stack);
//! * `max()` — the largest current term;
//! * `insert(resp, term)` — add an entry at the top.
//!
//! Invariant: terms strictly increase from bottom (oldest `resp`) to
//! top. An entry whose term is overtaken by an earlier entry is
//! *dominated forever* — every future `raise_before` that reaches it
//! also reaches the earlier entry — so it is retired. Terms are stored
//! as successive differences in an append-only sorted vec: a prefix
//! raise is `+w` on the first live difference and a deficit walk from
//! the boundary (one `partition_point`) that retires entries whose
//! difference it exhausts. Retired entries keep a zero diff in place —
//! prefix sums are unaffected — and are hopped over with union-find
//! "next live" pointers that compress on traversal, so the walk costs
//! `O(α)` amortized per retired entry and nothing is allocated after
//! construction. (The previous `BTreeMap` encoding hit an allocator +
//! pointer-chasing knee near 10⁶ records.)
//!
//! The offline sweep only appends; the streaming checker additionally
//! needs the state to stay *small* on unbounded histories, which
//! [`MonotoneStack::fold_and_compact`] provides: any two adjacent live
//! entries whose gap can no longer contain a future raise boundary are
//! observationally identical and fold into one (see the method docs for
//! the argument).

pub(crate) struct MonotoneStack {
    /// `(resp, diff)` in nondecreasing `resp` order; the term of a live
    /// entry is the sum of all diffs up to and including its own.
    entries: Vec<(u64, u128)>,
    /// Next-live pointers: `skip[i] == i` marks a live entry; a dead
    /// entry points at some strictly larger index (possibly
    /// `entries.len()`). Dead entries are never revived — a same-`resp`
    /// replacement appends a fresh entry instead — so compressed paths
    /// stay valid forever (until a physical compaction rebuilds both
    /// vecs from scratch).
    skip: Vec<usize>,
    /// Number of live entries.
    live: usize,
    /// Sum of all diffs = term of the top live entry = current maximum.
    total: u128,
}

impl MonotoneStack {
    /// An empty stack pre-sized for `cap` inserts (each `insert` appends
    /// at most one entry, so a sweep over `R` reads never reallocates).
    pub(crate) fn with_capacity(cap: usize) -> Self {
        MonotoneStack {
            entries: Vec::with_capacity(cap),
            skip: Vec::with_capacity(cap),
            live: 0,
            total: 0,
        }
    }

    /// Largest current term, if any entry is live.
    pub(crate) fn max(&self) -> Option<u128> {
        (self.live > 0).then_some(self.total)
    }

    /// Number of live entries (the analogue of the old map's `len`).
    pub(crate) fn live_len(&self) -> usize {
        self.live
    }

    /// First live index at or after `i` (or `entries.len()`), with path
    /// compression over the dead chain it walked.
    fn first_live(&mut self, i: usize) -> usize {
        let mut j = i;
        while j < self.entries.len() && self.skip[j] != j {
            j = self.skip[j];
        }
        let mut k = i;
        while k < self.entries.len() && self.skip[k] != k {
            k = std::mem::replace(&mut self.skip[k], j);
        }
        j
    }

    /// Retire entry `i`: zero diff stays in place, pointers hop past it.
    fn retire(&mut self, i: usize) {
        self.entries[i].1 = 0;
        self.skip[i] = i + 1;
        self.live -= 1;
    }

    /// Push `(resp, term)`. Requires `resp` ≥ every present key (inserts
    /// arrive in response order). A term not exceeding the current
    /// maximum is dominated on arrival and discarded.
    pub(crate) fn insert(&mut self, resp: u64, term: u128) {
        if self.live > 0 && term <= self.total {
            return;
        }
        // An existing live entry at the same `resp` (necessarily the
        // top) has identical future exposure and a smaller term: retire
        // it, folding its diff into the newcomer's.
        let mut folded = 0;
        if let Some(i) = self.entries.len().checked_sub(1) {
            debug_assert!(self.entries[i].0 <= resp, "inserts arrive in resp order");
            if self.entries[i].0 == resp && self.skip[i] == i {
                folded = self.entries[i].1;
                self.retire(i);
            }
        }
        self.entries.push((resp, term - self.total + folded));
        self.skip.push(self.skip.len());
        self.live += 1;
        self.total = term;
    }

    /// Add `w` to the term of every entry with `resp < t`, retiring
    /// entries this dominates.
    pub(crate) fn raise_before(&mut self, t: u64, w: u128) {
        let first = self.first_live(0);
        if first >= self.entries.len() || self.entries[first].0 >= t {
            return; // no live entry precedes t
        }
        self.entries[first].1 += w;
        self.total += w;
        // Restore the terms of entries at or beyond the boundary by
        // walking the deficit through their diffs; an exhausted diff
        // means the entry's term sank to its predecessor's — dominated.
        let mut deficit = w;
        let mut i = self.entries.partition_point(|&(resp, _)| resp < t);
        loop {
            i = self.first_live(i);
            if i >= self.entries.len() {
                break;
            }
            let d = deficit.min(self.entries[i].1);
            self.entries[i].1 -= d;
            deficit -= d;
            self.total -= d;
            if self.entries[i].1 == 0 {
                self.retire(i);
            }
            if deficit == 0 {
                break;
            }
            i += 1;
        }
    }

    /// Fold adjacent live entries whose gap is sealed, then physically
    /// compact the backing vecs down to the surviving live entries.
    ///
    /// The stack's observable behavior depends only on the term of the
    /// last live entry *below* each future `raise_before(t, ..)`
    /// boundary, plus the top term (`max`). `protected(lo, hi)` must
    /// answer whether some future boundary `t` can still satisfy
    /// `lo < t ≤ hi`: for the streaming counter checker those
    /// boundaries are exactly the invocation timestamps of in-flight
    /// increments (everything else is already in the past). When no
    /// boundary can land in `(lo, hi]`, the entry at `lo` is never
    /// again the last-below-a-boundary entry on its own, so its diff
    /// folds into its live successor — total and every still-reachable
    /// term are unchanged. Folding is monotone: gaps only seal further
    /// as in-flight increments complete, so a fold is never regretted.
    ///
    /// Costs `O(live + dead)`; callers amortize it by invoking only
    /// when `live_len` has roughly doubled since the previous call.
    pub(crate) fn fold_and_compact(&mut self, protected: impl Fn(u64, u64) -> bool) {
        let mut kept: Vec<(u64, u128)> = Vec::with_capacity(self.live);
        let mut i = self.first_live(0);
        while i < self.entries.len() {
            let (resp, diff) = self.entries[i];
            match kept.last().copied() {
                Some((lo, folded)) if !protected(lo, resp) => {
                    kept.pop();
                    kept.push((resp, folded + diff));
                }
                _ => kept.push((resp, diff)),
            }
            i = self.first_live(i + 1);
        }
        self.live = kept.len();
        self.skip.clear();
        self.skip.extend(0..kept.len());
        self.entries = kept;
        debug_assert_eq!(
            self.entries.iter().map(|&(_, d)| d).sum::<u128>(),
            self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_stack_prefix_raises_and_domination() {
        let mut s = MonotoneStack::with_capacity(4);
        assert_eq!(s.max(), None);
        s.insert(2, 5);
        s.insert(4, 7);
        s.insert(6, 20);
        assert_eq!(s.max(), Some(20));
        // Raise entries with resp < 3 by 4: terms 9, 7→dominated, 20.
        s.raise_before(3, 4);
        assert_eq!(s.max(), Some(20));
        assert_eq!(s.live_len(), 2, "middle entry retired");
        // Raise entries with resp < 7 by 100: both remaining entries.
        s.raise_before(7, 100);
        assert_eq!(s.max(), Some(120));
        // Dominated-on-arrival insert is discarded.
        s.insert(9, 3);
        assert_eq!(s.live_len(), 2);
        // Raise with boundary before everything: no-op.
        s.raise_before(1, 50);
        assert_eq!(s.max(), Some(120));
    }

    #[test]
    fn fold_merges_sealed_gaps_only() {
        let mut s = MonotoneStack::with_capacity(4);
        s.insert(2, 5);
        s.insert(4, 7);
        s.insert(6, 20);
        // A boundary can still land in (2, 4]; the gap (4, 6] is sealed.
        s.fold_and_compact(|lo, hi| lo < 4 && 4 <= hi);
        assert_eq!(s.live_len(), 2);
        assert_eq!(s.max(), Some(20));
        // The surviving prefix entry still absorbs raises below 4...
        s.raise_before(4, 10);
        assert_eq!(s.max(), Some(20), "15 < 20: top unchanged");
        s.raise_before(4, 10);
        assert_eq!(s.max(), Some(25), "prefix term 25 overtakes the top");
        // ...and with every gap sealed the stack collapses to one entry.
        s.fold_and_compact(|_, _| false);
        assert_eq!(s.live_len(), 1);
        assert_eq!(s.max(), Some(25));
    }

    #[test]
    fn fold_is_invisible_to_an_interleaved_raise_insert_workload() {
        // Run the same script with and without periodic folding, where
        // the fold's `protected` oracle is fed the script's own future
        // raise boundaries — results must match exactly.
        let script: Vec<(u8, u64, u128)> = vec![
            (0, 2, 10),
            (0, 5, 12),
            (1, 3, 4), // raise_before(3, 4)
            (0, 7, 30),
            (1, 6, 100),
            (0, 9, 131),
            (1, 10, 1),
        ];
        let mut plain = MonotoneStack::with_capacity(8);
        let mut folded = MonotoneStack::with_capacity(8);
        for (step, (op, t, v)) in script.iter().copied().enumerate() {
            let future: Vec<u64> = script[step..]
                .iter()
                .filter(|&&(op, ..)| op == 1)
                .map(|&(_, t, _)| t)
                .collect();
            match op {
                0 => {
                    plain.insert(t, v);
                    folded.insert(t, v);
                }
                _ => {
                    plain.raise_before(t, v);
                    folded.raise_before(t, v);
                }
            }
            folded.fold_and_compact(|lo, hi| future.iter().any(|&b| lo < b && b <= hi));
            assert_eq!(plain.max(), folded.max(), "step {step}");
        }
        assert_eq!(folded.live_len(), 1, "all gaps sealed at the end");
    }
}
