//! The exhaustive Wing–Gong linearizability checker.
//!
//! Spec-agnostic, exponential-time, memoized DFS over (set of linearized
//! operations, object state). Practical up to ~20 operations — exactly
//! what is needed to cross-validate the polynomial [`monotone`] engine on
//! randomized small histories, which is its sole purpose here.
//!
//! [`monotone`]: crate::monotone

use std::collections::HashSet;

/// An operation for the exhaustive checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WgOp {
    /// A unit counter increment.
    Inc,
    /// A counter read returning the given value.
    CounterRead(u128),
    /// A max-register write of the given value.
    Write(u64),
    /// A max-register read returning the given value.
    MaxRead(u128),
}

/// An operation with its execution window (`resp = None` ⇒ pending).
#[derive(Debug, Clone, Copy)]
pub struct WgEvent {
    /// The operation and its payload.
    pub op: WgOp,
    /// Invocation timestamp.
    pub inv: u64,
    /// Response timestamp (`None` for pending operations).
    pub resp: Option<u64>,
}

/// `v/k ≤ x ≤ v·k` in exact integer arithmetic.
fn admissible(v: u128, x: u128, k: u64) -> bool {
    let k = u128::from(k);
    v <= x.saturating_mul(k) && x <= v.saturating_mul(k)
}

/// Decide linearizability of a history of counter/max-register operations
/// against the k-multiplicative spec (`k = 1` ⇒ exact). The object state
/// is a single `u128` (count, or current maximum) — do not mix counter
/// and max-register operations in one call.
pub fn wg_check(events: &[WgEvent], k: u64) -> bool {
    assert!(
        events.len() <= 24,
        "exhaustive checker is for small histories (got {})",
        events.len()
    );
    let all_completed: u32 = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.resp.is_some())
        .map(|(i, _)| 1u32 << i)
        .sum();
    let mut memo: HashSet<(u32, u128)> = HashSet::new();
    dfs(events, k, 0, 0, all_completed, &mut memo)
}

fn dfs(
    events: &[WgEvent],
    k: u64,
    done: u32,
    state: u128,
    all_completed: u32,
    memo: &mut HashSet<(u32, u128)>,
) -> bool {
    if done & all_completed == all_completed {
        return true;
    }
    if !memo.insert((done, state)) {
        return false;
    }
    for (i, e) in events.iter().enumerate() {
        if done & (1 << i) != 0 {
            continue;
        }
        // `e` may be linearized next iff no other unlinearized operation
        // completed before `e` was invoked.
        let blocked = events
            .iter()
            .enumerate()
            .any(|(j, f)| j != i && done & (1 << j) == 0 && matches!(f.resp, Some(r) if r < e.inv));
        if blocked {
            continue;
        }
        let next_state = match e.op {
            WgOp::Inc => Some(state + 1),
            WgOp::CounterRead(x) => admissible(state, x, k).then_some(state),
            WgOp::Write(v) => Some(state.max(u128::from(v))),
            WgOp::MaxRead(x) => admissible(state, x, k).then_some(state),
        };
        if let Some(s) = next_state {
            if dfs(events, k, done | (1 << i), s, all_completed, memo) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: WgOp, inv: u64, resp: u64) -> WgEvent {
        WgEvent {
            op,
            inv,
            resp: Some(resp),
        }
    }

    #[test]
    fn sequential_exact_counter() {
        let h = [
            ev(WgOp::Inc, 0, 1),
            ev(WgOp::Inc, 2, 3),
            ev(WgOp::CounterRead(2), 4, 5),
        ];
        assert!(wg_check(&h, 1));
        let bad = [ev(WgOp::Inc, 0, 1), ev(WgOp::CounterRead(2), 2, 3)];
        assert!(!wg_check(&bad, 1));
    }

    #[test]
    fn concurrent_ops_explore_both_orders() {
        // Read concurrent with an increment: 0 and 1 both fine.
        for ret in [0u128, 1] {
            let h = [
                WgEvent {
                    op: WgOp::Inc,
                    inv: 0,
                    resp: Some(10),
                },
                ev(WgOp::CounterRead(ret), 1, 2),
            ];
            assert!(wg_check(&h, 1), "ret {ret}");
        }
    }

    #[test]
    fn pending_ops_are_optional() {
        let h = [
            WgEvent {
                op: WgOp::Inc,
                inv: 0,
                resp: None,
            },
            ev(WgOp::CounterRead(0), 1, 2),
            ev(WgOp::CounterRead(1), 3, 4),
        ];
        // First read skips the pending inc, second includes it.
        assert!(wg_check(&h, 1));
    }

    #[test]
    fn relaxed_counter_spec() {
        let h = [
            ev(WgOp::Inc, 0, 1),
            ev(WgOp::Inc, 2, 3),
            ev(WgOp::Inc, 4, 5),
            ev(WgOp::CounterRead(6), 6, 7),
        ];
        assert!(!wg_check(&h, 1));
        assert!(wg_check(&h, 2), "6 ∈ [3/2, 6]");
        let too_high = [ev(WgOp::Inc, 0, 1), ev(WgOp::CounterRead(3), 2, 3)];
        assert!(!wg_check(&too_high, 2));
        assert!(wg_check(&too_high, 3));
    }

    #[test]
    fn maxreg_semantics() {
        let h = [
            ev(WgOp::Write(7), 0, 1),
            ev(WgOp::Write(3), 2, 3),
            ev(WgOp::MaxRead(7), 4, 5),
        ];
        assert!(wg_check(&h, 1));
        let bad = [ev(WgOp::Write(7), 0, 1), ev(WgOp::MaxRead(3), 2, 3)];
        assert!(!wg_check(&bad, 1));
        assert!(wg_check(&bad, 3), "3 ∈ [7/3, 21]");
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Write completes before read starts; read of stale 0 invalid.
        let h = [ev(WgOp::Write(9), 0, 1), ev(WgOp::MaxRead(0), 2, 3)];
        assert!(!wg_check(&h, 5), "x = 0 requires v = 0");
    }
}
