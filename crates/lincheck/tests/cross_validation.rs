//! Cross-validation of the polynomial monotone checker against the
//! exhaustive Wing–Gong checker on randomized small histories.
//!
//! The monotone engine's pairwise-interval argument is subtle (see the
//! `monotone` module docs); this test is the empirical proof obligation:
//! on thousands of random histories — dense with both linearizable and
//! non-linearizable cases — the two engines must agree exactly.

use lincheck::monotone::{check_counter, check_maxreg};
use lincheck::wg::{wg_check, WgEvent, WgOp};
use lincheck::{CounterHistory, Interval, MaxRegHistory, TimedRead, TimedWrite};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random operation windows over a small timestamp range so that
/// concurrency (and constraint violations) are frequent.
fn random_window(rng: &mut StdRng, horizon: u64) -> (u64, u64) {
    let a = rng.random_range(0..horizon);
    let b = rng.random_range(0..horizon);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    (lo, hi + 1) // ensure inv < resp
}

#[test]
fn counter_engines_agree_on_random_histories() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut disagreements = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for trial in 0..4_000 {
        let k = *[1u64, 2, 3].get(rng.random_range(0..3)).unwrap();
        let n_incs = rng.random_range(0..5);
        let n_reads = rng.random_range(1..4);
        let horizon = 12;

        let mut incs = Vec::new();
        let mut events = Vec::new();
        for _ in 0..n_incs {
            let (inv, resp) = random_window(&mut rng, horizon);
            let pending = rng.random_range(0..8) == 0;
            incs.push(if pending {
                Interval::pending(inv)
            } else {
                Interval::done(inv, resp)
            });
            events.push(WgEvent {
                op: WgOp::Inc,
                inv,
                resp: (!pending).then_some(resp),
            });
        }
        let mut reads = Vec::new();
        for _ in 0..n_reads {
            let (inv, resp) = random_window(&mut rng, horizon);
            let value = u128::from(rng.random_range(0..(n_incs as u64 * 2 + 3)));
            reads.push(TimedRead { inv, resp, value });
            events.push(WgEvent {
                op: WgOp::CounterRead(value),
                inv,
                resp: Some(resp),
            });
        }

        let h = CounterHistory { incs, reads };
        let mono = check_counter(&h, k).is_ok();
        let exhaustive = wg_check(&events, k);
        if mono {
            accepted += 1;
        } else {
            rejected += 1;
        }
        if mono != exhaustive {
            disagreements.push((trial, k, h.clone(), mono, exhaustive));
        }
    }
    assert!(
        disagreements.is_empty(),
        "engines disagree on {} histories; first: {:?}",
        disagreements.len(),
        disagreements.first()
    );
    // Sanity: the generator must exercise both verdicts heavily.
    assert!(
        accepted > 200,
        "only {accepted} accepted — generator too harsh"
    );
    assert!(
        rejected > 200,
        "only {rejected} rejected — generator too lax"
    );
}

#[test]
fn maxreg_engines_agree_on_random_histories() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut disagreements = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for trial in 0..4_000 {
        let k = *[1u64, 2, 3].get(rng.random_range(0..3)).unwrap();
        let n_writes = rng.random_range(0..5);
        let n_reads = rng.random_range(1..4);
        let horizon = 12;

        let mut writes = Vec::new();
        let mut events = Vec::new();
        for _ in 0..n_writes {
            let (inv, resp) = random_window(&mut rng, horizon);
            let value = rng.random_range(1..10u64);
            let pending = rng.random_range(0..8) == 0;
            writes.push(TimedWrite {
                window: if pending {
                    Interval::pending(inv)
                } else {
                    Interval::done(inv, resp)
                },
                value,
            });
            events.push(WgEvent {
                op: WgOp::Write(value),
                inv,
                resp: (!pending).then_some(resp),
            });
        }
        let mut reads = Vec::new();
        for _ in 0..n_reads {
            let (inv, resp) = random_window(&mut rng, horizon);
            let value = u128::from(rng.random_range(0..14u64));
            reads.push(TimedRead { inv, resp, value });
            events.push(WgEvent {
                op: WgOp::MaxRead(value),
                inv,
                resp: Some(resp),
            });
        }

        let h = MaxRegHistory { writes, reads };
        let mono = check_maxreg(&h, k).is_ok();
        let exhaustive = wg_check(&events, k);
        if mono {
            accepted += 1;
        } else {
            rejected += 1;
        }
        if mono != exhaustive {
            disagreements.push((trial, k, h.clone(), mono, exhaustive));
        }
    }
    assert!(
        disagreements.is_empty(),
        "engines disagree on {} histories; first: {:?}",
        disagreements.len(),
        disagreements.first()
    );
    assert!(
        accepted > 200,
        "only {accepted} accepted — generator too harsh"
    );
    assert!(
        rejected > 200,
        "only {rejected} rejected — generator too lax"
    );
}
