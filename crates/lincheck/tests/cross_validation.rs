//! Cross-validation of the polynomial checkers against independent
//! engines on randomized histories.
//!
//! Two layers of evidence:
//!
//! * **vs Wing–Gong** — the sweep engines must agree exactly with the
//!   exhaustive checker on thousands of small random histories, dense
//!   with both linearizable and non-linearizable cases (batched
//!   increments are expanded into unit `Inc` events for the exhaustive
//!   side).
//! * **vs the `naive` references** (property tests) — on larger random
//!   histories, beyond what Wing–Gong can explore, the `O(R log R)`
//!   sweep counter checker and the sweep max-register checker must
//!   agree with the retained quadratic transcriptions, including
//!   pending operations and multi-unit increment batches.

use lincheck::monotone::{check_counter, check_counter_additive, check_maxreg};
use lincheck::wg::{wg_check, WgEvent, WgOp};
use lincheck::{naive, CounterHistory, Interval, MaxRegHistory, TimedInc, TimedRead, TimedWrite};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random operation windows over a small timestamp range so that
/// concurrency (and constraint violations) are frequent.
fn random_window(rng: &mut StdRng, horizon: u64) -> (u64, u64) {
    let a = rng.random_range(0..horizon);
    let b = rng.random_range(0..horizon);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    (lo, hi + 1) // ensure inv < resp
}

#[test]
fn counter_engines_agree_on_random_histories() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut disagreements = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for trial in 0..4_000 {
        let k = *[1u64, 2, 3].get(rng.random_range(0..3)).unwrap();
        let n_incs = rng.random_range(0..5);
        let n_reads = rng.random_range(1..4);
        let horizon = 12;

        let mut incs = Vec::new();
        let mut events = Vec::new();
        for _ in 0..n_incs {
            let (inv, resp) = random_window(&mut rng, horizon);
            let pending = rng.random_range(0..8) == 0;
            let amount = 1 + rng.random_range(0..2); // occasional batch of 2
            incs.push(TimedInc {
                window: if pending {
                    Interval::pending(inv)
                } else {
                    Interval::done(inv, resp)
                },
                amount,
            });
            // The exhaustive checker sees a batch as `amount` unit
            // increments sharing the window — the semantics of the
            // multiplicity field.
            for _ in 0..amount {
                events.push(WgEvent {
                    op: WgOp::Inc,
                    inv,
                    resp: (!pending).then_some(resp),
                });
            }
        }
        let mut reads = Vec::new();
        for _ in 0..n_reads {
            let (inv, resp) = random_window(&mut rng, horizon);
            let value = u128::from(rng.random_range(0..(n_incs as u64 * 4 + 3)));
            reads.push(TimedRead { inv, resp, value });
            events.push(WgEvent {
                op: WgOp::CounterRead(value),
                inv,
                resp: Some(resp),
            });
        }

        let h = CounterHistory { incs, reads };
        let mono = check_counter(&h, k).is_ok();
        let exhaustive = wg_check(&events, k);
        if mono {
            accepted += 1;
        } else {
            rejected += 1;
        }
        if mono != exhaustive {
            disagreements.push((trial, k, h.clone(), mono, exhaustive));
        }
    }
    assert!(
        disagreements.is_empty(),
        "engines disagree on {} histories; first: {:?}",
        disagreements.len(),
        disagreements.first()
    );
    // Sanity: the generator must exercise both verdicts heavily.
    assert!(
        accepted > 200,
        "only {accepted} accepted — generator too harsh"
    );
    assert!(
        rejected > 200,
        "only {rejected} rejected — generator too lax"
    );
}

#[test]
fn maxreg_engines_agree_on_random_histories() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut disagreements = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for trial in 0..4_000 {
        let k = *[1u64, 2, 3].get(rng.random_range(0..3)).unwrap();
        let n_writes = rng.random_range(0..5);
        let n_reads = rng.random_range(1..4);
        let horizon = 12;

        let mut writes = Vec::new();
        let mut events = Vec::new();
        for _ in 0..n_writes {
            let (inv, resp) = random_window(&mut rng, horizon);
            let value = rng.random_range(1..10u64);
            let pending = rng.random_range(0..8) == 0;
            writes.push(TimedWrite {
                window: if pending {
                    Interval::pending(inv)
                } else {
                    Interval::done(inv, resp)
                },
                value,
            });
            events.push(WgEvent {
                op: WgOp::Write(value),
                inv,
                resp: (!pending).then_some(resp),
            });
        }
        let mut reads = Vec::new();
        for _ in 0..n_reads {
            let (inv, resp) = random_window(&mut rng, horizon);
            let value = u128::from(rng.random_range(0..14u64));
            reads.push(TimedRead { inv, resp, value });
            events.push(WgEvent {
                op: WgOp::MaxRead(value),
                inv,
                resp: Some(resp),
            });
        }

        let h = MaxRegHistory { writes, reads };
        let mono = check_maxreg(&h, k).is_ok();
        let exhaustive = wg_check(&events, k);
        if mono {
            accepted += 1;
        } else {
            rejected += 1;
        }
        if mono != exhaustive {
            disagreements.push((trial, k, h.clone(), mono, exhaustive));
        }
    }
    assert!(
        disagreements.is_empty(),
        "engines disagree on {} histories; first: {:?}",
        disagreements.len(),
        disagreements.first()
    );
    assert!(
        accepted > 200,
        "only {accepted} accepted — generator too harsh"
    );
    assert!(
        rejected > 200,
        "only {rejected} rejected — generator too lax"
    );
}

/// Strategy pieces: `(inv, duration, payload, pending-die)` tuples over
/// a small horizon so windows overlap heavily. A `pending-die` of 0
/// (1 in 6) makes the operation pending.
type OpTuple = (u64, u64, u64, u8);

fn counter_history(incs: &[OpTuple], reads: &[(u64, u64, u64)]) -> CounterHistory {
    CounterHistory {
        incs: incs
            .iter()
            .map(|&(inv, dur, amount, die)| TimedInc {
                window: if die == 0 {
                    Interval::pending(inv)
                } else {
                    Interval::done(inv, inv + dur)
                },
                amount,
            })
            .collect(),
        reads: reads
            .iter()
            .map(|&(inv, dur, value)| TimedRead {
                inv,
                resp: inv + dur,
                value: u128::from(value),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The sweep counter checker agrees with the retained pairwise
    /// reference on histories an exhaustive search could never cover:
    /// dozens of overlapping windows, pending increments, and batches.
    #[test]
    fn sweep_counter_agrees_with_naive_reference(
        k in 1u64..4,
        incs in prop::collection::vec((0u64..40, 1u64..15, 1u64..6, 0u8..6), 0..30),
        reads in prop::collection::vec((0u64..40, 1u64..15, 0u64..40), 1..30),
    ) {
        let h = counter_history(&incs, &reads);
        let sweep = check_counter(&h, k);
        let reference = naive::check_counter(&h, k);
        prop_assert_eq!(
            sweep.is_ok(),
            reference.is_ok(),
            "k={} sweep={:?} naive={:?} history={:?}",
            k,
            sweep,
            reference,
            h
        );
    }

    /// Same agreement for the additive relaxation (different window
    /// shape, same engine plumbing).
    #[test]
    fn sweep_additive_counter_agrees_with_naive_reference(
        k in 0u64..5,
        incs in prop::collection::vec((0u64..30, 1u64..12, 1u64..4, 0u8..6), 0..20),
        reads in prop::collection::vec((0u64..30, 1u64..12, 0u64..25), 1..20),
    ) {
        let h = counter_history(&incs, &reads);
        prop_assert_eq!(
            check_counter_additive(&h, k).is_ok(),
            naive::check_counter_additive(&h, k).is_ok(),
            "k={} history={:?}",
            k,
            h
        );
    }

    /// The sweep max-register checker agrees with the quadratic
    /// transcription, pending writes included.
    #[test]
    fn sweep_maxreg_agrees_with_naive_reference(
        k in 1u64..4,
        writes in prop::collection::vec((0u64..40, 1u64..15, 1u64..20, 0u8..6), 0..30),
        reads in prop::collection::vec((0u64..40, 1u64..15, 0u64..30), 1..30),
    ) {
        let h = MaxRegHistory {
            writes: writes
                .iter()
                .map(|&(inv, dur, value, die)| TimedWrite {
                    window: if die == 0 {
                        Interval::pending(inv)
                    } else {
                        Interval::done(inv, inv + dur)
                    },
                    value,
                })
                .collect(),
            reads: reads
                .iter()
                .map(|&(inv, dur, value)| TimedRead {
                    inv,
                    resp: inv + dur,
                    value: u128::from(value),
                })
                .collect(),
        };
        prop_assert_eq!(
            check_maxreg(&h, k).is_ok(),
            naive::check_maxreg(&h, k).is_ok(),
            "k={} history={:?}",
            k,
            h
        );
    }
}
