//! Differential validation of the streaming checker: on any history —
//! pending records, batched increments, crash-truncated runs — the
//! [`OnlineChecker`] must accept or reject exactly when the offline
//! monotone sweep does. A deliberately reordered push stream (the
//! seeded mutant) must be *caught*, not silently mis-checked.

use lincheck::monotone::{check_counter, check_counter_additive, check_maxreg};
use lincheck::{
    CounterHistory, Interval, MaxRegHistory, OnlineChecker, TimedInc, TimedRead, TimedWrite,
};
use proptest::prelude::*;
use smr::{OpKind, OpRecord};

/// `(inv, duration, payload, pending-die)` over a small horizon so
/// windows overlap heavily; a die of 0 makes the operation pending.
type OpTuple = (u64, u64, u64, u8);

fn counter_history(incs: &[OpTuple], reads: &[(u64, u64, u64)]) -> CounterHistory {
    CounterHistory {
        incs: incs
            .iter()
            .map(|&(inv, dur, amount, die)| TimedInc {
                window: if die == 0 {
                    Interval::pending(inv)
                } else {
                    Interval::done(inv, inv + dur)
                },
                amount,
            })
            .collect(),
        reads: reads
            .iter()
            .map(|&(inv, dur, value)| TimedRead {
                inv,
                resp: inv + dur,
                value: u128::from(value),
            })
            .collect(),
    }
}

fn announce(pid: usize, kind: OpKind, inv: u64) -> OpRecord {
    OpRecord {
        pid,
        kind,
        inv,
        resp: None,
        steps: 0,
    }
}

fn complete(pid: usize, kind: OpKind, inv: u64, resp: u64) -> OpRecord {
    OpRecord {
        pid,
        kind,
        inv,
        resp: Some(resp),
        steps: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Online ≡ offline for the multiplicative counter on random
    /// histories with pending increments and batches.
    #[test]
    fn online_counter_matches_offline(
        k in 1u64..4,
        incs in prop::collection::vec((0u64..40, 1u64..15, 1u64..6, 0u8..6), 0..30),
        reads in prop::collection::vec((0u64..40, 1u64..15, 0u64..40), 1..30),
    ) {
        let h = counter_history(&incs, &reads);
        let offline = check_counter(&h, k);
        let online = OnlineChecker::counter(k).feed_counter_history(&h);
        prop_assert_eq!(
            offline.is_ok(),
            online.is_ok(),
            "k={} offline={:?} online={:?} history={:?}",
            k, offline, online, h
        );
    }

    /// Same for the additive window shape.
    #[test]
    fn online_additive_counter_matches_offline(
        k in 0u64..5,
        incs in prop::collection::vec((0u64..30, 1u64..12, 1u64..4, 0u8..6), 0..20),
        reads in prop::collection::vec((0u64..30, 1u64..12, 0u64..25), 1..20),
    ) {
        let h = counter_history(&incs, &reads);
        prop_assert_eq!(
            check_counter_additive(&h, k).is_ok(),
            OnlineChecker::counter_additive(k).feed_counter_history(&h).is_ok(),
            "k={} history={:?}",
            k, h
        );
    }

    /// Online ≡ offline for the max register, pending writes included.
    #[test]
    fn online_maxreg_matches_offline(
        k in 1u64..4,
        writes in prop::collection::vec((0u64..40, 1u64..15, 1u64..20, 0u8..6), 0..30),
        reads in prop::collection::vec((0u64..40, 1u64..15, 0u64..30), 1..30),
    ) {
        let h = MaxRegHistory {
            writes: writes
                .iter()
                .map(|&(inv, dur, value, die)| TimedWrite {
                    window: if die == 0 {
                        Interval::pending(inv)
                    } else {
                        Interval::done(inv, inv + dur)
                    },
                    value,
                })
                .collect(),
            reads: reads
                .iter()
                .map(|&(inv, dur, value)| TimedRead {
                    inv,
                    resp: inv + dur,
                    value: u128::from(value),
                })
                .collect(),
        };
        prop_assert_eq!(
            check_maxreg(&h, k).is_ok(),
            OnlineChecker::maxreg(k).feed_maxreg_history(&h).is_ok(),
            "k={} history={:?}",
            k, h
        );
    }

    /// Crash-truncated runs: ops whose process crashes mid-flight are
    /// fed to the online checker as announce-then-`crash(pid)`, and to
    /// the offline sweep in its native encoding — a pending increment
    /// (kept, may have taken effect) or a dropped read (imposes no
    /// constraint). Verdicts must agree.
    #[test]
    fn crash_truncated_runs_match_offline(
        k in 1u64..4,
        incs in prop::collection::vec((0u64..40, 1u64..15, 1u64..6, 0u8..6), 0..20),
        reads in prop::collection::vec((0u64..40, 1u64..15, 0u64..40, 0u8..6), 1..20),
    ) {
        // Offline encoding: crashed increment -> pending; crashed read
        // -> dropped.
        let offline_h = CounterHistory {
            incs: incs
                .iter()
                .map(|&(inv, dur, amount, die)| TimedInc {
                    window: if die == 0 {
                        Interval::pending(inv)
                    } else {
                        Interval::done(inv, inv + dur)
                    },
                    amount,
                })
                .collect(),
            reads: reads
                .iter()
                .filter(|&&(_, _, _, die)| die != 0)
                .map(|&(inv, dur, value, _)| TimedRead {
                    inv,
                    resp: inv + dur,
                    value: u128::from(value),
                })
                .collect(),
        };
        let offline = check_counter(&offline_h, k).is_ok();

        // Online encoding: every op is announced; crashed ops get
        // `crash(pid)` right after their announcement instead of a
        // completion. Reads first, then increments, stably sorted —
        // matching the offline sweep's event order at equal keys.
        #[derive(Clone, Copy)]
        enum Ev {
            Announce { pid: usize, kind: OpKind, inv: u64, crashed: bool },
            Complete { pid: usize, kind: OpKind, inv: u64, resp: u64 },
        }
        let mut events: Vec<(u64, u8, Ev)> = Vec::new();
        for (j, &(inv, dur, value, die)) in reads.iter().enumerate() {
            let kind = OpKind::Read { returned: u128::from(value) };
            let crashed = die == 0;
            events.push((inv, 0, Ev::Announce { pid: j, kind, inv, crashed }));
            if !crashed {
                events.push((inv + dur, 1, Ev::Complete { pid: j, kind, inv, resp: inv + dur }));
            }
        }
        for (i, &(inv, dur, amount, die)) in incs.iter().enumerate() {
            let pid = reads.len() + i;
            let kind = OpKind::Inc { amount };
            let crashed = die == 0;
            events.push((inv, 0, Ev::Announce { pid, kind, inv, crashed }));
            if !crashed {
                events.push((inv + dur, 1, Ev::Complete { pid, kind, inv, resp: inv + dur }));
            }
        }
        events.sort_by_key(|&(t, tie, _)| (t, tie));

        let mut checker = OnlineChecker::counter(k);
        let mut online = Ok(());
        'feed: for &(_, _, ev) in &events {
            let step = match ev {
                Ev::Announce { pid, kind, inv, crashed } => {
                    let r = checker.push(&announce(pid, kind, inv));
                    if r.is_ok() && crashed {
                        checker.crash(pid);
                    }
                    r
                }
                Ev::Complete { pid, kind, inv, resp } => {
                    checker.push(&complete(pid, kind, inv, resp))
                }
            };
            if step.is_err() {
                online = step;
                break 'feed;
            }
        }
        prop_assert_eq!(
            offline,
            online.is_ok(),
            "k={} offline_h={:?} online={:?}",
            k, offline_h, online
        );
    }
}

/// The seeded mutant: a valid sequential stream with two records
/// swapped out of timestamp order. The online checker must *catch*
/// the reorder — a sticky "fed out of order" violation — rather than
/// quietly computing a wrong verdict.
#[test]
fn reordered_push_mutant_is_caught() {
    let records = [
        complete(0, OpKind::Inc { amount: 1 }, 0, 1),
        complete(1, OpKind::Read { returned: 1 }, 2, 3),
        complete(2, OpKind::Inc { amount: 1 }, 4, 5),
        complete(3, OpKind::Read { returned: 2 }, 6, 7),
    ];
    // Baseline: in order, the stream is accepted.
    let mut checker = OnlineChecker::counter(1);
    for r in &records {
        checker.push(r).unwrap();
    }
    checker.finish().unwrap();

    // Mutant: swap records 1 and 2 (seeded, deterministic). The read's
    // announcement at timestamp 2 now arrives after the stream already
    // advanced to timestamp 5.
    let mut checker = OnlineChecker::counter(1);
    checker.push(&records[0]).unwrap();
    checker.push(&records[2]).unwrap();
    let err = checker.push(&records[1]).unwrap_err();
    assert!(err.message.contains("fed out of order"), "{}", err.message);
    // And it is sticky: the rest of the stream keeps re-reporting.
    let again = checker.push(&records[3]).unwrap_err();
    assert_eq!(err, again);
    assert!(checker.finish().is_err());
}

/// Retained state on a heavily concurrent but bounded-width stream
/// stays proportional to the concurrency, not the history length.
#[test]
fn retained_state_tracks_concurrency_not_history() {
    let width = 8u64; // concurrent ops per wave
    let mut checker = OnlineChecker::counter(1);
    let mut count: u128 = 0;
    let mut t = 0u64;
    for wave in 0..5_000u64 {
        // `width` increments open together, then all complete, then one
        // read observes the exact count.
        let base = t;
        for i in 0..width {
            checker
                .push(&announce(i as usize, OpKind::Inc { amount: 1 }, base + i))
                .unwrap();
        }
        t += width;
        for i in 0..width {
            checker
                .push(&complete(
                    i as usize,
                    OpKind::Inc { amount: 1 },
                    base + i,
                    t + i,
                ))
                .unwrap();
            count += 1;
        }
        t += width;
        checker
            .push(&complete(100, OpKind::Read { returned: count }, t, t + 1))
            .unwrap();
        t += 2;
        assert!(
            checker.retained() <= 4 * width as usize + 64,
            "wave {wave}: retained {} outgrew the concurrency bound",
            checker.retained()
        );
    }
    assert!(checker.peak_retained() <= 4 * width as usize + 64);
}
