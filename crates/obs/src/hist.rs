//! The multiplicative-bucket log-histogram — `sketch::quantile`'s
//! bucket geometry with the paper's k-multiplicative accuracy rule
//! applied to the *telemetry write path*.
//!
//! ## Buckets
//!
//! Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` covers
//! `[b^(i-1), b^i)` for base `b ≥ 2`. The last bucket's (exclusive)
//! upper edge is computed in `u128`, so the full `u64` domain —
//! including `u64::MAX` — is covered without overflow. This is the same
//! geometry as `sketch::quantile` (`log_k_floor` bucketing, upper-edge
//! answers), shifted by one to admit zero, which latency/depth samples
//! produce and observations of the paper's 1-based sketch never do.
//!
//! ## k-multiplicative publication
//!
//! Each (shard, bucket) cell keeps an `exact` count, bumped with one
//! relaxed `fetch_add` per sample, and — for `k > 1` — a `published`
//! count that is re-advanced (relaxed `fetch_max`) only when `exact`
//! has reached `k ×` the published value. Readers sum `published`:
//! exactly Algorithm 1's discipline of writing the shared counter only
//! on a multiplicative threshold, here buying read-side cache quiet
//! instead of step complexity. At rest the per-bucket invariant is
//!
//! ```text
//! published ≤ exact ≤ k · published        (once exact > 0)
//! ```
//!
//! ## The (k·b)-relative-error quantile envelope
//!
//! [`quantile(num, den)`](Histogram::quantile) computes the target rank
//! `t = ⌈φ·N̂⌉` from the approximate total `N̂` and returns the upper
//! edge `U` of the first bucket whose cumulative approximate population
//! reaches `t`. Writing `L` for that bucket's lower edge (`U/b`; `0`
//! for bucket 0) and "rank of x" for the number of samples `< x`, the
//! invariant above composes into the two-sided guarantee the
//! differential test below pins:
//!
//! * **at least `t` samples lie below `U`** — cumulative approximate
//!   counts never exceed cumulative true counts;
//! * **fewer than `k·t` samples lie below `L`** — the true cumulative
//!   count below `L` is at most `k ×` the approximate one, which was
//!   `< t`.
//!
//! So the returned value is correct to within factor `b` on the value
//! axis and factor `k` on the rank axis: a (k·b)-relative-error
//! quantile, the composed bound `lincheck::sketchlog` derives for the
//! sketch layer, inherited here per shard-sum instead of per process.

use crate::{CachePadded, SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};

struct Cell {
    exact: AtomicU64,
    published: AtomicU64,
}

/// Summary statistics of one histogram, as exported by
/// [`MetricsSnapshot`](crate::MetricsSnapshot) (`_count`, `_p50`,
/// `_p90`, `_p99`, `_max` suffixes on the registered name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramStats {
    /// Exact number of recorded samples (sum of shard `exact` counts).
    pub count: u64,
    /// Approximate medians/percentiles: upper bucket edges, saturated
    /// to `u64` (the `b=2` top bucket's true edge is `2^64`).
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// Upper edge of the highest nonempty bucket.
    pub max: u64,
}

/// A lock-free log-histogram over the full `u64` domain.
pub struct Histogram {
    base: u64,
    k: u64,
    num_buckets: usize,
    shards: [CachePadded<Vec<Cell>>; SHARDS],
}

/// `⌊log_base v⌋` for `v ≥ 1` (0 for `v < base`).
fn log_floor(v: u64, base: u64) -> u32 {
    let mut p = 0;
    let mut x = v;
    while x >= base {
        x /= base;
        p += 1;
    }
    p
}

impl Histogram {
    /// A histogram with bucket base `b ≥ 2` and publication accuracy
    /// `k ≥ 1` (`k = 1` publishes every sample: exact buckets).
    ///
    /// # Panics
    /// Panics on `base < 2` or `k == 0`.
    pub fn new(base: u64, k: u64) -> Histogram {
        assert!(base >= 2, "bucket base must be at least 2");
        assert!(k >= 1, "publication accuracy must be at least 1");
        // Bucket 0 = {0}; buckets 1..=log_floor(u64::MAX)+1 tile [1, 2^64).
        let num_buckets = log_floor(u64::MAX, base) as usize + 2;
        Histogram {
            base,
            k,
            num_buckets,
            shards: std::array::from_fn(|_| {
                CachePadded(
                    (0..num_buckets)
                        .map(|_| Cell {
                            exact: AtomicU64::new(0),
                            published: AtomicU64::new(0),
                        })
                        .collect(),
                )
            }),
        }
    }

    /// The bucket base `b`.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The publication accuracy `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Number of buckets (base 2: 65 — `{0}`, then 64 power buckets).
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// The bucket holding value `v`: `0` for `0`, else
    /// `⌊log_b v⌋ + 1`.
    #[inline]
    pub fn bucket_of(&self, v: u64) -> usize {
        if v == 0 {
            0
        } else {
            log_floor(v, self.base) as usize + 1
        }
    }

    /// The exclusive upper edge of bucket `i`: `1` for bucket 0, else
    /// `b^i` (in `u128`: the top bucket's edge exceeds `u64::MAX`).
    pub fn bucket_hi(&self, i: usize) -> u128 {
        if i == 0 {
            1
        } else {
            u128::from(self.base).pow(u32::try_from(i).expect("bucket index fits u32"))
        }
    }

    /// Record one sample. No-op while collection is disabled; one
    /// relaxed `fetch_add` (plus, on every k-th doubling, one relaxed
    /// `fetch_max`) when enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let cell = &self.shards[crate::shard_index()].0[self.bucket_of(v)];
        // relaxed-ok: the cell is written by one thread at a time in
        // practice (thread-private shard) and readers tolerate the full
        // k-multiplicative slack by contract; no ordering implied.
        let e = cell.exact.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if self.k > 1 {
            // relaxed-ok: publication only compares monotone telemetry
            // counts from this same cell.
            let p = cell.published.load(Ordering::Relaxed);
            if e >= p.saturating_mul(self.k) {
                // relaxed-ok: fetch_max keeps `published` monotone under
                // shard collisions; staleness stays inside the k bound.
                cell.published.fetch_max(e, Ordering::Relaxed);
            }
        }
    }

    /// Approximate population of bucket `i` (sum of published shard
    /// counts; within factor `k` of exact once writers are at rest).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let cell = &s.0[i];
                if self.k == 1 {
                    // relaxed-ok: telemetry sums carry no ordering.
                    cell.exact.load(Ordering::Relaxed)
                } else {
                    // relaxed-ok: telemetry sums carry no ordering.
                    cell.published.load(Ordering::Relaxed)
                }
            })
            .fold(0u64, u64::wrapping_add)
    }

    /// Exact population of bucket `i`.
    pub fn bucket_exact(&self, i: usize) -> u64 {
        self.shards
            .iter()
            // relaxed-ok: telemetry sums carry no ordering.
            .map(|s| s.0[i].exact.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Exact total sample count.
    pub fn count(&self) -> u64 {
        (0..self.num_buckets).map(|i| self.bucket_exact(i)).sum()
    }

    /// The `num/den`-quantile: the upper edge of the first bucket whose
    /// cumulative approximate population reaches `⌈(num/den)·N̂⌉`, or
    /// `0` when the histogram looks empty. See the module docs for the
    /// (k·b)-relative-error envelope this answer carries.
    ///
    /// # Panics
    /// Panics unless `0 < num ≤ den`.
    pub fn quantile(&self, num: u32, den: u32) -> u128 {
        assert!(num > 0 && num <= den, "need 0 < num ≤ den");
        let counts: Vec<u64> = (0..self.num_buckets)
            .map(|i| self.bucket_count(i))
            .collect();
        let total: u128 = counts.iter().map(|&c| u128::from(c)).sum();
        if total == 0 {
            return 0;
        }
        let target = (total * u128::from(num)).div_ceil(u128::from(den));
        let mut cum: u128 = 0;
        for (i, &c) in counts.iter().enumerate() {
            cum += u128::from(c);
            if cum >= target {
                return self.bucket_hi(i);
            }
        }
        self.bucket_hi(self.num_buckets - 1)
    }

    /// Snapshot summary statistics (percentile edges saturated to u64).
    pub fn stats(&self) -> HistogramStats {
        let sat = |v: u128| -> u64 { u64::try_from(v).unwrap_or(u64::MAX) };
        let max = (0..self.num_buckets)
            .rev()
            .find(|&i| self.bucket_exact(i) > 0)
            .map(|i| sat(self.bucket_hi(i)))
            .unwrap_or(0);
        let count = self.count();
        let q = |num, den| {
            if count == 0 {
                0
            } else {
                sat(self.quantile(num, den))
            }
        };
        HistogramStats {
            count,
            p50: q(1, 2),
            p90: q(9, 10),
            p99: q(99, 100),
            max,
        }
    }

    /// Zero every cell (experiment harness between configurations).
    pub fn reset(&self) {
        for s in &self.shards {
            for cell in &s.0 {
                // relaxed-ok: reset happens at rest, between runs.
                cell.exact.store(0, Ordering::Relaxed);
                // relaxed-ok: reset happens at rest, between runs.
                cell.published.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::enabled_for_test;

    #[test]
    fn bucket_boundaries_exact_edges_zero_and_max() {
        let h = Histogram::new(2, 1);
        // Zero gets its own bucket; 1 starts the power ladder.
        assert_eq!(h.bucket_of(0), 0);
        assert_eq!(h.bucket_of(1), 1);
        // Exact bucket edges land in the *upper* bucket (half-open
        // [b^(i-1), b^i) intervals).
        assert_eq!(h.bucket_of(2), 2);
        assert_eq!(h.bucket_of(3), 2);
        assert_eq!(h.bucket_of(4), 3);
        assert_eq!(h.bucket_of((1 << 20) - 1), 20);
        assert_eq!(h.bucket_of(1 << 20), 21);
        // The top of the domain: 2^63 opens the last bucket, u64::MAX
        // closes it, and its upper edge needs u128.
        assert_eq!(h.bucket_of(1 << 63), 64);
        assert_eq!(h.bucket_of(u64::MAX), 64);
        assert_eq!(h.num_buckets(), 65, "{{0}} plus buckets 1..=64");
        assert_eq!(h.bucket_hi(64), 1u128 << 64);
        assert_eq!(h.bucket_hi(0), 1);
        assert_eq!(h.bucket_hi(1), 2);

        // Non-power-of-two base: same geometry, checked at its edges.
        let h3 = Histogram::new(3, 1);
        assert_eq!(h3.bucket_of(0), 0);
        assert_eq!(h3.bucket_of(2), 1);
        assert_eq!(h3.bucket_of(3), 2);
        assert_eq!(h3.bucket_of(9), 3);
        assert_eq!(h3.bucket_of(u64::MAX), h3.num_buckets() - 1);
    }

    #[test]
    fn every_value_lands_inside_its_bucket() {
        let h = Histogram::new(2, 1);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let b = h.bucket_of(v);
            let lo = if b == 0 { 0 } else { h.bucket_hi(b - 1) };
            assert!(
                u128::from(v) >= lo && u128::from(v) < h.bucket_hi(b),
                "{v} outside bucket {b} = [{lo}, {})",
                h.bucket_hi(b)
            );
        }
    }

    #[test]
    fn records_count_exactly_with_k1() {
        let _g = enabled_for_test(true);
        let h = Histogram::new(2, 1);
        for v in [0u64, 1, 1, 5, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_exact(0), 1);
        assert_eq!(h.bucket_exact(1), 2);
        assert_eq!(h.bucket_exact(64), 1);
        let s = h.stats();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, u64::MAX, "2^64 edge saturates to u64::MAX");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.stats().max, 0);
    }

    #[test]
    fn disabled_record_is_a_no_op() {
        let _g = enabled_for_test(false);
        let h = Histogram::new(2, 4);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(1, 2), 0, "empty histogram answers 0");
    }

    #[test]
    fn published_stays_inside_the_k_envelope() {
        let _g = enabled_for_test(true);
        let k = 4;
        let h = Histogram::new(2, k);
        // Everything from one thread → one shard → the per-cell
        // invariant is directly observable.
        for _ in 0..1000 {
            h.record(10);
        }
        let b = h.bucket_of(10);
        let exact = h.bucket_exact(b);
        let published = h.bucket_count(b);
        assert_eq!(exact, 1000);
        assert!(published >= 1, "first sample always publishes");
        assert!(published <= exact, "published never overtakes exact");
        assert!(
            exact <= published.saturating_mul(k),
            "exact {exact} > k·published = {}",
            published * k
        );
    }

    /// The satellite's differential test: quantile answers vs an exact
    /// sorted reference, pinned to the documented (k·b) envelope — at
    /// least `t` samples below the returned upper edge `U`, fewer than
    /// `k·t` samples below the bucket's lower edge `U/b`.
    #[test]
    fn quantiles_match_exact_reference_within_k_times_b() {
        let _g = enabled_for_test(true);
        for (base, k) in [(2u64, 1u64), (2, 4), (3, 2), (10, 8)] {
            let h = Histogram::new(base, k);
            // A skewed, repetitive sample set (telemetry-like): heavy
            // low values, a mid hump, a far-out tail. xorshift so the
            // set is deterministic.
            let mut x = 0x9e3779b97f4a7c15u64;
            let mut samples: Vec<u64> = Vec::new();
            for i in 0..5000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = match i % 10 {
                    0..=5 => x % 16,
                    6..=8 => 100 + x % 1000,
                    _ => 1_000_000 + x % 1_000_000,
                };
                samples.push(v);
                h.record(v);
            }
            samples.sort_unstable();
            let approx_total: u128 = (0..h.num_buckets())
                .map(|i| u128::from(h.bucket_count(i)))
                .sum();
            for (num, den) in [
                (1u32, 100u32),
                (1, 4),
                (1, 2),
                (3, 4),
                (9, 10),
                (99, 100),
                (1, 1),
            ] {
                let u = h.quantile(num, den);
                let t = (approx_total * u128::from(num)).div_ceil(u128::from(den));
                let below_u = samples.iter().filter(|&&s| u128::from(s) < u).count() as u128;
                assert!(
                    below_u >= t,
                    "base {base} k {k} φ={num}/{den}: only {below_u} samples below \
                     U={u}, target rank {t}"
                );
                let lo = u / u128::from(base);
                let below_lo = samples.iter().filter(|&&s| u128::from(s) < lo).count() as u128;
                assert!(
                    below_lo < t.saturating_mul(u128::from(k)),
                    "base {base} k {k} φ={num}/{den}: {below_lo} samples below \
                     L={lo} ≥ k·t = {}",
                    t * u128::from(k)
                );
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_in_phi() {
        let _g = enabled_for_test(true);
        let h = Histogram::new(2, 4);
        for v in [1u64, 1, 2, 30, 30, 500, 4000, 4000, 4000, 100_000] {
            h.record(v);
        }
        let mut prev = 0;
        for num in 1..=10u32 {
            let q = h.quantile(num, 10);
            assert!(q >= prev, "quantile regressed at {num}/10");
            prev = q;
        }
    }
}
