//! The registered metric names — every metric in the workspace is
//! registered under a constant from this module, never a string literal
//! at the call site (`lint_smr` rule 6 enforces both halves: call sites
//! outside `crates/obs` must pass constants, and every name constant
//! here must end in a unit suffix `bench::regression` classifies —
//! `_total` (volatile event count), `_per_sec` (throughput, regresses by
//! dropping), `_bytes` / `_entries` (memory, regresses by growing)).
//!
//! Subsystem tags are the `SUB_*` constants; they name snapshot rows,
//! not metrics, and carry no unit suffix.
//!
//! Histogram names describe what one *sample* measures (`_entries` for
//! depth/occupancy samples); the snapshot exporter appends the stat
//! suffix (`_count`, `_p50`, `_p90`, `_p99`, `_max`) per exported field.

// Subsystem row tags.
pub const SUB_COOP: &str = "coop";
pub const SUB_THREAD: &str = "thread";
pub const SUB_EXPLORE: &str = "explore";
pub const SUB_LINCHECK: &str = "lincheck";
pub const SUB_SKETCH: &str = "sketch";

// CoopBackend.
pub const COOP_POLLS: &str = "polls_total";
pub const COOP_QUIESCES: &str = "quiesces_total";
pub const COOP_ARENA_BYTES: &str = "arena_bytes";
pub const COOP_RUNNABLE_DEPTH: &str = "runnable_depth_entries";

// ThreadBackend.
pub const THREAD_GATE_WAITS: &str = "gate_waits_total";

// smr::explore.
pub const EXPLORE_NODES: &str = "nodes_expanded_total";
pub const EXPLORE_SLEEP_HITS: &str = "sleep_set_hits_total";
pub const EXPLORE_BACKTRACKS: &str = "backtrack_points_total";
pub const EXPLORE_REPLAYS: &str = "replays_total";
pub const EXPLORE_FRONTIER_DEPTH: &str = "frontier_depth_entries";

// lincheck::online and LinearizabilityPass.
pub const LINCHECK_PUSHES: &str = "pushes_total";
pub const LINCHECK_FOLDS: &str = "fold_compactions_total";
pub const LINCHECK_RETAINED: &str = "retained_entries";
pub const LINCHECK_REORDER_OCCUPANCY: &str = "reorder_occupancy_entries";
pub const LINCHECK_INERT: &str = "inert_transitions_total";

// sketch.
pub const SKETCH_FLUSHES: &str = "flushes_total";
pub const SKETCH_PRUNED_SCANS: &str = "pruned_shard_scans_total";
