//! The static metric registry and the snapshot exporter.
//!
//! Metrics are registered once (typically at subsystem construction),
//! live for the process (`Box::leak` — registration is startup-time,
//! bounded by the number of *metric names*, not runs), and hand back
//! `&'static` typed handles a hot path can store in a field and hit
//! with zero indirection. Registration is idempotent by
//! `(subsystem, name)`, so two backends built in one process share
//! counters instead of shadowing each other.
//!
//! [`snapshot`] exports every registered metric as one flat row per
//! subsystem in the exact `{"bench": …, "mode": …, "results": [...]}`
//! shape `bench::regression::parse_bench_json` already parses — obs
//! snapshots diff with the same `bench_diff` machinery as BENCH files.

use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// Unit suffixes a registered metric name must end with — the direction
/// classes `bench::regression` understands plus `_total` for volatile
/// event counts. `lint_smr` rule 6 pins the same list textually.
pub const UNIT_SUFFIXES: &[&str] = &["_total", "_per_sec", "_bytes", "_entries"];

#[derive(Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    subsystem: &'static str,
    name: &'static str,
    metric: Metric,
}

/// The registry holds leaked entries, so handed-out references stay
/// valid across later registrations (the index vector may reallocate;
/// the entries never move).
fn entries() -> &'static Mutex<Vec<&'static Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn assert_name(name: &str) {
    assert!(
        UNIT_SUFFIXES.iter().any(|s| name.ends_with(s)),
        "metric name `{name}` lacks a unit suffix (one of {UNIT_SUFFIXES:?})"
    );
}

fn lookup_or_insert(
    subsystem: &'static str,
    name: &'static str,
    make: impl FnOnce() -> Metric,
) -> &'static Entry {
    assert_name(name);
    let mut reg = entries().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = reg
        .iter()
        .find(|e| e.subsystem == subsystem && e.name == name)
    {
        return e;
    }
    let entry: &'static Entry = Box::leak(Box::new(Entry {
        subsystem,
        name,
        metric: make(),
    }));
    reg.push(entry);
    entry
}

/// Register (or fetch) the counter `subsystem/name`.
///
/// # Panics
/// Panics if the name lacks a unit suffix or is already registered as a
/// different metric type.
pub fn counter(subsystem: &'static str, name: &'static str) -> &'static Counter {
    match lookup_or_insert(subsystem, name, || {
        Metric::Counter(Box::leak(Box::new(Counter::new())))
    })
    .metric
    {
        Metric::Counter(c) => c,
        _ => panic!("{subsystem}/{name} is registered as a non-counter"),
    }
}

/// Register (or fetch) the gauge `subsystem/name`.
///
/// # Panics
/// See [`counter`].
pub fn gauge(subsystem: &'static str, name: &'static str) -> &'static Gauge {
    match lookup_or_insert(subsystem, name, || {
        Metric::Gauge(Box::leak(Box::new(Gauge::new())))
    })
    .metric
    {
        Metric::Gauge(g) => g,
        _ => panic!("{subsystem}/{name} is registered as a non-gauge"),
    }
}

/// Register (or fetch) the histogram `subsystem/name` with bucket base
/// `base` and publication accuracy `k`. On refetch the existing
/// histogram is returned and `base`/`k` must match.
///
/// # Panics
/// See [`counter`]; additionally panics on a parameter mismatch with an
/// existing registration.
pub fn histogram(
    subsystem: &'static str,
    name: &'static str,
    base: u64,
    k: u64,
) -> &'static Histogram {
    match lookup_or_insert(subsystem, name, || {
        Metric::Histogram(Box::leak(Box::new(Histogram::new(base, k))))
    })
    .metric
    {
        Metric::Histogram(h) => {
            assert!(
                h.base() == base && h.k() == k,
                "{subsystem}/{name} already registered with base {}/k {}",
                h.base(),
                h.k()
            );
            h
        }
        _ => panic!("{subsystem}/{name} is registered as a non-histogram"),
    }
}

/// One exported row: a subsystem tag plus its metric fields in
/// registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRow {
    pub subsystem: &'static str,
    /// `(field name, value)`; histogram stats appear as five fields
    /// (`_count`, `_p50`, `_p90`, `_p99`, `_max` appended to the
    /// registered name). `i128` covers both `u64` and `i64` sources.
    pub fields: Vec<(String, i128)>,
}

/// A point-in-time export of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub rows: Vec<SnapshotRow>,
}

impl MetricsSnapshot {
    /// Render in the flat-JSON bench shape (`bench` tag
    /// `metrics_snapshot`) that `bench::regression::parse_bench_json`
    /// and `bench_diff` consume.
    pub fn to_json(&self, mode: &str) -> String {
        let mut out = String::from("{\n  \"bench\": \"metrics_snapshot\",\n");
        let _ = writeln!(out, "  \"mode\": \"{mode}\",");
        out.push_str("  \"results\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(out, "    {{\"subsystem\": \"{}\"", row.subsystem);
            for (name, value) in &row.fields {
                let _ = write!(out, ", \"{name}\": {value}");
            }
            let _ = writeln!(out, "}}{}", if i + 1 == self.rows.len() { "" } else { "," });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The value of `subsystem/field`, if exported.
    pub fn get(&self, subsystem: &str, field: &str) -> Option<i128> {
        self.rows
            .iter()
            .find(|r| r.subsystem == subsystem)
            .and_then(|r| r.fields.iter().find(|(n, _)| n == field).map(|&(_, v)| v))
    }
}

/// Export every registered metric, one row per subsystem.
pub fn snapshot() -> MetricsSnapshot {
    let reg = entries().lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<SnapshotRow> = Vec::new();
    for e in reg.iter() {
        let row = match rows.iter_mut().find(|r| r.subsystem == e.subsystem) {
            Some(r) => r,
            None => {
                rows.push(SnapshotRow {
                    subsystem: e.subsystem,
                    fields: Vec::new(),
                });
                rows.last_mut().expect("just pushed")
            }
        };
        match e.metric {
            Metric::Counter(c) => row.fields.push((e.name.to_string(), i128::from(c.get()))),
            Metric::Gauge(g) => row.fields.push((e.name.to_string(), i128::from(g.get()))),
            Metric::Histogram(h) => {
                let s = h.stats();
                for (suffix, v) in [
                    ("count", s.count),
                    ("p50", s.p50),
                    ("p90", s.p90),
                    ("p99", s.p99),
                    ("max", s.max),
                ] {
                    row.fields
                        .push((format!("{}_{suffix}", e.name), i128::from(v)));
                }
            }
        }
    }
    MetricsSnapshot { rows }
}

/// Reset every registered metric to zero (experiment harness between
/// measured configurations).
pub fn reset_all() {
    let reg = entries().lock().unwrap_or_else(|e| e.into_inner());
    for e in reg.iter() {
        match e.metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::enabled_for_test;

    #[test]
    fn registration_is_idempotent_and_typed() {
        let c1 = counter("test_reg", "events_total");
        let c2 = counter("test_reg", "events_total");
        assert!(std::ptr::eq(c1, c2), "same handle on refetch");
        let h1 = histogram("test_reg", "depth_entries", 2, 4);
        let h2 = histogram("test_reg", "depth_entries", 2, 4);
        assert!(std::ptr::eq(h1, h2));
    }

    #[test]
    #[should_panic(expected = "unit suffix")]
    fn suffixless_names_are_rejected() {
        let _ = counter("test_reg", "events");
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn type_confusion_is_rejected() {
        let _ = gauge("test_reg_types", "items_entries");
        let _ = counter("test_reg_types", "items_entries");
    }

    #[test]
    fn snapshot_exports_the_bench_row_shape() {
        let _g = enabled_for_test(true);
        let c = counter("test_snap", "ticks_total");
        let g = gauge("test_snap", "live_entries");
        let h = histogram("test_snap", "lat_entries", 2, 1);
        c.reset();
        g.reset();
        h.reset();
        c.add(7);
        g.add(3);
        h.record(100);
        let snap = snapshot();
        assert_eq!(snap.get("test_snap", "ticks_total"), Some(7));
        assert_eq!(snap.get("test_snap", "live_entries"), Some(3));
        assert_eq!(snap.get("test_snap", "lat_entries_count"), Some(1));
        assert_eq!(snap.get("test_snap", "lat_entries_max"), Some(128));
        let json = snap.to_json("smoke");
        assert!(json.contains("\"bench\": \"metrics_snapshot\""));
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\"subsystem\": \"test_snap\""));
        assert!(json.contains("\"ticks_total\": 7"));
    }
}
