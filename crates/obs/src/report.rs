//! Step-scaled snapshot reporting.
//!
//! A [`Reporter`] is *pumped* by its owner with the runtime's monotone
//! step counter (`Runtime::total_steps()`, an explorer's replay count —
//! any deterministic progress measure) and takes a
//! [`MetricsSnapshot`](crate::MetricsSnapshot) each time the counter
//! crosses a multiple of the configured interval. Sampling is keyed to
//! *scaled steps, never wall-clock*: two runs of the same schedule pump
//! the same counter values, so they sample at identical logical instants
//! and produce comparable snapshot sequences — a timer would make every
//! instrumented coop/explore run schedule-dependent on machine speed.

use crate::registry::{snapshot, MetricsSnapshot};

/// Samples the registry every `every` steps of a caller-pumped counter.
pub struct Reporter {
    every: u64,
    next: u64,
    samples: Vec<(u64, MetricsSnapshot)>,
}

impl Reporter {
    /// A reporter sampling at step multiples of `every` (first sample
    /// once the pumped counter reaches `every`).
    ///
    /// # Panics
    /// Panics on a zero interval.
    pub fn new(every: u64) -> Reporter {
        assert!(every >= 1, "sampling interval must be at least one step");
        Reporter {
            every,
            next: every,
            samples: Vec::new(),
        }
    }

    /// Pump the progress counter. Takes at most one snapshot per call
    /// (a burst that crosses several intervals yields one sample,
    /// stamped with the steps actually observed — sampling is lossy by
    /// design, deterministically so for a deterministic pump sequence).
    /// Returns `true` if a snapshot was taken.
    pub fn poll(&mut self, steps_now: u64) -> bool {
        if steps_now < self.next {
            return false;
        }
        self.samples.push((steps_now, snapshot()));
        // Re-arm at the next multiple of `every` above steps_now.
        self.next = (steps_now / self.every + 1) * self.every;
        true
    }

    /// The sampling interval.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// All samples taken, in pump order: `(steps at sample, snapshot)`.
    pub fn samples(&self) -> &[(u64, MetricsSnapshot)] {
        &self.samples
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<&(u64, MetricsSnapshot)> {
        self.samples.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_on_interval_crossings_only() {
        let mut r = Reporter::new(100);
        assert!(!r.poll(1));
        assert!(!r.poll(99));
        assert!(r.poll(100), "exact multiple samples");
        assert!(!r.poll(150), "re-armed at 200");
        assert!(r.poll(250), "burst past 200 samples once");
        assert!(!r.poll(299), "re-armed at 300, not 350");
        assert_eq!(
            r.samples().iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![100, 250]
        );
    }

    #[test]
    fn identical_pump_sequences_sample_identically() {
        // The determinism argument, pinned: the sample points are a
        // pure function of the pumped counter sequence.
        let pump = [7u64, 40, 99, 100, 101, 220, 230, 500];
        let run = || {
            let mut r = Reporter::new(100);
            pump.iter().map(|&s| r.poll(s)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
