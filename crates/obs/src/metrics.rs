//! Sharded lock-free counters and gauges.
//!
//! Both are arrays of cache-padded atomics; a write touches only the
//! calling thread's shard (one relaxed RMW), a read sums all shards.
//! Reads are therefore *not* linearizable snapshots — they are monotone
//! (counters) or eventually-consistent (gauges) aggregates, which is the
//! telemetry contract: exact-at-rest, approximate-in-flight.

use crate::{CachePadded, SHARDS};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotone event counter.
pub struct Counter {
    shards: [CachePadded<AtomicU64>; SHARDS],
}

impl Counter {
    pub fn new() -> Counter {
        Counter {
            shards: std::array::from_fn(|_| CachePadded(AtomicU64::new(0))),
        }
    }

    /// Count one event. No-op while collection is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events. No-op while collection is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        let shard = &self.shards[crate::shard_index()].0;
        // relaxed-ok: the shard is thread-private for writes and reads
        // only ever sum shards; no ordering with other memory is implied
        // by a telemetry count.
        shard.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over all shards (monotone; exact once writers are at rest).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            // relaxed-ok: see `add` — shard sums carry no ordering.
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Zero every shard (experiment harness between configurations).
    pub fn reset(&self) {
        for s in &self.shards {
            // relaxed-ok: reset happens at rest, between measured runs.
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A signed up/down gauge (queue depths, resident bytes).
pub struct Gauge {
    shards: [CachePadded<AtomicI64>; SHARDS],
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge {
            shards: std::array::from_fn(|_| CachePadded(AtomicI64::new(0))),
        }
    }

    /// Move the gauge by `delta` (may be negative). No-op while
    /// collection is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        let shard = &self.shards[crate::shard_index()].0;
        // relaxed-ok: as with Counter — per-thread shard, summed reads,
        // no ordering contract.
        shard.fetch_add(delta, Ordering::Relaxed);
    }

    /// Shorthand for `add(-delta)`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// Sum over all shards. Individual shards may be negative (a value
    /// added on one thread, removed on another); the sum is the gauge.
    pub fn get(&self) -> i64 {
        self.shards
            .iter()
            // relaxed-ok: shard sums carry no ordering.
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0i64, i64::wrapping_add)
    }

    /// Zero every shard (experiment harness between configurations).
    pub fn reset(&self) {
        for s in &self.shards {
            // relaxed-ok: reset happens at rest, between measured runs.
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::enabled_for_test;

    #[test]
    fn counter_counts_and_resets() {
        let _g = enabled_for_test(true);
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn disabled_counter_is_a_no_op() {
        let _g = enabled_for_test(false);
        let c = Counter::new();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let _g = enabled_for_test(true);
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn cross_thread_counts_sum() {
        let _g = enabled_for_test(true);
        let c = std::sync::Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
