//! # obs — the runtime measures itself with its own primitives
//!
//! A hand-rolled, vendor-policy-compatible (std-only, zero deps)
//! lock-free observability layer:
//!
//! * [`Counter`] / [`Gauge`] — cache-padded sharded atomics; one
//!   relaxed `fetch_add` on a thread-private shard per event.
//! * [`Histogram`] — a multiplicative-bucket log-histogram using the
//!   same bucket geometry as `sketch::quantile`, with the paper's
//!   k-multiplicative *publication* rule applied to telemetry: a shard
//!   republishes its exact count only when it has grown by a factor of
//!   `k`, so reads stay within factor `k` per bucket while the write
//!   path stays one-or-two relaxed ops. Quantile answers carry a
//!   documented (k·b)-relative-error envelope (see [`hist`]).
//! * [`registry`] — a static registry of typed metric handles,
//!   registered once at startup (names are constants in [`names`];
//!   `lint_smr` enforces the unit-suffix scheme `bench::regression`
//!   classifies by).
//! * [`MetricsSnapshot`] — exports every registered metric in the same
//!   flat-JSON row schema `bench::regression` already parses and diffs.
//! * [`Reporter`] — samples snapshots on *scaled-step* intervals, not
//!   wall-clock, so instrumented coop/explore runs stay deterministic.
//!
//! ## Zero-cost when disabled
//!
//! Collection is off by default. Every metric operation starts with one
//! relaxed load of a global flag ([`enabled`]) and returns immediately
//! when it is clear — the same fast-path discipline the tracer and the
//! analysis layer use ("one relaxed load per primitive"). `exp_obs`
//! measures both sides: disabled instrumentation is unobservable, and
//! *enabled* instrumentation stays within 5% of metrics-off throughput
//! on the free-running coop backend at 10⁵ processes (BENCH_obs.json).

pub mod hist;
pub mod names;
pub mod registry;
pub mod report;

mod metrics;

pub use hist::{Histogram, HistogramStats};
pub use metrics::{Counter, Gauge};
pub use registry::{counter, gauge, histogram, snapshot, MetricsSnapshot, SnapshotRow};
pub use report::Reporter;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metric collection on? One relaxed load — the entire disabled-path
/// cost of every metric operation.
#[inline]
pub fn enabled() -> bool {
    // relaxed-ok: a stale read only delays noticing a toggle by one
    // event; no other memory is published or consumed through the flag.
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric collection on or off, process-wide.
pub fn set_enabled(on: bool) {
    // relaxed-ok: the flag is the only state the toggle touches;
    // counts racing a toggle are attributed to either side, both fine.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Shards per metric. A small power of two: enough that the coop
/// controller, explorer workers and thread-backend workers land on
/// different cache lines, cheap enough to sum on every read.
pub(crate) const SHARDS: usize = 8;

/// This thread's metric shard, assigned round-robin on first use.
#[inline]
pub(crate) fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            // relaxed-ok: shard assignment needs only a fresh-ish
            // number per thread; collisions are benign (shards are
            // summed, never compared).
            v = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            s.set(v);
        }
        v
    })
}

/// Pads a shard slot to (at least) a cache line so adjacent shards of
/// one metric never false-share. Mirrors `smr::step::pad::CachePadded`
/// (obs cannot depend on smr — the dependency points the other way).
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub T);

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that toggle the process-global enabled flag.
    pub fn enabled_for_test(on: bool) -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(on);
        guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let a = shard_index();
        let b = shard_index();
        assert_eq!(a, b, "a thread keeps its shard");
        assert!(a < SHARDS);
    }

    #[test]
    fn toggle_round_trips() {
        let _g = testutil::enabled_for_test(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
