//! Property-based tests: every max-register implementation agrees with
//! the lock-based oracle on arbitrary sequential operation sequences,
//! for arbitrary bounds — and step budgets hold throughout.

use maxreg::{
    AdaptiveMaxRegister, CollectMaxRegister, LockMaxRegister, MaxRegister, TreeMaxRegister,
    UnboundedMaxRegister,
};
use proptest::prelude::*;
use smr::Runtime;

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Read,
}

fn ops_strategy(max_value: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0..max_value).prop_map(Op::Write), Just(Op::Read),],
        1..len,
    )
}

/// Drive `reg` and the oracle through the same sequence; every read must
/// agree exactly (these are exact registers).
fn check_against_oracle<M: MaxRegister>(reg: &M, ops: &[Op]) {
    let rt = Runtime::free_running(1);
    let ctx = rt.ctx(0);
    let oracle = LockMaxRegister::new();
    for op in ops {
        match op {
            Op::Write(v) => {
                reg.write(&ctx, *v);
                oracle.write(&ctx, *v);
            }
            Op::Read => {
                assert_eq!(reg.read(&ctx), oracle.read(&ctx));
            }
        }
    }
    assert_eq!(reg.read(&ctx), oracle.read(&ctx), "final state");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tree_matches_oracle(m in 2u64..100_000, seedops in ops_strategy(1 << 30, 40)) {
        let ops: Vec<Op> = seedops
            .into_iter()
            .map(|op| match op {
                Op::Write(v) => Op::Write(v % m),
                Op::Read => Op::Read,
            })
            .collect();
        let reg = TreeMaxRegister::new(m);
        check_against_oracle(&reg, &ops);
    }

    #[test]
    fn collect_matches_oracle(ops in ops_strategy(u64::MAX - 1, 40)) {
        let reg = CollectMaxRegister::new(1);
        check_against_oracle(&reg, &ops);
    }

    #[test]
    fn adaptive_matches_oracle(
        n in 1usize..12,
        m in 2u64..1_000_000,
        seedops in ops_strategy(1 << 30, 40),
    ) {
        let ops: Vec<Op> = seedops
            .into_iter()
            .map(|op| match op {
                Op::Write(v) => Op::Write(v % m),
                Op::Read => Op::Read,
            })
            .collect();
        let reg = AdaptiveMaxRegister::new(n, m);
        check_against_oracle(&reg, &ops);
    }

    #[test]
    fn unbounded_matches_oracle(ops in ops_strategy(u64::MAX - 1, 40)) {
        let reg = UnboundedMaxRegister::new();
        check_against_oracle(&reg, &ops);
    }

    #[test]
    fn tree_step_budget_holds(m in 2u64..1_000_000_000, v in 0u64..1_000_000_000) {
        let v = v % m;
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = TreeMaxRegister::new(m);
        let budget = 2 * (reg.worst_case_steps() + 1);
        let s0 = ctx.steps_taken();
        reg.write(&ctx, v);
        prop_assert!(ctx.steps_taken() - s0 <= budget);
        let s0 = ctx.steps_taken();
        prop_assert_eq!(reg.read(&ctx), v);
        prop_assert!(ctx.steps_taken() - s0 <= budget);
    }

    #[test]
    fn writes_commute_to_max(mut values in prop::collection::vec(0u64..1 << 20, 1..20)) {
        // Any permutation of the same writes leaves the register at the
        // same value.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg1 = TreeMaxRegister::new(1 << 20);
        for &v in &values {
            reg1.write(&ctx, v);
        }
        values.reverse();
        let reg2 = TreeMaxRegister::new(1 << 20);
        for &v in &values {
            reg2.write(&ctx, v);
        }
        prop_assert_eq!(reg1.read(&ctx), reg2.read(&ctx));
    }
}
