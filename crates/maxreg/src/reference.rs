//! A lock-based reference max register — the test oracle.
//!
//! **Not** an algorithm of the shared-memory model: it uses a mutex, is
//! not wait-free, and charges no steps. It exists so property tests and
//! stress tests can compare real implementations against an obviously
//! correct object.

use crate::spec::MaxRegister;
use parking_lot::Mutex;
use smr::ProcCtx;

/// A trivially correct (blocking) max register for testing.
#[derive(Debug, Default)]
pub struct LockMaxRegister {
    value: Mutex<u64>,
    bound: Option<u64>,
}

impl LockMaxRegister {
    /// An unbounded oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// An `m`-bounded oracle.
    pub fn bounded(m: u64) -> Self {
        assert!(m > 0);
        LockMaxRegister {
            value: Mutex::new(0),
            bound: Some(m),
        }
    }
}

impl MaxRegister for LockMaxRegister {
    fn write(&self, _ctx: &ProcCtx, v: u64) {
        if let Some(m) = self.bound {
            assert!(v < m, "value {v} out of range (m = {m})");
        }
        let mut guard = self.value.lock();
        if *guard < v {
            *guard = v;
        }
    }

    fn read(&self, _ctx: &ProcCtx) -> u64 {
        *self.value.lock()
    }

    fn bound(&self) -> Option<u64> {
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;

    #[test]
    fn sequential_conformance() {
        let reg = LockMaxRegister::new();
        testutil::check_sequential(&reg, &[9, 1, 10, 2]);
    }

    #[test]
    fn charges_no_steps() {
        let rt = smr::Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = LockMaxRegister::new();
        reg.write(&ctx, 5);
        let _ = reg.read(&ctx);
        assert_eq!(ctx.steps_taken(), 0);
    }
}
