//! The [`MaxRegister`] object interface.

use smr::ProcCtx;

/// A linearizable max register: `read` returns the largest value
/// previously written (0 if none).
///
/// All methods take the invoking process's [`ProcCtx`], which charges the
/// primitive steps the operation performs; implementations are wait-free.
pub trait MaxRegister: Send + Sync {
    /// Write `v`. For bounded registers `v` must be `< bound`.
    ///
    /// # Panics
    /// Implementations panic if `v` exceeds their bound — writing an
    /// out-of-range value is a caller bug, not a recoverable condition.
    fn write(&self, ctx: &ProcCtx, v: u64);

    /// Return the maximum value written before (or concurrently with)
    /// this read; 0 if nothing was written.
    fn read(&self, ctx: &ProcCtx) -> u64;

    /// `Some(m)` if this register only represents values in `{0,…,m−1}`,
    /// `None` if unbounded (full `u64` domain).
    fn bound(&self) -> Option<u64>;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use smr::Runtime;
    use std::sync::Arc;

    /// Sequential conformance: random writes interleaved with reads must
    /// always return the running maximum.
    pub(crate) fn check_sequential<M: MaxRegister>(reg: &M, values: &[u64]) {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let mut max = 0;
        assert_eq!(reg.read(&ctx), 0, "fresh register reads 0");
        for &v in values {
            reg.write(&ctx, v);
            max = max.max(v);
            assert_eq!(reg.read(&ctx), max, "after writing {v}");
        }
    }

    /// Concurrent smoke test: `n` free-running writers + a reader; the
    /// final read must equal the global max, and every intermediate read
    /// must be ≤ it and monotonically consistent with writes that
    /// completed before the read started (spot-checked via the final
    /// value only — full linearizability is checked by `lincheck`).
    pub(crate) fn check_concurrent<M: MaxRegister + 'static>(reg: Arc<M>, n: usize, per: u64) {
        let rt = Runtime::free_running(n);
        let mut handles = vec![];
        for pid in 0..n {
            let reg = reg.clone();
            let ctx = rt.ctx(pid);
            handles.push(std::thread::spawn(move || {
                for i in 1..=per {
                    reg.write(&ctx, (pid as u64) * per + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ctx = rt.ctx(0);
        assert_eq!(
            reg.read(&ctx),
            (n as u64) * per,
            "global max after quiescence"
        );
    }
}
