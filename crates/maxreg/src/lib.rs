//! # maxreg — exact max registers
//!
//! Wait-free linearizable *exact* max registers, the substrate on which the
//! paper's Algorithm 2 (the k-multiplicative-accurate bounded max register)
//! is built, and the baselines its step-complexity claims are compared
//! against.
//!
//! A **max register** supports `write(v)` and `read()`, where `read`
//! returns the largest value written so far (Aspnes, Attiya, Censor-Hillel,
//! *"Polylogarithmic concurrent data structures from monotone circuits"*,
//! J. ACM 2012 — "AACH" below).
//!
//! Implementations:
//!
//! * [`TreeMaxRegister`] — the AACH recursive tree construction for an
//!   `m`-bounded max register: `O(log₂ m)` steps per operation. Nodes are
//!   allocated lazily so huge bounds (e.g. `m = 2⁶⁰`) cost only the paths
//!   actually touched.
//! * [`CollectMaxRegister`] — single-writer cells + collect: `O(1)` writes,
//!   `O(n)` reads. Beats the tree when `n < log₂ m`.
//! * [`AdaptiveMaxRegister`] — picks whichever of the two is cheaper for
//!   the given `(n, m)`, realizing the `O(min(log m, n))` bound quoted in
//!   the paper (Theorem IV.2 relies on it).
//! * [`UnboundedMaxRegister`] — a level-doubling chain of tree registers
//!   covering the full `u64` domain with cost `O(log v)` for the value `v`
//!   at hand (the exact-object analogue of the unbounded constructions of
//!   Baig et al.; see DESIGN.md for the substitution note).
//! * [`LockMaxRegister`] — a lock-based oracle for tests. **Not** a
//!   shared-memory algorithm of the model; charges no steps.
//!
//! All real implementations apply only `read`/`write` primitives through
//! [`smr`]'s instrumented base objects, so per-process step counts measure
//! exactly the complexity the theorems talk about.

mod adaptive;
mod collect;
mod reference;
mod spec;
pub mod tasks;
mod tree;
mod unbounded;

pub use adaptive::{
    AdaptiveMaxReadTask, AdaptiveMaxRegister, AdaptiveMaxWriteTask, AdaptiveReadMachine,
    AdaptiveWriteMachine,
};
pub use collect::{CollectMaxRegister, CollectReadMachine, CollectWriteMachine};
pub use reference::LockMaxRegister;
pub use spec::MaxRegister;
pub use tasks::{TreeMaxReadTask, TreeMaxWriteTask};
pub use tree::{TreeMaxRegister, TreeReadMachine, TreeWriteMachine};
pub use unbounded::{
    UnboundedMaxReadTask, UnboundedMaxRegister, UnboundedMaxWriteTask, UnboundedReadMachine,
    UnboundedWriteMachine,
};
