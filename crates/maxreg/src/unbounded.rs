//! An unbounded exact max register: a level-doubling chain of bounded
//! tree registers.
//!
//! Level `i` is a [`TreeMaxRegister`] with bound `B_i = 2^(2^i)` (capped at
//! the `u64` domain), plus a small exact *level pointer* max register that
//! tracks the highest level written. A value `v` is stored in the lowest
//! level that can represent it, i.e. level `ℓ(v) = ⌈log₂ max(1, ⌈log₂ (v+1)⌉)⌉`;
//! crucially, any value stored at level `ℓ ≥ 1` is `≥ B_{ℓ−1}` and hence
//! dominates everything stored at lower levels.
//!
//! * `write(v)`: write `v` into level `ℓ(v)`, then raise the level pointer
//!   to `ℓ(v)` — in that order, so a read that sees pointer `ℓ` finds a
//!   dominating value already present at level `ℓ`.
//! * `read()`: read the pointer, then read that level.
//!
//! Cost for value `v`: `O(log₂ v)` primitives (the level-`ℓ(v)` tree has
//! depth `2^ℓ ≈ log₂ v`) plus `O(log L)` for the pointer, where `L ≤ 7`
//! levels cover all of `u64`. This is the exact-object analogue of the
//! unbounded constructions of Baig et al. [9]; the *approximate* version
//! in `approx-objects` stores only MSB indices and therefore runs in
//! `O(log₂ log_k v)` — the paper's sub-logarithmic extension.

use crate::spec::MaxRegister;
use crate::tree::{TreeMaxRegister, TreeReadMachine, TreeWriteMachine};
use smr::{OpTask, Poll, ProcCtx};
use std::sync::Arc;

/// Number of doubling levels needed so the last level covers all of `u64`:
/// bounds 2^1, 2^2, 2^4, 2^8, 2^16, 2^32, then the full domain.
const LEVELS: usize = 7;

/// An unbounded exact max register over the full `u64` domain.
pub struct UnboundedMaxRegister {
    levels: Vec<TreeMaxRegister>,
    /// Exact max register over `{0,…,LEVELS−1}` tracking the top level
    /// written; `LEVELS` as bound, values are level indices.
    pointer: TreeMaxRegister,
    /// Distinguishes "nothing written" from "0 written at level 0".
    written: TreeMaxRegister,
}

impl Default for UnboundedMaxRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl UnboundedMaxRegister {
    /// A fresh unbounded max register.
    pub fn new() -> Self {
        let levels = (0..LEVELS)
            .map(|i| TreeMaxRegister::new(Self::level_bound(i)))
            .collect();
        UnboundedMaxRegister {
            levels,
            pointer: TreeMaxRegister::new(LEVELS as u64),
            written: TreeMaxRegister::new(2),
        }
    }

    /// The exclusive bound of level `i`: `2^(2^i)`, saturating at `u64::MAX`.
    fn level_bound(i: usize) -> u64 {
        let bits = 1u32 << i; // 1, 2, 4, 8, 16, 32, 64
        if bits >= 64 {
            u64::MAX // domain {0,…,u64::MAX−1}; MAX itself is rejected
        } else {
            1u64 << bits
        }
    }

    /// The lowest level whose bound exceeds `v`.
    fn level_of(v: u64) -> usize {
        (0..LEVELS)
            .find(|&i| v < Self::level_bound(i))
            .expect("LEVELS covers the domain")
    }
}

impl MaxRegister for UnboundedMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        let mut m = UnboundedWriteMachine::new(self, v);
        while m.step(self, ctx).is_pending() {}
    }

    fn read(&self, ctx: &ProcCtx) -> u64 {
        let mut m = UnboundedReadMachine::new(self);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }

    fn bound(&self) -> Option<u64> {
        None
    }
}

/// Resume point of an `UnboundedMaxRegister::write`: the value write
/// into its level's tree, then the pointer raise, then the written flag
/// — three [`TreeWriteMachine`]s run back to back, one primitive per
/// [`step`](UnboundedWriteMachine::step), priming step free (the
/// machine convention of [`tree`](crate::tree)'s module docs). A
/// sub-machine's free priming is absorbed into the current step, so the
/// stage boundaries are invisible to the scheduler.
#[derive(Debug)]
pub struct UnboundedWriteMachine {
    level: usize,
    stage: WriteStage,
    sub: TreeWriteMachine,
    primed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteStage {
    Level,
    Pointer,
    Written,
}

impl UnboundedWriteMachine {
    /// A machine writing `v` into `reg`.
    ///
    /// # Panics
    /// Panics if `v == u64::MAX` (reserved), like the blocking write.
    pub fn new(reg: &UnboundedMaxRegister, v: u64) -> Self {
        assert!(v < u64::MAX, "u64::MAX is reserved");
        let level = UnboundedMaxRegister::level_of(v);
        UnboundedWriteMachine {
            level,
            stage: WriteStage::Level,
            sub: TreeWriteMachine::new(&reg.levels[level], v),
            primed: false,
        }
    }

    /// The tree the current stage operates on.
    fn target<'r>(&self, reg: &'r UnboundedMaxRegister) -> &'r TreeMaxRegister {
        match self.stage {
            WriteStage::Level => &reg.levels[self.level],
            WriteStage::Pointer => &reg.pointer,
            WriteStage::Written => &reg.written,
        }
    }

    /// Move to the next stage; `false` when all stages are done.
    fn advance(&mut self, reg: &UnboundedMaxRegister) -> bool {
        match self.stage {
            WriteStage::Level => {
                self.stage = WriteStage::Pointer;
                self.sub = TreeWriteMachine::new(&reg.pointer, self.level as u64);
                true
            }
            WriteStage::Pointer => {
                self.stage = WriteStage::Written;
                self.sub = TreeWriteMachine::new(&reg.written, 1);
                true
            }
            WriteStage::Written => false,
        }
    }

    /// Advance the write by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &UnboundedMaxRegister, ctx: &ProcCtx) -> Poll<()> {
        if !self.primed {
            self.primed = true;
            // Prime sub-machines through zero-primitive progress only.
            loop {
                match self.sub.step(self.target(reg), ctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(()) => {
                        if !self.advance(reg) {
                            return Poll::Ready(());
                        }
                    }
                }
            }
        }
        loop {
            let before = ctx.steps_taken();
            let polled = self.sub.step(self.target(reg), ctx);
            let applied = ctx.steps_taken() - before;
            match polled {
                Poll::Pending => {
                    if applied == 1 {
                        return Poll::Pending;
                    }
                    // A fresh sub-machine just primed; keep going within
                    // this granted step.
                }
                Poll::Ready(()) => {
                    if !self.advance(reg) {
                        debug_assert_eq!(applied, 1, "the completing step applies a primitive");
                        return Poll::Ready(());
                    }
                    if applied == 1 {
                        return Poll::Pending;
                    }
                }
            }
        }
    }
}

/// Resume point of an `UnboundedMaxRegister::read`: the written flag,
/// then the level pointer, then that level's tree — resolving to the
/// stored maximum. Counterpart of [`UnboundedWriteMachine`].
#[derive(Debug)]
pub struct UnboundedReadMachine {
    stage: ReadStage,
    primed: bool,
}

#[derive(Debug)]
enum ReadStage {
    Written(TreeReadMachine),
    Pointer(TreeReadMachine),
    Level(usize, TreeReadMachine),
}

impl UnboundedReadMachine {
    /// A machine reading `reg`.
    pub fn new(reg: &UnboundedMaxRegister) -> Self {
        UnboundedReadMachine {
            stage: ReadStage::Written(TreeReadMachine::new(&reg.written)),
            primed: false,
        }
    }

    /// Advance the read by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &UnboundedMaxRegister, ctx: &ProcCtx) -> Poll<u64> {
        if !self.primed {
            self.primed = true;
            // A fresh machine is always at the written-flag stage, whose
            // tree has depth 1 — the read applies a primitive, so the
            // priming step never completes.
            let ReadStage::Written(m) = &mut self.stage else {
                unreachable!("fresh machine primes at the written-flag stage");
            };
            let polled = m.step(&reg.written, ctx);
            debug_assert!(polled.is_pending(), "flag read needs a primitive");
            return Poll::Pending;
        }
        loop {
            let before = ctx.steps_taken();
            let polled = match &mut self.stage {
                ReadStage::Written(m) => m.step(&reg.written, ctx),
                ReadStage::Pointer(m) => m.step(&reg.pointer, ctx),
                ReadStage::Level(l, m) => m.step(&reg.levels[*l], ctx),
            };
            let applied = ctx.steps_taken() - before;
            match polled {
                Poll::Pending => {
                    if applied == 1 {
                        return Poll::Pending;
                    }
                }
                Poll::Ready(v) => {
                    match &self.stage {
                        ReadStage::Written(_) => {
                            if v == 0 {
                                return Poll::Ready(0); // nothing written yet
                            }
                            let mut m = TreeReadMachine::new(&reg.pointer);
                            let polled = m.step(&reg.pointer, ctx); // prime: free
                            debug_assert!(polled.is_pending());
                            self.stage = ReadStage::Pointer(m);
                        }
                        ReadStage::Pointer(_) => {
                            let level = v as usize;
                            let mut m = TreeReadMachine::new(&reg.levels[level]);
                            let polled = m.step(&reg.levels[level], ctx); // prime: free
                            debug_assert!(polled.is_pending());
                            self.stage = ReadStage::Level(level, m);
                        }
                        ReadStage::Level(..) => return Poll::Ready(v),
                    }
                    if applied == 1 {
                        return Poll::Pending;
                    }
                }
            }
        }
    }
}

/// `UnboundedMaxRegister::write` as a resumable [`OpTask`] for the coop
/// backend.
pub struct UnboundedMaxWriteTask {
    reg: Arc<UnboundedMaxRegister>,
    machine: UnboundedWriteMachine,
}

impl UnboundedMaxWriteTask {
    /// A write of `v`.
    ///
    /// # Panics
    /// Panics if `v == u64::MAX` (reserved), like the blocking write.
    pub fn new(reg: Arc<UnboundedMaxRegister>, v: u64) -> Self {
        let machine = UnboundedWriteMachine::new(&reg, v);
        UnboundedMaxWriteTask { reg, machine }
    }
}

impl OpTask for UnboundedMaxWriteTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx).map(|()| 0)
    }
}

/// `UnboundedMaxRegister::read` as a resumable [`OpTask`] for the coop
/// backend.
pub struct UnboundedMaxReadTask {
    reg: Arc<UnboundedMaxRegister>,
    machine: UnboundedReadMachine,
}

impl UnboundedMaxReadTask {
    /// A read.
    pub fn new(reg: Arc<UnboundedMaxRegister>) -> Self {
        let machine = UnboundedReadMachine::new(&reg);
        UnboundedMaxReadTask { reg, machine }
    }
}

impl OpTask for UnboundedMaxReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx).map(u128::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn level_bounds_double() {
        assert_eq!(UnboundedMaxRegister::level_bound(0), 2);
        assert_eq!(UnboundedMaxRegister::level_bound(1), 4);
        assert_eq!(UnboundedMaxRegister::level_bound(2), 16);
        assert_eq!(UnboundedMaxRegister::level_bound(3), 256);
        assert_eq!(UnboundedMaxRegister::level_bound(6), u64::MAX);
    }

    #[test]
    fn level_of_is_monotone_and_minimal() {
        assert_eq!(UnboundedMaxRegister::level_of(0), 0);
        assert_eq!(UnboundedMaxRegister::level_of(1), 0);
        assert_eq!(UnboundedMaxRegister::level_of(2), 1);
        assert_eq!(UnboundedMaxRegister::level_of(3), 1);
        assert_eq!(UnboundedMaxRegister::level_of(4), 2);
        assert_eq!(UnboundedMaxRegister::level_of(255), 3);
        assert_eq!(UnboundedMaxRegister::level_of(256), 4);
        assert_eq!(UnboundedMaxRegister::level_of(u64::MAX - 1), 6);
    }

    #[test]
    fn sequential_conformance() {
        let reg = UnboundedMaxRegister::new();
        testutil::check_sequential(&reg, &[1, 3, 2, 1000, 999, 1 << 40, 5]);
    }

    #[test]
    fn cross_level_domination() {
        // A small value written after a huge one must not lower the max.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = UnboundedMaxRegister::new();
        reg.write(&ctx, 1 << 50);
        reg.write(&ctx, 1);
        assert_eq!(reg.read(&ctx), 1 << 50);
    }

    #[test]
    fn zero_write_is_visible() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = UnboundedMaxRegister::new();
        assert_eq!(reg.read(&ctx), 0);
        reg.write(&ctx, 0);
        assert_eq!(reg.read(&ctx), 0);
    }

    #[test]
    fn cost_scales_with_value_not_domain() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = UnboundedMaxRegister::new();
        let s0 = ctx.steps_taken();
        reg.write(&ctx, 3); // level 1, depth 2 tree
        let small_cost = ctx.steps_taken() - s0;
        let reg2 = UnboundedMaxRegister::new();
        let s0 = ctx.steps_taken();
        reg2.write(&ctx, 1 << 60); // level 6
        let big_cost = ctx.steps_taken() - s0;
        assert!(
            small_cost < big_cost,
            "small {small_cost} vs big {big_cost}"
        );
        assert!(small_cost <= 12, "small write cost {small_cost}");
    }

    #[test]
    fn concurrent_writers_converge() {
        let reg = Arc::new(UnboundedMaxRegister::new());
        testutil::check_concurrent(reg, 6, 300);
    }
}
