//! An unbounded exact max register: a level-doubling chain of bounded
//! tree registers.
//!
//! Level `i` is a [`TreeMaxRegister`] with bound `B_i = 2^(2^i)` (capped at
//! the `u64` domain), plus a small exact *level pointer* max register that
//! tracks the highest level written. A value `v` is stored in the lowest
//! level that can represent it, i.e. level `ℓ(v) = ⌈log₂ max(1, ⌈log₂ (v+1)⌉)⌉`;
//! crucially, any value stored at level `ℓ ≥ 1` is `≥ B_{ℓ−1}` and hence
//! dominates everything stored at lower levels.
//!
//! * `write(v)`: write `v` into level `ℓ(v)`, then raise the level pointer
//!   to `ℓ(v)` — in that order, so a read that sees pointer `ℓ` finds a
//!   dominating value already present at level `ℓ`.
//! * `read()`: read the pointer, then read that level.
//!
//! Cost for value `v`: `O(log₂ v)` primitives (the level-`ℓ(v)` tree has
//! depth `2^ℓ ≈ log₂ v`) plus `O(log L)` for the pointer, where `L ≤ 7`
//! levels cover all of `u64`. This is the exact-object analogue of the
//! unbounded constructions of Baig et al. [9]; the *approximate* version
//! in `approx-objects` stores only MSB indices and therefore runs in
//! `O(log₂ log_k v)` — the paper's sub-logarithmic extension.

use crate::spec::MaxRegister;
use crate::tree::TreeMaxRegister;
use smr::ProcCtx;

/// Number of doubling levels needed so the last level covers all of `u64`:
/// bounds 2^1, 2^2, 2^4, 2^8, 2^16, 2^32, then the full domain.
const LEVELS: usize = 7;

/// An unbounded exact max register over the full `u64` domain.
pub struct UnboundedMaxRegister {
    levels: Vec<TreeMaxRegister>,
    /// Exact max register over `{0,…,LEVELS−1}` tracking the top level
    /// written; `LEVELS` as bound, values are level indices.
    pointer: TreeMaxRegister,
    /// Distinguishes "nothing written" from "0 written at level 0".
    written: TreeMaxRegister,
}

impl Default for UnboundedMaxRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl UnboundedMaxRegister {
    /// A fresh unbounded max register.
    pub fn new() -> Self {
        let levels = (0..LEVELS)
            .map(|i| TreeMaxRegister::new(Self::level_bound(i)))
            .collect();
        UnboundedMaxRegister {
            levels,
            pointer: TreeMaxRegister::new(LEVELS as u64),
            written: TreeMaxRegister::new(2),
        }
    }

    /// The exclusive bound of level `i`: `2^(2^i)`, saturating at `u64::MAX`.
    fn level_bound(i: usize) -> u64 {
        let bits = 1u32 << i; // 1, 2, 4, 8, 16, 32, 64
        if bits >= 64 {
            u64::MAX // domain {0,…,u64::MAX−1}; MAX itself is rejected
        } else {
            1u64 << bits
        }
    }

    /// The lowest level whose bound exceeds `v`.
    fn level_of(v: u64) -> usize {
        (0..LEVELS)
            .find(|&i| v < Self::level_bound(i))
            .expect("LEVELS covers the domain")
    }
}

impl MaxRegister for UnboundedMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        assert!(v < u64::MAX, "u64::MAX is reserved");
        let level = Self::level_of(v);
        self.levels[level].write(ctx, v);
        self.pointer.write(ctx, level as u64);
        self.written.write(ctx, 1);
    }

    fn read(&self, ctx: &ProcCtx) -> u64 {
        if self.written.read(ctx) == 0 {
            return 0;
        }
        let level = self.pointer.read(ctx) as usize;
        self.levels[level].read(ctx)
    }

    fn bound(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn level_bounds_double() {
        assert_eq!(UnboundedMaxRegister::level_bound(0), 2);
        assert_eq!(UnboundedMaxRegister::level_bound(1), 4);
        assert_eq!(UnboundedMaxRegister::level_bound(2), 16);
        assert_eq!(UnboundedMaxRegister::level_bound(3), 256);
        assert_eq!(UnboundedMaxRegister::level_bound(6), u64::MAX);
    }

    #[test]
    fn level_of_is_monotone_and_minimal() {
        assert_eq!(UnboundedMaxRegister::level_of(0), 0);
        assert_eq!(UnboundedMaxRegister::level_of(1), 0);
        assert_eq!(UnboundedMaxRegister::level_of(2), 1);
        assert_eq!(UnboundedMaxRegister::level_of(3), 1);
        assert_eq!(UnboundedMaxRegister::level_of(4), 2);
        assert_eq!(UnboundedMaxRegister::level_of(255), 3);
        assert_eq!(UnboundedMaxRegister::level_of(256), 4);
        assert_eq!(UnboundedMaxRegister::level_of(u64::MAX - 1), 6);
    }

    #[test]
    fn sequential_conformance() {
        let reg = UnboundedMaxRegister::new();
        testutil::check_sequential(&reg, &[1, 3, 2, 1000, 999, 1 << 40, 5]);
    }

    #[test]
    fn cross_level_domination() {
        // A small value written after a huge one must not lower the max.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = UnboundedMaxRegister::new();
        reg.write(&ctx, 1 << 50);
        reg.write(&ctx, 1);
        assert_eq!(reg.read(&ctx), 1 << 50);
    }

    #[test]
    fn zero_write_is_visible() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = UnboundedMaxRegister::new();
        assert_eq!(reg.read(&ctx), 0);
        reg.write(&ctx, 0);
        assert_eq!(reg.read(&ctx), 0);
    }

    #[test]
    fn cost_scales_with_value_not_domain() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = UnboundedMaxRegister::new();
        let s0 = ctx.steps_taken();
        reg.write(&ctx, 3); // level 1, depth 2 tree
        let small_cost = ctx.steps_taken() - s0;
        let reg2 = UnboundedMaxRegister::new();
        let s0 = ctx.steps_taken();
        reg2.write(&ctx, 1 << 60); // level 6
        let big_cost = ctx.steps_taken() - s0;
        assert!(
            small_cost < big_cost,
            "small {small_cost} vs big {big_cost}"
        );
        assert!(small_cost <= 12, "small write cost {small_cost}");
    }

    #[test]
    fn concurrent_writers_converge() {
        let reg = Arc::new(UnboundedMaxRegister::new());
        testutil::check_concurrent(reg, 6, 300);
    }
}
