//! The collect-based max register: `O(1)` writes, `O(n)` reads.
//!
//! One single-writer register per process holds the largest value that
//! process has written; a read collects all `n` cells and returns the
//! maximum. For a *monotone* object this is linearizable: the value
//! returned lies between the max of writes completed before the read began
//! and the max of writes begun before it ended, and every intermediate
//! value is attained at some instant inside the read's window.
//!
//! This is the `n`-side of AACH's `O(min(log m, n))` bound: cheaper than
//! the tree whenever `n < log₂ m`.

use crate::spec::MaxRegister;
use smr::{Poll, ProcCtx, Register};

/// An unbounded (full `u64` domain) max register with `O(1)` writes and
/// `O(n)` reads, built from `n` single-writer registers.
pub struct CollectMaxRegister {
    cells: Vec<Register>,
    bound: Option<u64>,
}

impl CollectMaxRegister {
    /// A collect-based max register for `n` processes over all of `u64`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        CollectMaxRegister {
            cells: (0..n).map(|_| Register::new(0)).collect(),
            bound: None,
        }
    }

    /// Same, but advertising (and enforcing) a bound `m` — used by
    /// [`AdaptiveMaxRegister`](crate::AdaptiveMaxRegister) so both arms
    /// agree on the domain.
    pub fn bounded(n: usize, m: u64) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(m > 0, "bound must be positive");
        CollectMaxRegister {
            cells: (0..n).map(|_| Register::new(0)).collect(),
            bound: Some(m),
        }
    }

    /// Number of processes (cells).
    pub fn n(&self) -> usize {
        self.cells.len()
    }
}

impl MaxRegister for CollectMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        let mut m = CollectWriteMachine::new(self, v);
        while m.step(self, ctx).is_pending() {}
    }

    fn read(&self, ctx: &ProcCtx) -> u64 {
        let mut m = CollectReadMachine::new(self);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }

    fn bound(&self) -> Option<u64> {
        self.bound
    }
}

/// Resume point of a `CollectMaxRegister::write`: read the own cell,
/// then overwrite it if the new value is larger — one primitive per
/// [`step`](CollectWriteMachine::step), priming step free; dominated
/// writes complete on the read. The single transcription driven by the
/// blocking method, the task wrappers and the composites (see
/// [`tree`](crate::tree)'s module docs for the machine convention).
#[derive(Debug)]
pub struct CollectWriteMachine {
    v: u64,
    phase: CollectWritePhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollectWritePhase {
    Start,
    ReadOwn,
    WriteOwn,
}

impl CollectWriteMachine {
    /// A machine writing `v` into `reg`.
    ///
    /// # Panics
    /// Panics if `v` is out of a bounded register's range, like the
    /// blocking write.
    pub fn new(reg: &CollectMaxRegister, v: u64) -> Self {
        if let Some(m) = reg.bound {
            assert!(v < m, "value {v} out of range (m = {m})");
        }
        CollectWriteMachine {
            v,
            phase: CollectWritePhase::Start,
        }
    }

    /// Advance the write by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &CollectMaxRegister, ctx: &ProcCtx) -> Poll<()> {
        match self.phase {
            CollectWritePhase::Start => {
                self.phase = CollectWritePhase::ReadOwn;
                Poll::Pending
            }
            CollectWritePhase::ReadOwn => {
                // Single-writer: only this process writes this cell, so
                // the read-then-write pair cannot lose updates.
                if reg.cells[ctx.pid()].read(ctx) < self.v {
                    self.phase = CollectWritePhase::WriteOwn;
                    Poll::Pending
                } else {
                    Poll::Ready(()) // dominated: skip the store
                }
            }
            CollectWritePhase::WriteOwn => {
                reg.cells[ctx.pid()].write(ctx, self.v);
                Poll::Ready(())
            }
        }
    }
}

/// Resume point of a `CollectMaxRegister::read`: collect the `n` cells,
/// one primitive per [`step`](CollectReadMachine::step), resolving to
/// their maximum.
#[derive(Debug)]
pub struct CollectReadMachine {
    next: usize,
    acc: u64,
    primed: bool,
}

impl CollectReadMachine {
    /// A machine reading `reg`.
    pub fn new(_reg: &CollectMaxRegister) -> Self {
        CollectReadMachine {
            next: 0,
            acc: 0,
            primed: false,
        }
    }

    /// Advance the read by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &CollectMaxRegister, ctx: &ProcCtx) -> Poll<u64> {
        if !self.primed {
            self.primed = true;
            return Poll::Pending;
        }
        self.acc = self.acc.max(reg.cells[self.next].read(ctx));
        self.next += 1;
        if self.next == reg.cells.len() {
            Poll::Ready(self.acc)
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        let reg = CollectMaxRegister::new(1);
        testutil::check_sequential(&reg, &[1, 100, 7, u64::MAX, 3]);
    }

    #[test]
    fn concurrent_writers_converge() {
        let reg = Arc::new(CollectMaxRegister::new(6));
        testutil::check_concurrent(reg, 6, 400);
    }

    #[test]
    fn write_costs_constant_read_costs_n() {
        let n = 16;
        let rt = Runtime::free_running(n);
        let reg = CollectMaxRegister::new(n);
        let ctx = rt.ctx(3);
        let s0 = ctx.steps_taken();
        reg.write(&ctx, 5);
        assert_eq!(ctx.steps_taken() - s0, 2, "write = own-cell read + write");
        let s0 = ctx.steps_taken();
        let _ = reg.read(&ctx);
        assert_eq!(ctx.steps_taken() - s0, n as u64, "read = n-cell collect");
    }

    #[test]
    fn dominated_write_skips_store() {
        let rt = Runtime::free_running(1);
        let reg = CollectMaxRegister::new(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 10);
        let s0 = ctx.steps_taken();
        reg.write(&ctx, 3); // dominated: read own cell, skip write
        assert_eq!(ctx.steps_taken() - s0, 1);
        assert_eq!(reg.read(&ctx), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounded_variant_enforces_bound() {
        let rt = Runtime::free_running(1);
        let reg = CollectMaxRegister::bounded(1, 16);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 16);
    }
}
