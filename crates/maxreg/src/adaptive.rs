//! The `O(min(log m, n))` bounded max register.
//!
//! AACH's bound for `m`-bounded max registers is `O(min(log₂ m, n))`:
//! the tree construction costs `O(log m)` and the collect construction
//! `O(n)`; whichever is smaller wins. [`AdaptiveMaxRegister`] makes that
//! choice once, at construction time, from the `(n, m)` parameters — the
//! same convention the paper uses when quoting the bound in Theorem IV.2.

use crate::collect::{CollectMaxRegister, CollectReadMachine, CollectWriteMachine};
use crate::spec::MaxRegister;
use crate::tree::{TreeMaxRegister, TreeReadMachine, TreeWriteMachine};
use smr::{OpTask, Poll, ProcCtx};
use std::sync::Arc;

enum Arm {
    Tree(TreeMaxRegister),
    Collect(CollectMaxRegister),
}

/// An `m`-bounded max register for `n` processes with worst-case step
/// complexity `O(min(log₂ m, n))`.
pub struct AdaptiveMaxRegister {
    arm: Arm,
}

impl AdaptiveMaxRegister {
    /// Choose the cheaper construction for `n` processes and bound `m`.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(m > 0, "bound must be positive");
        let tree_cost = TreeMaxRegister::new(m).worst_case_steps();
        let arm = if tree_cost <= n as u64 {
            Arm::Tree(TreeMaxRegister::new(m))
        } else {
            Arm::Collect(CollectMaxRegister::bounded(n, m))
        };
        AdaptiveMaxRegister { arm }
    }

    /// `true` if the tree arm was selected (`log₂ m ≤ n`).
    pub fn uses_tree(&self) -> bool {
        matches!(self.arm, Arm::Tree(_))
    }
}

impl MaxRegister for AdaptiveMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        match &self.arm {
            Arm::Tree(t) => t.write(ctx, v),
            Arm::Collect(c) => c.write(ctx, v),
        }
    }

    fn read(&self, ctx: &ProcCtx) -> u64 {
        match &self.arm {
            Arm::Tree(t) => t.read(ctx),
            Arm::Collect(c) => c.read(ctx),
        }
    }

    fn bound(&self) -> Option<u64> {
        match &self.arm {
            Arm::Tree(t) => t.bound(),
            Arm::Collect(c) => c.bound(),
        }
    }
}

/// Resume point of an `AdaptiveMaxRegister::write`: the machine of
/// whichever arm the register selected at construction. One primitive
/// per [`step`](AdaptiveWriteMachine::step), priming step free — the
/// convention of [`tree`](crate::tree)'s module docs.
#[derive(Debug)]
pub enum AdaptiveWriteMachine {
    /// Write through the tree arm.
    Tree(TreeWriteMachine),
    /// Write through the collect arm.
    Collect(CollectWriteMachine),
}

impl AdaptiveWriteMachine {
    /// A machine writing `v` into `reg`.
    ///
    /// # Panics
    /// Panics if `v` is out of range, like the blocking write.
    pub fn new(reg: &AdaptiveMaxRegister, v: u64) -> Self {
        match &reg.arm {
            Arm::Tree(t) => AdaptiveWriteMachine::Tree(TreeWriteMachine::new(t, v)),
            Arm::Collect(c) => AdaptiveWriteMachine::Collect(CollectWriteMachine::new(c, v)),
        }
    }

    /// Advance the write by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &AdaptiveMaxRegister, ctx: &ProcCtx) -> Poll<()> {
        match (self, &reg.arm) {
            (AdaptiveWriteMachine::Tree(m), Arm::Tree(t)) => m.step(t, ctx),
            (AdaptiveWriteMachine::Collect(m), Arm::Collect(c)) => m.step(c, ctx),
            _ => panic!("machine stepped against a different register"),
        }
    }
}

/// Resume point of an `AdaptiveMaxRegister::read`; counterpart of
/// [`AdaptiveWriteMachine`].
#[derive(Debug)]
pub enum AdaptiveReadMachine {
    /// Read through the tree arm.
    Tree(TreeReadMachine),
    /// Read through the collect arm.
    Collect(CollectReadMachine),
}

impl AdaptiveReadMachine {
    /// A machine reading `reg`.
    pub fn new(reg: &AdaptiveMaxRegister) -> Self {
        match &reg.arm {
            Arm::Tree(t) => AdaptiveReadMachine::Tree(TreeReadMachine::new(t)),
            Arm::Collect(c) => AdaptiveReadMachine::Collect(CollectReadMachine::new(c)),
        }
    }

    /// Advance the read by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &AdaptiveMaxRegister, ctx: &ProcCtx) -> Poll<u64> {
        match (self, &reg.arm) {
            (AdaptiveReadMachine::Tree(m), Arm::Tree(t)) => m.step(t, ctx),
            (AdaptiveReadMachine::Collect(m), Arm::Collect(c)) => m.step(c, ctx),
            _ => panic!("machine stepped against a different register"),
        }
    }
}

/// `AdaptiveMaxRegister::write` as a resumable [`OpTask`] for the coop
/// backend.
pub struct AdaptiveMaxWriteTask {
    reg: Arc<AdaptiveMaxRegister>,
    machine: AdaptiveWriteMachine,
}

impl AdaptiveMaxWriteTask {
    /// A write of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range, like the blocking write.
    pub fn new(reg: Arc<AdaptiveMaxRegister>, v: u64) -> Self {
        let machine = AdaptiveWriteMachine::new(&reg, v);
        AdaptiveMaxWriteTask { reg, machine }
    }
}

impl OpTask for AdaptiveMaxWriteTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx).map(|()| 0)
    }
}

/// `AdaptiveMaxRegister::read` as a resumable [`OpTask`] for the coop
/// backend.
pub struct AdaptiveMaxReadTask {
    reg: Arc<AdaptiveMaxRegister>,
    machine: AdaptiveReadMachine,
}

impl AdaptiveMaxReadTask {
    /// A read.
    pub fn new(reg: Arc<AdaptiveMaxRegister>) -> Self {
        let machine = AdaptiveReadMachine::new(&reg);
        AdaptiveMaxReadTask { reg, machine }
    }
}

impl OpTask for AdaptiveMaxReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx).map(u128::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn picks_tree_for_small_bounds() {
        let reg = AdaptiveMaxRegister::new(64, 256); // log m = 8 ≤ 64
        assert!(reg.uses_tree());
    }

    #[test]
    fn picks_collect_for_few_processes() {
        let reg = AdaptiveMaxRegister::new(4, 1 << 40); // n = 4 < 40
        assert!(!reg.uses_tree());
    }

    #[test]
    fn sequential_conformance_both_arms() {
        let tree = AdaptiveMaxRegister::new(64, 512);
        testutil::check_sequential(&tree, &[1, 500, 7, 511]);
        let collect = AdaptiveMaxRegister::new(2, 1 << 50);
        testutil::check_sequential(&collect, &[1, 1 << 49, 7]);
    }

    #[test]
    fn concurrent_writers_converge() {
        let reg = Arc::new(AdaptiveMaxRegister::new(4, 1 << 30));
        testutil::check_concurrent(reg, 4, 300);
    }

    #[test]
    fn step_cost_respects_min() {
        // n = 2, m = 2^40: collect arm, reads cost ~n not ~log m.
        let rt = Runtime::free_running(2);
        let reg = AdaptiveMaxRegister::new(2, 1 << 40);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 77);
        let s0 = ctx.steps_taken();
        let _ = reg.read(&ctx);
        assert!(ctx.steps_taken() - s0 <= 2, "collect read is O(n)");
    }
}
