//! The AACH tree construction of an `m`-bounded max register.
//!
//! The register for the domain `{0,…,m−1}` is a binary tree: an internal
//! node covering a span of `s` values has a 1-bit `switch` register, a left
//! child covering the lower `⌈s/2⌉` values and a right child covering the
//! upper `⌊s/2⌋`.
//!
//! * `Write(v)` descends toward `v`'s leaf. Going **right**, it first
//!   completes the write in the right subtree and only then sets the
//!   node's switch (so a set switch proves the right subtree already holds
//!   the value). Going **left**, it first reads the switch and abandons the
//!   write if set — the value is already dominated by something in the
//!   right half.
//! * `Read()` descends following switches: right if set, left otherwise,
//!   accumulating the offsets of every right turn.
//!
//! Both operations apply at most `⌈log₂ m⌉ + 1` primitives (AACH, Theorem
//! 5; optimal by the paper's reference [5]).
//!
//! Nodes are allocated lazily and published with a CAS, so the object's
//! memory footprint is proportional to the *paths actually written*, not
//! to `m` — essential for the `m = 2⁶⁰` sweeps in EXP-T4.2.

use crate::spec::MaxRegister;
use smr::{ProcCtx, Register};
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node {
    switch: Register,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn new() -> Node {
        Node {
            switch: Register::new(0),
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// The child in `slot`, allocated on demand (CAS; loser frees).
    fn child(slot: &AtomicPtr<Node>) -> &Node {
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            // SAFETY: published pointers are valid until the tree drops.
            return unsafe { &*existing };
        }
        let fresh = Box::into_raw(Box::new(Node::new()));
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: we just published `fresh`.
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // SAFETY: `fresh` lost the race and was never shared.
                unsafe { drop(Box::from_raw(fresh)) };
                // SAFETY: `winner` is a published, live node.
                unsafe { &*winner }
            }
        }
    }

    fn free(ptr: *mut Node) {
        if ptr.is_null() {
            return;
        }
        // SAFETY: called only from `Drop` with exclusive access.
        unsafe {
            let node = Box::from_raw(ptr);
            Node::free(node.left.load(Ordering::Relaxed));
            Node::free(node.right.load(Ordering::Relaxed));
        }
    }
}

/// An `m`-bounded exact max register with `O(log₂ m)` reads and writes.
///
/// ```
/// use maxreg::{MaxRegister, TreeMaxRegister};
/// use smr::Runtime;
///
/// let rt = Runtime::free_running(1);
/// let ctx = rt.ctx(0);
/// let reg = TreeMaxRegister::new(1 << 20);
/// reg.write(&ctx, 777);
/// reg.write(&ctx, 42); // dominated
/// assert_eq!(reg.read(&ctx), 777);
/// ```
pub struct TreeMaxRegister {
    bound: u64,
    root: Node,
}

impl TreeMaxRegister {
    /// A max register for values `{0,…,m−1}`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: u64) -> Self {
        assert!(m > 0, "bound must be positive");
        TreeMaxRegister {
            bound: m,
            root: Node::new(),
        }
    }

    /// The bound `m`.
    pub fn m(&self) -> u64 {
        self.bound
    }

    /// Worst-case primitives per operation for this bound: the tree depth
    /// plus one switch access per level.
    pub fn worst_case_steps(&self) -> u64 {
        // Depth of the span-halving recursion on `m` values.
        let mut span = self.bound;
        let mut depth = 0;
        while span > 1 {
            span = span.div_ceil(2);
            depth += 1;
        }
        depth
    }

    fn write_rec(node: &Node, ctx: &ProcCtx, v: u64, span: u64) {
        if span <= 1 {
            return; // single-value subrange: position itself encodes it
        }
        let half = span.div_ceil(2);
        if v < half {
            if node.switch.read(ctx) == 0 {
                Self::write_rec(Node::child(&node.left), ctx, v, half);
            }
        } else {
            Self::write_rec(Node::child(&node.right), ctx, v - half, span - half);
            node.switch.write(ctx, 1);
        }
    }
}

impl MaxRegister for TreeMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        assert!(
            v < self.bound,
            "value {v} out of range (m = {})",
            self.bound
        );
        Self::write_rec(&self.root, ctx, v, self.bound);
    }

    fn read(&self, ctx: &ProcCtx) -> u64 {
        let mut node = &self.root;
        let mut span = self.bound;
        let mut acc = 0;
        while span > 1 {
            let half = span.div_ceil(2);
            if node.switch.read(ctx) == 1 {
                acc += half;
                span -= half;
                node = Node::child(&node.right);
            } else {
                span = half;
                node = Node::child(&node.left);
            }
        }
        acc
    }

    fn bound(&self) -> Option<u64> {
        Some(self.bound)
    }
}

impl Drop for TreeMaxRegister {
    fn drop(&mut self) {
        Node::free(self.root.left.load(Ordering::Relaxed));
        Node::free(self.root.right.load(Ordering::Relaxed));
        self.root
            .left
            .store(std::ptr::null_mut(), Ordering::Relaxed);
        self.root
            .right
            .store(std::ptr::null_mut(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        let reg = TreeMaxRegister::new(1000);
        testutil::check_sequential(&reg, &[5, 3, 999, 42, 0, 998]);
    }

    #[test]
    fn sequential_conformance_non_power_of_two() {
        for m in [1u64, 2, 3, 7, 100, 129] {
            let reg = TreeMaxRegister::new(m);
            let vals: Vec<u64> = (0..m.min(50)).rev().collect();
            testutil::check_sequential(&reg, &vals);
        }
    }

    #[test]
    fn every_value_round_trips() {
        let m = 257;
        for v in 0..m {
            let reg = TreeMaxRegister::new(m);
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            reg.write(&ctx, v);
            assert_eq!(reg.read(&ctx), v, "round trip of {v}");
        }
    }

    #[test]
    fn step_complexity_is_logarithmic() {
        let m = 1 << 20;
        let reg = TreeMaxRegister::new(m);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let budget = 2 * (reg.worst_case_steps() + 1);

        let s0 = ctx.steps_taken();
        reg.write(&ctx, m - 1);
        let write_steps = ctx.steps_taken() - s0;
        assert!(
            write_steps <= budget,
            "write took {write_steps} steps; budget {budget}"
        );

        let s0 = ctx.steps_taken();
        let _ = reg.read(&ctx);
        let read_steps = ctx.steps_taken() - s0;
        assert!(
            read_steps <= budget,
            "read took {read_steps} steps; budget {budget}"
        );
    }

    #[test]
    fn huge_bound_is_lazy() {
        let m = 1u64 << 60;
        let reg = TreeMaxRegister::new(m);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, m - 1);
        reg.write(&ctx, 123_456_789);
        assert_eq!(reg.read(&ctx), m - 1);
    }

    #[test]
    fn dominated_left_write_is_abandoned() {
        // Writing a small value after a large one must not disturb the max
        // and must cost at most a few switch reads.
        let reg = TreeMaxRegister::new(1 << 16);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 60_000);
        let s0 = ctx.steps_taken();
        reg.write(&ctx, 1);
        let steps = ctx.steps_taken() - s0;
        assert_eq!(reg.read(&ctx), 60_000);
        assert!(steps <= 17, "abandoned write cost {steps}");
    }

    #[test]
    fn concurrent_writers_converge() {
        let reg = Arc::new(TreeMaxRegister::new(1 << 20));
        testutil::check_concurrent(reg, 8, 500);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_rejects_out_of_range() {
        let reg = TreeMaxRegister::new(8);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 8);
    }

    #[test]
    fn bound_one_register_is_trivial() {
        let reg = TreeMaxRegister::new(1);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 0);
        assert_eq!(reg.read(&ctx), 0);
        assert_eq!(ctx.steps_taken(), 0, "m=1 register needs no primitives");
    }
}
