//! The AACH tree construction of an `m`-bounded max register.
//!
//! The register for the domain `{0,…,m−1}` is a binary tree: an internal
//! node covering a span of `s` values has a 1-bit `switch` register, a left
//! child covering the lower `⌈s/2⌉` values and a right child covering the
//! upper `⌊s/2⌋`.
//!
//! * `Write(v)` descends toward `v`'s leaf. Going **right**, it first
//!   completes the write in the right subtree and only then sets the
//!   node's switch (so a set switch proves the right subtree already holds
//!   the value). Going **left**, it first reads the switch and abandons the
//!   write if set — the value is already dominated by something in the
//!   right half.
//! * `Read()` descends following switches: right if set, left otherwise,
//!   accumulating the offsets of every right turn.
//!
//! Both operations apply at most `⌈log₂ m⌉ + 1` primitives (AACH, Theorem
//! 5; optimal by the paper's reference [5]).
//!
//! Nodes are allocated lazily and published with a CAS, so the object's
//! memory footprint is proportional to the *paths actually written*, not
//! to `m` — essential for the `m = 2⁶⁰` sweeps in EXP-T4.2.
//!
//! ## One transcription, every form
//!
//! Both operations exist exactly once, as resumable *machines*
//! ([`TreeWriteMachine`] / [`TreeReadMachine`]): the recursive descent
//! unrolled into a turn path (descending, one switch *read* per left
//! turn) plus an unwind walk (ascending, one switch *write* per right
//! turn, deepest first) — one primitive per granted step, priming step
//! free. The blocking [`write`](TreeMaxRegister::write) /
//! [`read`](TreeMaxRegister::read) methods drive a machine to
//! completion; the [`OpTask`] wrappers ([`TreeMaxWriteTask`] /
//! [`TreeMaxReadTask`]) poll one step at a time; composite objects
//! (`AachCounter`, `UnboundedMaxRegister`, Algorithm 2) embed machines
//! directly. Zero drift between forms by construction.
//!
//! A machine holds no reference into the register — it records the turn
//! path taken and re-walks it from the root on each step (pointer
//! navigation only, no primitives) — so machines are plain safe values;
//! each [`step`](TreeWriteMachine::step) borrows the register it
//! operates on for the duration of the call. The O(depth) re-walk per
//! step is a deliberate trade: a constant wall-clock factor on deep
//! trees buys machines with no raw pointers to keep alive and ordinary
//! struct-nesting composition (the AACH counters embed these directly).
//! Step *counts* — the quantity the theorems bound and the experiments
//! measure — are identical to the recursive forms', pinned by the
//! task-vs-blocking determinism tests.

use crate::spec::MaxRegister;
use smr::{OpTask, Poll, ProcCtx, Register};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

struct Node {
    switch: Register,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn new() -> Node {
        Node {
            switch: Register::new(0),
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// The child in `slot`, allocated on demand (CAS; loser frees).
    fn child(slot: &AtomicPtr<Node>) -> &Node {
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            // SAFETY: published pointers are valid until the tree drops.
            return unsafe { &*existing };
        }
        let fresh = Box::into_raw(Box::new(Node::new()));
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: we just published `fresh`.
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // SAFETY: `fresh` lost the race and was never shared.
                unsafe { drop(Box::from_raw(fresh)) };
                // SAFETY: `winner` is a published, live node.
                unsafe { &*winner }
            }
        }
    }

    fn free(ptr: *mut Node) {
        if ptr.is_null() {
            return;
        }
        // SAFETY: called only from `Drop` with exclusive access.
        unsafe {
            let node = Box::from_raw(ptr);
            // relaxed-ok: exclusive teardown; no concurrent accessors.
            Node::free(node.left.load(Ordering::Relaxed));
            Node::free(node.right.load(Ordering::Relaxed));
        }
    }
}

/// An `m`-bounded exact max register with `O(log₂ m)` reads and writes.
///
/// ```
/// use maxreg::{MaxRegister, TreeMaxRegister};
/// use smr::Runtime;
///
/// let rt = Runtime::free_running(1);
/// let ctx = rt.ctx(0);
/// let reg = TreeMaxRegister::new(1 << 20);
/// reg.write(&ctx, 777);
/// reg.write(&ctx, 42); // dominated
/// assert_eq!(reg.read(&ctx), 777);
/// ```
pub struct TreeMaxRegister {
    bound: u64,
    root: Node,
}

impl TreeMaxRegister {
    /// A max register for values `{0,…,m−1}`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: u64) -> Self {
        assert!(m > 0, "bound must be positive");
        TreeMaxRegister {
            bound: m,
            root: Node::new(),
        }
    }

    /// The bound `m`.
    pub fn m(&self) -> u64 {
        self.bound
    }

    /// Worst-case primitives per operation for this bound: the tree depth
    /// plus one switch access per level.
    pub fn worst_case_steps(&self) -> u64 {
        // Depth of the span-halving recursion on `m` values.
        let mut span = self.bound;
        let mut depth = 0;
        while span > 1 {
            span = span.div_ceil(2);
            depth += 1;
        }
        depth
    }

    /// The node reached by following `path` from the root (allocating
    /// lazily, as the recursive forms do). Pointer navigation only — no
    /// primitives.
    fn navigate(&self, path: &[Turn]) -> &Node {
        let mut node = &self.root;
        for &turn in path {
            node = Node::child(match turn {
                Turn::Left => &node.left,
                Turn::Right => &node.right,
            });
        }
        node
    }
}

impl MaxRegister for TreeMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        let mut m = TreeWriteMachine::new(self, v);
        while m.step(self, ctx).is_pending() {}
    }

    fn read(&self, ctx: &ProcCtx) -> u64 {
        let mut m = TreeReadMachine::new(self);
        loop {
            if let Poll::Ready(v) = m.step(self, ctx) {
                return v;
            }
        }
    }

    fn bound(&self) -> Option<u64> {
        Some(self.bound)
    }
}

/// A turn of the descent path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Left,
    Right,
}

/// Resume point of a `TreeMaxRegister::write` — one primitive per
/// [`step`](TreeWriteMachine::step), priming step free, exactly the
/// primitive sequence of the recursive transcription. See the [module
/// docs](self) for the machine convention and how the forms share it.
#[derive(Debug)]
pub struct TreeWriteMachine {
    /// Turns committed so far from the root. Right turns are the
    /// ancestors whose switches remain to be set on the unwind.
    path: Vec<Turn>,
    /// Value and span relative to the current node's subrange.
    v: u64,
    span: u64,
    phase: WritePhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WritePhase {
    /// Not yet primed.
    Start,
    /// About to read the current node's switch (a left turn).
    ReadSwitch,
    /// Descent finished or abandoned; about to set the switch of the
    /// deepest right-turn ancestor strictly above `path[upto..]`.
    Unwind {
        /// Right turns at indices `< upto` are still pending.
        upto: usize,
    },
}

impl TreeWriteMachine {
    /// A machine writing `v` into `reg`.
    ///
    /// # Panics
    /// Panics if `v` is out of range, like the blocking write.
    pub fn new(reg: &TreeMaxRegister, v: u64) -> Self {
        assert!(v < reg.bound, "value {v} out of range (m = {})", reg.bound);
        TreeWriteMachine {
            path: Vec::new(),
            v,
            span: reg.bound,
            phase: WritePhase::Start,
        }
    }

    /// Take right turns (no primitives) until the next left turn (a
    /// switch read) or the leaf (start unwinding).
    fn descend(&mut self) {
        while self.span > 1 {
            let half = self.span.div_ceil(2);
            if self.v < half {
                self.span = half;
                self.phase = WritePhase::ReadSwitch;
                return;
            }
            self.path.push(Turn::Right);
            self.v -= half;
            self.span -= half;
        }
        self.phase = WritePhase::Unwind {
            upto: self.path.len(),
        };
    }

    /// The deepest pending right turn strictly below `upto`, if any.
    fn next_unwind(&self, upto: usize) -> Option<usize> {
        self.path[..upto].iter().rposition(|&t| t == Turn::Right)
    }

    /// Advance the write by at most one primitive against `reg` — which
    /// must be the register the machine was created for. The first call
    /// primes (no primitive; zero-primitive writes — `m = 1` — complete
    /// here); each later call applies exactly one primitive and returns
    /// `Ready` with the one that finishes the write.
    pub fn step(&mut self, reg: &TreeMaxRegister, ctx: &ProcCtx) -> Poll<()> {
        match self.phase {
            WritePhase::Start => {
                self.descend();
                if let WritePhase::Unwind { upto } = self.phase {
                    if self.next_unwind(upto).is_none() {
                        return Poll::Ready(()); // m = 1: no primitives at all
                    }
                }
                Poll::Pending
            }
            WritePhase::ReadSwitch => {
                let node = reg.navigate(&self.path);
                if node.switch.read(ctx) == 0 {
                    self.path.push(Turn::Left);
                    self.descend();
                } else {
                    // Dominated: abandon the descent and unwind what is
                    // stacked (ancestors' right-subtree writes are
                    // complete by construction).
                    self.phase = WritePhase::Unwind {
                        upto: self.path.len(),
                    };
                }
                match self.phase {
                    WritePhase::Unwind { upto } if self.next_unwind(upto).is_none() => {
                        Poll::Ready(())
                    }
                    _ => Poll::Pending,
                }
            }
            WritePhase::Unwind { upto } => {
                let at = self.next_unwind(upto).expect("pending right turn");
                reg.navigate(&self.path[..at]).switch.write(ctx, 1);
                self.phase = WritePhase::Unwind { upto: at };
                if self.next_unwind(at).is_none() {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

/// Resume point of a `TreeMaxRegister::read`: descend following
/// switches, one switch read per granted step, resolving to the
/// accumulated maximum. Same machine convention as
/// [`TreeWriteMachine`].
#[derive(Debug)]
pub struct TreeReadMachine {
    path: Vec<Turn>,
    span: u64,
    acc: u64,
    primed: bool,
}

impl TreeReadMachine {
    /// A machine reading `reg`.
    pub fn new(reg: &TreeMaxRegister) -> Self {
        TreeReadMachine {
            path: Vec::new(),
            span: reg.bound,
            acc: 0,
            primed: false,
        }
    }

    /// Advance the read by at most one primitive against `reg` — which
    /// must be the register the machine was created for.
    pub fn step(&mut self, reg: &TreeMaxRegister, ctx: &ProcCtx) -> Poll<u64> {
        if !self.primed {
            self.primed = true;
            if self.span <= 1 {
                return Poll::Ready(self.acc); // m = 1: no primitives
            }
            return Poll::Pending;
        }
        let half = self.span.div_ceil(2);
        let node = reg.navigate(&self.path);
        if node.switch.read(ctx) == 1 {
            self.acc += half;
            self.span -= half;
            self.path.push(Turn::Right);
        } else {
            self.span = half;
            self.path.push(Turn::Left);
        }
        if self.span <= 1 {
            Poll::Ready(self.acc)
        } else {
            Poll::Pending
        }
    }
}

/// `TreeMaxRegister::write` as a resumable [`OpTask`] for the coop
/// backend: an owning wrapper around [`TreeWriteMachine`].
pub struct TreeMaxWriteTask {
    reg: Arc<TreeMaxRegister>,
    machine: TreeWriteMachine,
}

impl TreeMaxWriteTask {
    /// A write of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range, like the blocking write.
    pub fn new(reg: Arc<TreeMaxRegister>, v: u64) -> Self {
        let machine = TreeWriteMachine::new(&reg, v);
        TreeMaxWriteTask { reg, machine }
    }
}

impl OpTask for TreeMaxWriteTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx).map(|()| 0)
    }
}

/// `TreeMaxRegister::read` as a resumable [`OpTask`]: an owning wrapper
/// around [`TreeReadMachine`].
pub struct TreeMaxReadTask {
    reg: Arc<TreeMaxRegister>,
    machine: TreeReadMachine,
}

impl TreeMaxReadTask {
    /// A read.
    pub fn new(reg: Arc<TreeMaxRegister>) -> Self {
        let machine = TreeReadMachine::new(&reg);
        TreeMaxReadTask { reg, machine }
    }
}

impl OpTask for TreeMaxReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        self.machine.step(&self.reg, ctx).map(u128::from)
    }
}

impl Drop for TreeMaxRegister {
    fn drop(&mut self) {
        // relaxed-ok: exclusive teardown; no concurrent accessors.
        Node::free(self.root.left.load(Ordering::Relaxed));
        Node::free(self.root.right.load(Ordering::Relaxed));
        self.root
            .left
            // relaxed-ok: same exclusive teardown.
            .store(std::ptr::null_mut(), Ordering::Relaxed);
        self.root
            .right
            // relaxed-ok: same exclusive teardown.
            .store(std::ptr::null_mut(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        let reg = TreeMaxRegister::new(1000);
        testutil::check_sequential(&reg, &[5, 3, 999, 42, 0, 998]);
    }

    #[test]
    fn sequential_conformance_non_power_of_two() {
        for m in [1u64, 2, 3, 7, 100, 129] {
            let reg = TreeMaxRegister::new(m);
            let vals: Vec<u64> = (0..m.min(50)).rev().collect();
            testutil::check_sequential(&reg, &vals);
        }
    }

    #[test]
    fn every_value_round_trips() {
        let m = 257;
        for v in 0..m {
            let reg = TreeMaxRegister::new(m);
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            reg.write(&ctx, v);
            assert_eq!(reg.read(&ctx), v, "round trip of {v}");
        }
    }

    #[test]
    fn step_complexity_is_logarithmic() {
        let m = 1 << 20;
        let reg = TreeMaxRegister::new(m);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let budget = 2 * (reg.worst_case_steps() + 1);

        let s0 = ctx.steps_taken();
        reg.write(&ctx, m - 1);
        let write_steps = ctx.steps_taken() - s0;
        assert!(
            write_steps <= budget,
            "write took {write_steps} steps; budget {budget}"
        );

        let s0 = ctx.steps_taken();
        let _ = reg.read(&ctx);
        let read_steps = ctx.steps_taken() - s0;
        assert!(
            read_steps <= budget,
            "read took {read_steps} steps; budget {budget}"
        );
    }

    #[test]
    fn huge_bound_is_lazy() {
        let m = 1u64 << 60;
        let reg = TreeMaxRegister::new(m);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, m - 1);
        reg.write(&ctx, 123_456_789);
        assert_eq!(reg.read(&ctx), m - 1);
    }

    #[test]
    fn dominated_left_write_is_abandoned() {
        // Writing a small value after a large one must not disturb the max
        // and must cost at most a few switch reads.
        let reg = TreeMaxRegister::new(1 << 16);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 60_000);
        let s0 = ctx.steps_taken();
        reg.write(&ctx, 1);
        let steps = ctx.steps_taken() - s0;
        assert_eq!(reg.read(&ctx), 60_000);
        assert!(steps <= 17, "abandoned write cost {steps}");
    }

    #[test]
    fn concurrent_writers_converge() {
        let reg = Arc::new(TreeMaxRegister::new(1 << 20));
        testutil::check_concurrent(reg, 8, 500);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_rejects_out_of_range() {
        let reg = TreeMaxRegister::new(8);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 8);
    }

    #[test]
    fn bound_one_register_is_trivial() {
        let reg = TreeMaxRegister::new(1);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 0);
        assert_eq!(reg.read(&ctx), 0);
        assert_eq!(ctx.steps_taken(), 0, "m=1 register needs no primitives");
    }

    #[test]
    fn machine_steps_apply_one_primitive_each() {
        // The machine convention the composites rely on: priming step
        // free, then exactly one primitive per step until Ready.
        let m = 1 << 10;
        let reg = TreeMaxRegister::new(m);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        for v in [0u64, 1, 511, 512, 777, m - 1] {
            let mut machine = TreeWriteMachine::new(&reg, v);
            let s0 = ctx.steps_taken();
            assert!(machine.step(&reg, &ctx).is_pending(), "prime");
            assert_eq!(ctx.steps_taken(), s0, "priming step is free");
            loop {
                let before = ctx.steps_taken();
                let done = machine.step(&reg, &ctx).is_ready();
                assert_eq!(ctx.steps_taken() - before, 1, "one primitive per step");
                if done {
                    break;
                }
            }
        }
    }
}
