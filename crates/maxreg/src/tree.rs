//! The AACH tree construction of an `m`-bounded max register.
//!
//! The register for the domain `{0,…,m−1}` is a binary tree: an internal
//! node covering a span of `s` values has a 1-bit `switch` register, a left
//! child covering the lower `⌈s/2⌉` values and a right child covering the
//! upper `⌊s/2⌋`.
//!
//! * `Write(v)` descends toward `v`'s leaf. Going **right**, it first
//!   completes the write in the right subtree and only then sets the
//!   node's switch (so a set switch proves the right subtree already holds
//!   the value). Going **left**, it first reads the switch and abandons the
//!   write if set — the value is already dominated by something in the
//!   right half.
//! * `Read()` descends following switches: right if set, left otherwise,
//!   accumulating the offsets of every right turn.
//!
//! Both operations apply at most `⌈log₂ m⌉ + 1` primitives (AACH, Theorem
//! 5; optimal by the paper's reference [5]).
//!
//! Nodes are allocated lazily and published with a CAS, so the object's
//! memory footprint is proportional to the *paths actually written*, not
//! to `m` — essential for the `m = 2⁶⁰` sweeps in EXP-T4.2.

use crate::spec::MaxRegister;
use smr::{OpTask, Poll, ProcCtx, Register};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

struct Node {
    switch: Register,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn new() -> Node {
        Node {
            switch: Register::new(0),
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// The child in `slot`, allocated on demand (CAS; loser frees).
    fn child(slot: &AtomicPtr<Node>) -> &Node {
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            // SAFETY: published pointers are valid until the tree drops.
            return unsafe { &*existing };
        }
        let fresh = Box::into_raw(Box::new(Node::new()));
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: we just published `fresh`.
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // SAFETY: `fresh` lost the race and was never shared.
                unsafe { drop(Box::from_raw(fresh)) };
                // SAFETY: `winner` is a published, live node.
                unsafe { &*winner }
            }
        }
    }

    fn free(ptr: *mut Node) {
        if ptr.is_null() {
            return;
        }
        // SAFETY: called only from `Drop` with exclusive access.
        unsafe {
            let node = Box::from_raw(ptr);
            Node::free(node.left.load(Ordering::Relaxed));
            Node::free(node.right.load(Ordering::Relaxed));
        }
    }
}

/// An `m`-bounded exact max register with `O(log₂ m)` reads and writes.
///
/// ```
/// use maxreg::{MaxRegister, TreeMaxRegister};
/// use smr::Runtime;
///
/// let rt = Runtime::free_running(1);
/// let ctx = rt.ctx(0);
/// let reg = TreeMaxRegister::new(1 << 20);
/// reg.write(&ctx, 777);
/// reg.write(&ctx, 42); // dominated
/// assert_eq!(reg.read(&ctx), 777);
/// ```
pub struct TreeMaxRegister {
    bound: u64,
    root: Node,
}

impl TreeMaxRegister {
    /// A max register for values `{0,…,m−1}`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: u64) -> Self {
        assert!(m > 0, "bound must be positive");
        TreeMaxRegister {
            bound: m,
            root: Node::new(),
        }
    }

    /// The bound `m`.
    pub fn m(&self) -> u64 {
        self.bound
    }

    /// Worst-case primitives per operation for this bound: the tree depth
    /// plus one switch access per level.
    pub fn worst_case_steps(&self) -> u64 {
        // Depth of the span-halving recursion on `m` values.
        let mut span = self.bound;
        let mut depth = 0;
        while span > 1 {
            span = span.div_ceil(2);
            depth += 1;
        }
        depth
    }

    fn write_rec(node: &Node, ctx: &ProcCtx, v: u64, span: u64) {
        if span <= 1 {
            return; // single-value subrange: position itself encodes it
        }
        let half = span.div_ceil(2);
        if v < half {
            if node.switch.read(ctx) == 0 {
                Self::write_rec(Node::child(&node.left), ctx, v, half);
            }
        } else {
            Self::write_rec(Node::child(&node.right), ctx, v - half, span - half);
            node.switch.write(ctx, 1);
        }
    }
}

impl MaxRegister for TreeMaxRegister {
    fn write(&self, ctx: &ProcCtx, v: u64) {
        assert!(
            v < self.bound,
            "value {v} out of range (m = {})",
            self.bound
        );
        Self::write_rec(&self.root, ctx, v, self.bound);
    }

    fn read(&self, ctx: &ProcCtx) -> u64 {
        let mut node = &self.root;
        let mut span = self.bound;
        let mut acc = 0;
        while span > 1 {
            let half = span.div_ceil(2);
            if node.switch.read(ctx) == 1 {
                acc += half;
                span -= half;
                node = Node::child(&node.right);
            } else {
                span = half;
                node = Node::child(&node.left);
            }
        }
        acc
    }

    fn bound(&self) -> Option<u64> {
        Some(self.bound)
    }
}

/// `TreeMaxRegister::write` as a resumable [`OpTask`]: the recursive
/// descent of [`write_rec`](TreeMaxRegister::write_rec) unrolled into a
/// cursor (descending, one switch *read* per left turn) plus an unwind
/// stack (ascending, one switch *write* per right turn, deepest first) —
/// the same primitives in the same order, one per granted poll.
///
/// The cursor holds raw `Node` pointers because the nodes live inside
/// the `Arc<TreeMaxRegister>` the task also owns: nodes are
/// heap-published, have stable addresses, and are freed only when the
/// register drops, which the `Arc` prevents for the task's lifetime.
pub struct TreeMaxWriteTask {
    /// Never read, but load-bearing: keeps every pointed-to node alive.
    _keepalive: Arc<TreeMaxRegister>,
    node: *const Node,
    v: u64,
    span: u64,
    /// Right-turn ancestors whose switches remain to be set (deepest
    /// last; written in pop order).
    unwind: Vec<*const Node>,
    phase: TreeWritePhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TreeWritePhase {
    /// Not yet primed.
    Start,
    /// About to read the cursor node's switch (a left turn).
    ReadSwitch,
    /// Descent finished or abandoned; about to set the next stacked
    /// switch.
    WriteSwitch,
}

// SAFETY: the raw pointers reference nodes owned by `reg`; the task
// carries the Arc, every pointed-to node outlives it, and all access
// goes through `&Node` whose interior (`Register`, `AtomicPtr`) is Sync.
unsafe impl Send for TreeMaxWriteTask {}

impl TreeMaxWriteTask {
    /// A write of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range, like the blocking write.
    pub fn new(reg: Arc<TreeMaxRegister>, v: u64) -> Self {
        assert!(v < reg.bound, "value {v} out of range (m = {})", reg.bound);
        let node: *const Node = &reg.root;
        let span = reg.bound;
        TreeMaxWriteTask {
            _keepalive: reg,
            node,
            v,
            span,
            unwind: Vec::new(),
            phase: TreeWritePhase::Start,
        }
    }

    /// Walk right turns (no primitives) until the next primitive or the
    /// leaf, setting `phase` to the next pending primitive kind; a
    /// `WriteSwitch` phase with an empty `unwind` stack means the write
    /// is complete.
    fn descend(&mut self) {
        while self.span > 1 {
            let half = self.span.div_ceil(2);
            if self.v < half {
                self.span = half;
                self.phase = TreeWritePhase::ReadSwitch;
                return;
            }
            self.unwind.push(self.node);
            // SAFETY: see the Send impl — nodes outlive the task.
            self.node = Node::child(unsafe { &(*self.node).right });
            self.v -= half;
            self.span -= half;
        }
        self.phase = TreeWritePhase::WriteSwitch;
    }
}

impl OpTask for TreeMaxWriteTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        match self.phase {
            TreeWritePhase::Start => {
                self.descend();
                if self.phase == TreeWritePhase::WriteSwitch && self.unwind.is_empty() {
                    return Poll::Ready(0); // m = 1: no primitives at all
                }
                Poll::Pending
            }
            TreeWritePhase::ReadSwitch => {
                // SAFETY: see the Send impl.
                let node = unsafe { &*self.node };
                if node.switch.read(ctx) == 0 {
                    self.node = Node::child(&node.left);
                    self.descend();
                    if self.phase == TreeWritePhase::WriteSwitch && self.unwind.is_empty() {
                        return Poll::Ready(0);
                    }
                } else {
                    // Dominated: abandon the descent, unwind what's
                    // stacked (ancestors' right-subtree writes are
                    // complete by construction).
                    self.phase = TreeWritePhase::WriteSwitch;
                    if self.unwind.is_empty() {
                        return Poll::Ready(0);
                    }
                }
                Poll::Pending
            }
            TreeWritePhase::WriteSwitch => {
                let node = self.unwind.pop().expect("non-empty unwind stack");
                // SAFETY: see the Send impl.
                unsafe { &*node }.switch.write(ctx, 1);
                if self.unwind.is_empty() {
                    Poll::Ready(0)
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

/// `TreeMaxRegister::read` as a resumable [`OpTask`]: descend following
/// switches, one switch read per granted poll, resolving to the
/// accumulated maximum. Pointer safety as in [`TreeMaxWriteTask`].
pub struct TreeMaxReadTask {
    /// Never read, but load-bearing: keeps every pointed-to node alive.
    _keepalive: Arc<TreeMaxRegister>,
    node: *const Node,
    span: u64,
    acc: u64,
    primed: bool,
}

// SAFETY: as for TreeMaxWriteTask.
unsafe impl Send for TreeMaxReadTask {}

impl TreeMaxReadTask {
    /// A read.
    pub fn new(reg: Arc<TreeMaxRegister>) -> Self {
        let node: *const Node = &reg.root;
        let span = reg.bound;
        TreeMaxReadTask {
            _keepalive: reg,
            node,
            span,
            acc: 0,
            primed: false,
        }
    }
}

impl OpTask for TreeMaxReadTask {
    fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
        if !self.primed {
            self.primed = true;
            return if self.span <= 1 {
                Poll::Ready(u128::from(self.acc)) // m = 1: no primitives
            } else {
                Poll::Pending
            };
        }
        let half = self.span.div_ceil(2);
        // SAFETY: see TreeMaxWriteTask's Send impl.
        let node = unsafe { &*self.node };
        if node.switch.read(ctx) == 1 {
            self.acc += half;
            self.span -= half;
            self.node = Node::child(&node.right);
        } else {
            self.span = half;
            self.node = Node::child(&node.left);
        }
        if self.span <= 1 {
            Poll::Ready(u128::from(self.acc))
        } else {
            Poll::Pending
        }
    }
}

impl Drop for TreeMaxRegister {
    fn drop(&mut self) {
        Node::free(self.root.left.load(Ordering::Relaxed));
        Node::free(self.root.right.load(Ordering::Relaxed));
        self.root
            .left
            .store(std::ptr::null_mut(), Ordering::Relaxed);
        self.root
            .right
            .store(std::ptr::null_mut(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil;
    use smr::Runtime;
    use std::sync::Arc;

    #[test]
    fn sequential_conformance() {
        let reg = TreeMaxRegister::new(1000);
        testutil::check_sequential(&reg, &[5, 3, 999, 42, 0, 998]);
    }

    #[test]
    fn sequential_conformance_non_power_of_two() {
        for m in [1u64, 2, 3, 7, 100, 129] {
            let reg = TreeMaxRegister::new(m);
            let vals: Vec<u64> = (0..m.min(50)).rev().collect();
            testutil::check_sequential(&reg, &vals);
        }
    }

    #[test]
    fn every_value_round_trips() {
        let m = 257;
        for v in 0..m {
            let reg = TreeMaxRegister::new(m);
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            reg.write(&ctx, v);
            assert_eq!(reg.read(&ctx), v, "round trip of {v}");
        }
    }

    #[test]
    fn step_complexity_is_logarithmic() {
        let m = 1 << 20;
        let reg = TreeMaxRegister::new(m);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let budget = 2 * (reg.worst_case_steps() + 1);

        let s0 = ctx.steps_taken();
        reg.write(&ctx, m - 1);
        let write_steps = ctx.steps_taken() - s0;
        assert!(
            write_steps <= budget,
            "write took {write_steps} steps; budget {budget}"
        );

        let s0 = ctx.steps_taken();
        let _ = reg.read(&ctx);
        let read_steps = ctx.steps_taken() - s0;
        assert!(
            read_steps <= budget,
            "read took {read_steps} steps; budget {budget}"
        );
    }

    #[test]
    fn huge_bound_is_lazy() {
        let m = 1u64 << 60;
        let reg = TreeMaxRegister::new(m);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, m - 1);
        reg.write(&ctx, 123_456_789);
        assert_eq!(reg.read(&ctx), m - 1);
    }

    #[test]
    fn dominated_left_write_is_abandoned() {
        // Writing a small value after a large one must not disturb the max
        // and must cost at most a few switch reads.
        let reg = TreeMaxRegister::new(1 << 16);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 60_000);
        let s0 = ctx.steps_taken();
        reg.write(&ctx, 1);
        let steps = ctx.steps_taken() - s0;
        assert_eq!(reg.read(&ctx), 60_000);
        assert!(steps <= 17, "abandoned write cost {steps}");
    }

    #[test]
    fn concurrent_writers_converge() {
        let reg = Arc::new(TreeMaxRegister::new(1 << 20));
        testutil::check_concurrent(reg, 8, 500);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_rejects_out_of_range() {
        let reg = TreeMaxRegister::new(8);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 8);
    }

    #[test]
    fn bound_one_register_is_trivial() {
        let reg = TreeMaxRegister::new(1);
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        reg.write(&ctx, 0);
        assert_eq!(reg.read(&ctx), 0);
        assert_eq!(ctx.steps_taken(), 0, "m=1 register needs no primitives");
    }
}
