//! [`OpTask`](smr::OpTask) forms of max-register operations, for the
//! coop execution backend (they run unchanged on the thread backend).
//!
//! Every register's operations exist once, as resumable *machines* next
//! to the register itself (see [`tree`](crate::tree)'s module docs for
//! the convention); the task types re-exported here are thin owning
//! wrappers: [`TreeMaxWriteTask`]/[`TreeMaxReadTask`] over the tree
//! machines, [`AdaptiveMaxWriteTask`]/[`AdaptiveMaxReadTask`] over the
//! arm-selected machines, and
//! [`UnboundedMaxWriteTask`]/[`UnboundedMaxReadTask`] over the
//! level-doubling composites. The lock-based oracle applies no
//! primitives, so its task forms are [`ImmediateOp`](smr::ImmediateOp)
//! adapters completing on the priming poll.

use crate::reference::LockMaxRegister;
use crate::spec::MaxRegister;
use smr::{ImmediateOp, OpTask};
use std::sync::Arc;

pub use crate::adaptive::{AdaptiveMaxReadTask, AdaptiveMaxWriteTask};
pub use crate::tree::{TreeMaxReadTask, TreeMaxWriteTask};
pub use crate::unbounded::{UnboundedMaxReadTask, UnboundedMaxWriteTask};

/// `LockMaxRegister::write` as a task (zero primitives).
pub fn lock_write_task(oracle: Arc<LockMaxRegister>, v: u64) -> impl OpTask {
    ImmediateOp::new(move |ctx| {
        oracle.write(ctx, v);
        0
    })
}

/// `LockMaxRegister::read` as a task (zero primitives).
pub fn lock_read_task(oracle: Arc<LockMaxRegister>) -> impl OpTask {
    ImmediateOp::new(move |ctx| u128::from(oracle.read(ctx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveMaxRegister, TreeMaxRegister, UnboundedMaxRegister};
    use smr::{Poll, ProcCtx, Runtime};

    fn run<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
        loop {
            if let Poll::Ready(v) = t.poll(ctx) {
                return v;
            }
        }
    }

    #[test]
    fn tree_tasks_match_blocking_forms() {
        // Same write/read sequence through both forms; primitive counts
        // and results must agree exactly.
        let seq = [5u64, 900, 3, 999, 42, 0, 998, 512, 997];
        let m = 1000;

        let rt_a = Runtime::free_running(1);
        let ctx_a = rt_a.ctx(0);
        let reg_a = TreeMaxRegister::new(m);

        let rt_b = Runtime::free_running(1);
        let ctx_b = rt_b.ctx(0);
        let reg_b = Arc::new(TreeMaxRegister::new(m));

        for &v in &seq {
            reg_a.write(&ctx_a, v);
            let _ = run(TreeMaxWriteTask::new(reg_b.clone(), v), &ctx_b);
            let ra = u128::from(reg_a.read(&ctx_a));
            let rb = run(TreeMaxReadTask::new(reg_b.clone()), &ctx_b);
            assert_eq!(ra, rb, "after write {v}");
            assert_eq!(
                rt_a.steps_of(0),
                rt_b.steps_of(0),
                "primitive counts diverged after write {v}"
            );
        }
    }

    #[test]
    fn tree_tasks_handle_degenerate_bounds() {
        for m in [1u64, 2, 3] {
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            let reg = Arc::new(TreeMaxRegister::new(m));
            for v in 0..m {
                let _ = run(TreeMaxWriteTask::new(reg.clone(), v), &ctx);
                assert_eq!(run(TreeMaxReadTask::new(reg.clone()), &ctx), u128::from(v));
            }
        }
    }

    #[test]
    fn adaptive_tasks_match_blocking_forms_both_arms() {
        // (n, m) pairs selecting the tree arm and the collect arm.
        for (n, m) in [(64usize, 512u64), (2, 1 << 50)] {
            let seq = [1u64, 200, 7, 511, 3, 444];

            let rt_a = Runtime::free_running(n);
            let ctx_a = rt_a.ctx(0);
            let reg_a = AdaptiveMaxRegister::new(n, m);

            let rt_b = Runtime::free_running(n);
            let ctx_b = rt_b.ctx(0);
            let reg_b = Arc::new(AdaptiveMaxRegister::new(n, m));
            assert_eq!(reg_a.uses_tree(), reg_b.uses_tree());

            for &v in &seq {
                reg_a.write(&ctx_a, v);
                let _ = run(AdaptiveMaxWriteTask::new(reg_b.clone(), v), &ctx_b);
                let ra = u128::from(reg_a.read(&ctx_a));
                let rb = run(AdaptiveMaxReadTask::new(reg_b.clone()), &ctx_b);
                assert_eq!(ra, rb, "n={n} m={m}: after write {v}");
                assert_eq!(
                    rt_a.steps_of(0),
                    rt_b.steps_of(0),
                    "n={n} m={m}: primitive counts diverged after write {v}"
                );
            }
        }
    }

    #[test]
    fn unbounded_tasks_match_blocking_forms() {
        // Values spanning several doubling levels, including the
        // cross-level domination case.
        let seq = [1u64, 3, 200, 65_000, 1 << 20, 7, 1 << 45, 0, 1 << 60];

        let rt_a = Runtime::free_running(1);
        let ctx_a = rt_a.ctx(0);
        let reg_a = UnboundedMaxRegister::new();

        let rt_b = Runtime::free_running(1);
        let ctx_b = rt_b.ctx(0);
        let reg_b = Arc::new(UnboundedMaxRegister::new());

        for &v in &seq {
            reg_a.write(&ctx_a, v);
            let _ = run(UnboundedMaxWriteTask::new(reg_b.clone(), v), &ctx_b);
            let ra = u128::from(reg_a.read(&ctx_a));
            let rb = run(UnboundedMaxReadTask::new(reg_b.clone()), &ctx_b);
            assert_eq!(ra, rb, "after write {v}");
            assert_eq!(
                rt_a.steps_of(0),
                rt_b.steps_of(0),
                "primitive counts diverged after write {v}"
            );
        }
    }

    #[test]
    fn unbounded_read_of_fresh_register_costs_one_primitive() {
        // The written flag answers 0 immediately: one primitive, like
        // the blocking form.
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let reg = Arc::new(UnboundedMaxRegister::new());
        assert_eq!(run(UnboundedMaxReadTask::new(reg), &ctx), 0);
        assert_eq!(ctx.steps_taken(), 1);
    }

    #[test]
    fn oracle_tasks_apply_no_primitives() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let oracle = Arc::new(LockMaxRegister::new());
        let _ = run(lock_write_task(oracle.clone(), 7), &ctx);
        assert_eq!(run(lock_read_task(oracle), &ctx), 7);
        assert_eq!(ctx.steps_taken(), 0);
    }
}
