//! [`OpTask`](smr::OpTask) forms of max-register operations, for the
//! coop execution backend (they run unchanged on the thread backend).
//!
//! The tree register's machines live next to the tree itself
//! ([`TreeMaxWriteTask`]/[`TreeMaxReadTask`] in [`tree`](crate::tree));
//! the lock-based oracle applies no primitives, so its task forms are
//! [`ImmediateOp`](smr::ImmediateOp) adapters completing on the priming
//! poll.

use crate::reference::LockMaxRegister;
use crate::spec::MaxRegister;
use smr::{ImmediateOp, OpTask};
use std::sync::Arc;

pub use crate::tree::{TreeMaxReadTask, TreeMaxWriteTask};

/// `LockMaxRegister::write` as a task (zero primitives).
pub fn lock_write_task(oracle: Arc<LockMaxRegister>, v: u64) -> impl OpTask {
    ImmediateOp::new(move |ctx| {
        oracle.write(ctx, v);
        0
    })
}

/// `LockMaxRegister::read` as a task (zero primitives).
pub fn lock_read_task(oracle: Arc<LockMaxRegister>) -> impl OpTask {
    ImmediateOp::new(move |ctx| u128::from(oracle.read(ctx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeMaxRegister;
    use smr::{Poll, ProcCtx, Runtime};

    fn run<T: OpTask>(mut t: T, ctx: &ProcCtx) -> u128 {
        loop {
            if let Poll::Ready(v) = t.poll(ctx) {
                return v;
            }
        }
    }

    #[test]
    fn tree_tasks_match_blocking_forms() {
        // Same write/read sequence through both forms; primitive counts
        // and results must agree exactly.
        let seq = [5u64, 900, 3, 999, 42, 0, 998, 512, 997];
        let m = 1000;

        let rt_a = Runtime::free_running(1);
        let ctx_a = rt_a.ctx(0);
        let reg_a = TreeMaxRegister::new(m);

        let rt_b = Runtime::free_running(1);
        let ctx_b = rt_b.ctx(0);
        let reg_b = Arc::new(TreeMaxRegister::new(m));

        for &v in &seq {
            reg_a.write(&ctx_a, v);
            let _ = run(TreeMaxWriteTask::new(reg_b.clone(), v), &ctx_b);
            let ra = u128::from(reg_a.read(&ctx_a));
            let rb = run(TreeMaxReadTask::new(reg_b.clone()), &ctx_b);
            assert_eq!(ra, rb, "after write {v}");
            assert_eq!(
                rt_a.steps_of(0),
                rt_b.steps_of(0),
                "primitive counts diverged after write {v}"
            );
        }
    }

    #[test]
    fn tree_tasks_handle_degenerate_bounds() {
        for m in [1u64, 2, 3] {
            let rt = Runtime::free_running(1);
            let ctx = rt.ctx(0);
            let reg = Arc::new(TreeMaxRegister::new(m));
            for v in 0..m {
                let _ = run(TreeMaxWriteTask::new(reg.clone(), v), &ctx);
                assert_eq!(run(TreeMaxReadTask::new(reg.clone()), &ctx), u128::from(v));
            }
        }
    }

    #[test]
    fn oracle_tasks_apply_no_primitives() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let oracle = Arc::new(LockMaxRegister::new());
        let _ = run(lock_write_task(oracle.clone(), 7), &ctx);
        assert_eq!(run(lock_read_task(oracle), &ctx), 7);
        assert_eq!(ctx.steps_taken(), 0);
    }
}
