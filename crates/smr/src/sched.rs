//! Schedulers: policies for choosing which process steps next in a gated
//! execution.
//!
//! The asynchronous model places no fairness constraints on the adversary;
//! these schedulers span the space the experiments need: fair round-robin,
//! seeded pseudo-random (reproducible "chaotic" interleavings), and fully
//! scripted (the lower-bound constructions and the Figure 1 scenarios).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// A policy choosing the next process to step among those with work.
pub trait Scheduler {
    /// Pick one pid from `active` (non-empty, sorted ascending).
    fn next(&mut self, active: &[usize]) -> usize;
}

/// Fair cyclic scheduling.
#[derive(Debug, Default)]
pub struct RoundRobin {
    last: Option<usize>,
}

impl RoundRobin {
    /// A round-robin scheduler starting from the lowest pid.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, active: &[usize]) -> usize {
        assert!(!active.is_empty());
        let pick = match self.last {
            None => active[0],
            Some(prev) => *active.iter().find(|&&p| p > prev).unwrap_or(&active[0]),
        };
        self.last = Some(pick);
        pick
    }
}

/// Seeded pseudo-random scheduling; identical seeds reproduce identical
/// gated executions.
#[derive(Debug)]
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// A random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn next(&mut self, active: &[usize]) -> usize {
        assert!(!active.is_empty());
        active[self.rng.random_range(0..active.len())]
    }
}

/// A fully scripted schedule: an explicit pid sequence, as the adversary
/// constructions require. If a scripted pid is no longer active (its ops
/// all completed), it is skipped; if the script runs dry, scheduling falls
/// back to round-robin so executions always finish.
#[derive(Debug)]
pub struct Scripted {
    script: VecDeque<usize>,
    fallback: RoundRobin,
}

impl Scripted {
    /// A schedule that replays `script` step by step.
    pub fn new<I: IntoIterator<Item = usize>>(script: I) -> Self {
        Scripted {
            script: script.into_iter().collect(),
            fallback: RoundRobin::new(),
        }
    }

    /// Remaining scripted entries.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for Scripted {
    fn next(&mut self, active: &[usize]) -> usize {
        while let Some(pid) = self.script.pop_front() {
            if active.contains(&pid) {
                return pid;
            }
        }
        self.fallback.next(active)
    }
}

/// Run `pid` exclusively until it finishes, then move on — a "one at a
/// time" sequential schedule useful for sanity checks.
#[derive(Debug, Default)]
pub struct Sequential;

impl Scheduler for Sequential {
    fn next(&mut self, active: &[usize]) -> usize {
        active[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let active = [0, 2, 5];
        assert_eq!(rr.next(&active), 0);
        assert_eq!(rr.next(&active), 2);
        assert_eq!(rr.next(&active), 5);
        assert_eq!(rr.next(&active), 0);
    }

    #[test]
    fn round_robin_skips_inactive() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.next(&[0, 1, 2]), 0);
        assert_eq!(rr.next(&[0, 2]), 2);
        assert_eq!(rr.next(&[0, 2]), 0);
    }

    #[test]
    fn seeded_random_is_reproducible() {
        let active = [0, 1, 2, 3];
        let picks1: Vec<_> = {
            let mut s = SeededRandom::new(42);
            (0..50).map(|_| s.next(&active)).collect()
        };
        let picks2: Vec<_> = {
            let mut s = SeededRandom::new(42);
            (0..50).map(|_| s.next(&active)).collect()
        };
        assert_eq!(picks1, picks2);
    }

    #[test]
    fn scripted_replays_then_falls_back() {
        let mut s = Scripted::new([1, 1, 0]);
        let active = [0, 1];
        assert_eq!(s.next(&active), 1);
        assert_eq!(s.next(&active), 1);
        assert_eq!(s.next(&active), 0);
        // script dry: round robin
        assert_eq!(s.next(&active), 0);
        assert_eq!(s.next(&active), 1);
    }

    #[test]
    fn scripted_skips_finished_processes() {
        let mut s = Scripted::new([3, 0]);
        let active = [0, 1];
        assert_eq!(s.next(&active), 0); // 3 not active, skipped
    }
}
