//! Schedulers: policies for choosing which process steps next in a gated
//! execution.
//!
//! The asynchronous model places no fairness constraints on the adversary;
//! these schedulers span the space the experiments need: fair round-robin,
//! seeded pseudo-random (reproducible "chaotic" interleavings), and fully
//! scripted (the lower-bound constructions and the Figure 1 scenarios).
//!
//! Policies pick from the driver's incrementally-maintained
//! [`ActiveSet`] rather than a per-step pid slice, so every decision
//! stays O(1)–O(log n) and schedules remain practical at 10⁵–10⁶
//! virtual processes (the coop backend's territory): round-robin uses
//! the set's ordered successor query, the seeded-random policy its O(1)
//! dense sampling, and scripted replay its O(1) membership test.

use crate::active::ActiveSet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// A policy choosing the next process to step among those with work.
pub trait Scheduler {
    /// Pick one member of `active` (non-empty).
    fn next(&mut self, active: &ActiveSet) -> usize;
}

/// Fair cyclic scheduling in ascending pid order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    last: Option<usize>,
}

impl RoundRobin {
    /// A round-robin scheduler starting from the lowest pid.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, active: &ActiveSet) -> usize {
        assert!(!active.is_empty());
        let first = || active.min().expect("non-empty");
        let pick = match self.last {
            None => first(),
            Some(prev) => active.next_after(prev).unwrap_or_else(first),
        };
        self.last = Some(pick);
        pick
    }
}

/// Seeded pseudo-random scheduling; identical seeds reproduce identical
/// gated executions.
#[derive(Debug)]
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// A random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn next(&mut self, active: &ActiveSet) -> usize {
        assert!(!active.is_empty());
        active.pick(self.rng.random_range(0..active.len()))
    }
}

/// A fully scripted schedule: an explicit pid sequence, as the adversary
/// constructions require. If a scripted pid is no longer active (its ops
/// all completed), it is skipped; if the script runs dry, scheduling falls
/// back to round-robin so executions always finish.
#[derive(Debug)]
pub struct Scripted {
    script: VecDeque<usize>,
    fallback: RoundRobin,
}

impl Scripted {
    /// A schedule that replays `script` step by step.
    pub fn new<I: IntoIterator<Item = usize>>(script: I) -> Self {
        Scripted {
            script: script.into_iter().collect(),
            fallback: RoundRobin::new(),
        }
    }

    /// Remaining scripted entries.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for Scripted {
    fn next(&mut self, active: &ActiveSet) -> usize {
        while let Some(pid) = self.script.pop_front() {
            if active.contains(pid) {
                return pid;
            }
        }
        self.fallback.next(active)
    }
}

/// Run the lowest-pid active process exclusively until it finishes, then
/// move on — a "one at a time" sequential schedule useful for sanity
/// checks.
#[derive(Debug, Default)]
pub struct Sequential;

impl Scheduler for Sequential {
    fn next(&mut self, active: &ActiveSet) -> usize {
        active.min().expect("non-empty active set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pids: &[usize]) -> ActiveSet {
        pids.iter().copied().collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let active = set(&[0, 2, 5]);
        assert_eq!(rr.next(&active), 0);
        assert_eq!(rr.next(&active), 2);
        assert_eq!(rr.next(&active), 5);
        assert_eq!(rr.next(&active), 0);
    }

    #[test]
    fn round_robin_skips_inactive() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.next(&set(&[0, 1, 2])), 0);
        assert_eq!(rr.next(&set(&[0, 2])), 2);
        assert_eq!(rr.next(&set(&[0, 2])), 0);
    }

    #[test]
    fn round_robin_stays_cheap_at_scale() {
        // 10⁵ pids: each pick is a successor query, not a scan.
        let n = 100_000;
        let active: ActiveSet = (0..n).collect();
        let mut rr = RoundRobin::new();
        for expect in 0..n {
            assert_eq!(rr.next(&active), expect);
        }
        assert_eq!(rr.next(&active), 0, "wraps around");
    }

    #[test]
    fn round_robin_wraparound_with_sparse_members_at_word_edges() {
        // Successor queries wrap around correctly when the members sit
        // at summary-word boundaries (63/64/65) and when the previous
        // pick was the largest member.
        let mut rr = RoundRobin::new();
        let active = set(&[63, 64, 65, 127]);
        assert_eq!(rr.next(&active), 63);
        assert_eq!(rr.next(&active), 64);
        assert_eq!(rr.next(&active), 65);
        assert_eq!(rr.next(&active), 127);
        assert_eq!(rr.next(&active), 63, "wraps to the minimum");
        // The remembered pick may vanish from the set entirely: the
        // successor of a non-member must still be found, and the wrap
        // from past-the-end still lands on the minimum.
        let shrunk = set(&[64, 127]);
        assert_eq!(rr.next(&shrunk), 64, "successor of absent 63");
        assert_eq!(rr.next(&shrunk), 127);
        assert_eq!(rr.next(&shrunk), 64, "wraps past absent members");
    }

    #[test]
    fn seeded_random_is_reproducible() {
        let active = set(&[0, 1, 2, 3]);
        let picks1: Vec<_> = {
            let mut s = SeededRandom::new(42);
            (0..50).map(|_| s.next(&active)).collect()
        };
        let picks2: Vec<_> = {
            let mut s = SeededRandom::new(42);
            (0..50).map(|_| s.next(&active)).collect()
        };
        assert_eq!(picks1, picks2);
    }

    #[test]
    fn scripted_replays_then_falls_back() {
        let mut s = Scripted::new([1, 1, 0]);
        let active = set(&[0, 1]);
        assert_eq!(s.next(&active), 1);
        assert_eq!(s.next(&active), 1);
        assert_eq!(s.next(&active), 0);
        // script dry: round robin
        assert_eq!(s.next(&active), 0);
        assert_eq!(s.next(&active), 1);
    }

    #[test]
    fn scripted_skips_finished_processes() {
        let mut s = Scripted::new([3, 0]);
        let active = set(&[0, 1]);
        assert_eq!(s.next(&active), 0); // 3 not active, skipped
    }

    #[test]
    fn sequential_picks_minimum() {
        let mut s = Sequential;
        assert_eq!(s.next(&set(&[4, 9])), 4);
    }
}
