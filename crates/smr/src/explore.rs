//! Bounded exhaustive schedule exploration over the coop backend —
//! stateless model checking for gated executions.
//!
//! Property tests sample schedules (`SeededRandom` over a few hundred
//! seeds); this module *enumerates* them. [`explore`] replays a program
//! over a fresh [`Driver<CoopBackend>`] once per interleaving, walking
//! the tree of scheduling decisions depth-first: at every prefix each
//! active process can be granted the next step, and (optionally) each
//! active process can be crashed. Every maximal interleaving — or every
//! prefix cut off by the step bound — is turned into a history cut via
//! [`Driver::history_snapshot`] and handed to a caller-supplied checker,
//! so a schedule-quantified claim ("for every gated schedule …") becomes
//! a finite, checkable statement for small configurations.
//!
//! ## Why the coop backend
//!
//! Exploration replays the program once per interleaving, so the cost of
//! creating and stepping an execution is the whole game. A coop driver
//! is a plain in-process object: no worker threads to spawn or park, one
//! indirect call per granted step, and `history_snapshot` is a clone (the
//! backend keeps every process at a stable point continuously). That is
//! what makes enumerating tens of thousands of interleavings per second
//! practical — see `exp_explore`.
//!
//! ## Pruning
//!
//! With pruning enabled (the default), the explorer skips interleavings
//! that provably cannot differ from one it already visits. Two adjacent
//! granted steps commute when
//!
//! * they belong to different processes,
//! * neither emitted a history event (no operation completed, so no
//!   logical timestamps were drawn and no successor was announced), and
//! * they touch different base objects, or both are trivial (`read`)
//!   primitives on the same object.
//!
//! Swapping such a pair changes nothing observable: shared memory ends
//! identical (the primitives commute), per-process step counters are
//! per-process (unaffected by order), and the history is *byte-identical*
//! (events are the only ticket draws). The explorer therefore keeps only
//! the schedules with no such adjacent pair "inverted" (the lower pid
//! second): every equivalence class contains at least one such canonical
//! representative — its lexicographically least member, which by
//! minimality has no swappable adjacent pair out of order — so no
//! outcome is lost, only duplicates. Completion steps are never
//! commuted, which keeps the real-time precedence structure of every
//! visited history exactly as executed.
//!
//! The primitive each step applied is read off the runtime's access
//! trace ([`Runtime::enable_tracing`](crate::Runtime::enable_tracing) —
//! the explorer turns it on); event emission is read off the history
//! length.
//!
//! ## Bounds
//!
//! [`ExploreConfig`] bounds the walk three ways: `max_steps` (granted
//! steps per interleaving — prefixes at the bound are checked as cuts,
//! exactly like a suspension), `max_preemptions` (CHESS-style: switching
//! away from a process that is still runnable costs one preemption;
//! switches forced by completion or crash are free), and `max_crashes`
//! (crash-point injection: at every prefix, each active process may be
//! crashed, surfacing its in-flight operation as a pending record). An
//! optional `max_interleavings` cap stops runaway configurations and is
//! reported via [`ExploreStats::capped`]. A preemption bound disables
//! pruning: the commutation that justifies pruning does not preserve
//! preemption counts, so under a budget every schedule is explored
//! as-is.
//!
//! ## Replay and minimization
//!
//! Every decision sequence is a [`Replay`]: it can be re-run against a
//! fresh driver ([`Replay::run`]) and, when crash-free, converted into a
//! [`Scripted`] scheduler ([`Replay::to_scripted`]). When the checker
//! rejects a cut, the explorer greedily deletes chunks of the decision
//! sequence (ddmin-style, halving chunk sizes) while the violation
//! persists, and reports the minimal failing schedule alongside the
//! original in [`FoundViolation`].

use crate::backend::CoopBackend;
use crate::driver::Driver;
use crate::history::History;
use crate::sched::Scripted;
use crate::trace::{AccessKind, TraceEvent};

/// One decision of an explored schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Grant process `pid` one primitive step.
    Step(usize),
    /// Crash process `pid` (it is never scheduled again; its in-flight
    /// operation surfaces as a pending record).
    Crash(usize),
}

/// A replayable schedule: the exact decision sequence of one explored
/// execution prefix. Gated coop executions are deterministic, so
/// re-applying the sequence to a fresh driver built by the same factory
/// reproduces the execution — including the violating cut the checker
/// rejected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Replay {
    /// The decision sequence, in execution order.
    pub choices: Vec<Choice>,
}

impl Replay {
    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// `true` if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Granted steps (crash decisions excluded).
    pub fn steps(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| matches!(c, Choice::Step(_)))
            .count()
    }

    /// Crash decisions.
    pub fn crashes(&self) -> usize {
        self.choices.len() - self.steps()
    }

    /// Re-apply the schedule to a fresh driver (same program, same
    /// submission order) and return the resulting history cut — the
    /// exact cut the explorer checked. Decisions that no longer apply
    /// (a pid that already finished or crashed) are skipped, so any
    /// subsequence of a valid schedule is itself valid; minimization
    /// relies on this.
    pub fn run(&self, mut d: Driver<CoopBackend>) -> History {
        for &c in &self.choices {
            match c {
                Choice::Step(pid) => {
                    if !d.is_crashed(pid) && d.active_set().contains(pid) {
                        let _ = d.step(pid);
                    }
                }
                Choice::Crash(pid) => {
                    if !d.is_crashed(pid) {
                        d.crash(pid);
                    }
                }
            }
        }
        d.history_snapshot()
    }

    /// The schedule as a [`Scripted`] scheduler, for crash-free
    /// schedules (`None` if the replay contains a crash, which no
    /// `Scheduler` can express). Note `Scripted` drives an execution to
    /// *completion* (falling back to round-robin when the script runs
    /// dry); to reproduce a bounded prefix cut exactly, use
    /// [`Replay::run`].
    pub fn to_scripted(&self) -> Option<Scripted> {
        let mut pids = Vec::with_capacity(self.choices.len());
        for &c in &self.choices {
            match c {
                Choice::Step(pid) => pids.push(pid),
                Choice::Crash(_) => return None,
            }
        }
        Some(Scripted::new(pids))
    }
}

/// Bounds and options for one [`explore`] call.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Granted steps per interleaving; prefixes that hit the bound are
    /// checked as suspension cuts.
    pub max_steps: usize,
    /// Crash decisions per interleaving (0 disables crash injection).
    pub max_crashes: usize,
    /// Preemptions per interleaving (`None` = unbounded). A switch away
    /// from a process that could still run costs one; switches at
    /// completions and crashes are free.
    pub max_preemptions: Option<usize>,
    /// Skip interleavings equivalent to an already-visited one by
    /// commuting adjacent event-free independent steps (see the [module
    /// docs](self)). Disable to count raw interleavings against a
    /// closed form. Ignored when `max_preemptions` is set: a pruned
    /// schedule's canonical representative can cost more preemptions
    /// than the pruned one, so pruning under a preemption budget would
    /// silently drop in-budget equivalence classes.
    pub prune: bool,
    /// Hard cap on checked interleavings (`None` = exhaust the space).
    pub max_interleavings: Option<u64>,
    /// Stop after this many violations have been found and minimized.
    pub max_violations: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 10_000,
            max_crashes: 0,
            max_preemptions: None,
            prune: true,
            max_interleavings: None,
            max_violations: 1,
        }
    }
}

impl ExploreConfig {
    /// Exhaustive enumeration (no pruning, no preemption bound) up to
    /// `max_steps` granted steps — the configuration whose interleaving
    /// count matches the multinomial closed form for programs with
    /// schedule-independent per-process step counts.
    pub fn exhaustive(max_steps: usize) -> Self {
        ExploreConfig {
            max_steps,
            prune: false,
            ..ExploreConfig::default()
        }
    }
}

/// A checker rejection, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// The checker's diagnosis for the minimized schedule.
    pub message: String,
    /// The minimal failing schedule (ddmin over the original decision
    /// sequence; every removal kept the checker failing).
    pub minimized: Replay,
    /// The schedule the violation was first observed on.
    pub original: Replay,
}

/// What one [`explore`] call did.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// History cuts checked (maximal interleavings plus bound cuts).
    pub interleavings: u64,
    /// Subtrees skipped by pruning.
    pub pruned: u64,
    /// Total granted steps across all replays (the work metric).
    pub steps_replayed: u64,
    /// Deepest decision sequence reached.
    pub max_depth: usize,
    /// Checker rejections, minimized.
    pub violations: Vec<FoundViolation>,
    /// `true` if `max_interleavings` stopped the walk early.
    pub capped: bool,
}

impl ExploreStats {
    /// `true` if every checked cut passed.
    pub fn all_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What one granted step did — the information the pruning rule needs.
#[derive(Debug, Clone, Copy)]
struct StepInfo {
    pid: usize,
    obj: usize,
    kind: AccessKind,
    /// `true` if the step emitted history events (an operation
    /// completed; logical timestamps were drawn).
    emitted: bool,
}

/// One node of the decision tree: the alternatives at this prefix and
/// the index of the branch currently being explored.
struct Frame {
    alts: Vec<Choice>,
    idx: usize,
}

/// Apply one decision to the driver, returning the step's [`StepInfo`]
/// (for traced `Step` decisions). `traced` must match whether the
/// runtime's tracing is currently on: the prune check only ever looks
/// at the last two decisions, so prefix replays run untraced (no
/// per-step mutex/alloc traffic on the explorer's hot path) and flip
/// tracing on for the final two edges.
fn apply(d: &mut Driver<CoopBackend>, choice: Choice, traced: bool) -> Option<StepInfo> {
    match choice {
        Choice::Step(pid) => {
            let before_len = d.history().len();
            let _ = d.step(pid);
            if !traced {
                return None;
            }
            // The trace carries controller edges (Grant, and the
            // Invoke/Complete of zero-primitive follow-up ops) around the
            // step's single primitive application; only that one matters
            // for the commutation rule. A lenient backend can let a
            // poll-contract mutant apply zero or several primitives in one
            // grant — the analysis passes diagnose that; here the step just
            // loses its pruning metadata (None never commutes, so the walk
            // stays exhaustive around it).
            let trace = d.runtime().take_trace();
            let mut acc = trace.iter().filter_map(|e| e.access());
            let first = acc.next().copied();
            let ev = match (first, acc.next()) {
                (Some(ev), None) => ev,
                _ => return None,
            };
            Some(StepInfo {
                pid,
                obj: ev.obj,
                kind: ev.kind,
                emitted: d.history().len() != before_len,
            })
        }
        Choice::Crash(pid) => {
            d.crash(pid);
            if traced {
                let trace = d.runtime().take_trace();
                debug_assert!(
                    trace.iter().any(|e| matches!(e, TraceEvent::Crash { .. })),
                    "a crash decision records a Crash edge"
                );
            }
            None
        }
    }
}

/// The pruning rule: `second` (just executed) commutes with `first`
/// (executed immediately before it) and is out of canonical order.
fn prunable(first: Option<StepInfo>, second: Option<StepInfo>) -> bool {
    let (Some(a), Some(b)) = (first, second) else {
        return false; // crash edges are never commuted
    };
    b.pid < a.pid
        && !a.emitted
        && !b.emitted
        && (a.obj != b.obj || (a.kind == AccessKind::Read && b.kind == AccessKind::Read))
}

/// Mutable walk state threaded through one replay/extension pass.
struct Walk {
    steps: usize,
    crashes: usize,
    preemptions: usize,
    prev: Option<StepInfo>,
    /// Pid of the last granted step, and whether that process was still
    /// active immediately after it (a switch away from it is then a
    /// preemption).
    last_runnable: Option<usize>,
}

impl Walk {
    fn new() -> Self {
        Walk {
            steps: 0,
            crashes: 0,
            preemptions: 0,
            prev: None,
            last_runnable: None,
        }
    }

    /// Update the counters for an applied decision.
    fn account(&mut self, choice: Choice, info: Option<StepInfo>, d: &Driver<CoopBackend>) {
        match choice {
            Choice::Step(pid) => {
                if let Some(last) = self.last_runnable {
                    if last != pid {
                        self.preemptions += 1;
                    }
                }
                self.steps += 1;
                self.prev = info;
                self.last_runnable = d.active_set().contains(pid).then_some(pid);
            }
            Choice::Crash(pid) => {
                self.crashes += 1;
                self.prev = None;
                if self.last_runnable == Some(pid) {
                    self.last_runnable = None; // switching away is now free
                }
            }
        }
    }
}

/// The alternatives at the current prefix, in canonical order: step
/// decisions for each active pid ascending, then crash decisions.
fn alternatives(d: &Driver<CoopBackend>, cfg: &ExploreConfig, walk: &Walk) -> Vec<Choice> {
    let active = d.active_set();
    let preempt_exhausted = cfg
        .max_preemptions
        .is_some_and(|max| walk.preemptions >= max);
    let mut alts: Vec<Choice> = Vec::new();
    match walk.last_runnable {
        // Out of preemption budget: the running process must continue
        // (crashing it below stays allowed — a crash is not a step).
        Some(last) if preempt_exhausted => alts.push(Choice::Step(last)),
        _ => alts.extend(active.iter_sorted().map(Choice::Step)),
    }
    if walk.crashes < cfg.max_crashes {
        alts.extend(active.iter_sorted().map(Choice::Crash));
    }
    alts
}

/// The analysis passes' verdict over a finished replay, when the
/// factory attached an [`Analyzer`](crate::analysis::Analyzer) to the
/// runtime: `Some(message)` if any pass reported a violation. Explored
/// cuts are checked against the analyses exactly like against the
/// caller's history checker, so a poll-contract or conformance bug is
/// found, minimized and reported through the same [`FoundViolation`]
/// machinery as a linearizability bug.
fn analysis_failure(rt: &std::sync::Arc<crate::Runtime>) -> Option<String> {
    let analyzer = rt.analysis()?;
    let violations = analyzer.finish();
    violations
        .first()
        .map(|v| format!("analysis ({} violation(s)): {v}", violations.len()))
}

/// Greedy ddmin: delete ever-smaller chunks of the decision sequence
/// while the checker still rejects the replayed cut.
fn minimize<F, C>(factory: &F, check: &mut C, original: &Replay) -> (Replay, String)
where
    F: Fn() -> Driver<CoopBackend>,
    C: FnMut(&History) -> Result<(), String>,
{
    let mut failure = |r: &Replay| -> Option<String> {
        let d = factory();
        let rt = d.runtime().clone();
        check(&r.run(d)).err().or_else(|| analysis_failure(&rt))
    };
    let mut best = original.clone();
    let mut message = failure(&best).expect("the original schedule must reproduce the violation");
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut at = 0;
        while at < best.len() {
            let mut candidate = best.clone();
            candidate
                .choices
                .drain(at..(at + chunk).min(candidate.choices.len()));
            if let Some(msg) = failure(&candidate) {
                best = candidate;
                message = msg;
                shrunk = true;
                // re-test the same position: the next chunk slid in
            } else {
                at += chunk;
            }
        }
        if chunk == 1 && !shrunk {
            return (best, message);
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Enumerate every schedule of the program built by `factory` (within
/// `cfg`'s bounds) and check the history cut of each with `check`.
///
/// `factory` must build a fresh, fully-submitted coop driver per call
/// and be deterministic — every invocation must produce the same program
/// (the explorer replays it once per interleaving). `check` receives the
/// [`Driver::history_snapshot`] of each cut: completed operations plus
/// pending records for operations still in flight at the cut (crashed or
/// suspended by the bound).
///
/// See the [module docs](self) for the enumeration order, the pruning
/// argument and the bounds.
pub fn explore<F, C>(cfg: &ExploreConfig, factory: F, mut check: C) -> ExploreStats
where
    F: Fn() -> Driver<CoopBackend>,
    C: FnMut(&History) -> Result<(), String>,
{
    let mut stats = ExploreStats::default();
    let mut path: Vec<Frame> = Vec::new();
    // Pruning keeps only the lexicographically-canonical member of each
    // equivalence class, but a preemption budget is not invariant under
    // the commutation (the canonical schedule may preempt more), so the
    // two compose unsoundly — an in-budget class could lose its only
    // in-budget representative. Exhaustiveness wins over reduction.
    let prune = cfg.prune && cfg.max_preemptions.is_none();

    /// Advance to the next unexplored branch; `false` when the tree is
    /// exhausted.
    fn backtrack(path: &mut Vec<Frame>) -> bool {
        while let Some(top) = path.last_mut() {
            top.idx += 1;
            if top.idx < top.alts.len() {
                return true;
            }
            path.pop();
        }
        false
    }

    'outer: loop {
        // Replay the current prefix on a fresh driver. The prune check
        // only consults the last two decisions, so the replay runs
        // untraced up to them (tracing costs a mutex + alloc per step,
        // and replays are the explorer's entire work); tracing turns on
        // for the final two edges and stays on for the extension.
        let mut d = factory();
        assert!(
            d.runtime().is_coop(),
            "explore requires a coop driver (Driver::coop over Runtime::coop)"
        );
        let mut walk = Walk::new();
        let prefix: Vec<Choice> = path.iter().map(|f| f.alts[f.idx]).collect();
        let traced_from = prefix.len().saturating_sub(2);
        let mut replay_pruned = false;
        for (i, &choice) in prefix.iter().enumerate() {
            if i == traced_from {
                d.runtime().enable_tracing();
                let _ = d.runtime().take_trace(); // drop any factory-time noise
            }
            let prev = walk.prev;
            let info = apply(&mut d, choice, i >= traced_from);
            stats.steps_replayed += u64::from(matches!(choice, Choice::Step(_)));
            walk.account(choice, info, &d);
            // Only the deepest decision can be fresh; everything above
            // it already passed this check when first taken.
            if i + 1 == prefix.len() && prune && prunable(prev, info) {
                replay_pruned = true;
                break;
            }
        }
        if prefix.is_empty() {
            d.runtime().enable_tracing();
            let _ = d.runtime().take_trace(); // drop any factory-time noise
        }
        if replay_pruned {
            stats.pruned += 1;
            if !backtrack(&mut path) {
                break 'outer;
            }
            continue 'outer;
        }

        // Extend depth-first along each node's first alternative.
        loop {
            stats.max_depth = stats.max_depth.max(path.len());
            let at_bound = walk.steps >= cfg.max_steps;
            if d.active_set().is_empty() || at_bound {
                stats.interleavings += 1;
                let rejected = check(&d.history_snapshot())
                    .err()
                    .or_else(|| analysis_failure(d.runtime()));
                if rejected.is_some() {
                    let original = Replay {
                        choices: path.iter().map(|f| f.alts[f.idx]).collect(),
                    };
                    drop(d); // release the failing execution before re-running
                    let (minimized, message) = minimize(&factory, &mut check, &original);
                    stats.violations.push(FoundViolation {
                        message,
                        minimized,
                        original,
                    });
                    if stats.violations.len() >= cfg.max_violations {
                        return stats;
                    }
                }
                if let Some(cap) = cfg.max_interleavings {
                    if stats.interleavings >= cap {
                        stats.capped = true;
                        return stats;
                    }
                }
                if !backtrack(&mut path) {
                    break 'outer;
                }
                continue 'outer;
            }
            let alts = alternatives(&d, cfg, &walk);
            debug_assert!(!alts.is_empty(), "active set non-empty but no alternatives");
            let choice = alts[0];
            path.push(Frame { alts, idx: 0 });
            let prev = walk.prev;
            let info = apply(&mut d, choice, true);
            stats.steps_replayed += u64::from(matches!(choice, Choice::Step(_)));
            walk.account(choice, info, &d);
            if prune && prunable(prev, info) {
                stats.pruned += 1;
                if !backtrack(&mut path) {
                    break 'outer;
                }
                continue 'outer;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpKind, OpSpec};
    use crate::task::{OpTask, Poll};
    use crate::{ProcCtx, Register, Runtime};
    use std::sync::Arc;

    /// `(s1 + … + sn)! / (s1! · … · sn!)` — interleavings of n sequences
    /// with fixed lengths.
    fn multinomial(counts: &[u64]) -> u128 {
        let mut result: u128 = 1;
        let mut placed: u128 = 0;
        for &c in counts {
            for i in 1..=u128::from(c) {
                placed += 1;
                result = result * placed / i; // binomial prefix: always divides
            }
        }
        result
    }

    /// Read a register then write `read + delta` — two primitives.
    struct Rmw {
        reg: Arc<Register>,
        delta: u64,
        read: Option<u64>,
        primed: bool,
    }

    impl Rmw {
        fn new(reg: Arc<Register>, delta: u64) -> Self {
            Rmw {
                reg,
                delta,
                read: None,
                primed: false,
            }
        }
    }

    impl OpTask for Rmw {
        fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
            if !self.primed {
                self.primed = true;
                return Poll::Pending;
            }
            match self.read {
                None => {
                    self.read = Some(self.reg.read(ctx));
                    Poll::Pending
                }
                Some(v) => {
                    self.reg.write(ctx, v + self.delta);
                    Poll::Ready(u128::from(v))
                }
            }
        }
    }

    /// One `read` of a register.
    struct ReadOnce {
        reg: Arc<Register>,
        primed: bool,
    }

    impl OpTask for ReadOnce {
        fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
            if !self.primed {
                self.primed = true;
                return Poll::Pending;
            }
            Poll::Ready(u128::from(self.reg.read(ctx)))
        }
    }

    #[test]
    fn exhaustive_count_matches_multinomial() {
        // 2 processes × one 2-primitive op on a shared register.
        let count = |cfg: &ExploreConfig| {
            explore(
                cfg,
                || {
                    let mut d = Driver::coop(Runtime::coop(2));
                    let reg = Arc::new(Register::new(0));
                    for pid in 0..2 {
                        d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg.clone(), 1));
                    }
                    d
                },
                |_h| Ok(()),
            )
        };
        let stats = count(&ExploreConfig::exhaustive(100));
        assert_eq!(u128::from(stats.interleavings), multinomial(&[2, 2]));
        assert_eq!(stats.pruned, 0, "nothing to prune on one shared object");
        assert!(stats.all_ok());
    }

    #[test]
    fn pruning_collapses_independent_steps_without_losing_outcomes() {
        // Each process works a private register: all intermediate steps
        // commute, so pruning must collapse the 6 shuffles of the
        // non-event steps while still checking at least one schedule.
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            for pid in 0..2 {
                let reg = Arc::new(Register::new(0));
                d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg, 1));
            }
            d
        };
        let full = explore(&ExploreConfig::exhaustive(100), factory, |_h| Ok(()));
        let pruned = explore(&ExploreConfig::default(), factory, |_h| Ok(()));
        assert_eq!(u128::from(full.interleavings), multinomial(&[2, 2]));
        assert!(pruned.interleavings < full.interleavings);
        assert!(pruned.pruned > 0);
        assert!(pruned.all_ok());
    }

    #[test]
    fn finds_and_minimizes_a_lost_update() {
        // Mutant counter: both processes increment through one shared
        // register (read, then write read+1) — the single-writer-cell
        // discipline of the collect counter deliberately dropped. A
        // schedule that interleaves the two read-modify-writes loses an
        // increment; a read that runs strictly afterwards then violates
        // the exact counter spec. The explorer must find it.
        // The reader queues *two* reads: the second is announced only
        // when the first completes, so its invocation can land after
        // the increments' responses and real-time precedence applies.
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(3));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d.submit_task(1, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            for _ in 0..2 {
                d.submit_task(
                    2,
                    OpSpec::read(),
                    ReadOnce {
                        reg: reg.clone(),
                        primed: false,
                    },
                );
            }
            d
        };
        // Exact-counter check, transcribed locally (smr cannot depend on
        // lincheck): a read that every completed increment precedes must
        // return at least the number of those increments.
        let check = |h: &History| -> Result<(), String> {
            for r in h.ops() {
                let OpKind::Read { returned } = r.kind else {
                    continue;
                };
                if r.resp.is_none() {
                    continue;
                }
                let forced: u128 = h
                    .ops()
                    .iter()
                    .filter(|i| matches!(i.kind, OpKind::Inc { .. }) && i.precedes(r))
                    .map(|i| u128::from(i.kind.multiplicity()))
                    .sum();
                if returned < forced {
                    return Err(format!(
                        "read returned {returned}, {forced} incs precede it"
                    ));
                }
            }
            Ok(())
        };

        let stats = explore(&ExploreConfig::default(), factory, check);
        assert_eq!(stats.violations.len(), 1, "the mutant must be caught");
        let v = &stats.violations[0];
        assert!(v.minimized.len() <= v.original.len());
        // The minimal violating schedule completes both increments (2×2
        // steps) and both reads (the first unblocks the second read's
        // announcement, the second returns the stale value): 6 steps.
        assert_eq!(v.minimized.steps(), 6, "minimal: 2 rmw ops + 2 reads");
        assert_eq!(v.minimized.crashes(), 0);
        // The minimized schedule replays to a failing cut.
        assert!(check(&v.minimized.run(factory())).is_err());
        // And converts to a Scripted scheduler (crash-free).
        assert!(v.minimized.to_scripted().is_some());
    }

    #[test]
    fn pruned_and_unpruned_agree_on_the_mutant() {
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d.submit_task(1, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d
        };
        // Quiescent cut: once both increments completed, the register
        // must hold 2 — detected through the returned pre-write values
        // (both reading 0 means one update was lost).
        let check = |h: &History| -> Result<(), String> {
            let done: Vec<_> = h.ops().iter().filter(|r| r.resp.is_some()).collect();
            if done.len() == 2 && done.iter().all(|r| r.returned() == 0) {
                return Err("both increments read 0: lost update".into());
            }
            Ok(())
        };
        for prune in [false, true] {
            let cfg = ExploreConfig {
                prune,
                max_violations: usize::MAX,
                ..ExploreConfig::default()
            };
            let stats = explore(&cfg, factory, check);
            assert!(
                !stats.violations.is_empty(),
                "prune={prune}: violation missed"
            );
        }
    }

    #[test]
    fn crash_injection_surfaces_pending_records_once() {
        // One process, one 2-primitive op, up to one crash: the cuts are
        // the crash-free run plus a crash at each prefix. Pending
        // records must appear exactly once per crashed in-flight op.
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(1));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg, 1));
            d
        };
        let cfg = ExploreConfig {
            max_crashes: 1,
            prune: false,
            ..ExploreConfig::default()
        };
        let mut cuts = 0;
        let stats = explore(&cfg, factory, |h| {
            cuts += 1;
            let pending = h.ops().iter().filter(|r| r.resp.is_none()).count();
            let completed = h.ops().iter().filter(|r| r.resp.is_some()).count();
            if pending + completed != 1 {
                return Err(format!(
                    "expected exactly one record for the single op, got {pending} pending + \
                     {completed} completed"
                ));
            }
            Ok(())
        });
        // Schedules: ss (complete), c (crash at start), sc (crash after
        // one step), ssc is impossible (op already done → pid inactive).
        assert_eq!(stats.interleavings, 3);
        assert_eq!(cuts, 3);
        assert!(stats.all_ok());
    }

    #[test]
    fn preemption_bound_restricts_schedules() {
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            let reg = Arc::new(Register::new(0));
            for pid in 0..2 {
                d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg.clone(), 1));
            }
            d
        };
        let free = explore(&ExploreConfig::exhaustive(100), factory, |_| Ok(()));
        let bounded = explore(
            &ExploreConfig {
                max_preemptions: Some(0),
                prune: false,
                ..ExploreConfig::default()
            },
            factory,
            |_| Ok(()),
        );
        // Zero preemptions: each process runs to completion once
        // scheduled — only the 2 serial orders remain.
        assert_eq!(bounded.interleavings, 2);
        assert!(u128::from(free.interleavings) > 2);

        // Pruning is ignored under a preemption bound (the commutation
        // does not preserve preemption counts): identical coverage with
        // prune on or off.
        let bounded_prune_requested = explore(
            &ExploreConfig {
                max_preemptions: Some(1),
                prune: true,
                ..ExploreConfig::default()
            },
            factory,
            |_| Ok(()),
        );
        let bounded_no_prune = explore(
            &ExploreConfig {
                max_preemptions: Some(1),
                prune: false,
                ..ExploreConfig::default()
            },
            factory,
            |_| Ok(()),
        );
        assert_eq!(
            bounded_prune_requested.interleavings,
            bounded_no_prune.interleavings
        );
        assert_eq!(bounded_prune_requested.pruned, 0);
    }

    #[test]
    fn step_bound_checks_prefix_cuts() {
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(1));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg, 1));
            d
        };
        let cfg = ExploreConfig {
            max_steps: 1,
            prune: false,
            ..ExploreConfig::default()
        };
        let mut pendings = 0;
        let stats = explore(&cfg, factory, |h| {
            pendings += h.ops().iter().filter(|r| r.resp.is_none()).count();
            Ok(())
        });
        assert_eq!(stats.interleavings, 1, "one prefix of length 1");
        assert_eq!(pendings, 1, "the suspended op surfaces as pending");
    }

    #[test]
    fn multinomial_helper() {
        assert_eq!(multinomial(&[2, 2]), 6);
        assert_eq!(multinomial(&[1, 1, 1]), 6);
        assert_eq!(multinomial(&[4, 4, 4]), 34650);
        assert_eq!(multinomial(&[0, 3]), 1);
    }
}
