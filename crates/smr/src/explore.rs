//! Bounded exhaustive schedule exploration over the coop backend —
//! stateless model checking for gated executions.
//!
//! Property tests sample schedules (`SeededRandom` over a few hundred
//! seeds); this module *enumerates* them. [`explore`] replays a program
//! over a fresh [`Driver<CoopBackend>`] once per interleaving, walking
//! the tree of scheduling decisions depth-first: at every prefix each
//! active process can be granted the next step, and (optionally) each
//! active process can be crashed. Every maximal interleaving — or every
//! prefix cut off by the step bound — is turned into a history cut via
//! [`Driver::history_snapshot`] and handed to a caller-supplied checker,
//! so a schedule-quantified claim ("for every gated schedule …") becomes
//! a finite, checkable statement for small configurations.
//!
//! ## Why the coop backend
//!
//! Exploration replays the program once per interleaving, so the cost of
//! creating and stepping an execution is the whole game. A coop driver
//! is a plain in-process object: no worker threads to spawn or park, one
//! indirect call per granted step, and `history_snapshot` is a clone (the
//! backend keeps every process at a stable point continuously). That is
//! what makes enumerating tens of thousands of interleavings per second
//! practical — see `exp_explore`.
//!
//! ## Independence
//!
//! Both reduction algorithms below rest on one independence relation —
//! [`smr::analysis::independent`](crate::analysis::independent), the
//! relation `commutation_audit` validates operationally. Two granted
//! steps commute when
//!
//! * they belong to different processes,
//! * at most one of them emitted a history event, and
//! * they touch different base objects, or both are trivial (`read`)
//!   primitives on the same object.
//!
//! Swapping such a pair changes nothing observable: shared memory ends
//! identical (the primitives commute), per-process step counters are
//! per-process (unaffected by order), and the history is
//! *byte-identical* — logical timestamps are drawn only by emitting
//! steps (an operation completing and announcing its successor), so a
//! non-emitting step can cross an emitting one without moving any
//! ticket draw or history record. Two emitting steps are always
//! dependent: their record order and ticket values swap observably.
//! Steps whose single primitive
//! cannot be identified — crash decisions, and nonconforming polls that
//! apply zero or several primitives in one grant — get no metadata and
//! are treated as **dependent on everything**: the walk stays exhaustive
//! around them, so a contract violation can never hide behind a
//! reduction that assumed the contract.
//!
//! The primitive each step applied is read off the runtime's access
//! trace ([`Runtime::enable_tracing`](crate::Runtime::enable_tracing) —
//! the explorer turns it on); event emission is read off the history
//! length.
//!
//! ## Reduction: DPOR (default) and adjacent-swap pruning
//!
//! With [`ExploreAlgo::Dpor`] (the default while `prune` is on and no
//! preemption budget is set), the explorer runs **dynamic partial-order
//! reduction** in the style of Flanagan–Godefroid, with sleep sets: as
//! each interleaving executes, every step is stamped with a vector
//! clock (the same sparse clocks as `smr::analysis::hb`) joining the
//! clocks of its happens-before predecessors — its process's previous
//! step plus every earlier *dependent* step not already ordered before
//! it. A dependent-but-concurrent pair is a race: its reversal may be a
//! distinct Mazurkiewicz trace, so the racing process is added to the
//! *backtrack set* of the node where the earlier step ran, and the walk
//! later re-explores that node with the reversal scheduled first. Sleep
//! sets kill the duplicates this creates: after a choice's subtree is
//! fully explored, the choice "sleeps" at that node and stays asleep in
//! sibling subtrees until some executed step is dependent with it —
//! an execution whose next step is asleep is a reordering of an
//! already-explored one, and is skipped (counted in
//! [`ExploreStats::pruned`]).
//!
//! Soundness: backtrack sets grow toward persistent sets (every
//! reversible race found in an executed schedule schedules its
//! reversal), sleep sets only skip executions equivalent to explored
//! ones (entries are dropped the moment a dependent step runs), and
//! steps without metadata commute with nothing, so conservatively every
//! neighbour of a nonconforming step is explored. One subtlety is
//! *object identity across replays*: every interleaving runs in a fresh
//! program instance, so raw base-object addresses recorded in one
//! replay are meaningless in the next. DPOR metadata persists across
//! replays, so the walk rekeys each step's object to its first-touch
//! index along the choice prefix — a deterministic property of the
//! prefix, hence exact for any two events on one path — and sleep
//! entries whose object was first touched by the sleeping step itself
//! (no shared-prefix identity) are compared conservatively: any
//! possibly-equal pairing counts as dependent and wakes the entry. Crash decisions are
//! seeded into every node's backtrack set unconditionally — crash
//! coverage stays exhaustive (one crash cut per prefix per process, as
//! in the raw DFS); the reduction only collapses step reorderings.
//!
//! [`ExploreAlgo::Dfs`] keeps the older, weaker rule: visit only
//! schedules where no adjacent independent pair is inverted (the lower
//! pid second). Every trace class contains its lexicographically least
//! member, which has no such inversion, so outcomes are preserved —
//! but only *adjacent* commutations are collapsed, which leaves many
//! duplicates DPOR removes. It survives as a differential baseline.
//!
//! A preemption bound disables both reductions: commuting a pair does
//! not preserve preemption counts, so under a budget every schedule is
//! explored as-is. `prune: false` likewise forces the raw DFS — that is
//! what the closed-form interleaving-count tests rely on.
//!
//! ## Parallel exploration
//!
//! [`explore_parallel`] splits the first two levels of the decision
//! tree into independent root prefixes (every enabled choice at those
//! levels, each probed once for its step metadata), hands them to a
//! pool of OS-thread workers over a shared queue, and runs the
//! sequential DPOR engine inside each prefix on the worker's own
//! drivers. Sleep sets accumulated across earlier sibling prefixes
//! carry into later ones exactly as in the sequential walk, so work is
//! not duplicated across tasks; races detected against a step *inside*
//! the fixed prefix are dropped, which is sound because every enabled
//! choice at a split node is explored by construction (the strongest
//! possible backtrack set). Results are aggregated in canonical
//! (lexicographic) task order and violations are minimized after
//! aggregation, so stats, violation choice and messages are
//! **bit-identical for any worker count** — `explore_parallel(cfg, 1,
//! …)` and `explore_parallel(cfg, 8, …)` return the same value.
//!
//! ## Bounds
//!
//! [`ExploreConfig`] bounds the walk three ways: `max_steps` (granted
//! steps per interleaving — prefixes at the bound are checked as cuts,
//! exactly like a suspension), `max_preemptions` (CHESS-style: switching
//! away from a process that is still runnable costs one preemption;
//! switches forced by completion or crash are free), and `max_crashes`
//! (crash-point injection: at every prefix, each active process may be
//! crashed, surfacing its in-flight operation as a pending record). An
//! optional `max_interleavings` cap stops runaway configurations and is
//! reported via [`ExploreStats::capped`]; a capped or preemption-bounded
//! configuration falls back to the sequential engine under
//! [`explore_parallel`] (a cap is a property of one global visit order).
//!
//! ## Replay and minimization
//!
//! Every decision sequence is a [`Replay`]: it can be re-run against a
//! fresh driver ([`Replay::run`]) and, when crash-free, converted into a
//! [`Scripted`] scheduler ([`Replay::to_scripted`]). When the checker
//! rejects a cut, the explorer greedily deletes chunks of the decision
//! sequence (ddmin-style, halving chunk sizes) while the violation
//! persists, and reports the minimal failing schedule alongside the
//! original in [`FoundViolation`].

use crate::analysis::{independent, StepMeta, Vc};
use crate::backend::CoopBackend;
use crate::driver::Driver;
use crate::history::History;
use crate::sched::Scripted;
use crate::trace::{AccessKind, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// One decision of an explored schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Grant process `pid` one primitive step.
    Step(usize),
    /// Crash process `pid` (it is never scheduled again; its in-flight
    /// operation surfaces as a pending record).
    Crash(usize),
}

/// The process a decision acts on.
fn acting(choice: Choice) -> usize {
    match choice {
        Choice::Step(pid) | Choice::Crash(pid) => pid,
    }
}

/// A replayable schedule: the exact decision sequence of one explored
/// execution prefix. Gated coop executions are deterministic, so
/// re-applying the sequence to a fresh driver built by the same factory
/// reproduces the execution — including the violating cut the checker
/// rejected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Replay {
    /// The decision sequence, in execution order.
    pub choices: Vec<Choice>,
}

impl Replay {
    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// `true` if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Granted steps (crash decisions excluded).
    pub fn steps(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| matches!(c, Choice::Step(_)))
            .count()
    }

    /// Crash decisions.
    pub fn crashes(&self) -> usize {
        self.choices.len() - self.steps()
    }

    /// Re-apply the schedule to a fresh driver (same program, same
    /// submission order) and return the resulting history cut — the
    /// exact cut the explorer checked. Decisions that no longer apply
    /// (a pid that already finished or crashed) are skipped, so any
    /// subsequence of a valid schedule is itself valid; minimization
    /// relies on this.
    pub fn run(&self, mut d: Driver<CoopBackend>) -> History {
        for &c in &self.choices {
            match c {
                Choice::Step(pid) => {
                    if !d.is_crashed(pid) && d.active_set().contains(pid) {
                        let _ = d.step(pid);
                    }
                }
                Choice::Crash(pid) => {
                    if !d.is_crashed(pid) {
                        d.crash(pid);
                    }
                }
            }
        }
        d.history_snapshot()
    }

    /// The schedule as a [`Scripted`] scheduler, for crash-free
    /// schedules (`None` if the replay contains a crash, which no
    /// `Scheduler` can express). Note `Scripted` drives an execution to
    /// *completion* (falling back to round-robin when the script runs
    /// dry); to reproduce a bounded prefix cut exactly, use
    /// [`Replay::run`].
    pub fn to_scripted(&self) -> Option<Scripted> {
        let mut pids = Vec::with_capacity(self.choices.len());
        for &c in &self.choices {
            match c {
                Choice::Step(pid) => pids.push(pid),
                Choice::Crash(_) => return None,
            }
        }
        Some(Scripted::new(pids))
    }
}

/// Which reduction the explorer runs when `prune` is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreAlgo {
    /// Adjacent-swap canonical-order pruning (the pre-DPOR reduction).
    /// Collapses only adjacent commutations; kept as a differential
    /// baseline.
    Dfs,
    /// Dynamic partial-order reduction with sleep sets (see the [module
    /// docs](self)): one representative per Mazurkiewicz trace class,
    /// races detected through happens-before vector clocks.
    #[default]
    Dpor,
}

/// Bounds and options for one [`explore`] call.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Granted steps per interleaving; prefixes that hit the bound are
    /// checked as suspension cuts.
    pub max_steps: usize,
    /// Crash decisions per interleaving (0 disables crash injection).
    pub max_crashes: usize,
    /// Preemptions per interleaving (`None` = unbounded). A switch away
    /// from a process that could still run costs one; switches at
    /// completions and crashes are free.
    pub max_preemptions: Option<usize>,
    /// Skip interleavings equivalent to an already-visited one (see the
    /// [module docs](self)). Disable to count raw interleavings against
    /// a closed form. Ignored when `max_preemptions` is set: a reduced
    /// schedule's representative can cost more preemptions than the
    /// skipped one, so reduction under a preemption budget would
    /// silently drop in-budget equivalence classes.
    pub prune: bool,
    /// The reduction to run when `prune` is on.
    pub algo: ExploreAlgo,
    /// Hard cap on checked interleavings (`None` = exhaust the space).
    pub max_interleavings: Option<u64>,
    /// Stop after this many violations have been found and minimized.
    pub max_violations: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 10_000,
            max_crashes: 0,
            max_preemptions: None,
            prune: true,
            algo: ExploreAlgo::default(),
            max_interleavings: None,
            max_violations: 1,
        }
    }
}

impl ExploreConfig {
    /// Exhaustive enumeration (no reduction, no preemption bound) up to
    /// `max_steps` granted steps — the configuration whose interleaving
    /// count matches the multinomial closed form for programs with
    /// schedule-independent per-process step counts.
    pub fn exhaustive(max_steps: usize) -> Self {
        ExploreConfig {
            max_steps,
            prune: false,
            ..ExploreConfig::default()
        }
    }
}

/// A checker rejection, with the schedule that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundViolation {
    /// The checker's diagnosis for the minimized schedule.
    pub message: String,
    /// The minimal failing schedule (ddmin over the original decision
    /// sequence; every removal kept the checker failing).
    pub minimized: Replay,
    /// The schedule the violation was first observed on.
    pub original: Replay,
}

/// What one [`explore`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// History cuts checked (maximal interleavings plus bound cuts).
    pub interleavings: u64,
    /// Subtrees skipped by the reduction (canonical-order cuts under
    /// [`ExploreAlgo::Dfs`]; sleeping or never-backtracked choices
    /// under [`ExploreAlgo::Dpor`]).
    pub pruned: u64,
    /// Total granted steps across all replays (the work metric).
    pub steps_replayed: u64,
    /// Deepest decision sequence reached.
    pub max_depth: usize,
    /// Checker rejections, minimized.
    pub violations: Vec<FoundViolation>,
    /// `true` if `max_interleavings` stopped the walk early.
    pub capped: bool,
}

impl ExploreStats {
    /// `true` if every checked cut passed.
    pub fn all_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One node of the decision tree: the alternatives at this prefix and
/// the index of the branch currently being explored (raw DFS walk).
struct Frame {
    alts: Vec<Choice>,
    idx: usize,
}

/// Apply one decision to the driver, returning the step's [`StepMeta`]
/// (for traced `Step` decisions). `traced` controls whether this call
/// drains and inspects the trace: the raw DFS replays prefixes with
/// tracing off entirely (no per-step mutex/alloc traffic), while the
/// DPOR walk keeps tracing on throughout — it needs the prefix accesses
/// to rebuild object identity in each fresh instance — but still passes
/// `traced: false` during replay and drains the whole prefix in one
/// bulk take afterwards. `scratch` is the reused trace drain buffer —
/// one allocation per walk, not per step.
fn apply(
    d: &mut Driver<CoopBackend>,
    choice: Choice,
    traced: bool,
    scratch: &mut Vec<TraceEvent>,
) -> Option<StepMeta> {
    match choice {
        Choice::Step(pid) => {
            let before_len = d.history().len();
            let _ = d.step(pid);
            if !traced {
                return None;
            }
            // The trace carries controller edges (Grant, and the
            // Invoke/Complete of zero-primitive follow-up ops) around the
            // step's single primitive application; only that one matters
            // for the independence relation. A lenient backend can let a
            // poll-contract mutant apply zero or several primitives in one
            // grant — the analysis passes diagnose that; here the step just
            // loses its metadata (None never commutes, so the walk stays
            // exhaustive around it).
            d.runtime().take_trace_into(scratch);
            let mut acc = scratch.iter().filter_map(|e| e.access());
            let first = acc.next().copied();
            let ev = match (first, acc.next()) {
                (Some(ev), None) => ev,
                _ => return None,
            };
            Some(StepMeta {
                pid,
                obj: ev.obj,
                kind: ev.kind,
                emitted: d.history().len() != before_len,
            })
        }
        Choice::Crash(pid) => {
            d.crash(pid);
            if traced {
                d.runtime().take_trace_into(scratch);
                debug_assert!(
                    scratch
                        .iter()
                        .any(|e| matches!(e, TraceEvent::Crash { .. })),
                    "a crash decision records a Crash edge"
                );
            }
            None
        }
    }
}

/// [`independent`] lifted to optional metadata: a step without metadata
/// (crash, nonconforming poll, or an untraced replay edge) commutes
/// with nothing.
fn indep_opt(a: &Option<StepMeta>, b: &Option<StepMeta>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => independent(a, b),
        _ => false,
    }
}

/// The adjacent-swap pruning rule: `second` (just executed) commutes
/// with `first` (executed immediately before it) and is out of
/// canonical order.
fn prunable(first: &Option<StepMeta>, second: &Option<StepMeta>) -> bool {
    let (Some(a), Some(b)) = (first, second) else {
        return false; // crash edges are never commuted
    };
    b.pid < a.pid && independent(a, b)
}

/// Mutable walk state threaded through one replay/extension pass.
struct Walk {
    steps: usize,
    crashes: usize,
    preemptions: usize,
    prev: Option<StepMeta>,
    /// Pid of the last granted step, and whether that process was still
    /// active immediately after it (a switch away from it is then a
    /// preemption).
    last_runnable: Option<usize>,
}

impl Walk {
    fn new() -> Self {
        Walk {
            steps: 0,
            crashes: 0,
            preemptions: 0,
            prev: None,
            last_runnable: None,
        }
    }

    /// Update the counters for an applied decision.
    fn account(&mut self, choice: Choice, info: Option<StepMeta>, d: &Driver<CoopBackend>) {
        match choice {
            Choice::Step(pid) => {
                if let Some(last) = self.last_runnable {
                    if last != pid {
                        self.preemptions += 1;
                    }
                }
                self.steps += 1;
                self.prev = info;
                self.last_runnable = d.active_set().contains(pid).then_some(pid);
            }
            Choice::Crash(pid) => {
                self.crashes += 1;
                self.prev = None;
                if self.last_runnable == Some(pid) {
                    self.last_runnable = None; // switching away is now free
                }
            }
        }
    }
}

/// The alternatives at the current prefix, in canonical order: step
/// decisions for each active pid ascending, then crash decisions.
fn alternatives(d: &Driver<CoopBackend>, cfg: &ExploreConfig, walk: &Walk) -> Vec<Choice> {
    let active = d.active_set();
    let preempt_exhausted = cfg
        .max_preemptions
        .is_some_and(|max| walk.preemptions >= max);
    let mut alts: Vec<Choice> = Vec::new();
    match walk.last_runnable {
        // Out of preemption budget: the running process must continue
        // (crashing it below stays allowed — a crash is not a step).
        Some(last) if preempt_exhausted => alts.push(Choice::Step(last)),
        _ => alts.extend(active.iter_sorted().map(Choice::Step)),
    }
    if walk.crashes < cfg.max_crashes {
        alts.extend(active.iter_sorted().map(Choice::Crash));
    }
    alts
}

/// The analysis passes' verdict over a finished replay, when the
/// factory attached an [`Analyzer`](crate::analysis::Analyzer) to the
/// runtime: `Some(message)` if any pass reported a violation. Explored
/// cuts are checked against the analyses exactly like against the
/// caller's history checker, so a poll-contract or conformance bug is
/// found, minimized and reported through the same [`FoundViolation`]
/// machinery as a linearizability bug.
fn analysis_failure(rt: &std::sync::Arc<crate::Runtime>) -> Option<String> {
    let analyzer = rt.analysis()?;
    let violations = analyzer.finish();
    violations
        .first()
        .map(|v| format!("analysis ({} violation(s)): {v}", violations.len()))
}

/// Greedy ddmin: delete ever-smaller chunks of the decision sequence
/// while the checker still rejects the replayed cut.
fn minimize<F, C>(factory: &F, check: &mut C, original: &Replay) -> (Replay, String)
where
    F: Fn() -> Driver<CoopBackend>,
    C: FnMut(&History) -> Result<(), String>,
{
    let mut failure = |r: &Replay| -> Option<String> {
        let d = factory();
        let rt = d.runtime().clone();
        check(&r.run(d)).err().or_else(|| analysis_failure(&rt))
    };
    let mut best = original.clone();
    let mut message = failure(&best).expect("the original schedule must reproduce the violation");
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut at = 0;
        while at < best.len() {
            let mut candidate = best.clone();
            candidate
                .choices
                .drain(at..(at + chunk).min(candidate.choices.len()));
            if let Some(msg) = failure(&candidate) {
                best = candidate;
                message = msg;
                shrunk = true;
                // re-test the same position: the next chunk slid in
            } else {
                at += chunk;
            }
        }
        if chunk == 1 && !shrunk {
            return (best, message);
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Enumerate every schedule of the program built by `factory` (within
/// `cfg`'s bounds) and check the history cut of each with `check`.
///
/// `factory` must build a fresh, fully-submitted coop driver per call
/// and be deterministic — every invocation must produce the same program
/// (the explorer replays it once per interleaving). `check` receives the
/// [`Driver::history_snapshot`] of each cut: completed operations plus
/// pending records for operations still in flight at the cut (crashed or
/// suspended by the bound).
///
/// With the default configuration this runs the DPOR engine; `prune:
/// false`, [`ExploreAlgo::Dfs`] or a preemption budget select the raw
/// depth-first walk. See the [module docs](self) for the enumeration
/// order, the soundness arguments and the bounds.
pub fn explore<F, C>(cfg: &ExploreConfig, factory: F, check: C) -> ExploreStats
where
    F: Fn() -> Driver<CoopBackend>,
    C: FnMut(&History) -> Result<(), String>,
{
    if cfg.prune && cfg.max_preemptions.is_none() && cfg.algo == ExploreAlgo::Dpor {
        explore_dpor(cfg, &factory, check)
    } else {
        explore_dfs(cfg, &factory, check)
    }
}

/// The raw depth-first walk, with optional adjacent-swap pruning.
fn explore_dfs<F, C>(cfg: &ExploreConfig, factory: &F, mut check: C) -> ExploreStats
where
    F: Fn() -> Driver<CoopBackend>,
    C: FnMut(&History) -> Result<(), String>,
{
    let mut stats = ExploreStats::default();
    let mut path: Vec<Frame> = Vec::new();
    let mut scratch: Vec<TraceEvent> = Vec::new();
    // Pruning keeps only the lexicographically-canonical member of each
    // equivalence class, but a preemption budget is not invariant under
    // the commutation (the canonical schedule may preempt more), so the
    // two compose unsoundly — an in-budget class could lose its only
    // in-budget representative. Exhaustiveness wins over reduction.
    let prune = cfg.prune && cfg.max_preemptions.is_none();

    /// Advance to the next unexplored branch; `false` when the tree is
    /// exhausted.
    fn backtrack(path: &mut Vec<Frame>) -> bool {
        while let Some(top) = path.last_mut() {
            top.idx += 1;
            if top.idx < top.alts.len() {
                return true;
            }
            path.pop();
        }
        false
    }

    'outer: loop {
        // Replay the current prefix on a fresh driver. The prune check
        // only consults the last two decisions, so the replay runs
        // untraced up to them (tracing costs a mutex + alloc per step,
        // and replays are the explorer's entire work); tracing turns on
        // for the final two edges and stays on for the extension.
        let mut d = factory();
        assert!(
            d.runtime().is_coop(),
            "explore requires a coop driver (Driver::coop over Runtime::coop)"
        );
        let mut walk = Walk::new();
        let prefix: Vec<Choice> = path.iter().map(|f| f.alts[f.idx]).collect();
        let traced_from = prefix.len().saturating_sub(2);
        let mut replay_pruned = false;
        for (i, &choice) in prefix.iter().enumerate() {
            if i == traced_from {
                d.runtime().enable_tracing();
                d.runtime().take_trace_into(&mut scratch); // drop any factory-time noise
            }
            let prev = walk.prev;
            let info = apply(&mut d, choice, i >= traced_from, &mut scratch);
            stats.steps_replayed += u64::from(matches!(choice, Choice::Step(_)));
            walk.account(choice, info, &d);
            // Only the deepest decision can be fresh; everything above
            // it already passed this check when first taken.
            if i + 1 == prefix.len() && prune && prunable(&prev, &info) {
                replay_pruned = true;
                break;
            }
        }
        if prefix.is_empty() {
            d.runtime().enable_tracing();
            d.runtime().take_trace_into(&mut scratch); // drop any factory-time noise
        }
        if replay_pruned {
            stats.pruned += 1;
            if !backtrack(&mut path) {
                break 'outer;
            }
            continue 'outer;
        }

        // Extend depth-first along each node's first alternative.
        loop {
            stats.max_depth = stats.max_depth.max(path.len());
            let at_bound = walk.steps >= cfg.max_steps;
            if d.active_set().is_empty() || at_bound {
                stats.interleavings += 1;
                let rejected = check(&d.history_snapshot())
                    .err()
                    .or_else(|| analysis_failure(d.runtime()));
                if rejected.is_some() {
                    let original = Replay {
                        choices: path.iter().map(|f| f.alts[f.idx]).collect(),
                    };
                    drop(d); // release the failing execution before re-running
                    let (minimized, message) = minimize(factory, &mut check, &original);
                    stats.violations.push(FoundViolation {
                        message,
                        minimized,
                        original,
                    });
                    if stats.violations.len() >= cfg.max_violations {
                        return stats;
                    }
                }
                if let Some(cap) = cfg.max_interleavings {
                    if stats.interleavings >= cap {
                        stats.capped = true;
                        return stats;
                    }
                }
                if !backtrack(&mut path) {
                    break 'outer;
                }
                continue 'outer;
            }
            let alts = alternatives(&d, cfg, &walk);
            debug_assert!(!alts.is_empty(), "active set non-empty but no alternatives");
            let choice = alts[0];
            path.push(Frame { alts, idx: 0 });
            let prev = walk.prev;
            let info = apply(&mut d, choice, true, &mut scratch);
            stats.steps_replayed += u64::from(matches!(choice, Choice::Step(_)));
            walk.account(choice, info, &d);
            if prune && prunable(&prev, &info) {
                stats.pruned += 1;
                if !backtrack(&mut path) {
                    break 'outer;
                }
                continue 'outer;
            }
        }
    }
    stats
}

// ---------------------------------------------------------------------
// DPOR engine
// ---------------------------------------------------------------------

/// First-touch object identity for one execution path.
///
/// [`StepMeta::obj`] is a base-object address, and addresses are
/// instance-local: every replay constructs a fresh program from the
/// factory, so an address recorded in one replay means nothing in the
/// next. DPOR metadata, however, *persists across replays* — done and
/// sleep entries captured executing one interleaving are compared
/// against steps of later ones. The walk therefore rekeys every meta to
/// the index at which its object is first touched along the choice
/// prefix. That index is a deterministic property of the prefix alone,
/// so metas recorded in different replays of the same prefix agree, and
/// two equal ids on one path always denote the same real object.
#[derive(Default)]
struct ObjIds(HashMap<usize, usize>);

impl ObjIds {
    /// The first-touch id of `addr`, assigning the next id if unseen.
    fn id(&mut self, addr: usize) -> usize {
        let next = self.0.len();
        *self.0.entry(addr).or_insert(next)
    }

    /// Count of distinct objects touched so far.
    fn len(&self) -> usize {
        self.0.len()
    }

    /// Feed every access in a drained trace fragment through the map,
    /// in order.
    fn feed(&mut self, events: &[TraceEvent]) {
        for a in events.iter().filter_map(|e| e.access()) {
            self.id(a.obj);
        }
    }
}

/// Rewrite a freshly-recorded meta's object address to its first-touch
/// id, feeding every access of the step's trace fragment through the
/// map (nonconforming multi-access steps still advance the map — id
/// assignment must be a function of the path, not of conformance).
fn stabilize(ids: &mut ObjIds, events: &[TraceEvent], info: Option<StepMeta>) -> Option<StepMeta> {
    let mut last = None;
    for a in events.iter().filter_map(|e| e.access()) {
        last = Some(ids.id(a.obj));
    }
    info.map(|m| StepMeta {
        obj: last.expect("a step with metadata applied exactly one primitive"),
        ..m
    })
}

/// A sleeping (or done-inherited) choice, with the provenance bit that
/// makes its object id safe to compare at deeper nodes.
///
/// First-touch ids are exact *within one path*. A sleep entry captured
/// at node `n` travels into sibling subtrees, where the steps it is
/// compared against lie on a different path sharing only the prefix up
/// to `n`. Ids below the distinct-object count at `n` name objects of
/// that shared prefix, so they stay exact everywhere in the subtree
/// (`obj_known`). An entry whose object was first touched *by the
/// sleeping step itself* has no prefix identity: in a sibling branch the
/// same real object may surface under a later id, so comparisons
/// against higher ids are meaningless and [`survives`] conservatively
/// treats them as dependent.
#[derive(Clone, Copy)]
struct SleepEntry {
    choice: Choice,
    info: Option<StepMeta>,
    /// `true` if the entry's object was already part of the shared
    /// prefix when the entry was captured.
    obj_known: bool,
}

/// `true` if a sleep entry stays asleep across `taken` — i.e. the two
/// are independent under comparisons that are exact or conservative.
///
/// With `obj_known`, the plain relation applies (both ids are
/// first-touch indices of shared-prefix objects — exact). Without it,
/// the entry's object is fresh at its capture node: a step with a
/// *smaller* id touches a shared-prefix object, which the fresh object
/// cannot be (exact inequality); a step with the *same* id may be the
/// same object (treated dependent — conservative); a step with a
/// *larger* id is unidentifiable relative to the entry's capture
/// context, so it is treated as dependent too. Read/read pairs are
/// independent regardless of object identity.
fn survives(e: &SleepEntry, taken: &Option<StepMeta>) -> bool {
    let (Some(a), Some(t)) = (&e.info, taken) else {
        return false;
    };
    if a.pid == t.pid || (a.emitted && t.emitted) {
        return false;
    }
    if a.kind == AccessKind::Read && t.kind == AccessKind::Read {
        return true;
    }
    if !e.obj_known && t.obj > a.obj {
        return false;
    }
    a.obj != t.obj
}

/// An executed decision of the walk's fixed preamble (parallel tasks
/// root their walk below a split prefix): enough to run the race scan
/// for coverage, though races *at* these positions are dropped — every
/// enabled choice at a split node is a sibling task by construction.
struct PreEvent {
    choice: Choice,
    info: Option<StepMeta>,
    pid: usize,
    /// 1-based index of this event among `pid`'s events.
    local: u64,
    clock: Vc,
}

/// One node of the DPOR search stack: the state before `taken` ran.
struct DNode {
    /// Every choice available at this prefix, canonical order.
    enabled: Vec<Choice>,
    /// Choices scheduled for exploration from this node (grows as races
    /// against `taken`-descendant events are found).
    backtrack: Vec<Choice>,
    /// Choices fully explored from this node, with the metadata their
    /// first step had (deterministic per state, object rekeyed to its
    /// first-touch id). Doubles as the sleep contribution for later
    /// siblings.
    done: Vec<(Choice, Option<StepMeta>)>,
    /// Inherited sleep set: choices whose exploration from this state
    /// is equivalent to an already-explored execution.
    sleep: Vec<SleepEntry>,
    /// Distinct objects touched in the prefix up to this node — the
    /// first-touch id threshold below which object ids are shared-prefix
    /// identities (see [`SleepEntry`]).
    objs_seen: usize,
    /// The branch currently being explored.
    taken: Choice,
    info: Option<StepMeta>,
    pid: usize,
    local: u64,
    clock: Vc,
}

/// The explorer's registered metrics. Resolved lazily (one `OnceLock`
/// load per use) — every site below fires at node/replay granularity,
/// orders of magnitude rarer than granted steps, and instrumentation
/// must not perturb the walk itself: counters only, no control flow.
/// The obs-on/off parity test in `tests/obs_parity.rs` pins that the
/// DPOR history-digest set is bit-identical either way.
struct ExploreMetrics {
    /// `'outer` iterations of [`dpor_walk`] — fresh-driver replays.
    replays: &'static obs::Counter,
    /// DNodes pushed onto the search stack.
    nodes: &'static obs::Counter,
    /// Sleep-blocked states: every continuation was asleep.
    sleep_hits: &'static obs::Counter,
    /// Race reversals actually added to a backtrack set.
    backtracks: &'static obs::Counter,
    /// Search depth (preamble + stack) at each completed interleaving;
    /// per-worker shards make the parallel frontier's depth profile
    /// visible in one histogram.
    frontier_depth: &'static obs::Histogram,
}

fn metrics() -> &'static ExploreMetrics {
    static M: OnceLock<ExploreMetrics> = OnceLock::new();
    M.get_or_init(|| ExploreMetrics {
        replays: obs::counter(obs::names::SUB_EXPLORE, obs::names::EXPLORE_REPLAYS),
        nodes: obs::counter(obs::names::SUB_EXPLORE, obs::names::EXPLORE_NODES),
        sleep_hits: obs::counter(obs::names::SUB_EXPLORE, obs::names::EXPLORE_SLEEP_HITS),
        backtracks: obs::counter(obs::names::SUB_EXPLORE, obs::names::EXPLORE_BACKTRACKS),
        frontier_depth: obs::histogram(
            obs::names::SUB_EXPLORE,
            obs::names::EXPLORE_FRONTIER_DEPTH,
            2,
            4,
        ),
    })
}

/// `true` if exploring `c` from `node` is already covered — scheduled,
/// explored, or asleep.
fn covered(node: &DNode, c: Choice) -> bool {
    node.backtrack.contains(&c)
        || node.done.iter().any(|(dc, _)| *dc == c)
        || node.sleep.iter().any(|e| e.choice == c)
}

/// Schedule the reversal of a race at `node`: the racing event's
/// process runs here instead. Its choice is always enabled in this
/// model (the active set only shrinks along a path and crash budget is
/// monotone), but fall back to scheduling everything if it is not.
fn add_backtrack(node: &mut DNode, racer: Choice) {
    if node.enabled.contains(&racer) {
        if !covered(node, racer) {
            node.backtrack.push(racer);
            metrics().backtracks.inc();
        }
        return;
    }
    let missing: Vec<Choice> = node
        .enabled
        .iter()
        .copied()
        .filter(|&c| !covered(node, c))
        .collect();
    metrics().backtracks.add(missing.len() as u64);
    node.backtrack.extend(missing);
}

/// Stamp a new event with its vector clock and detect its races.
///
/// Scanning executed events newest-first: an event not yet dominated by
/// the accumulated cause that is dependent with the new one is a
/// *race* — dependent but concurrent. Its clock joins the cause (its
/// whole happens-before cone is now ordered before the new event), so
/// earlier members of that cone are skipped, and exactly the immediate
/// concurrent dependent partners are reported. Returns the new event's
/// clock, its per-process index, and the race sites inside the search
/// stack (preamble races are dropped — see [`PreEvent`]).
fn race_scan(
    pre: &[PreEvent],
    stack: &[DNode],
    pid: usize,
    info: &Option<StepMeta>,
) -> (Vc, u64, Vec<usize>) {
    let event = |g: usize| -> (usize, u64, &Option<StepMeta>, &Vc) {
        if g < pre.len() {
            let e = &pre[g];
            (e.pid, e.local, &e.info, &e.clock)
        } else {
            let n = &stack[g - pre.len()];
            (n.pid, n.local, &n.info, &n.clock)
        }
    };
    let total = pre.len() + stack.len();
    // Program order: start from the clock of `pid`'s latest event.
    let mut cause = (0..total)
        .rev()
        .find_map(|g| {
            let (p, _, _, c) = event(g);
            (p == pid).then(|| c.clone())
        })
        .unwrap_or_default();
    let local = cause.get(pid) + 1;
    let mut races = Vec::new();
    for g in (0..total).rev() {
        let (p, l, i, c) = event(g);
        if cause.get(p) >= l {
            continue; // already happens-before the new event
        }
        if !indep_opt(i, info) {
            if g >= pre.len() {
                races.push(g - pre.len());
            }
            cause.join(c);
        }
    }
    cause.set(pid, local);
    (cause, local, races)
}

/// Every choice available at the current DPOR prefix, canonical order
/// (active pids ascending as steps, then as crashes while budget
/// remains). The DPOR path never runs under a preemption budget, so no
/// forced-continuation case exists here.
fn enabled_choices(d: &Driver<CoopBackend>, cfg: &ExploreConfig, crashes: usize) -> Vec<Choice> {
    let active = d.active_set();
    let mut alts: Vec<Choice> = active.iter_sorted().map(Choice::Step).collect();
    if crashes < cfg.max_crashes {
        alts.extend(active.iter_sorted().map(Choice::Crash));
    }
    alts
}

/// What one DPOR walk found: stats (violation list left empty) plus the
/// raw failing schedules in visit order — minimization happens after
/// aggregation so parallel output is order-stable.
struct DporOutcome {
    stats: ExploreStats,
    raw: Vec<(Replay, String)>,
}

/// The sequential DPOR walk below a fixed preamble. `entry_sleep` is
/// the sleep set in force at the preamble tip; `stop_at` caps raw
/// violations (sequential mode), `cap` caps interleavings. Parallel
/// tasks pass `None` for both so every task runs to completion
/// regardless of what other tasks find — that is what makes the
/// aggregate worker-count-independent.
fn dpor_walk<F, C>(
    cfg: &ExploreConfig,
    factory: &F,
    check: &mut C,
    preamble: &[(Choice, Option<StepMeta>)],
    entry_sleep: Vec<SleepEntry>,
    stop_at: Option<usize>,
    cap: Option<u64>,
) -> DporOutcome
where
    F: Fn() -> Driver<CoopBackend>,
    C: FnMut(&History) -> Result<(), String>,
{
    let mut stats = ExploreStats::default();
    let mut raw: Vec<(Replay, String)> = Vec::new();
    let mut scratch: Vec<TraceEvent> = Vec::new();

    // Clocks for the preamble, computed once (pure metadata, no driver).
    let mut pre: Vec<PreEvent> = Vec::with_capacity(preamble.len());
    for &(choice, info) in preamble {
        let pid = acting(choice);
        let (clock, local, _) = race_scan(&pre, &[], pid, &info);
        pre.push(PreEvent {
            choice,
            info,
            pid,
            local,
            clock,
        });
    }

    let mut stack: Vec<DNode> = Vec::new();
    // `true` when the top node's `taken` was swapped by backtracking and
    // has not executed yet.
    let mut pending = false;

    /// Move to the next unexplored branch: retire the top node's taken
    /// branch into `done`, pick its next backtrack candidate, or pop.
    /// `true` leaves the top node pending re-execution.
    fn next_branch(stack: &mut Vec<DNode>, stats: &mut ExploreStats) -> bool {
        while let Some(top) = stack.last_mut() {
            top.done.push((top.taken, top.info));
            let next = top.backtrack.iter().copied().find(|c| {
                !top.done.iter().any(|(dc, _)| dc == c) && !top.sleep.iter().any(|e| e.choice == *c)
            });
            if let Some(c) = next {
                top.taken = c;
                top.info = None;
                return true;
            }
            stats.pruned += (top.enabled.len() - top.done.len()) as u64;
            stack.pop();
        }
        false
    }

    'outer: loop {
        metrics().replays.inc();
        let mut d = factory();
        assert!(
            d.runtime().is_coop(),
            "explore requires a coop driver (Driver::coop over Runtime::coop)"
        );
        let mut steps = 0usize;
        let mut crashes = 0usize;
        // Replay the prefix with tracing on (metadata and clocks are
        // already on the stack, but this fresh instance's object
        // addresses are not — the prefix accesses rebuild the
        // first-touch id map), draining the trace once in bulk.
        d.runtime().enable_tracing();
        d.runtime().take_trace_into(&mut scratch); // drop any stray noise
        let exec_upto = stack.len() - usize::from(pending);
        let replayed: Vec<Choice> = pre
            .iter()
            .map(|e| e.choice)
            .chain(stack[..exec_upto].iter().map(|n| n.taken))
            .collect();
        for choice in replayed {
            apply(&mut d, choice, false, &mut scratch);
            match choice {
                Choice::Step(_) => {
                    steps += 1;
                    stats.steps_replayed += 1;
                }
                Choice::Crash(_) => crashes += 1,
            }
        }
        let mut ids = ObjIds::default();
        d.runtime().take_trace_into(&mut scratch);
        ids.feed(&scratch);

        if std::mem::take(&mut pending) {
            let k = stack.len() - 1;
            let choice = stack[k].taken;
            let info = apply(&mut d, choice, true, &mut scratch);
            let info = stabilize(&mut ids, &scratch, info);
            match choice {
                Choice::Step(_) => {
                    steps += 1;
                    stats.steps_replayed += 1;
                }
                Choice::Crash(_) => crashes += 1,
            }
            let pid = acting(choice);
            let (clock, local, races) = race_scan(&pre, &stack[..k], pid, &info);
            for j in races {
                add_backtrack(&mut stack[j], choice);
            }
            let top = &mut stack[k];
            top.info = info;
            top.pid = pid;
            top.local = local;
            top.clock = clock;
        }

        loop {
            stats.max_depth = stats.max_depth.max(pre.len() + stack.len());
            if d.active_set().is_empty() || steps >= cfg.max_steps {
                stats.interleavings += 1;
                metrics()
                    .frontier_depth
                    .record((pre.len() + stack.len()) as u64);
                let rejected = check(&d.history_snapshot())
                    .err()
                    .or_else(|| analysis_failure(d.runtime()));
                if let Some(message) = rejected {
                    let choices = pre
                        .iter()
                        .map(|e| e.choice)
                        .chain(stack.iter().map(|n| n.taken))
                        .collect();
                    raw.push((Replay { choices }, message));
                    if stop_at.is_some_and(|m| raw.len() >= m) {
                        break 'outer;
                    }
                }
                if let Some(c) = cap {
                    if stats.interleavings >= c {
                        stats.capped = true;
                        break 'outer;
                    }
                }
                if next_branch(&mut stack, &mut stats) {
                    pending = true;
                    continue 'outer;
                }
                break 'outer;
            }

            // Open a new node: sleep inherited from the parent (done
            // siblings and surviving sleepers stay asleep only while
            // independent with the step just taken), first non-sleeping
            // choice seeded, every crash choice seeded (crash coverage
            // is never reduced).
            let enabled = enabled_choices(&d, cfg, crashes);
            debug_assert!(!enabled.is_empty(), "active set non-empty but no choices");
            let sleep: Vec<SleepEntry> = match stack.last() {
                Some(p) => p
                    .sleep
                    .iter()
                    .copied()
                    .chain(p.done.iter().map(|&(choice, info)| SleepEntry {
                        choice,
                        info,
                        obj_known: info.is_some_and(|m| m.obj < p.objs_seen),
                    }))
                    .filter(|e| survives(e, &p.info))
                    .collect(),
                None => entry_sleep.clone(),
            };
            let sleeping = |c: &Choice| sleep.iter().any(|e| e.choice == *c);
            let mut backtrack: Vec<Choice> = Vec::new();
            if let Some(&c0) = enabled.iter().find(|c| !sleeping(c)) {
                backtrack.push(c0);
            }
            for &c in &enabled {
                if matches!(c, Choice::Crash(_)) && !sleeping(&c) && !backtrack.contains(&c) {
                    backtrack.push(c);
                }
            }
            if backtrack.is_empty() {
                // Sleep-blocked: every continuation reorders an explored
                // execution.
                metrics().sleep_hits.inc();
                stats.pruned += enabled.len() as u64;
                if next_branch(&mut stack, &mut stats) {
                    pending = true;
                    continue 'outer;
                }
                break 'outer;
            }
            let taken = backtrack[0];
            let objs_seen = ids.len();
            let info = apply(&mut d, taken, true, &mut scratch);
            let info = stabilize(&mut ids, &scratch, info);
            match taken {
                Choice::Step(_) => {
                    steps += 1;
                    stats.steps_replayed += 1;
                }
                Choice::Crash(_) => crashes += 1,
            }
            let pid = acting(taken);
            let (clock, local, races) = race_scan(&pre, &stack, pid, &info);
            for j in races {
                add_backtrack(&mut stack[j], taken);
            }
            metrics().nodes.inc();
            stack.push(DNode {
                enabled,
                backtrack,
                done: Vec::new(),
                sleep,
                objs_seen,
                taken,
                info,
                pid,
                local,
                clock,
            });
        }
    }

    DporOutcome { stats, raw }
}

/// Sequential DPOR entry point: walk, then minimize what it found.
fn explore_dpor<F, C>(cfg: &ExploreConfig, factory: &F, mut check: C) -> ExploreStats
where
    F: Fn() -> Driver<CoopBackend>,
    C: FnMut(&History) -> Result<(), String>,
{
    let out = dpor_walk(
        cfg,
        factory,
        &mut check,
        &[],
        Vec::new(),
        Some(cfg.max_violations),
        cfg.max_interleavings,
    );
    let mut stats = out.stats;
    for (original, _) in out.raw {
        let (minimized, message) = minimize(factory, &mut check, &original);
        stats.violations.push(FoundViolation {
            message,
            minimized,
            original,
        });
    }
    stats
}

// ---------------------------------------------------------------------
// Parallel frontier
// ---------------------------------------------------------------------

/// One unit of parallel work: a fixed schedule prefix plus the sleep
/// set in force at its tip.
struct SplitTask {
    preamble: Vec<(Choice, Option<StepMeta>)>,
    sleep: Vec<SleepEntry>,
}

/// Expand the root into one task per enabled-choice sequence of the
/// first `depth` levels, probing each choice once for its metadata.
/// The split is independent of the worker count, so the task list — and
/// with it every aggregate — is too. Returns the tasks plus the
/// subtree-skip count and probe work done while splitting.
fn split_frontier<F>(cfg: &ExploreConfig, factory: &F, depth: usize) -> (Vec<SplitTask>, u64, u64)
where
    F: Fn() -> Driver<CoopBackend>,
{
    let mut scratch: Vec<TraceEvent> = Vec::new();
    let mut tasks = vec![SplitTask {
        preamble: Vec::new(),
        sleep: Vec::new(),
    }];
    let mut pruned = 0u64;
    let mut steps_replayed = 0u64;
    let replay_prefix = |d: &mut Driver<CoopBackend>,
                         preamble: &[(Choice, Option<StepMeta>)],
                         scratch: &mut Vec<TraceEvent>,
                         steps_replayed: &mut u64|
     -> (usize, usize) {
        let mut steps = 0usize;
        let mut crashes = 0usize;
        for &(choice, _) in preamble {
            apply(d, choice, false, scratch);
            match choice {
                Choice::Step(_) => {
                    steps += 1;
                    *steps_replayed += 1;
                }
                Choice::Crash(_) => crashes += 1,
            }
        }
        (steps, crashes)
    };
    for _ in 0..depth {
        let mut next: Vec<SplitTask> = Vec::new();
        for task in tasks {
            let mut d = factory();
            assert!(
                d.runtime().is_coop(),
                "explore requires a coop driver (Driver::coop over Runtime::coop)"
            );
            let (steps, crashes) =
                replay_prefix(&mut d, &task.preamble, &mut scratch, &mut steps_replayed);
            if d.active_set().is_empty() || steps >= cfg.max_steps {
                // Terminal prefix: keep as a leaf task; its walk checks
                // the cut and stops.
                next.push(task);
                continue;
            }
            let enabled = enabled_choices(&d, cfg, crashes);
            let mut done: Vec<(Choice, Option<StepMeta>)> = Vec::new();
            for &c in &enabled {
                if task.sleep.iter().any(|e| e.choice == c) {
                    pruned += 1; // covered by an earlier sibling's task
                    continue;
                }
                // Probe the choice's first step from the split state,
                // tracing from the start so the probe's first-touch
                // object ids line up with the walks that later replay
                // this preamble.
                let mut p = factory();
                p.runtime().enable_tracing();
                p.runtime().take_trace_into(&mut scratch);
                replay_prefix(&mut p, &task.preamble, &mut scratch, &mut steps_replayed);
                let mut ids = ObjIds::default();
                p.runtime().take_trace_into(&mut scratch);
                ids.feed(&scratch);
                let objs_seen = ids.len();
                let info = apply(&mut p, c, true, &mut scratch);
                let info = stabilize(&mut ids, &scratch, info);
                if matches!(c, Choice::Step(_)) {
                    steps_replayed += 1;
                }
                let sleep: Vec<SleepEntry> = task
                    .sleep
                    .iter()
                    .copied()
                    .chain(done.iter().map(|&(choice, info)| SleepEntry {
                        choice,
                        info,
                        obj_known: info.is_some_and(|m| m.obj < objs_seen),
                    }))
                    .filter(|e| survives(e, &info))
                    .collect();
                let mut preamble = task.preamble.clone();
                preamble.push((c, info));
                next.push(SplitTask { preamble, sleep });
                done.push((c, info));
            }
        }
        tasks = next;
    }
    (tasks, pruned, steps_replayed)
}

/// [`explore`] with the DPOR walk parallelized over `threads` OS-thread
/// workers, each replaying on drivers it builds itself from `factory`.
///
/// The first two decision levels are split into independent prefix
/// tasks drained from a shared queue; results are aggregated in
/// canonical task order and violations are minimized afterwards, so the
/// returned [`ExploreStats`] — counters, violation schedules, messages
/// — is **identical for every worker count**, including `threads: 1`.
/// (It differs from sequential [`explore`]'s stats: split levels
/// explore every enabled choice rather than a reduced backtrack set,
/// and tasks never stop early on another task's violation.)
///
/// Configurations the reduction does not apply to (`prune: false`,
/// [`ExploreAlgo::Dfs`], a preemption budget) and interleaving-capped
/// runs (a cap is a property of one global visit order) fall back to
/// the sequential engine.
pub fn explore_parallel<F, C>(
    cfg: &ExploreConfig,
    threads: usize,
    factory: F,
    check: C,
) -> ExploreStats
where
    F: Fn() -> Driver<CoopBackend> + Sync,
    C: Fn(&History) -> Result<(), String> + Sync,
{
    if !cfg.prune
        || cfg.max_preemptions.is_some()
        || cfg.max_interleavings.is_some()
        || cfg.algo == ExploreAlgo::Dfs
    {
        return explore(cfg, factory, check);
    }

    let (tasks, split_pruned, split_steps) = split_frontier(cfg, &factory, 2);
    let n_tasks = tasks.len();
    let queue: Mutex<VecDeque<(usize, SplitTask)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<DporOutcome>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(n_tasks).collect());
    let workers = threads.clamp(1, n_tasks.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("explorer queue poisoned").pop_front();
                let Some((i, task)) = job else { break };
                let mut check_here = |h: &History| check(h);
                let out = dpor_walk(
                    cfg,
                    &factory,
                    &mut check_here,
                    &task.preamble,
                    task.sleep,
                    None,
                    None,
                );
                results.lock().expect("explorer results poisoned")[i] = Some(out);
            });
        }
    });

    // Deterministic aggregation: task order is canonical (lexicographic
    // by prefix), so the first `max_violations` raw schedules — and the
    // minimization each then undergoes — do not depend on which worker
    // ran what when.
    let mut stats = ExploreStats {
        pruned: split_pruned,
        steps_replayed: split_steps,
        ..ExploreStats::default()
    };
    let mut raw: Vec<(Replay, String)> = Vec::new();
    for out in results.into_inner().expect("explorer results poisoned") {
        let out = out.expect("every split task ran");
        stats.interleavings += out.stats.interleavings;
        stats.pruned += out.stats.pruned;
        stats.steps_replayed += out.stats.steps_replayed;
        stats.max_depth = stats.max_depth.max(out.stats.max_depth);
        raw.extend(out.raw);
    }
    raw.truncate(cfg.max_violations);
    let mut check_seq = |h: &History| check(h);
    for (original, _) in raw {
        let (minimized, message) = minimize(&factory, &mut check_seq, &original);
        stats.violations.push(FoundViolation {
            message,
            minimized,
            original,
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpKind, OpSpec};
    use crate::task::{OpTask, Poll};
    use crate::{ProcCtx, Register, Runtime};
    use std::sync::Arc;

    /// `(s1 + … + sn)! / (s1! · … · sn!)` — interleavings of n sequences
    /// with fixed lengths.
    fn multinomial(counts: &[u64]) -> u128 {
        let mut result: u128 = 1;
        let mut placed: u128 = 0;
        for &c in counts {
            for i in 1..=u128::from(c) {
                placed += 1;
                result = result * placed / i; // binomial prefix: always divides
            }
        }
        result
    }

    /// Read a register then write `read + delta` — two primitives.
    struct Rmw {
        reg: Arc<Register>,
        delta: u64,
        read: Option<u64>,
        primed: bool,
    }

    impl Rmw {
        fn new(reg: Arc<Register>, delta: u64) -> Self {
            Rmw {
                reg,
                delta,
                read: None,
                primed: false,
            }
        }
    }

    impl OpTask for Rmw {
        fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
            if !self.primed {
                self.primed = true;
                return Poll::Pending;
            }
            match self.read {
                None => {
                    self.read = Some(self.reg.read(ctx));
                    Poll::Pending
                }
                Some(v) => {
                    self.reg.write(ctx, v + self.delta);
                    Poll::Ready(u128::from(v))
                }
            }
        }
    }

    /// One `read` of a register.
    struct ReadOnce {
        reg: Arc<Register>,
        primed: bool,
    }

    impl OpTask for ReadOnce {
        fn poll(&mut self, ctx: &ProcCtx) -> Poll<u128> {
            if !self.primed {
                self.primed = true;
                return Poll::Pending;
            }
            Poll::Ready(u128::from(self.reg.read(ctx)))
        }
    }

    #[test]
    fn exhaustive_count_matches_multinomial() {
        // 2 processes × one 2-primitive op on a shared register.
        let count = |cfg: &ExploreConfig| {
            explore(
                cfg,
                || {
                    let mut d = Driver::coop(Runtime::coop(2));
                    let reg = Arc::new(Register::new(0));
                    for pid in 0..2 {
                        d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg.clone(), 1));
                    }
                    d
                },
                |_h| Ok(()),
            )
        };
        let stats = count(&ExploreConfig::exhaustive(100));
        assert_eq!(u128::from(stats.interleavings), multinomial(&[2, 2]));
        assert_eq!(stats.pruned, 0, "nothing to prune on one shared object");
        assert!(stats.all_ok());
    }

    #[test]
    fn pruning_collapses_independent_steps_without_losing_outcomes() {
        // Each process works a private register: the intermediate reads
        // commute, so both reductions must collapse schedules while
        // still checking at least one per outcome.
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            for pid in 0..2 {
                let reg = Arc::new(Register::new(0));
                d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg, 1));
            }
            d
        };
        let full = explore(&ExploreConfig::exhaustive(100), factory, |_h| Ok(()));
        assert_eq!(u128::from(full.interleavings), multinomial(&[2, 2]));
        for algo in [ExploreAlgo::Dfs, ExploreAlgo::Dpor] {
            let reduced = explore(
                &ExploreConfig {
                    algo,
                    ..ExploreConfig::default()
                },
                factory,
                |_h| Ok(()),
            );
            assert!(
                reduced.interleavings < full.interleavings,
                "{algo:?} must skip equivalent schedules"
            );
            assert!(reduced.pruned > 0, "{algo:?} must report skipped subtrees");
            assert!(reduced.all_ok());
        }
    }

    #[test]
    fn dpor_visits_one_representative_per_trace_class() {
        // 2 processes, private registers: each process contributes a
        // silent read r and an emitting write w. The only dependent
        // cross-process pair is w0/w1 (both emit), so the 6 raw
        // interleavings collapse to 2 Mazurkiewicz classes — one per
        // order of the two completions — and sleep sets make the walk
        // optimal here (no wasted replays).
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            for pid in 0..2 {
                let reg = Arc::new(Register::new(0));
                d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg, 1));
            }
            d
        };
        let stats = explore(&ExploreConfig::default(), factory, |_h| Ok(()));
        assert_eq!(stats.interleavings, 2, "one replay per trace class");
        assert!(stats.all_ok());
    }

    #[test]
    fn finds_and_minimizes_a_lost_update() {
        // Mutant counter: both processes increment through one shared
        // register (read, then write read+1) — the single-writer-cell
        // discipline of the collect counter deliberately dropped. A
        // schedule that interleaves the two read-modify-writes loses an
        // increment; a read that runs strictly afterwards then violates
        // the exact counter spec. The explorer must find it.
        // The reader queues *two* reads: the second is announced only
        // when the first completes, so its invocation can land after
        // the increments' responses and real-time precedence applies.
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(3));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d.submit_task(1, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            for _ in 0..2 {
                d.submit_task(
                    2,
                    OpSpec::read(),
                    ReadOnce {
                        reg: reg.clone(),
                        primed: false,
                    },
                );
            }
            d
        };
        // Exact-counter check, transcribed locally (smr cannot depend on
        // lincheck): a read that every completed increment precedes must
        // return at least the number of those increments.
        let check = |h: &History| -> Result<(), String> {
            for r in h.ops() {
                let OpKind::Read { returned } = r.kind else {
                    continue;
                };
                if r.resp.is_none() {
                    continue;
                }
                let forced: u128 = h
                    .ops()
                    .iter()
                    .filter(|i| matches!(i.kind, OpKind::Inc { .. }) && i.precedes(r))
                    .map(|i| u128::from(i.kind.multiplicity()))
                    .sum();
                if returned < forced {
                    return Err(format!(
                        "read returned {returned}, {forced} incs precede it"
                    ));
                }
            }
            Ok(())
        };

        let stats = explore(&ExploreConfig::default(), factory, check);
        assert_eq!(stats.violations.len(), 1, "the mutant must be caught");
        let v = &stats.violations[0];
        assert!(v.minimized.len() <= v.original.len());
        // The minimal violating schedule completes both increments (2×2
        // steps) and both reads (the first unblocks the second read's
        // announcement, the second returns the stale value): 6 steps.
        assert_eq!(v.minimized.steps(), 6, "minimal: 2 rmw ops + 2 reads");
        assert_eq!(v.minimized.crashes(), 0);
        // The minimized schedule replays to a failing cut.
        assert!(check(&v.minimized.run(factory())).is_err());
        // And converts to a Scripted scheduler (crash-free).
        assert!(v.minimized.to_scripted().is_some());
    }

    #[test]
    fn reduced_and_unreduced_agree_on_the_mutant() {
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d.submit_task(1, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d
        };
        // Quiescent cut: once both increments completed, the register
        // must hold 2 — detected through the returned pre-write values
        // (both reading 0 means one update was lost).
        let check = |h: &History| -> Result<(), String> {
            let done: Vec<_> = h.ops().iter().filter(|r| r.resp.is_some()).collect();
            if done.len() == 2 && done.iter().all(|r| r.returned() == 0) {
                return Err("both increments read 0: lost update".into());
            }
            Ok(())
        };
        for (prune, algo) in [
            (false, ExploreAlgo::Dpor),
            (true, ExploreAlgo::Dfs),
            (true, ExploreAlgo::Dpor),
        ] {
            let cfg = ExploreConfig {
                prune,
                algo,
                max_violations: usize::MAX,
                ..ExploreConfig::default()
            };
            let stats = explore(&cfg, factory, check);
            assert!(
                !stats.violations.is_empty(),
                "prune={prune} algo={algo:?}: violation missed"
            );
        }
    }

    #[test]
    fn parallel_output_is_identical_across_worker_counts() {
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d.submit_task(1, OpSpec::inc(), Rmw::new(reg.clone(), 1));
            d
        };
        let check = |h: &History| -> Result<(), String> {
            let done: Vec<_> = h.ops().iter().filter(|r| r.resp.is_some()).collect();
            if done.len() == 2 && done.iter().all(|r| r.returned() == 0) {
                return Err("both increments read 0: lost update".into());
            }
            Ok(())
        };
        let cfg = ExploreConfig {
            max_violations: usize::MAX,
            ..ExploreConfig::default()
        };
        let base = explore_parallel(&cfg, 1, factory, check);
        assert!(!base.violations.is_empty(), "mutant must be caught");
        for threads in [2, 4] {
            let run = explore_parallel(&cfg, threads, factory, check);
            assert_eq!(run, base, "{threads} workers diverged from 1 worker");
        }
    }

    #[test]
    fn crash_injection_surfaces_pending_records_once() {
        // One process, one 2-primitive op, up to one crash: the cuts are
        // the crash-free run plus a crash at each prefix. Pending
        // records must appear exactly once per crashed in-flight op.
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(1));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg, 1));
            d
        };
        let cfg = ExploreConfig {
            max_crashes: 1,
            prune: false,
            ..ExploreConfig::default()
        };
        let mut cuts = 0;
        let stats = explore(&cfg, factory, |h| {
            cuts += 1;
            let pending = h.ops().iter().filter(|r| r.resp.is_none()).count();
            let completed = h.ops().iter().filter(|r| r.resp.is_some()).count();
            if pending + completed != 1 {
                return Err(format!(
                    "expected exactly one record for the single op, got {pending} pending + \
                     {completed} completed"
                ));
            }
            Ok(())
        });
        // Schedules: ss (complete), c (crash at start), sc (crash after
        // one step), ssc is impossible (op already done → pid inactive).
        assert_eq!(stats.interleavings, 3);
        assert_eq!(cuts, 3);
        assert!(stats.all_ok());
    }

    #[test]
    fn dpor_keeps_crash_coverage_exhaustive() {
        // Same single-process crash program as above, DPOR enabled: the
        // reduction must not drop any crash cut (crash decisions are
        // seeded at every node, never slept).
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(1));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg, 1));
            d
        };
        let cfg = ExploreConfig {
            max_crashes: 1,
            ..ExploreConfig::default()
        };
        let stats = explore(&cfg, factory, |h| {
            let records = h.ops().len();
            if records != 1 {
                return Err(format!("expected one record, got {records}"));
            }
            Ok(())
        });
        assert_eq!(stats.interleavings, 3, "ss, c, sc — exactly as raw DFS");
        assert!(stats.all_ok());
    }

    #[test]
    fn preemption_bound_restricts_schedules() {
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(2));
            let reg = Arc::new(Register::new(0));
            for pid in 0..2 {
                d.submit_task(pid, OpSpec::custom("rmw", 0), Rmw::new(reg.clone(), 1));
            }
            d
        };
        let free = explore(&ExploreConfig::exhaustive(100), factory, |_| Ok(()));
        let bounded = explore(
            &ExploreConfig {
                max_preemptions: Some(0),
                prune: false,
                ..ExploreConfig::default()
            },
            factory,
            |_| Ok(()),
        );
        // Zero preemptions: each process runs to completion once
        // scheduled — only the 2 serial orders remain.
        assert_eq!(bounded.interleavings, 2);
        assert!(u128::from(free.interleavings) > 2);

        // Reduction is ignored under a preemption bound (commuting does
        // not preserve preemption counts): identical coverage with
        // prune on or off.
        let bounded_prune_requested = explore(
            &ExploreConfig {
                max_preemptions: Some(1),
                prune: true,
                ..ExploreConfig::default()
            },
            factory,
            |_| Ok(()),
        );
        let bounded_no_prune = explore(
            &ExploreConfig {
                max_preemptions: Some(1),
                prune: false,
                ..ExploreConfig::default()
            },
            factory,
            |_| Ok(()),
        );
        assert_eq!(
            bounded_prune_requested.interleavings,
            bounded_no_prune.interleavings
        );
        assert_eq!(bounded_prune_requested.pruned, 0);
    }

    #[test]
    fn step_bound_checks_prefix_cuts() {
        let factory = || {
            let mut d = Driver::coop(Runtime::coop(1));
            let reg = Arc::new(Register::new(0));
            d.submit_task(0, OpSpec::inc(), Rmw::new(reg, 1));
            d
        };
        let cfg = ExploreConfig {
            max_steps: 1,
            prune: false,
            ..ExploreConfig::default()
        };
        let mut pendings = 0;
        let stats = explore(&cfg, factory, |h| {
            pendings += h.ops().iter().filter(|r| r.resp.is_none()).count();
            Ok(())
        });
        assert_eq!(stats.interleavings, 1, "one prefix of length 1");
        assert_eq!(pendings, 1, "the suspended op surfaces as pending");
    }

    #[test]
    fn multinomial_helper() {
        assert_eq!(multinomial(&[2, 2]), 6);
        assert_eq!(multinomial(&[1, 1, 1]), 6);
        assert_eq!(multinomial(&[4, 4, 4]), 34650);
        assert_eq!(multinomial(&[0, 3]), 1);
    }
}
