//! Instrumented base objects.
//!
//! The paper's model admits `read`, `write` and `test&set` primitives
//! (all *historyless*: every non-trivial primitive overwrites whatever is
//! there, and overwrites itself). [`Register`] supports `read`/`write`;
//! [`TasBit`] supports `read`/`test&set`. [`FaaRegister`] adds `fetch&add`,
//! which is **outside** the paper's primitive set — it exists only as a
//! hardware baseline for the benchmark harness and is documented as such.
//!
//! All primitives use `SeqCst` ordering: the modelled machine is
//! sequentially consistent, and the linearizability arguments in the paper
//! assume atomic base objects.

use crate::ctx::ProcCtx;
use crate::trace::AccessKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// An atomic read/write register holding a `u64`.
///
/// Wider values (e.g. the `(val, sn)` pairs of Algorithm 1's helping
/// array) are packed into the 64 bits by the caller, mirroring the paper's
/// assumption that a pair fits in one base object.
#[derive(Debug)]
pub struct Register {
    cell: AtomicU64,
}

impl Register {
    /// A register with the given initial value (no step is charged:
    /// initial values are part of the initial configuration).
    pub fn new(init: u64) -> Self {
        Register {
            cell: AtomicU64::new(init),
        }
    }

    /// Apply a `read` primitive: one step.
    #[inline]
    pub fn read(&self, ctx: &ProcCtx) -> u64 {
        let permit = ctx.step(self.obj_id(), AccessKind::Read);
        let v = self.cell.load(Ordering::SeqCst);
        if permit.traced() {
            permit.record(v, v);
        }
        v
    }

    /// Apply a `write` primitive: one step.
    #[inline]
    pub fn write(&self, ctx: &ProcCtx, v: u64) {
        let permit = ctx.step(self.obj_id(), AccessKind::Write);
        if permit.traced() {
            let before = self.cell.swap(v, Ordering::SeqCst);
            permit.record(before, v);
        } else {
            self.cell.store(v, Ordering::SeqCst);
        }
    }

    /// This object's identity in traces (its address).
    pub fn obj_id(&self) -> usize {
        self as *const Self as usize
    }

    /// Peek without charging a step. **Not a primitive** — for test
    /// assertions and post-mortem inspection only.
    pub fn peek(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

impl Default for Register {
    fn default() -> Self {
        Register::new(0)
    }
}

/// A 1-bit base object supporting `read` and `test&set`, as used for the
/// `switch` sequence of Algorithm 1.
///
/// `test&set` sets the bit and returns its previous value; it is
/// historyless (it overwrites itself).
#[derive(Debug, Default)]
pub struct TasBit {
    bit: AtomicBool,
}

impl TasBit {
    /// A cleared bit.
    pub fn new() -> Self {
        TasBit {
            bit: AtomicBool::new(false),
        }
    }

    /// Apply a `read` primitive: one step.
    #[inline]
    pub fn read(&self, ctx: &ProcCtx) -> bool {
        let permit = ctx.step(self.obj_id(), AccessKind::Read);
        let v = self.bit.load(Ordering::SeqCst);
        if permit.traced() {
            permit.record(u64::from(v), u64::from(v));
        }
        v
    }

    /// Apply a `test&set` primitive: one step. Returns the *previous*
    /// value (`false` means this call set the bit).
    #[inline]
    pub fn test_and_set(&self, ctx: &ProcCtx) -> bool {
        let permit = ctx.step(self.obj_id(), AccessKind::TestAndSet);
        let prev = self.bit.swap(true, Ordering::SeqCst);
        if permit.traced() {
            permit.record(u64::from(prev), 1);
        }
        prev
    }

    /// This object's identity in traces (its address).
    pub fn obj_id(&self) -> usize {
        self as *const Self as usize
    }

    /// Peek without charging a step. **Not a primitive.**
    pub fn peek(&self) -> bool {
        self.bit.load(Ordering::SeqCst)
    }
}

/// A register with `fetch&add`, used **only** as a hardware baseline in
/// benchmarks. `fetch&add` is not historyless and is not available to the
/// paper's algorithms.
#[derive(Debug, Default)]
pub struct FaaRegister {
    cell: AtomicU64,
}

impl FaaRegister {
    /// A register initialized to `init`.
    pub fn new(init: u64) -> Self {
        FaaRegister {
            cell: AtomicU64::new(init),
        }
    }

    /// Apply a `fetch&add` primitive: one step. Returns the previous value.
    #[inline]
    pub fn fetch_add(&self, ctx: &ProcCtx, delta: u64) -> u64 {
        let permit = ctx.step(self.obj_id(), AccessKind::FetchAdd);
        let prev = self.cell.fetch_add(delta, Ordering::SeqCst);
        if permit.traced() {
            permit.record(prev, prev.wrapping_add(delta));
        }
        prev
    }

    /// Apply a `read` primitive: one step.
    #[inline]
    pub fn read(&self, ctx: &ProcCtx) -> u64 {
        let permit = ctx.step(self.obj_id(), AccessKind::Read);
        let v = self.cell.load(Ordering::SeqCst);
        if permit.traced() {
            permit.record(v, v);
        }
        v
    }

    /// This object's identity in traces (its address).
    pub fn obj_id(&self) -> usize {
        self as *const Self as usize
    }

    /// Peek without charging a step. **Not a primitive.**
    pub fn peek(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn register_read_write_cost_one_step_each() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = Register::new(5);
        assert_eq!(r.read(&ctx), 5);
        r.write(&ctx, 9);
        assert_eq!(r.read(&ctx), 9);
        assert_eq!(ctx.steps_taken(), 3);
    }

    #[test]
    fn tas_bit_sets_once() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let b = TasBit::new();
        assert!(!b.read(&ctx));
        assert!(!b.test_and_set(&ctx)); // we set it
        assert!(b.test_and_set(&ctx)); // already set
        assert!(b.read(&ctx));
        assert_eq!(ctx.steps_taken(), 4);
    }

    #[test]
    fn faa_adds() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let f = FaaRegister::new(10);
        assert_eq!(f.fetch_add(&ctx, 5), 10);
        assert_eq!(f.read(&ctx), 15);
    }

    #[test]
    fn peek_charges_no_step() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r = Register::new(3);
        assert_eq!(r.peek(), 3);
        assert_eq!(ctx.steps_taken(), 0);
    }
}
