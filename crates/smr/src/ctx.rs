//! [`ProcCtx`]: the per-process capability for applying primitives.

use crate::gate::Gate;
use crate::runtime::Runtime;
use crate::trace::AccessKind;
use std::sync::Arc;

/// The capability a process needs to apply primitives to base objects.
///
/// Every primitive method on [`Register`](crate::Register),
/// [`TasBit`](crate::TasBit), … takes a `&ProcCtx`; the context charges the
/// step to the owning process, records it in the trace when tracing is
/// enabled and, in gated mode, synchronizes with the controller so that
/// exactly one primitive is in flight at a time.
///
/// A `ProcCtx` is `Send` but deliberately not `Clone`/`Sync`: each process
/// of the modelled machine is a single sequential thread of control.
pub struct ProcCtx {
    runtime: Arc<Runtime>,
    pid: usize,
}

impl std::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcCtx").field("pid", &self.pid).finish()
    }
}

impl ProcCtx {
    pub(crate) fn new(runtime: Arc<Runtime>, pid: usize) -> Self {
        ProcCtx { runtime, pid }
    }

    /// The process id this context acts for.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The runtime this context belongs to.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Steps this process has performed so far.
    pub fn steps_taken(&self) -> u64 {
        self.runtime.steps_of(self.pid)
    }

    /// Charge one primitive step on base object `obj` to this process and
    /// — in gated mode — block until the controller grants it. The
    /// returned permit must be held for the duration of the primitive;
    /// dropping it signals step completion to the controller.
    ///
    /// In gated mode the step is counted and traced only *after* the
    /// grant, so counters and traces reflect execution order (which the
    /// gate serializes), not the racy order in which workers arrive. On
    /// the thread backend the grant edge is recorded here (the gate *is*
    /// the grant); the coop backend records it controller-side.
    ///
    /// The primitive reports its observed effect through
    /// [`StepPermit::record`]; when no trace consumer is active
    /// ([`StepPermit::traced`] is `false`) the recording — and any state
    /// digesting done to feed it — must be skipped, keeping untraced
    /// runs at native cost.
    #[inline]
    pub(crate) fn step(&self, obj: usize, kind: AccessKind) -> StepPermit<'_> {
        let gate = match &self.runtime.gate {
            None => None,
            Some(gate) => {
                let granted = gate.acquire(self.pid);
                if granted {
                    self.runtime.trace_grant(self.pid);
                }
                granted.then_some(gate)
            }
        };
        self.runtime.count_step(self.pid);
        StepPermit {
            runtime: &self.runtime,
            gate,
            pid: self.pid,
            obj,
            kind,
        }
    }
}

/// Held for the duration of one primitive application.
pub(crate) struct StepPermit<'a> {
    runtime: &'a Runtime,
    gate: Option<&'a Gate>,
    pid: usize,
    obj: usize,
    kind: AccessKind,
}

impl StepPermit<'_> {
    /// `true` if a trace consumer (log or analysis sink) is active and
    /// the primitive should digest its before/after states for
    /// [`record`](StepPermit::record).
    #[inline]
    pub(crate) fn traced(&self) -> bool {
        self.runtime.trace_active()
    }

    /// Record the primitive's observed effect: the object's state digest
    /// immediately before and after the application. Must be called
    /// while the permit is held (the gate then serializes the trace).
    #[inline]
    pub(crate) fn record(&self, before: u64, after: u64) {
        self.runtime
            .trace_access(self.pid, self.obj, self.kind, before, after);
    }
}

impl Drop for StepPermit<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            gate.step_done(self.pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_accumulate() {
        let rt = Runtime::free_running(2);
        let ctx = rt.ctx(1);
        {
            let _p = ctx.step(0, AccessKind::Read);
        }
        {
            let _p = ctx.step(0, AccessKind::Write);
        }
        assert_eq!(ctx.steps_taken(), 2);
        assert_eq!(rt.steps_of(0), 0);
    }
}
