//! Timestamped operation histories, the input to linearizability checking.
//!
//! The event vocabulary is **typed**: an operation is described at
//! submission time by an [`OpSpec`] (what the caller is about to do) and
//! recorded as an [`OpKind`] (what happened, including the returned
//! value). Checkers dispatch on the enum — no string matching — and the
//! `Inc` variant carries a *multiplicity*, so one submitted closure that
//! performs `amount` unit increments is accounted exactly.

/// What an operation *did*, recorded in the history.
///
/// Payload fields that are known at invocation time (`amount`, `value`,
/// `label`, `arg`) are valid even on pending records (`resp = None`);
/// result fields (`returned`, `ret`) are meaningless until the operation
/// completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `amount` unit counter increments performed by one submitted
    /// closure (the multiplicity field; checkers weight the record by
    /// it).
    Inc {
        /// How many unit increments this operation performs.
        amount: u64,
    },
    /// A read (counter or max register) that returned `returned`.
    Read {
        /// The value the read returned.
        returned: u128,
    },
    /// A max-register write of `value`.
    Write {
        /// The written value.
        value: u64,
    },
    /// Escape hatch for operations outside the counter/max-register
    /// vocabulary (mixed register workloads, test rigs, …). Checkers
    /// reject these gracefully instead of guessing.
    Custom {
        /// Free-form operation name, for diagnostics only.
        label: &'static str,
        /// Operation argument (0 if none).
        arg: u128,
        /// Returned value (0 if none).
        ret: u128,
    },
}

impl OpKind {
    /// Diagnostic name of the operation ("inc", "read", "write", or the
    /// custom label). For display only — never dispatch on this.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Inc { .. } => "inc",
            OpKind::Read { .. } => "read",
            OpKind::Write { .. } => "write",
            OpKind::Custom { label, .. } => label,
        }
    }

    /// The value the operation returned (0 for operations that return
    /// nothing). Meaningless on pending records.
    pub fn returned(&self) -> u128 {
        match self {
            OpKind::Read { returned } => *returned,
            OpKind::Custom { ret, .. } => *ret,
            OpKind::Inc { .. } | OpKind::Write { .. } => 0,
        }
    }

    /// How many object-level operations this record stands for: the
    /// `amount` of an increment batch, 1 for everything else.
    pub fn multiplicity(&self) -> u64 {
        match self {
            OpKind::Inc { amount } => *amount,
            _ => 1,
        }
    }
}

/// Submission-side descriptor of an operation: everything known *before*
/// the closure runs. The driver combines it with the closure's return
/// value into the recorded [`OpKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSpec {
    /// `amount` unit counter increments.
    Inc {
        /// How many unit increments the closure performs.
        amount: u64,
    },
    /// A read; the closure's return value is recorded as the result.
    Read,
    /// A max-register write of `value`.
    Write {
        /// The written value.
        value: u64,
    },
    /// An operation outside the typed vocabulary.
    Custom {
        /// Free-form operation name, for diagnostics only.
        label: &'static str,
        /// Operation argument (0 if none).
        arg: u128,
    },
}

impl OpSpec {
    /// A single unit increment.
    pub fn inc() -> Self {
        OpSpec::Inc { amount: 1 }
    }

    /// A batch of `amount` unit increments submitted as one closure.
    pub fn inc_by(amount: u64) -> Self {
        OpSpec::Inc { amount }
    }

    /// A read.
    pub fn read() -> Self {
        OpSpec::Read
    }

    /// A max-register write of `value`.
    pub fn write(value: u64) -> Self {
        OpSpec::Write { value }
    }

    /// An operation outside the typed vocabulary.
    pub fn custom(label: &'static str, arg: u128) -> Self {
        OpSpec::Custom { label, arg }
    }

    /// The recorded event for this spec once the closure returned `ret`.
    pub fn kind(self, ret: u128) -> OpKind {
        match self {
            OpSpec::Inc { amount } => OpKind::Inc { amount },
            OpSpec::Read => OpKind::Read { returned: ret },
            OpSpec::Write { value } => OpKind::Write { value },
            OpSpec::Custom { label, arg } => OpKind::Custom { label, arg, ret },
        }
    }
}

/// One completed (or, for crashed/suspended processes, pending)
/// operation instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Invoking process.
    pub pid: usize,
    /// What the operation did (typed — see [`OpKind`]).
    pub kind: OpKind,
    /// Logical invocation timestamp (from [`Runtime::ticket`]).
    ///
    /// [`Runtime::ticket`]: crate::Runtime::ticket
    pub inv: u64,
    /// Logical response timestamp; `None` for operations that never
    /// completed (crashed / suspended processes).
    pub resp: Option<u64>,
    /// Steps (primitive applications) this operation performed.
    pub steps: u64,
}

impl OpRecord {
    /// `true` if `self` finished before `other` was invoked (real-time
    /// precedence). Pending operations precede nothing.
    pub fn precedes(&self, other: &OpRecord) -> bool {
        match self.resp {
            Some(r) => r < other.inv,
            None => false,
        }
    }

    /// Diagnostic name of the operation (see [`OpKind::label`]).
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }

    /// The value the operation returned (see [`OpKind::returned`]).
    pub fn returned(&self) -> u128 {
        self.kind.returned()
    }
}

/// An execution history: a set of operation records with real-time order
/// induced by their logical timestamps.
#[derive(Debug, Clone, Default)]
pub struct History {
    ops: Vec<OpRecord>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History { ops: Vec::new() }
    }

    /// Append a record.
    pub fn push(&mut self, op: OpRecord) {
        self.ops.push(op);
    }

    /// All records, in insertion order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Records sorted by invocation timestamp.
    pub fn sorted_by_invocation(&self) -> Vec<OpRecord> {
        let mut v = self.ops.clone();
        v.sort_by_key(|op| op.inv);
        v
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no records.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Only the completed operations.
    pub fn completed(&self) -> History {
        History {
            ops: self
                .ops
                .iter()
                .filter(|op| op.resp.is_some())
                .cloned()
                .collect(),
        }
    }

    /// Only the pending operations (`resp = None`).
    pub fn pending(&self) -> History {
        History {
            ops: self
                .ops
                .iter()
                .filter(|op| op.resp.is_none())
                .cloned()
                .collect(),
        }
    }

    /// Total steps across all records.
    pub fn total_steps(&self) -> u64 {
        self.ops.iter().map(|op| op.steps).sum()
    }

    /// Merge another history into this one.
    pub fn extend(&mut self, other: History) {
        self.ops.extend(other.ops);
    }
}

impl FromIterator<OpRecord> for History {
    fn from_iter<I: IntoIterator<Item = OpRecord>>(iter: I) -> Self {
        History {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pid: usize, inv: u64, resp: Option<u64>) -> OpRecord {
        OpRecord {
            pid,
            kind: OpSpec::custom("op", 0).kind(0),
            inv,
            resp,
            steps: 1,
        }
    }

    #[test]
    fn precedence_requires_completion() {
        let a = rec(0, 0, Some(5));
        let b = rec(1, 6, Some(8));
        let c = rec(2, 3, None);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!c.precedes(&b));
    }

    #[test]
    fn completed_filters_pending() {
        let mut h = History::new();
        h.push(rec(0, 0, Some(1)));
        h.push(rec(1, 2, None));
        assert_eq!(h.len(), 2);
        assert_eq!(h.completed().len(), 1);
        assert_eq!(h.pending().len(), 1);
        assert_eq!(h.total_steps(), 2);
    }

    #[test]
    fn sorted_by_invocation_orders() {
        let mut h = History::new();
        h.push(rec(0, 9, Some(10)));
        h.push(rec(1, 2, Some(3)));
        let s = h.sorted_by_invocation();
        assert_eq!(s[0].inv, 2);
        assert_eq!(s[1].inv, 9);
    }

    #[test]
    fn spec_to_kind_carries_results() {
        assert_eq!(OpSpec::inc().kind(9), OpKind::Inc { amount: 1 });
        assert_eq!(OpSpec::inc_by(5).kind(0), OpKind::Inc { amount: 5 });
        assert_eq!(OpSpec::read().kind(7), OpKind::Read { returned: 7 });
        assert_eq!(OpSpec::write(3).kind(0), OpKind::Write { value: 3 });
        let k = OpSpec::custom("rmw", 2).kind(4);
        assert_eq!(
            k,
            OpKind::Custom {
                label: "rmw",
                arg: 2,
                ret: 4
            }
        );
        assert_eq!(k.label(), "rmw");
        assert_eq!(k.returned(), 4);
        assert_eq!(k.multiplicity(), 1);
        assert_eq!(OpKind::Inc { amount: 5 }.multiplicity(), 5);
    }
}
