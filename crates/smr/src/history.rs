//! Timestamped operation histories, the input to linearizability checking.

/// One completed (or, for crashed processes, pending) operation instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Invoking process.
    pub pid: usize,
    /// Operation kind, e.g. `"inc"`, `"read"`, `"write"`.
    pub label: &'static str,
    /// Operation argument (0 if none).
    pub arg: u128,
    /// Returned value (0 if none). Meaningless if `resp.is_none()`.
    pub ret: u128,
    /// Logical invocation timestamp (from [`Runtime::ticket`]).
    ///
    /// [`Runtime::ticket`]: crate::Runtime::ticket
    pub inv: u64,
    /// Logical response timestamp; `None` for operations that never
    /// completed (crashed / suspended processes).
    pub resp: Option<u64>,
    /// Steps (primitive applications) this operation performed.
    pub steps: u64,
}

impl OpRecord {
    /// `true` if `self` finished before `other` was invoked (real-time
    /// precedence). Pending operations precede nothing.
    pub fn precedes(&self, other: &OpRecord) -> bool {
        match self.resp {
            Some(r) => r < other.inv,
            None => false,
        }
    }
}

/// An execution history: a set of operation records with real-time order
/// induced by their logical timestamps.
#[derive(Debug, Clone, Default)]
pub struct History {
    ops: Vec<OpRecord>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History { ops: Vec::new() }
    }

    /// Append a record.
    pub fn push(&mut self, op: OpRecord) {
        self.ops.push(op);
    }

    /// All records, in insertion order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Records sorted by invocation timestamp.
    pub fn sorted_by_invocation(&self) -> Vec<OpRecord> {
        let mut v = self.ops.clone();
        v.sort_by_key(|op| op.inv);
        v
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no records.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Only the completed operations.
    pub fn completed(&self) -> History {
        History {
            ops: self
                .ops
                .iter()
                .filter(|op| op.resp.is_some())
                .cloned()
                .collect(),
        }
    }

    /// Total steps across all records.
    pub fn total_steps(&self) -> u64 {
        self.ops.iter().map(|op| op.steps).sum()
    }

    /// Merge another history into this one.
    pub fn extend(&mut self, other: History) {
        self.ops.extend(other.ops);
    }
}

impl FromIterator<OpRecord> for History {
    fn from_iter<I: IntoIterator<Item = OpRecord>>(iter: I) -> Self {
        History {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pid: usize, inv: u64, resp: Option<u64>) -> OpRecord {
        OpRecord {
            pid,
            label: "op",
            arg: 0,
            ret: 0,
            inv,
            resp,
            steps: 1,
        }
    }

    #[test]
    fn precedence_requires_completion() {
        let a = rec(0, 0, Some(5));
        let b = rec(1, 6, Some(8));
        let c = rec(2, 3, None);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!c.precedes(&b));
    }

    #[test]
    fn completed_filters_pending() {
        let mut h = History::new();
        h.push(rec(0, 0, Some(1)));
        h.push(rec(1, 2, None));
        assert_eq!(h.len(), 2);
        assert_eq!(h.completed().len(), 1);
        assert_eq!(h.total_steps(), 2);
    }

    #[test]
    fn sorted_by_invocation_orders() {
        let mut h = History::new();
        h.push(rec(0, 9, Some(10)));
        h.push(rec(1, 2, Some(3)));
        let s = h.sorted_by_invocation();
        assert_eq!(s[0].inv, 2);
        assert_eq!(s[1].inv, 9);
    }
}
