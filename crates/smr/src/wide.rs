//! [`WideRegister`]: an atomic read/write register over an arbitrary
//! domain.
//!
//! The asynchronous shared-memory model of the paper (and of the snapshot
//! literature it cites) allows base objects "over some domain D" — e.g.
//! the `(value, seq, view)` triples of the Afek et al. atomic-snapshot
//! construction. One `read` or `write` of such a register is **one step**
//! regardless of the width of D.
//!
//! Physically we realize atomicity with a short critical section; that is
//! an implementation detail below the model's abstraction level and does
//! not affect step counts. For `u64`-domain objects prefer
//! [`Register`](crate::Register), which is genuinely lock-free.

use crate::ctx::ProcCtx;
use crate::trace::AccessKind;
use parking_lot::Mutex;

/// An atomic register holding any `Clone` value; one step per primitive.
///
/// The domain is unconstrained, so the state digest reported to traces
/// (`before`/`after` of [`Access`](crate::TraceEvent)) is a *write
/// version*: reads leave it unchanged, every write bumps it — exactly
/// the trivial/nontrivial distinction the conformance pass verifies.
#[derive(Debug)]
pub struct WideRegister<T: Clone + Send> {
    /// The value plus its write version.
    cell: Mutex<(T, u64)>,
}

impl<T: Clone + Send> WideRegister<T> {
    /// A register with the given initial value.
    pub fn new(init: T) -> Self {
        WideRegister {
            cell: Mutex::new((init, 0)),
        }
    }

    /// Apply a `read` primitive: one step.
    pub fn read(&self, ctx: &ProcCtx) -> T {
        let permit = ctx.step(self.obj_id(), AccessKind::Read);
        let guard = self.cell.lock();
        if permit.traced() {
            permit.record(guard.1, guard.1);
        }
        guard.0.clone()
    }

    /// Apply a `write` primitive: one step.
    pub fn write(&self, ctx: &ProcCtx, v: T) {
        let permit = ctx.step(self.obj_id(), AccessKind::Write);
        let mut guard = self.cell.lock();
        let before = guard.1;
        *guard = (v, before + 1);
        if permit.traced() {
            permit.record(before, before + 1);
        }
    }

    /// This object's identity in traces (its address).
    pub fn obj_id(&self) -> usize {
        self as *const Self as usize
    }

    /// Peek without charging a step. **Not a primitive.**
    pub fn peek(&self) -> T {
        self.cell.lock().0.clone()
    }
}

impl<T: Clone + Send + Default> Default for WideRegister<T> {
    fn default() -> Self {
        WideRegister::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn wide_values_round_trip() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r: WideRegister<(u64, Vec<u64>)> = WideRegister::new((0, vec![]));
        r.write(&ctx, (3, vec![1, 2]));
        assert_eq!(r.read(&ctx), (3, vec![1, 2]));
        assert_eq!(ctx.steps_taken(), 2, "one step per primitive");
    }
}
