//! [`WideRegister`]: an atomic read/write register over an arbitrary
//! domain.
//!
//! The asynchronous shared-memory model of the paper (and of the snapshot
//! literature it cites) allows base objects "over some domain D" — e.g.
//! the `(value, seq, view)` triples of the Afek et al. atomic-snapshot
//! construction. One `read` or `write` of such a register is **one step**
//! regardless of the width of D.
//!
//! Physically we realize atomicity with a short critical section; that is
//! an implementation detail below the model's abstraction level and does
//! not affect step counts. For `u64`-domain objects prefer
//! [`Register`](crate::Register), which is genuinely lock-free.

use crate::ctx::ProcCtx;
use crate::trace::AccessKind;
use parking_lot::Mutex;

/// An atomic register holding any `Clone` value; one step per primitive.
#[derive(Debug)]
pub struct WideRegister<T: Clone + Send> {
    cell: Mutex<T>,
}

impl<T: Clone + Send> WideRegister<T> {
    /// A register with the given initial value.
    pub fn new(init: T) -> Self {
        WideRegister {
            cell: Mutex::new(init),
        }
    }

    /// Apply a `read` primitive: one step.
    pub fn read(&self, ctx: &ProcCtx) -> T {
        let _permit = ctx.step(self.obj_id(), AccessKind::Read);
        self.cell.lock().clone()
    }

    /// Apply a `write` primitive: one step.
    pub fn write(&self, ctx: &ProcCtx, v: T) {
        let _permit = ctx.step(self.obj_id(), AccessKind::Write);
        *self.cell.lock() = v;
    }

    /// This object's identity in traces (its address).
    pub fn obj_id(&self) -> usize {
        self as *const Self as usize
    }

    /// Peek without charging a step. **Not a primitive.**
    pub fn peek(&self) -> T {
        self.cell.lock().clone()
    }
}

impl<T: Clone + Send + Default> Default for WideRegister<T> {
    fn default() -> Self {
        WideRegister::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn wide_values_round_trip() {
        let rt = Runtime::free_running(1);
        let ctx = rt.ctx(0);
        let r: WideRegister<(u64, Vec<u64>)> = WideRegister::new((0, vec![]));
        r.write(&ctx, (3, vec![1, 2]));
        assert_eq!(r.read(&ctx), (3, vec![1, 2]));
        assert_eq!(ctx.steps_taken(), 2, "one step per primitive");
    }
}
