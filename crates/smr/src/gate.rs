//! The gate: a per-process rendezvous that serializes primitive steps.
//!
//! In *gated* mode, every process parks at the gate immediately before each
//! primitive application and may proceed only once the controller grants it
//! a step. The grant protocol is two-phase: the controller waits for the
//! process to park, wakes it, and then waits for the primitive to complete
//! (signalled by dropping the [`StepPermit`]). At most one primitive is in
//! flight at any instant, so gated executions are fully serialized and —
//! because the implementations are deterministic — replayable from a
//! schedule script.

use parking_lot::{Condvar, Mutex, MutexGuard};

/// What a worker thread is currently doing, as observed through the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// No operation in progress (before the first op, or between ops).
    Idle,
    /// Parked at the gate, waiting for a step grant.
    Parked,
    /// Executing (either a granted primitive or local computation).
    Running,
}

#[derive(Debug)]
struct SlotState {
    state: ProcState,
    /// A grant deposited by the controller, not yet consumed.
    granted: bool,
    /// Number of primitive steps fully completed (permit dropped).
    steps_done: u64,
    /// Number of operations whose closure has returned.
    ops_finished: u64,
    /// Set on shutdown: parked workers return and run ungated.
    shutdown: bool,
}

pub(crate) struct Slot {
    m: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            m: Mutex::new(SlotState {
                state: ProcState::Idle,
                granted: false,
                steps_done: 0,
                ops_finished: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }
}

/// The gate shared between the controller and all worker threads.
pub(crate) struct Gate {
    slots: Vec<Slot>,
}

/// Outcome of a controller's attempt to advance a process by one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GrantOutcome {
    /// One primitive was executed to completion.
    Stepped,
    /// The process finished all `expected_ops` operations; no step taken.
    Completed,
}

impl Gate {
    pub(crate) fn new(n: usize) -> Self {
        Gate {
            slots: (0..n).map(|_| Slot::new()).collect(),
        }
    }

    /// Worker side: park before a primitive and wait for a grant.
    ///
    /// Returns `true` if a grant was received, `false` on shutdown (the
    /// caller then executes ungated).
    pub(crate) fn acquire(&self, pid: usize) -> bool {
        let slot = &self.slots[pid];
        let mut st = slot.m.lock();
        if st.shutdown {
            return false;
        }
        st.state = ProcState::Parked;
        slot.cv.notify_all();
        while !st.granted {
            if st.shutdown {
                st.state = ProcState::Running;
                return false;
            }
            slot.cv.wait(&mut st);
        }
        st.granted = false;
        st.state = ProcState::Running;
        slot.cv.notify_all();
        true
    }

    /// Worker side: a granted primitive has completed.
    pub(crate) fn step_done(&self, pid: usize) {
        let slot = &self.slots[pid];
        let mut st = slot.m.lock();
        st.steps_done += 1;
        slot.cv.notify_all();
    }

    /// Worker side: the current operation's closure has returned.
    pub(crate) fn op_finished(&self, pid: usize) {
        let slot = &self.slots[pid];
        let mut st = slot.m.lock();
        st.ops_finished += 1;
        st.state = ProcState::Idle;
        slot.cv.notify_all();
    }

    /// Worker side: an operation's closure is about to run.
    pub(crate) fn op_started(&self, pid: usize) {
        let slot = &self.slots[pid];
        let mut st = slot.m.lock();
        st.state = ProcState::Running;
        slot.cv.notify_all();
    }

    /// Controller side: advance process `pid` by exactly one primitive, or
    /// learn that it has already finished `expected_ops` operations.
    ///
    /// Blocks until one of the two happens. Requires that the worker has
    /// (or will receive) work: if `pid` is idle with fewer than
    /// `expected_ops` finished operations, the controller waits for it to
    /// start the next one.
    pub(crate) fn grant(&self, pid: usize, expected_ops: u64) -> GrantOutcome {
        let slot = &self.slots[pid];
        let (mut st, parked) = self.wait_stable(pid, expected_ops);
        if !parked {
            return GrantOutcome::Completed;
        }
        st.granted = true;
        let target = st.steps_done + 1;
        slot.cv.notify_all();
        while st.steps_done < target {
            slot.cv.wait(&mut st);
        }
        // Wait for the worker to reach its next stable point (parked at
        // the following primitive, or idle with the operation finished).
        // Without this, the controller's view of completed operations
        // races with the worker's post-step bookkeeping and scheduling
        // decisions become nondeterministic across identical runs.
        while st.state == ProcState::Running {
            slot.cv.wait(&mut st);
        }
        GrantOutcome::Stepped
    }

    /// Controller side: block until `pid` is at a stable point. Returns
    /// the slot guard and `true` if the worker is parked at a primitive
    /// awaiting a grant, `false` if it is idle with all `expected_ops`
    /// operations finished.
    fn wait_stable(&self, pid: usize, expected_ops: u64) -> (MutexGuard<'_, SlotState>, bool) {
        let slot = &self.slots[pid];
        let mut st = slot.m.lock();
        loop {
            match st.state {
                ProcState::Parked if !st.granted => return (st, true),
                ProcState::Idle if st.ops_finished >= expected_ops => return (st, false),
                _ => slot.cv.wait(&mut st),
            }
        }
    }

    /// Controller side: block until `pid` is at a stable point — parked
    /// at a primitive (mid-operation) or idle having finished all
    /// `expected_ops` operations. Queued operations that apply no
    /// primitives run to completion on the way (they need no grants);
    /// the first primitive parks the worker.
    ///
    /// On return, every invocation announcement and completion record
    /// the worker will ever emit without further grants is already in
    /// the event channel: on the worker thread each send precedes the
    /// state transition this waits on (program order), the channel
    /// delivers a sender's messages in send order, and observing the
    /// transition under the slot mutex makes the earlier send visible
    /// to a subsequent drain.
    pub(crate) fn quiesce(&self, pid: usize, expected_ops: u64) {
        let _ = self.wait_stable(pid, expected_ops);
    }

    /// Release all parked workers permanently; subsequent acquires no-op.
    pub(crate) fn shutdown(&self) {
        for slot in &self.slots {
            let mut st = slot.m.lock();
            st.shutdown = true;
            slot.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grant_serializes_steps() {
        let gate = Arc::new(Gate::new(2));
        let g = gate.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..3 {
                assert!(g.acquire(0));
                g.step_done(0);
            }
            g.op_finished(0);
        });
        for _ in 0..3 {
            assert_eq!(gate.grant(0, 1), GrantOutcome::Stepped);
        }
        assert_eq!(gate.grant(0, 1), GrantOutcome::Completed);
        h.join().unwrap();
    }

    #[test]
    fn shutdown_unblocks_parked_worker() {
        let gate = Arc::new(Gate::new(1));
        let g = gate.clone();
        let h = std::thread::spawn(move || {
            // Parked forever unless shutdown.
            let granted = g.acquire(0);
            assert!(!granted);
        });
        // Give the worker time to park, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.shutdown();
        h.join().unwrap();
    }

    #[test]
    fn grant_loop_counts_steps() {
        let gate = Arc::new(Gate::new(1));
        let g = gate.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..5 {
                assert!(g.acquire(0));
                g.step_done(0);
            }
            g.op_finished(0);
        });
        let mut steps = 0;
        while gate.grant(0, 1) == GrantOutcome::Stepped {
            steps += 1;
        }
        assert_eq!(steps, 5);
        h.join().unwrap();
    }
}
