//! [`SegArray`]: a lock-free, growable array with stable element addresses.
//!
//! Algorithm 1 of the paper uses an *unbounded* sequence of `switch` bits.
//! Base objects must have stable identity (a `test&set` applied to
//! `switch_j` must always hit the same bit), so a `Vec` that reallocates is
//! unsuitable. `SegArray` allocates geometrically-growing segments on
//! demand and publishes them with a CAS; elements never move and `get` is
//! O(1).
//!
//! Indexing math: with base-segment capacity `B = 2^LOG_BASE`, segment `s`
//! holds `B << s` elements, so index `i`'s segment is recovered from the
//! position of the most significant bit of `i + B`.
//!
//! Segments are allocated **cache-line aligned** (64 bytes): hot
//! low-index elements — the k-multiplicative counter's first switches,
//! per-shard heads in sharded sketches — start at a line boundary
//! instead of wherever the global allocator put the segment header, so
//! concurrent writers hammering *different* arrays never false-share a
//! line across segment heads.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, Ordering};

const LOG_BASE: u32 = 6;
const BASE: usize = 1 << LOG_BASE;
/// Enough segments to cover the full usize index space.
const SEGMENTS: usize = (usize::BITS - LOG_BASE) as usize;
/// Segment base alignment: one cache line.
const SEG_ALIGN: usize = 64;

/// A lock-free growable array of `T`. Elements are default-initialized on
/// first segment allocation and never move.
pub struct SegArray<T: Default> {
    segments: [AtomicPtr<T>; SEGMENTS],
}

impl<T: Default> Default for SegArray<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default> SegArray<T> {
    /// An empty array; no segment is allocated until first access.
    pub fn new() -> Self {
        SegArray {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    #[inline]
    fn locate(i: usize) -> (usize, usize) {
        let adjusted = i + BASE;
        let msb = usize::BITS - 1 - adjusted.leading_zeros();
        let seg = (msb - LOG_BASE) as usize;
        let offset = adjusted - (BASE << seg);
        (seg, offset)
    }

    #[inline]
    fn seg_capacity(seg: usize) -> usize {
        BASE << seg
    }

    /// Layout of segment `seg`: a `[T; capacity]` array raised to cache-line
    /// alignment.
    fn seg_layout(seg: usize) -> Layout {
        Layout::array::<T>(Self::seg_capacity(seg))
            .and_then(|l| l.align_to(SEG_ALIGN))
            .expect("segment layout")
    }

    /// Allocate and default-initialize segment `seg` at cache-line
    /// alignment. (Zero-sized `T`: no storage; a dangling aligned
    /// pointer is a valid slice base.)
    fn alloc_segment(seg: usize) -> *mut T {
        let cap = Self::seg_capacity(seg);
        let layout = Self::seg_layout(seg);
        if layout.size() == 0 {
            return NonNull::dangling().as_ptr();
        }
        // SAFETY: non-zero size; each slot is initialized before the
        // pointer escapes.
        unsafe {
            let ptr = std::alloc::alloc(layout) as *mut T;
            if ptr.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            for k in 0..cap {
                ptr.add(k).write(T::default());
            }
            ptr
        }
    }

    /// Drop the elements of segment `seg` and release its allocation.
    ///
    /// # Safety
    /// `ptr` must come from [`alloc_segment`](Self::alloc_segment) for the
    /// same `seg`, be fully initialized, and never be used again.
    unsafe fn free_segment(ptr: *mut T, seg: usize) {
        let cap = Self::seg_capacity(seg);
        let layout = Self::seg_layout(seg);
        // SAFETY: per the contract above.
        unsafe {
            std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(ptr, cap));
            if layout.size() > 0 {
                std::alloc::dealloc(ptr as *mut u8, layout);
            }
        }
    }

    /// The element at index `i`, allocating its segment if needed.
    ///
    /// Lock-free: concurrent allocators race with CAS and the loser frees
    /// its allocation.
    pub fn get(&self, i: usize) -> &T {
        let (seg, offset) = Self::locate(i);
        let ptr = self.segment_ptr(seg);
        // SAFETY: `ptr` points to a live, fully-initialized slice of
        // `seg_capacity(seg)` elements published by `segment_ptr`, and
        // `offset < seg_capacity(seg)` by construction of `locate`.
        // Published segments are never freed until `self` is dropped, and
        // the returned reference borrows `self`.
        unsafe { &*ptr.add(offset) }
    }

    fn segment_ptr(&self, seg: usize) -> *mut T {
        let slot = &self.segments[seg];
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            return existing;
        }
        let fresh_ptr = Self::alloc_segment(seg);
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh_ptr,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => fresh_ptr,
            Err(winner) => {
                // SAFETY: we exclusively own `fresh_ptr` (CAS failed, so it
                // was never published); drop its elements and free it.
                unsafe { Self::free_segment(fresh_ptr, seg) };
                winner
            }
        }
    }

    /// Number of elements currently backed by allocated segments.
    pub fn allocated_len(&self) -> usize {
        self.segments
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.load(Ordering::Acquire).is_null())
            .map(|(i, _)| Self::seg_capacity(i))
            .sum()
    }
}

impl<T: Default> Drop for SegArray<T> {
    fn drop(&mut self) {
        for (seg, slot) in self.segments.iter().enumerate() {
            let ptr = slot.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: `ptr` was published by `segment_ptr` from
                // `alloc_segment(seg)` and is owned solely by `self` at
                // drop time.
                unsafe { Self::free_segment(ptr, seg) };
            }
        }
    }
}

// SAFETY: `SegArray<T>` hands out only shared references to `T`; it is
// Sync/Send whenever `T` is (the segment pointers are managed atomically).
unsafe impl<T: Default + Sync> Sync for SegArray<T> {}
unsafe impl<T: Default + Send> Send for SegArray<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn locate_is_consistent() {
        // Exhaustively check that (seg, offset) is a bijection over a
        // prefix of the index space.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000usize {
            let (seg, off) = SegArray::<u64>::locate(i);
            assert!(off < SegArray::<u64>::seg_capacity(seg));
            assert!(seen.insert((seg, off)), "collision at {i}");
        }
    }

    #[test]
    fn elements_are_stable_and_default() {
        let arr: SegArray<AtomicU64> = SegArray::new();
        let a = arr.get(0) as *const _;
        arr.get(5000).store(7, Ordering::SeqCst);
        let b = arr.get(0) as *const _;
        assert_eq!(a, b, "element 0 moved");
        assert_eq!(arr.get(5000).load(Ordering::SeqCst), 7);
        assert_eq!(arr.get(4999).load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_allocation_is_safe() {
        let arr = std::sync::Arc::new(SegArray::<AtomicU64>::new());
        let mut handles = vec![];
        for t in 0..8 {
            let arr = arr.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000usize {
                    arr.get(i * 8 + t).fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..16_000usize {
            assert_eq!(arr.get(i).load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn segments_are_cache_line_aligned() {
        let arr: SegArray<u8> = SegArray::new();
        // First element of each of the first few segments starts a line.
        for seg in 0..4 {
            let first_index = (BASE << seg) - BASE;
            let addr = arr.get(first_index) as *const u8 as usize;
            assert_eq!(addr % SEG_ALIGN, 0, "segment {seg} head misaligned");
        }
    }

    #[test]
    fn allocated_len_grows() {
        let arr: SegArray<u64> = SegArray::new();
        assert_eq!(arr.allocated_len(), 0);
        let _ = arr.get(0);
        assert_eq!(arr.allocated_len(), BASE);
        let _ = arr.get(BASE);
        assert_eq!(arr.allocated_len(), BASE + 2 * BASE);
    }
}
