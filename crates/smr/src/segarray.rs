//! [`SegArray`]: a lock-free, growable array with stable element addresses.
//!
//! Algorithm 1 of the paper uses an *unbounded* sequence of `switch` bits.
//! Base objects must have stable identity (a `test&set` applied to
//! `switch_j` must always hit the same bit), so a `Vec` that reallocates is
//! unsuitable. `SegArray` allocates geometrically-growing segments on
//! demand and publishes them with a CAS; elements never move and `get` is
//! O(1).
//!
//! Indexing math: with base-segment capacity `B = 2^LOG_BASE`, segment `s`
//! holds `B << s` elements, so index `i`'s segment is recovered from the
//! position of the most significant bit of `i + B`.

use std::sync::atomic::{AtomicPtr, Ordering};

const LOG_BASE: u32 = 6;
const BASE: usize = 1 << LOG_BASE;
/// Enough segments to cover the full usize index space.
const SEGMENTS: usize = (usize::BITS - LOG_BASE) as usize;

/// A lock-free growable array of `T`. Elements are default-initialized on
/// first segment allocation and never move.
pub struct SegArray<T: Default> {
    segments: [AtomicPtr<T>; SEGMENTS],
}

impl<T: Default> Default for SegArray<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default> SegArray<T> {
    /// An empty array; no segment is allocated until first access.
    pub fn new() -> Self {
        SegArray {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    #[inline]
    fn locate(i: usize) -> (usize, usize) {
        let adjusted = i + BASE;
        let msb = usize::BITS - 1 - adjusted.leading_zeros();
        let seg = (msb - LOG_BASE) as usize;
        let offset = adjusted - (BASE << seg);
        (seg, offset)
    }

    #[inline]
    fn seg_capacity(seg: usize) -> usize {
        BASE << seg
    }

    /// The element at index `i`, allocating its segment if needed.
    ///
    /// Lock-free: concurrent allocators race with CAS and the loser frees
    /// its allocation.
    pub fn get(&self, i: usize) -> &T {
        let (seg, offset) = Self::locate(i);
        let ptr = self.segment_ptr(seg);
        // SAFETY: `ptr` points to a live, fully-initialized slice of
        // `seg_capacity(seg)` elements published by `segment_ptr`, and
        // `offset < seg_capacity(seg)` by construction of `locate`.
        // Published segments are never freed until `self` is dropped, and
        // the returned reference borrows `self`.
        unsafe { &*ptr.add(offset) }
    }

    fn segment_ptr(&self, seg: usize) -> *mut T {
        let slot = &self.segments[seg];
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            return existing;
        }
        let cap = Self::seg_capacity(seg);
        let fresh: Box<[T]> = (0..cap).map(|_| T::default()).collect();
        let fresh_ptr = Box::into_raw(fresh) as *mut T;
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh_ptr,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => fresh_ptr,
            Err(winner) => {
                // SAFETY: we exclusively own `fresh_ptr` (CAS failed, so it
                // was never published); reconstitute and drop it.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        fresh_ptr, cap,
                    )));
                }
                winner
            }
        }
    }

    /// Number of elements currently backed by allocated segments.
    pub fn allocated_len(&self) -> usize {
        self.segments
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.load(Ordering::Acquire).is_null())
            .map(|(i, _)| Self::seg_capacity(i))
            .sum()
    }
}

impl<T: Default> Drop for SegArray<T> {
    fn drop(&mut self) {
        for (seg, slot) in self.segments.iter().enumerate() {
            let ptr = slot.load(Ordering::Acquire);
            if !ptr.is_null() {
                let cap = Self::seg_capacity(seg);
                // SAFETY: `ptr` was created by `Box::into_raw` on a boxed
                // slice of exactly `cap` elements and is owned solely by
                // `self` at drop time.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, cap)));
                }
            }
        }
    }
}

// SAFETY: `SegArray<T>` hands out only shared references to `T`; it is
// Sync/Send whenever `T` is (the segment pointers are managed atomically).
unsafe impl<T: Default + Sync> Sync for SegArray<T> {}
unsafe impl<T: Default + Send> Send for SegArray<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn locate_is_consistent() {
        // Exhaustively check that (seg, offset) is a bijection over a
        // prefix of the index space.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000usize {
            let (seg, off) = SegArray::<u64>::locate(i);
            assert!(off < SegArray::<u64>::seg_capacity(seg));
            assert!(seen.insert((seg, off)), "collision at {i}");
        }
    }

    #[test]
    fn elements_are_stable_and_default() {
        let arr: SegArray<AtomicU64> = SegArray::new();
        let a = arr.get(0) as *const _;
        arr.get(5000).store(7, Ordering::SeqCst);
        let b = arr.get(0) as *const _;
        assert_eq!(a, b, "element 0 moved");
        assert_eq!(arr.get(5000).load(Ordering::SeqCst), 7);
        assert_eq!(arr.get(4999).load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_allocation_is_safe() {
        let arr = std::sync::Arc::new(SegArray::<AtomicU64>::new());
        let mut handles = vec![];
        for t in 0..8 {
            let arr = arr.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000usize {
                    arr.get(i * 8 + t).fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..16_000usize {
            assert_eq!(arr.get(i).load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn allocated_len_grows() {
        let arr: SegArray<u64> = SegArray::new();
        assert_eq!(arr.allocated_len(), 0);
        let _ = arr.get(0);
        assert_eq!(arr.allocated_len(), BASE);
        let _ = arr.get(BASE);
        assert_eq!(arr.allocated_len(), BASE + 2 * BASE);
    }
}
